"""Tests for busy-window detection and SBF anchoring."""

from __future__ import annotations

import random

from repro.model.job import Job
from repro.rossl.client import RosslClient
from repro.rta.npfp import analyse
from repro.schedule.busy import (
    BusyWindow,
    busy_windows,
    longest_busy_window,
    min_supply_in_busy_prefixes,
)
from repro.schedule.conversion import FiniteSchedule, Segment
from repro.schedule.states import Executes, Idle, ReadOvh
from repro.sim.simulator import WcetDurations, simulate
from repro.sim.workloads import generate_arrivals

J = Job((1,), 0)


def schedule_of(pattern: str) -> FiniteSchedule:
    """Build a schedule from a glyph string: '.'=Idle, '#'=Executes,
    'r'=ReadOvh (one instant each)."""
    segments = []
    for i, ch in enumerate(pattern):
        state = {".": Idle(), "#": Executes(J), "r": ReadOvh(J)}[ch]
        segments.append(Segment(state, i, i + 1))
    merged = []
    for s in segments:
        if merged and merged[-1].state == s.state:
            merged[-1] = Segment(s.state, merged[-1].start, s.end)
        else:
            merged.append(s)
    return FiniteSchedule(tuple(merged), 0, len(pattern))


class TestBusyWindows:
    def test_all_idle(self):
        assert busy_windows(schedule_of("....")) == []
        assert longest_busy_window(schedule_of("....")) is None

    def test_single_window(self):
        assert busy_windows(schedule_of("..r##.")) == [BusyWindow(2, 5)]

    def test_multiple_windows(self):
        windows = busy_windows(schedule_of("r#..##..r"))
        assert windows == [BusyWindow(0, 2), BusyWindow(4, 6), BusyWindow(8, 9)]

    def test_window_at_both_ends(self):
        windows = busy_windows(schedule_of("#..#"))
        assert windows == [BusyWindow(0, 1), BusyWindow(3, 4)]

    def test_longest(self):
        assert longest_busy_window(schedule_of("r#..###.")) == BusyWindow(4, 7)

    def test_empty_schedule(self):
        assert busy_windows(FiniteSchedule((), 0, 0)) == []


class TestBusyPrefixSupply:
    def test_prefix_supply(self):
        # busy window [2,7): r # # r #  → supply at prefix 3 = 2 (##)
        schedule = schedule_of("..r##r#..")
        assert min_supply_in_busy_prefixes(schedule, 3) == 2
        assert min_supply_in_busy_prefixes(schedule, 5) == 3

    def test_none_when_no_window_long_enough(self):
        assert min_supply_in_busy_prefixes(schedule_of("r#.."), 5) is None

    def test_zero_delta(self):
        assert min_supply_in_busy_prefixes(schedule_of("r#"), 0) == 0

    def test_sbf_dominated_in_busy_prefixes(self, two_tasks):
        """The precise aRSA-anchored check: SBF(Δ) ≤ supply in every
        length-Δ busy-window prefix of simulated schedules."""
        from repro.rta.curves import SporadicCurve
        from repro.timing.wcet import WcetModel

        curves = {"lo": SporadicCurve(200), "hi": SporadicCurve(150)}
        client = RosslClient.make(two_tasks.with_curves(curves), [0])
        wcet = WcetModel(2, 3, 2, 2, 2, 2)
        analysis = analyse(client, wcet)
        sbf = analysis.sbf
        for seed in range(4):
            rng = random.Random(seed)
            arrivals = generate_arrivals(client, horizon=1_500, rng=rng,
                                         intensity=1.4)
            result = simulate(client, arrivals, wcet, horizon=2_500,
                              durations=WcetDurations())
            schedule = result.schedule()
            longest = longest_busy_window(schedule)
            if longest is None:
                continue
            for delta in range(1, longest.length + 1):
                measured = min_supply_in_busy_prefixes(schedule, delta)
                assert measured is None or sbf(delta) <= measured

"""Tests for the static cost (WCET) analysis, including its soundness
against the VM's concrete cost semantics."""

from __future__ import annotations

import pytest

from repro.lang.compile import compile_program
from repro.lang.cost import CostAnalyzer, CostError, function_cost
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck
from repro.lang.vm import VM
from repro.rossl.client import RosslClient
from repro.rossl.env import ScriptedEnvironment
from repro.rossl.runtime import TraceRecorder
from repro.rossl.source import rossl_source


def static_and_dynamic(source: str, loop_bounds=None, entry="main", script=()):
    """Static bound for `entry` vs. actual VM instruction count."""
    typed = typecheck(parse_program(source))
    static = function_cost(typed, entry, loop_bounds)
    vm = VM(compile_program(typed), ScriptedEnvironment(script), TraceRecorder())
    vm.call(entry, [])
    return static, vm.executed


class TestExactness:
    """On branch-free code the static cost equals the dynamic count."""

    @pytest.mark.parametrize(
        "source",
        [
            "int main() { return 1 + 2 * 3; }",
            "int main() { int x = 4; int y = x; return x + y; }",
            "struct p { int a; int b; };"
            "int main() { struct p v; v.a = 1; v.b = 2; return v.a + v.b; }",
            "int main() { int a[4]; a[1] = 9; return a[1]; }",
            "int f(int x) { return x * 2; } int main() { return f(21); }",
        ],
    )
    def test_straight_line_exact(self, source: str):
        static, dynamic = static_and_dynamic(source)
        assert static == dynamic


class TestSoundness:
    def test_if_takes_worst_branch(self):
        # Condition true: the cheap branch runs, the bound covers the
        # expensive one.
        source = (
            "int main() { int x = 1;"
            " if (x) { x = 2; } else { x = 3; x = 4; x = 5; }"
            " return x; }"
        )
        static, dynamic = static_and_dynamic(source)
        assert dynamic <= static

    def test_loop_with_exact_bound(self):
        source = (
            "int main() { int i = 0; int s = 0;"
            " while (i < 7) { s = s + i; i = i + 1; } return s; }"
        )
        static, dynamic = static_and_dynamic(source, {"main": [7]})
        assert dynamic <= static
        # Tight: the bound only over-counts by a constant per iteration.
        assert static <= dynamic + 10

    def test_loop_bound_larger_than_actual(self):
        source = (
            "int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }"
        )
        static, dynamic = static_and_dynamic(source, {"main": [10]})
        assert dynamic <= static

    def test_early_break_within_bound(self):
        source = (
            "int main() { int i = 0;"
            " while (i < 100) { i = i + 1; if (i == 4) { break; } }"
            " return i; }"
        )
        static, dynamic = static_and_dynamic(source, {"main": [100]})
        assert dynamic <= static

    def test_nested_loops_bounds_in_source_order(self):
        source = (
            "int main() { int i = 0; int s = 0;"
            " while (i < 3) {"
            "   int j = 0;"
            "   while (j < 4) { s = s + 1; j = j + 1; }"
            "   i = i + 1;"
            " } return s; }"
        )
        # Outer loop first in source order, then the inner loop.
        static, dynamic = static_and_dynamic(source, {"main": [3, 4]})
        assert dynamic <= static

    def test_calls_inline_callee_cost(self):
        source = (
            "int triple(int x) { return x + x + x; }"
            "int main() { return triple(triple(2)); }"
        )
        static, dynamic = static_and_dynamic(source)
        assert static == dynamic

    def test_short_circuit_costs_cover_both_paths(self):
        for cond in ("1 && 1", "0 && 1", "1 || 0", "0 || 0"):
            source = f"int main() {{ return {cond}; }}"
            static, dynamic = static_and_dynamic(source)
            assert dynamic <= static


class TestErrors:
    def test_recursion_rejected(self):
        source = (
            "int f(int n) { if (n == 0) { return 0; } return f(n - 1); }"
            "int main() { return f(3); }"
        )
        typed = typecheck(parse_program(source))
        with pytest.raises(CostError, match="recursion"):
            function_cost(typed, "main")

    def test_missing_loop_bound_rejected(self):
        typed = typecheck(parse_program(
            "int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }"
        ))
        with pytest.raises(CostError, match="missing loop bound"):
            function_cost(typed, "main")

    def test_negative_bound_rejected(self):
        typed = typecheck(parse_program(
            "int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }"
        ))
        with pytest.raises(CostError, match="negative"):
            function_cost(typed, "main", {"main": [-1]})

    def test_unknown_function(self):
        typed = typecheck(parse_program("int main() { return 0; }"))
        with pytest.raises(CostError, match="unknown function"):
            function_cost(typed, "nope")


class TestRosslHelperCosts:
    """Static WCETs for Rössl's basic-action code, checked against the
    VM on adversarial queue states — the paper's 'statically derived
    WCETs' (§2.2) made concrete."""

    def driver_source(self, client: RosslClient, queue_len: int, dequeue: bool):
        """A main that enqueues ``queue_len`` jobs, then (optionally)
        dequeues one.  Job payloads alternate task tags so the scan
        cannot shortcut."""
        tags = [t.type_tag for t in client.tasks.tasks]
        setup = []
        for i in range(queue_len):
            tag = tags[i % len(tags)]
            setup.append(
                "    {"
                "  struct job *j = malloc(sizeof(struct job));"
                f" j->data[0] = {tag}; j->len = 1;"
                "  npfp_enqueue(&s, j); }"
            )
        body = "\n".join(setup)
        tail = "    struct job *got = npfp_dequeue(&s);\n" if dequeue else ""
        return (
            rossl_source(client)
            + "\nvoid driver() {\n    struct sched s;\n    s.queue = NULL;\n"
            + body + "\n" + tail + "}\n"
        )

    def measure(self, client: RosslClient, queue_len: int, dequeue: bool) -> int:
        source = self.driver_source(client, queue_len, dequeue)
        typed = typecheck(parse_program(source))
        vm = VM(compile_program(typed), ScriptedEnvironment([]), TraceRecorder())
        vm.call("driver", [])
        return vm.executed

    def rossl_bounds(self, max_queue: int) -> dict[str, list[int]]:
        """Loop bounds for the scheduler helpers, parametric in the
        maximum pending-queue length."""
        return {
            # walk to the tail: ≤ max_queue-ish nodes
            "npfp_enqueue": [max_queue],
            # priority scan + unlink walk
            "npfp_dequeue": [max_queue, max_queue],
        }

    @pytest.mark.parametrize("queue_len", [1, 3, 6])
    def test_dequeue_cost_statically_bounded(
        self, two_task_client: RosslClient, queue_len: int
    ):
        typed = typecheck(parse_program(rossl_source(two_task_client)))
        analyzer = CostAnalyzer(typed, self.rossl_bounds(queue_len))
        static_dequeue = analyzer.call_cost("npfp_dequeue")
        with_dequeue = self.measure(two_task_client, queue_len, dequeue=True)
        without = self.measure(two_task_client, queue_len, dequeue=False)
        # driver tail = `struct job *got = npfp_dequeue(&s);`
        # ≈ local + &s + call + store; the call dominates.
        dynamic_dequeue = with_dequeue - without
        assert 0 < dynamic_dequeue <= static_dequeue + 3

    def test_dequeue_cost_grows_linearly_with_queue(self, two_task_client):
        costs = [
            self.measure(two_task_client, n, dequeue=True)
            - self.measure(two_task_client, n, dequeue=False)
            for n in (1, 2, 4, 8)
        ]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_enqueue_cost_statically_bounded(self, two_task_client):
        typed = typecheck(parse_program(rossl_source(two_task_client)))
        analyzer = CostAnalyzer(typed, self.rossl_bounds(8))
        static_enqueue = analyzer.call_cost("npfp_enqueue")
        # Measuring enqueue of the 8th element (longest tail walk):
        delta = self.measure(two_task_client, 8, False) - self.measure(
            two_task_client, 7, False
        )
        assert 0 < delta <= static_enqueue + 30  # + malloc/init glue

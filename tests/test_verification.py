"""Tests for the verification layer: spec monitors, online monitor, and
the bounded model checker (Thm. 3.4 stand-in)."""

from __future__ import annotations

import pytest

from repro.model.job import Job
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.env import QueueEnvironment
from repro.rossl.runtime import TeeSink, TraceRecorder
from repro.traces.markers import (
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
)
from repro.traces.protocol import ProtocolError
from repro.traces.validity import TraceValidityError
from repro.verification.model_check import explore
from repro.verification.monitor import OnlineMonitor
from repro.verification.specs import MarkerSpecMonitor, SpecViolation

J_LO = Job((1,), 0)
J_HI = Job((2,), 1)


class TestMarkerSpecs:
    def make(self, two_tasks: TaskSystem) -> MarkerSpecMonitor:
        return MarkerSpecMonitor(two_tasks.priority_of)

    def feed(self, monitor: MarkerSpecMonitor, markers) -> None:
        for m in markers:
            monitor.emit(m)

    def test_valid_run_accepted(self, two_tasks: TaskSystem):
        monitor = self.make(two_tasks)
        self.feed(
            monitor,
            [
                MReadS(), MReadE(0, J_LO),
                MReadS(), MReadE(0, None),
                MSelection(), MDispatch(J_LO), MExecution(J_LO), MCompletion(J_LO),
                MReadS(), MReadE(0, None), MSelection(), MIdling(),
            ],
        )
        assert monitor.currently_pending == set()

    def test_idling_requires_selection_before(self, two_tasks: TaskSystem):
        monitor = self.make(two_tasks)
        with pytest.raises(SpecViolation, match="idling_start after"):
            self.feed(monitor, [MReadS(), MReadE(0, None), MIdling()])

    def test_idling_requires_empty_pending(self, two_tasks: TaskSystem):
        monitor = self.make(two_tasks)
        with pytest.raises(SpecViolation, match="pending"):
            self.feed(
                monitor,
                [MReadS(), MReadE(0, J_LO), MReadS(), MReadE(0, None),
                 MSelection(), MIdling()],
            )

    def test_dispatch_requires_highest_priority(self, two_tasks: TaskSystem):
        monitor = self.make(two_tasks)
        with pytest.raises(SpecViolation, match="higher priority"):
            self.feed(
                monitor,
                [MReadS(), MReadE(0, J_LO), MReadS(), MReadE(0, J_HI),
                 MReadS(), MReadE(0, None), MSelection(), MDispatch(J_LO)],
            )

    def test_dispatch_requires_pending(self, two_tasks: TaskSystem):
        monitor = self.make(two_tasks)
        with pytest.raises(SpecViolation, match="not pending"):
            self.feed(
                monitor,
                [MReadS(), MReadE(0, None), MSelection(), MDispatch(J_LO)],
            )

    def test_read_outcome_requires_read_start(self, two_tasks: TaskSystem):
        monitor = self.make(two_tasks)
        with pytest.raises(SpecViolation, match="without read_start"):
            self.feed(monitor, [MReadE(0, None)])

    def test_execution_must_follow_its_dispatch(self, two_tasks: TaskSystem):
        monitor = self.make(two_tasks)
        with pytest.raises(SpecViolation, match="execution_start"):
            self.feed(
                monitor,
                [MReadS(), MReadE(0, J_LO), MReadS(), MReadE(0, J_HI),
                 MReadS(), MReadE(0, None),
                 MSelection(), MDispatch(J_HI), MExecution(J_LO)],
            )

    def test_fresh_id_required(self, two_tasks: TaskSystem):
        monitor = self.make(two_tasks)
        dup = Job((2,), J_LO.jid)
        with pytest.raises(SpecViolation, match="fresh"):
            self.feed(
                monitor,
                [MReadS(), MReadE(0, J_LO), MReadS(), MReadE(0, dup)],
            )


class TestOnlineMonitor:
    def test_accepts_real_run(self, two_task_client: RosslClient):
        model = two_task_client.model()
        env = QueueEnvironment([0])
        env.inject(0, (2, 1))
        env.inject(0, (1, 2))
        monitor = OnlineMonitor([0], two_task_client.tasks.priority_of)
        model.run(env, TeeSink(TraceRecorder(), monitor), max_iterations=4)
        assert monitor.markers_seen > 0

    def test_detects_protocol_violation(self, two_task_client: RosslClient):
        monitor = OnlineMonitor([0], two_task_client.tasks.priority_of)
        with pytest.raises(ProtocolError):
            monitor.emit(MSelection())

    def test_detects_validity_violation(self, two_task_client: RosslClient):
        monitor = OnlineMonitor([0], two_task_client.tasks.priority_of)
        for m in [MReadS(), MReadE(0, J_LO), MReadS(), MReadE(0, None), MSelection()]:
            monitor.emit(m)
        with pytest.raises(TraceValidityError):
            monitor.emit(MIdling())


class TestModelCheck:
    def test_python_model_clean_at_depth_five(self, two_task_client: RosslClient):
        report = explore(
            two_task_client, [(1, 9), (2, 9)], max_reads=5, implementation="python"
        )
        assert report.ok, report.violations[:1]
        assert report.scripts_explored == 3**5
        assert report.max_trace_length > 10

    def test_minic_clean_at_depth_four(self, two_task_client: RosslClient):
        report = explore(
            two_task_client, [(1, 9), (2, 9)], max_reads=4, implementation="minic"
        )
        assert report.ok, report.violations[:1]
        assert report.scripts_explored == 3**4

    def test_two_socket_minic_clean(self, two_socket_client: RosslClient):
        report = explore(
            two_socket_client, [(3, 0)], max_reads=4, implementation="minic"
        )
        assert report.ok
        assert report.scripts_explored == 2**4

    def test_summary_format(self, two_task_client: RosslClient):
        report = explore(two_task_client, [], max_reads=2, implementation="python")
        assert "OK" in report.summary()

    def test_rejects_negative_depth(self, two_task_client: RosslClient):
        with pytest.raises(ValueError):
            explore(two_task_client, [], max_reads=-1)

    def test_buggy_scheduler_caught(self, two_tasks: TaskSystem):
        """Mutation check: a scheduler that dequeues FIFO instead of by
        priority must be flagged by the exploration machinery."""
        from repro.rossl.runtime import RosslModel

        class FifoRossl(RosslModel):
            def _npfp_dequeue(self):
                if not self._queue:
                    return None
                return self._queue.pop(0)

        client = RosslClient.make(two_tasks, [0])
        from repro.verification.model_check import _run_one

        # Script: read lo then hi, then fail; FIFO dispatches lo first —
        # a validity/spec violation.
        script = ((1, 1), (2, 2), None, None, None)
        recorder_model = FifoRossl(client.sockets, client.tasks)

        from repro.rossl.env import ScriptedEnvironment
        from repro.verification.monitor import OnlineMonitor
        from repro.rossl.runtime import TeeSink, TraceRecorder

        monitor = OnlineMonitor(client.sockets, client.tasks.priority_of)
        with pytest.raises(TraceValidityError, match="highest-priority"):
            recorder_model.run(
                ScriptedEnvironment(script), TeeSink(TraceRecorder(), monitor)
            )

"""Tests for the pure-Python Rössl reference model and environments."""

from __future__ import annotations

import pytest

from repro.model.task import TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.env import HorizonReached, QueueEnvironment, ScriptedEnvironment
from repro.rossl.runtime import RosslModel, TraceRecorder, TraceState
from repro.traces.markers import (
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
)
from repro.traces.validity import tr_valid


class TestEnvironments:
    def test_queue_env_fifo_per_socket(self):
        env = QueueEnvironment([0, 1])
        env.inject(0, (1, 10))
        env.inject(0, (1, 11))
        assert env.read(0) == (1, 10)
        assert env.read(0) == (1, 11)
        assert env.read(0) is None
        assert env.read(1) is None

    def test_queue_env_rejects_unknown_socket(self):
        env = QueueEnvironment([0])
        with pytest.raises(KeyError):
            env.inject(3, (1,))

    def test_queue_env_rejects_empty(self):
        with pytest.raises(ValueError):
            QueueEnvironment([])

    def test_queue_env_counts(self):
        env = QueueEnvironment([0, 1])
        env.inject(1, (1,))
        assert env.queued(1) == 1
        assert env.total_queued == 1

    def test_scripted_env_replays_and_raises_at_end(self):
        env = ScriptedEnvironment([(1,), None])
        assert env.read(0) == (1,)
        assert env.read(0) is None
        assert env.exhausted
        with pytest.raises(HorizonReached):
            env.read(0)


class TestTraceState:
    def test_fresh_ids_are_sequential(self):
        state = TraceState()
        assert state.record_read((1,)).jid == 0
        assert state.record_read((1,)).jid == 1
        assert state.record_read((2,)).jid == 2

    def test_dispatch_resolves_fifo_per_payload(self):
        state = TraceState()
        first = state.record_read((1,))
        second = state.record_read((1,))
        assert state.resolve_dispatch((1,)) == first
        assert state.resolve_dispatch((1,)) == second

    def test_dispatch_without_read_fails(self):
        with pytest.raises(RuntimeError):
            TraceState().resolve_dispatch((1,))

    def test_outstanding_tracks_undispatched(self):
        state = TraceState()
        job = state.record_read((1,))
        assert state.outstanding() == {job}
        state.resolve_dispatch((1,))
        assert state.outstanding() == set()


class TestRosslModel:
    def test_idle_iteration_trace(self, two_task_client: RosslClient):
        model = two_task_client.model()
        env = QueueEnvironment([0])
        trace = model.run_to_trace(env, max_iterations=1)
        assert trace == [MReadS(), MReadE(0, None), MSelection(), MIdling()]

    def test_single_job_run(self, two_task_client: RosslClient):
        model = two_task_client.model()
        env = QueueEnvironment([0])
        env.inject(0, (2, 42))
        trace = model.run_to_trace(env, max_iterations=1)
        kinds = [type(m).__name__ for m in trace]
        assert kinds == [
            "MReadS", "MReadE",     # success
            "MReadS", "MReadE",     # fail: pass after a success
            "MSelection", "MDispatch", "MExecution", "MCompletion",
        ]
        job = trace[1].job
        assert job is not None and job.data == (2, 42)
        assert trace[5].job == job

    def test_fig3_priority_order(self, two_task_client: RosslClient):
        """Fig. 3: j1 (lo) then j2 (hi) read; j2 runs first, then j1."""
        model = two_task_client.model()
        env = QueueEnvironment([0])
        env.inject(0, (1, 1))  # j1: low priority
        env.inject(0, (2, 2))  # j2: high priority
        trace = model.run_to_trace(env, max_iterations=2)
        dispatched = [m.job.data for m in trace if isinstance(m, MDispatch)]
        assert dispatched == [(2, 2), (1, 1)]

    def test_traces_satisfy_protocol_and_validity(self, two_socket_client: RosslClient):
        model = two_socket_client.model()
        env = QueueEnvironment([0, 1])
        env.inject(0, (1,))
        env.inject(1, (3,))
        env.inject(0, (2,))
        trace = model.run_to_trace(env, max_iterations=5)
        assert two_socket_client.protocol().accepts(trace)
        assert tr_valid(trace, two_socket_client.tasks)

    def test_fifo_among_equal_priorities(self, two_tasks: TaskSystem):
        client = RosslClient.make(two_tasks, [0])
        model = client.model()
        env = QueueEnvironment([0])
        env.inject(0, (1, 100))
        env.inject(0, (1, 200))
        trace = model.run_to_trace(env, max_iterations=2)
        dispatched = [m.job.data for m in trace if isinstance(m, MDispatch)]
        assert dispatched == [(1, 100), (1, 200)]

    def test_round_robin_socket_order(self, two_socket_client: RosslClient):
        model = two_socket_client.model()
        env = QueueEnvironment([0, 1])
        trace = model.run_to_trace(env, max_iterations=1)
        read_socks = [m.sock for m in trace if isinstance(m, MReadE)]
        assert read_socks == [0, 1]

    def test_horizon_reached_yields_prefix(self, two_task_client: RosslClient):
        model = two_task_client.model()
        env = ScriptedEnvironment([None, None])  # two failed reads then stop
        trace = model.run_to_trace(env)
        # Each idle iteration consumes one read; the third iteration's
        # read hits the exhausted script, leaving a dangling M_ReadS.
        idle_iter = [MReadS(), MReadE(0, None), MSelection(), MIdling()]
        assert trace == idle_iter + idle_iter + [MReadS()]
        assert two_task_client.protocol().accepts(trace)

    def test_unique_ids_across_run(self, two_task_client: RosslClient):
        model = two_task_client.model()
        env = QueueEnvironment([0])
        for _ in range(5):
            env.inject(0, (1,))
        trace = model.run_to_trace(env, max_iterations=6)
        ids = [m.job.jid for m in trace if isinstance(m, MReadE) and m.job]
        assert len(ids) == 5
        assert len(set(ids)) == 5

    def test_queue_snapshot(self, two_task_client: RosslClient):
        model = two_task_client.model()
        env = ScriptedEnvironment([(1, 5), (2, 6)])
        model.run(env, TraceRecorder())
        assert [j.data for j in model.queue_snapshot] == [(1, 5), (2, 6)]

    def test_rejects_empty_socket_list(self, two_tasks: TaskSystem):
        with pytest.raises(ValueError):
            RosslModel([], two_tasks)


class TestRosslClient:
    def test_message_for_carries_type_tag(self, two_task_client: RosslClient):
        msg = two_task_client.message_for("hi", 9, 9)
        assert msg.data == (2, 9, 9)

    def test_rejects_empty_sockets(self, two_tasks: TaskSystem):
        with pytest.raises(ValueError):
            RosslClient.make(two_tasks, [])

    def test_rejects_duplicate_sockets(self, two_tasks: TaskSystem):
        with pytest.raises(ValueError):
            RosslClient.make(two_tasks, [0, 0])

    def test_task_of_job(self, two_task_client: RosslClient):
        from repro.model.job import Job

        assert two_task_client.task_of_job(Job((2, 1), 0)).name == "hi"

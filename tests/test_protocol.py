"""Tests for the scheduler-protocol STS (Fig. 5) and trace decoding."""

from __future__ import annotations

import pytest

from repro.model.job import Job
from repro.traces.basic_actions import (
    Compl,
    Disp,
    Exec,
    IdlingAction,
    Read,
    Selection,
)
from repro.traces.markers import (
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
)
from repro.traces.protocol import ProtocolError, SchedulerProtocol, tr_prot

J1 = Job((1,), 0)
J2 = Job((2,), 1)


def idle_iteration_markers(sockets):
    """One loop iteration with no arrivals: all-fail pass then idling."""
    markers = []
    for sock in sockets:
        markers += [MReadS(), MReadE(sock, None)]
    markers += [MSelection(), MIdling()]
    return markers


def run_one_job_markers(sock, job):
    """Polling pass reading ``job`` then an all-fail pass, then dispatch."""
    return [
        MReadS(),
        MReadE(sock, job),
        MReadS(),
        MReadE(sock, None),
        MSelection(),
        MDispatch(job),
        MExecution(job),
        MCompletion(job),
    ]


class TestConstruction:
    def test_rejects_empty_socket_list(self):
        with pytest.raises(ValueError):
            SchedulerProtocol([])

    def test_rejects_duplicate_sockets(self):
        with pytest.raises(ValueError):
            SchedulerProtocol([0, 0])


class TestAcceptance:
    def test_empty_trace_accepted(self):
        assert tr_prot([], [0])

    def test_idle_iteration_accepted(self):
        assert tr_prot(idle_iteration_markers([0]), [0])

    def test_one_job_run_accepted(self):
        assert tr_prot(run_one_job_markers(0, J1), [0])

    def test_fig3_example_run_accepted(self):
        """The Fig. 3 run: j1 read, j2 read (arrived during j1's read),
        empty pass, j2 (higher priority) dispatched, then j1."""
        trace = [
            MReadS(), MReadE(0, J1),
            MReadS(), MReadE(0, J2),
            MReadS(), MReadE(0, None),
            MSelection(), MDispatch(J2), MExecution(J2), MCompletion(J2),
            MReadS(), MReadE(0, None),
            MSelection(), MDispatch(J1), MExecution(J1), MCompletion(J1),
            MReadS(), MReadE(0, None),
            MSelection(), MIdling(),
        ]
        assert tr_prot(trace, [0])

    def test_two_socket_pass_order_enforced(self):
        proto = SchedulerProtocol([0, 1])
        good = [MReadS(), MReadE(0, None), MReadS(), MReadE(1, None), MSelection(), MIdling()]
        assert proto.accepts(good)
        bad = [MReadS(), MReadE(1, None)]  # socket 1 polled first
        assert not proto.accepts(bad)

    def test_pass_with_success_forces_another_pass(self):
        # After a pass with a success, M_Selection is premature.
        trace = [MReadS(), MReadE(0, J1), MSelection()]
        assert not tr_prot(trace, [0])

    def test_all_fail_pass_forces_selection(self):
        # After an all-fail pass, another read is a violation.
        trace = [MReadS(), MReadE(0, None), MReadS()]
        assert not tr_prot(trace, [0])

    def test_prefixes_of_accepted_traces_accepted(self):
        trace = run_one_job_markers(0, J1)
        proto = SchedulerProtocol([0])
        for cut in range(len(trace) + 1):
            assert proto.accepts(trace[:cut])

    def test_initial_marker_must_be_read_start(self):
        assert not tr_prot([MSelection()], [0])
        assert not tr_prot([MIdling()], [0])
        assert not tr_prot([MReadE(0, None)], [0])


class TestViolations:
    def test_dispatch_must_match_execution(self):
        trace = [
            MReadS(), MReadE(0, J1),
            MReadS(), MReadE(0, None),
            MSelection(), MDispatch(J1), MExecution(J2),
        ]
        assert not tr_prot(trace, [0])

    def test_execution_must_match_completion(self):
        trace = run_one_job_markers(0, J1)[:-1] + [MCompletion(J2)]
        assert not tr_prot(trace, [0])

    def test_read_end_without_start_rejected(self):
        trace = [MReadS(), MReadE(0, None), MReadE(0, None)]
        assert not tr_prot(trace, [0])

    def test_error_reports_index_and_state(self):
        proto = SchedulerProtocol([0])
        with pytest.raises(ProtocolError) as exc_info:
            proto.check([MReadS(), MSelection()])
        assert exc_info.value.index == 1

    def test_wrong_socket_in_read_end(self):
        proto = SchedulerProtocol([0, 1])
        with pytest.raises(ProtocolError, match="socket"):
            proto.check([MReadS(), MReadE(5, None)])


class TestDecoding:
    def test_idle_iteration_actions(self):
        proto = SchedulerProtocol([0])
        actions = proto.run(idle_iteration_markers([0]))
        assert [a.action for a in actions] == [
            Read(0, None),
            Selection(None),
            IdlingAction(),
        ]

    def test_job_run_actions_and_spans(self):
        proto = SchedulerProtocol([0])
        actions = proto.run(run_one_job_markers(0, J1))
        assert [a.action for a in actions] == [
            Read(0, J1),
            Read(0, None),
            Selection(J1),
            Disp(J1),
            Exec(J1),
            Compl(J1),
        ]
        # Read actions span two marker intervals, others one.
        assert (actions[0].start, actions[0].end) == (0, 2)
        assert (actions[1].start, actions[1].end) == (2, 4)
        assert (actions[2].start, actions[2].end) == (4, 5)
        assert (actions[3].start, actions[3].end) == (5, 6)
        assert (actions[4].start, actions[4].end) == (6, 7)
        assert (actions[5].start, actions[5].end) == (7, 8)

    def test_spans_are_contiguous_and_cover_trace(self):
        proto = SchedulerProtocol([0])
        trace = run_one_job_markers(0, J1) + idle_iteration_markers([0])
        actions = proto.run(trace)
        assert actions[0].start == 0
        for prev, cur in zip(actions, actions[1:]):
            assert prev.end == cur.start
        assert actions[-1].end == len(trace)

    def test_trailing_selection_is_omitted(self):
        trace = [MReadS(), MReadE(0, None), MSelection()]
        actions = SchedulerProtocol([0]).run(trace)
        assert [a.action for a in actions] == [Read(0, None)]

    def test_rejected_trace_raises_in_run(self):
        with pytest.raises(ProtocolError):
            SchedulerProtocol([0]).run([MSelection()])


class TestEnabledMarkers:
    def test_descriptions_for_each_state(self):
        proto = SchedulerProtocol([0])
        state = proto.initial_state()
        assert proto.enabled_markers(state) == "M_ReadS"
        trace = run_one_job_markers(0, J1)
        descriptions = []
        for i, m in enumerate(trace):
            state, _ = proto.step(state, m, i)
            descriptions.append(proto.enabled_markers(state))
        assert "M_Selection" in descriptions
        assert any("M_Dispatch" in d for d in descriptions)

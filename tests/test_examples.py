"""Smoke tests: every shipped example must run to completion.

The examples are executable documentation; each contains assertions of
its own (bounds hold, violations detected, model checks clean), so
running them is a meaningful end-to-end test of the public API.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "iot_sensor_node.py",
        "verify_rossl.py",
        "wcet_toolchain.py",
        "edf_deadlines.py",
    ],
)
def test_example_runs(name: str, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


@pytest.mark.slow
def test_ros2_executor_runs(capsys):
    # The one-second (µs-granularity) simulation takes a few seconds.
    run_example("ros2_executor.py")
    assert "jitter" in capsys.readouterr().out


def test_all_examples_are_covered():
    listed = {
        "quickstart.py", "iot_sensor_node.py", "verify_rossl.py",
        "wcet_toolchain.py", "edf_deadlines.py", "ros2_executor.py",
    }
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert present == listed

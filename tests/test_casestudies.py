"""Tests for the canonical case-study deployments."""

from __future__ import annotations

import pytest

from repro.casestudies import (
    ALL_CASE_STUDIES,
    edf_deployment,
    embedded_deployment,
    fig3_deployment,
    robot_deployment,
)
from repro.edf import edf_analysis
from repro.rta.npfp import analyse


class TestFactories:
    @pytest.mark.parametrize("factory", ALL_CASE_STUDIES,
                             ids=lambda f: f.__name__)
    def test_builds_and_has_curves(self, factory):
        case = factory()
        assert case.client.tasks.has_curves
        assert case.name

    def test_fig3_priorities(self):
        case = fig3_deployment()
        assert case.client.tasks.by_name("t2").priority > \
            case.client.tasks.by_name("t1").priority

    def test_robot_is_schedulable_with_negligible_jitter(self):
        case = robot_deployment()
        analysis = analyse(case.client, case.wcet)
        assert analysis.schedulable
        worst = max(
            analysis.response_time_bound(t.name) for t in case.client.tasks
        )
        assert analysis.jitter.bound / worst < 0.01

    def test_embedded_is_schedulable_but_overhead_dominated(self):
        from repro.rta.baselines import ideal_npfp_bound

        case = embedded_deployment()
        analysis = analyse(case.client, case.wcet)
        assert analysis.schedulable
        aware = analysis.response_time_bound("sample")
        naive = ideal_npfp_bound(case.client, "sample")
        assert aware > 2 * naive  # overheads dominate the bound

    def test_edf_node_schedulable(self):
        case = edf_deployment()
        assert case.client.policy == "edf"
        assert edf_analysis(case.client, case.wcet).schedulable


class TestVmOptimizedTiming:
    def test_optimized_build_same_traces_fewer_instructions(self):
        from repro.rossl.vmtiming import simulate_vm
        from repro.timing.arrivals import Arrival, ArrivalSequence

        case = fig3_deployment()
        arrivals = ArrivalSequence(
            [Arrival(100, 0, (1, 1)), Arrival(100, 0, (2, 2))]
        )
        plain = simulate_vm(case.client, arrivals, 40_000)
        optimized = simulate_vm(case.client, arrivals, 40_000, optimize=True)
        # The faster build fits MORE scheduler iterations into the same
        # instruction budget…
        assert len(optimized.timed_trace) >= len(plain.timed_trace)
        # …and on the common identical prefix, every marker lands at an
        # instruction count no later than in the plain build.  (Past the
        # prefix the runs may diverge: arrival visibility is clocked in
        # instructions, which the optimizer compresses.)
        for p_marker, o_marker, p_ts, o_ts in zip(
            plain.timed_trace.trace, optimized.timed_trace.trace,
            plain.timed_trace.ts, optimized.timed_trace.ts,
        ):
            if p_marker != o_marker:
                break
            assert o_ts <= p_ts
        assert optimized.timed_trace.ts[0] <= plain.timed_trace.ts[0]

"""Property tests for the fault injectors (hypothesis).

The contract under test: *every* mutation an injector can produce —
any site, any rng seed — is rejected by the checker its taxonomy entry
names.  The example-based tests in test_faults.py pin one site per
injector; here hypothesis sweeps the space.

The baseline trace is simulated once at module scope: the properties
quantify over injection parameters, not workloads, and re-simulating
per example would dominate the runtime.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultPlan, run_fault_campaign
from repro.faults import inject
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.sim.simulator import UniformDurations, simulate
from repro.timing.wcet import WcetError, WcetModel, check_wcet_respected
from repro.traces.protocol import ProtocolError
from repro.traces.validity import TraceValidityError, check_tr_valid

WCET = WcetModel(
    failed_read=2, success_read=4, selection=2, dispatch=2, completion=2,
    idling=2,
)

TASKS = TaskSystem(
    [
        Task(name="control", priority=3, wcet=1000, type_tag=1),
        Task(name="lidar", priority=2, wcet=8000, type_tag=2),
        Task(name="telemetry", priority=1, wcet=3000, type_tag=3),
    ]
)
CLIENT = RosslClient.make(TASKS, [0, 1])

from repro.faults import baseline_workload  # noqa: E402

_BASELINE = simulate(
    CLIENT, baseline_workload(CLIENT, 20_000), WCET, 20_000,
    durations=UniformDurations(random.Random(7)),
)
TRACE = list(_BASELINE.timed_trace.trace)

PROTOCOL_MUTATORS = [
    inject.drop_marker,
    inject.duplicate_marker,
    inject.reorder_markers,
    inject.corrupt_marker,
]
VALIDITY_MUTATORS = [inject.duplicate_job_id, inject.phantom_idle]

sites = st.integers(min_value=0, max_value=10_000)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@pytest.mark.parametrize(
    "mutator", PROTOCOL_MUTATORS, ids=lambda m: m.__name__
)
@given(site=sites, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_protocol_mutations_always_rejected(mutator, site, seed):
    mutated = mutator(TRACE, random.Random(seed), site=site)
    assert mutated != TRACE
    with pytest.raises(ProtocolError):
        CLIENT.protocol().check(mutated)


@pytest.mark.parametrize(
    "mutator", VALIDITY_MUTATORS, ids=lambda m: m.__name__
)
@given(site=sites, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_validity_mutations_are_stealthy_but_rejected(mutator, site, seed):
    """These faults are protocol-clean by construction — only the
    validity clauses catch them."""
    mutated = mutator(TRACE, random.Random(seed), site=site)
    assert mutated != TRACE
    CLIENT.protocol().check(mutated)
    with pytest.raises(TraceValidityError):
        check_tr_valid(mutated, CLIENT.priority_fn())


@given(site=sites, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_wcet_overrun_always_flagged(site, seed):
    mutated = inject.wcet_overrun(
        _BASELINE.timed_trace, CLIENT, WCET, random.Random(seed), site=site
    )
    with pytest.raises(WcetError):
        check_wcet_respected(mutated, CLIENT.tasks, WCET)


@given(site=sites, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_mutators_are_deterministic_in_their_seed(site, seed):
    for mutator in PROTOCOL_MUTATORS + VALIDITY_MUTATORS:
        once = mutator(TRACE, random.Random(seed), site=site)
        again = mutator(TRACE, random.Random(seed), site=site)
        assert once == again


@given(seed=st.integers(min_value=0, max_value=1_000))
@settings(max_examples=5, deadline=None)
def test_zero_fault_campaign_is_byte_identical(seed):
    plan = FaultPlan(seed=seed)
    first = run_fault_campaign(plan, CLIENT, WCET, horizon=10_000)
    second = run_fault_campaign(plan, CLIENT, WCET, horizon=10_000)
    assert first.to_json() == second.to_json()
    assert first.baseline_clean
    assert first.ok

"""Tests for the ProKOS-style schedule extension (§6)."""

from __future__ import annotations

import pytest

from repro.model.task import TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import SporadicCurve
from repro.schedule.extend import (
    extend_with_pending_completions,
    pending_at_horizon,
    service_received,
)
from repro.schedule.states import Executes, Idle
from repro.sim.simulator import WcetDurations, simulate
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import TimedTrace
from repro.timing.wcet import WcetModel

WCET = WcetModel(
    failed_read=3, success_read=5, selection=2, dispatch=2, completion=2, idling=3
)


def curved(two_tasks: TaskSystem):
    curves = {"lo": SporadicCurve(100), "hi": SporadicCurve(100)}
    return RosslClient.make(two_tasks.with_curves(curves), [0])


def cut_run(client, arrivals, horizon, cut_after_markers):
    """Simulate and truncate the observation after N markers."""
    result = simulate(client, arrivals, WCET, horizon,
                      durations=WcetDurations())
    timed = result.timed_trace
    cut = min(cut_after_markers, len(timed))
    return result, TimedTrace.make(
        timed.trace[:cut], timed.ts[:cut],
        timed.ts[cut] if cut < len(timed) else timed.horizon,
    )


class TestPendingDetection:
    def test_no_pending_on_complete_run(self, two_tasks):
        client = curved(two_tasks)
        arrivals = ArrivalSequence([Arrival(1, 0, (2, 1))])
        result = simulate(client, arrivals, WCET, 300,
                          durations=WcetDurations())
        assert pending_at_horizon(result.timed_trace) == []

    def test_cutoff_job_is_pending(self, two_tasks):
        client = curved(two_tasks)
        arrivals = ArrivalSequence([Arrival(1, 0, (2, 1)), Arrival(1, 0, (1, 2))])
        # Cut just after both reads and the first dispatch.
        _, prefix = cut_run(client, arrivals, 400, cut_after_markers=8)
        pending = pending_at_horizon(prefix)
        assert len(pending) >= 1

    def test_service_received(self, two_tasks):
        client = curved(two_tasks)
        arrivals = ArrivalSequence([Arrival(1, 0, (2, 1))])
        result = simulate(client, arrivals, WCET, 300,
                          durations=WcetDurations())
        job = next(iter(result.timed_trace.completions()))
        # Full WCET-timed execution: service equals hi's WCET (C=5).
        assert service_received(result.timed_trace, job) == 5


class TestExtension:
    def test_pending_jobs_complete_in_extension(self, two_tasks):
        client = curved(two_tasks)
        arrivals = ArrivalSequence(
            [Arrival(1, 0, (2, 1)), Arrival(1, 0, (1, 2))]
        )
        from repro.schedule.conversion import convert

        _, prefix = cut_run(client, arrivals, 400, cut_after_markers=8)
        schedule = convert(prefix, client.sockets)
        total = extend_with_pending_completions(
            schedule, prefix, client.tasks
        )
        for job in pending_at_horizon(prefix):
            served = total.service_in(job, 0, 10_000)
            assert served >= 1
        # Beyond the extension: idle forever.
        assert total.state_at(100_000) == Idle()

    def test_extension_preserves_prefix(self, two_tasks):
        client = curved(two_tasks)
        arrivals = ArrivalSequence([Arrival(1, 0, (2, 1)), Arrival(1, 0, (1, 2))])
        from repro.schedule.conversion import convert

        _, prefix = cut_run(client, arrivals, 400, cut_after_markers=8)
        schedule = convert(prefix, client.sockets)
        total = extend_with_pending_completions(schedule, prefix, client.tasks)
        for t in range(schedule.start, schedule.end):
            assert total.state_at(t) == schedule.state_at(t)

    def test_priority_order_in_extension(self, two_tasks):
        client = curved(two_tasks)
        # Two unserved jobs: hi must be completed first in the extension.
        arrivals = ArrivalSequence([Arrival(1, 0, (1, 1)), Arrival(1, 0, (2, 2))])
        from repro.schedule.conversion import convert

        _, prefix = cut_run(client, arrivals, 400, cut_after_markers=5)
        pending = pending_at_horizon(prefix)
        assert len(pending) == 2
        schedule = convert(prefix, client.sockets)
        total = extend_with_pending_completions(schedule, prefix, client.tasks)
        appended = [
            s for s in total.finite.segments if s.start >= schedule.end
        ]
        assert [client.tasks.msg_to_task(s.state.job.data).name
                for s in appended if isinstance(s.state, Executes)] == [
            "hi", "lo",
        ]

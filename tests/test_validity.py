"""Tests for tr_valid (Def. 3.2) and the pending-jobs derived sets."""

from __future__ import annotations

import pytest

from repro.model.job import Job
from repro.model.task import TaskSystem
from repro.traces.markers import (
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
)
from repro.traces.pending import dispatched_jobs, pending_jobs, read_jobs
from repro.traces.validity import TraceValidityError, check_tr_valid, tr_valid

LO = (1,)  # priority 1 under the two_tasks fixture
HI = (2,)  # priority 2

J_LO = Job(LO, 0)
J_HI = Job(HI, 1)


class TestPendingSets:
    def test_empty_trace(self):
        assert read_jobs([]) == set()
        assert pending_jobs([]) == set()

    def test_read_then_pending(self):
        trace = [MReadS(), MReadE(0, J_LO)]
        assert read_jobs(trace) == {J_LO}
        assert pending_jobs(trace) == {J_LO}

    def test_dispatch_removes_from_pending(self):
        trace = [MReadS(), MReadE(0, J_LO), MDispatch(J_LO)]
        assert pending_jobs(trace) == set()
        assert dispatched_jobs(trace) == {J_LO}
        assert read_jobs(trace) == {J_LO}

    def test_index_is_strict(self):
        trace = [MReadS(), MReadE(0, J_LO)]
        assert pending_jobs(trace, 1) == set()
        assert pending_jobs(trace, 2) == {J_LO}

    def test_failed_reads_do_not_count(self):
        assert read_jobs([MReadS(), MReadE(0, None)]) == set()


class TestTrValid:
    def test_empty_trace_valid(self, two_tasks: TaskSystem):
        assert tr_valid([], two_tasks)

    def test_highest_priority_dispatch_ok(self, two_tasks: TaskSystem):
        trace = [
            MReadS(), MReadE(0, J_LO),
            MReadS(), MReadE(0, J_HI),
            MReadS(), MReadE(0, None),
            MSelection(), MDispatch(J_HI), MExecution(J_HI), MCompletion(J_HI),
        ]
        assert tr_valid(trace, two_tasks)

    def test_low_priority_dispatch_rejected(self, two_tasks: TaskSystem):
        trace = [
            MReadS(), MReadE(0, J_LO),
            MReadS(), MReadE(0, J_HI),
            MSelection(), MDispatch(J_LO),
        ]
        with pytest.raises(TraceValidityError) as exc_info:
            check_tr_valid(trace, two_tasks)
        assert exc_info.value.clause == "highest-priority"

    def test_equal_priority_dispatch_ok(self, two_tasks: TaskSystem):
        other_lo = Job(LO, 7)
        trace = [
            MReadS(), MReadE(0, J_LO),
            MReadS(), MReadE(0, other_lo),
            MSelection(), MDispatch(other_lo),
        ]
        assert tr_valid(trace, two_tasks)

    def test_dispatch_of_unread_job_rejected(self, two_tasks: TaskSystem):
        trace = [MSelection(), MDispatch(J_LO)]
        with pytest.raises(TraceValidityError, match="not pending"):
            check_tr_valid(trace, two_tasks)

    def test_dispatch_of_already_dispatched_job_rejected(self, two_tasks: TaskSystem):
        trace = [
            MReadS(), MReadE(0, J_LO),
            MDispatch(J_LO), MDispatch(J_LO),
        ]
        assert not tr_valid(trace, two_tasks)

    def test_idling_with_pending_job_rejected(self, two_tasks: TaskSystem):
        trace = [MReadS(), MReadE(0, J_LO), MSelection(), MIdling()]
        with pytest.raises(TraceValidityError) as exc_info:
            check_tr_valid(trace, two_tasks)
        assert exc_info.value.clause == "idle-implies-empty"

    def test_idling_after_dispatch_ok(self, two_tasks: TaskSystem):
        trace = [
            MReadS(), MReadE(0, J_LO),
            MDispatch(J_LO),
            MIdling(),
        ]
        assert tr_valid(trace, two_tasks)

    def test_duplicate_job_id_rejected(self, two_tasks: TaskSystem):
        dup = Job(HI, J_LO.jid)
        trace = [MReadS(), MReadE(0, J_LO), MReadS(), MReadE(0, dup)]
        with pytest.raises(TraceValidityError) as exc_info:
            check_tr_valid(trace, two_tasks)
        assert exc_info.value.clause == "unique-ids"

    def test_same_payload_distinct_ids_ok(self, two_tasks: TaskSystem):
        trace = [MReadS(), MReadE(0, Job(LO, 0)), MReadS(), MReadE(0, Job(LO, 1))]
        assert tr_valid(trace, two_tasks)

    def test_accepts_raw_priority_function(self):
        trace = [MReadS(), MReadE(0, J_LO), MSelection(), MDispatch(J_LO)]
        assert tr_valid(trace, lambda data: 0)

    def test_error_reports_marker_index(self, two_tasks: TaskSystem):
        trace = [MReadS(), MReadE(0, J_LO), MSelection(), MIdling()]
        with pytest.raises(TraceValidityError) as exc_info:
            check_tr_valid(trace, two_tasks)
        assert exc_info.value.index == 3

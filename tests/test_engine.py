"""Tests for the engine registry (`repro.engine`).

The registry is the single construction point for every way this
reproduction can execute the scheduler — the Python reference model,
the MiniC interpreter, and the two bytecode VMs.  These tests pin down
the registry contract: every canonical name round-trips, aliases
resolve, unknown names fail with a message naming the alternatives,
capability flags match the engines, and all engines emit the same
marker trace on the same read-outcome script.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import (
    EngineCapabilities,
    MiniCInterpEngine,
    PythonModelEngine,
    RunStats,
    SchedulerEngine,
    UnknownEngineError,
    VmEngine,
    as_engine,
    create_engine,
    engine_capabilities,
    engine_names,
    resolve_engine_name,
)
from repro.engine.registry import engine_aliases
from repro.rossl.env import ScriptedEnvironment


def make_script(client, length=120, seed=11):
    rng = random.Random(seed)
    tags = [t.type_tag for t in client.tasks.tasks]
    return [
        None if rng.random() < 0.6 else (rng.choice(tags), rng.randrange(40))
        for _ in range(length)
    ]


class TestRegistryNames:
    def test_canonical_names(self):
        assert set(engine_names()) == {
            "python", "interp", "vm", "vm-opt", "codegen",
        }

    def test_every_name_round_trips(self, two_task_client):
        for name in engine_names():
            engine = create_engine(name, two_task_client)
            assert isinstance(engine, SchedulerEngine)
            assert engine.name == name
            assert resolve_engine_name(name) == name
            assert engine.client is two_task_client

    def test_aliases_resolve_to_canonical(self):
        for alias, canonical in engine_aliases().items():
            assert resolve_engine_name(alias) == canonical
            assert canonical in engine_names()

    def test_minic_alias(self, two_task_client):
        engine = create_engine("minic", two_task_client)
        assert isinstance(engine, MiniCInterpEngine)
        assert engine.name == "interp"

    def test_unknown_name_rejected(self):
        with pytest.raises(UnknownEngineError, match="available engines"):
            resolve_engine_name("qemu")

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(UnknownEngineError) as info:
            create_engine("jit", None)
        message = str(info.value)
        for name in engine_names():
            assert name in message

    def test_unknown_engine_error_is_value_error(self):
        with pytest.raises(ValueError):
            resolve_engine_name("nope")


class TestCapabilities:
    def test_capability_table(self):
        assert engine_capabilities("python") == EngineCapabilities(
            vm_timing=False, model_check=True
        )
        assert engine_capabilities("interp") == EngineCapabilities(
            vm_timing=False, model_check=True
        )
        for name in ("vm", "vm-opt", "codegen"):
            assert engine_capabilities(name) == EngineCapabilities(
                vm_timing=True, model_check=True
            )

    def test_capabilities_without_construction(self):
        # Must not require a client: capability queries are cheap.
        assert engine_capabilities("minic").model_check

    def test_built_engine_matches_registry(self, two_task_client):
        for name in engine_names():
            engine = create_engine(name, two_task_client)
            assert engine.capabilities == engine_capabilities(name)


class TestAsEngine:
    def test_string_coercion(self, two_task_client):
        assert isinstance(as_engine("python", two_task_client), PythonModelEngine)
        assert isinstance(as_engine("vm-opt", two_task_client), VmEngine)

    def test_instance_passthrough(self, two_task_client):
        engine = create_engine("interp", two_task_client)
        assert as_engine(engine, two_task_client) is engine

    def test_wrong_client_rejected(self, two_task_client, two_socket_client):
        engine = create_engine("python", two_task_client)
        with pytest.raises(ValueError, match="different client"):
            as_engine(engine, two_socket_client)


class TestTraceAgreement:
    def test_all_engines_emit_identical_traces(self, two_task_client):
        script = make_script(two_task_client)
        traces = {}
        for name in engine_names():
            engine = create_engine(name, two_task_client)
            traces[name] = engine.run_to_trace(ScriptedEnvironment(list(script)))
        reference = traces["python"]
        assert reference  # non-trivial run
        for name, trace in traces.items():
            assert trace == reference, f"engine {name} diverged"

    def test_vm_reports_instruction_counts(self, two_task_client):
        from repro.rossl.runtime import TraceRecorder

        script = make_script(two_task_client, length=60)
        plain = create_engine("vm", two_task_client)
        opt = create_engine("vm-opt", two_task_client)
        stats_plain = plain.run(ScriptedEnvironment(list(script)), TraceRecorder())
        stats_opt = opt.run(ScriptedEnvironment(list(script)), TraceRecorder())
        assert stats_plain.instructions is not None
        assert stats_opt.instructions is not None
        assert stats_opt.instructions <= stats_plain.instructions

    def test_python_engine_reports_no_instructions(self, two_task_client):
        from repro.rossl.runtime import TraceRecorder

        engine = create_engine("python", two_task_client)
        stats = engine.run(
            ScriptedEnvironment(make_script(two_task_client, length=30)),
            TraceRecorder(),
        )
        assert stats == RunStats(instructions=None)

    def test_engine_reusable_across_runs(self, two_task_client):
        # Compiled artifacts are shared; scheduler state must not leak.
        engine = create_engine("vm", two_task_client)
        script = make_script(two_task_client, length=80)
        first = engine.run_to_trace(ScriptedEnvironment(list(script)))
        second = engine.run_to_trace(ScriptedEnvironment(list(script)))
        assert first == second


class TestRegisterEngine:
    def test_register_and_unregister_custom_engine(self, two_task_client):
        from repro.engine import register_engine
        from repro.engine.registry import _ALIASES, _CAPABILITIES, _FACTORIES

        caps = EngineCapabilities(vm_timing=False, model_check=False)

        def factory(client, msg_cap):
            engine = PythonModelEngine(client, msg_cap)
            engine.name = "custom"
            return engine

        register_engine("custom", factory, caps, aliases=("cst",))
        try:
            assert "custom" in engine_names()
            assert resolve_engine_name("cst") == "custom"
            assert engine_capabilities("custom") == caps
            engine = create_engine("custom", two_task_client)
            assert engine.name == "custom"
        finally:
            _FACTORIES.pop("custom")
            _CAPABILITIES.pop("custom")
            _ALIASES.pop("cst")
        with pytest.raises(UnknownEngineError):
            resolve_engine_name("custom")


class TestDeploymentEngineField:
    def test_spec_engine_key_parsed(self, tmp_path):
        import json

        from repro.config import load_deployment

        spec = {
            "tasks": [
                {
                    "name": "a",
                    "priority": 1,
                    "wcet": 5,
                    "type_tag": 1,
                    "curve": {"kind": "sporadic", "min_separation": 100},
                }
            ],
            "sockets": [0],
            "wcet": {
                "failed_read": 2,
                "success_read": 2,
                "selection": 1,
                "dispatch": 1,
                "completion": 1,
                "idling": 1,
            },
            "engine": "minic",
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        deployment = load_deployment(str(path))
        assert deployment.engine == "interp"  # alias canonicalized

    def test_spec_unknown_engine_rejected(self, tmp_path):
        import json

        from repro.config import SpecError, load_deployment

        spec = {
            "tasks": [
                {
                    "name": "a",
                    "priority": 1,
                    "wcet": 5,
                    "type_tag": 1,
                    "curve": {"kind": "sporadic", "min_separation": 100},
                }
            ],
            "sockets": [0],
            "wcet": {
                "failed_read": 2,
                "success_read": 2,
                "selection": 1,
                "dispatch": 1,
                "completion": 1,
                "idling": 1,
            },
            "engine": "turbo",
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        with pytest.raises(SpecError, match="engine"):
            load_deployment(str(path))

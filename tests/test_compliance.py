"""Tests for the §4.3 jitter lemma checker: every job's violation window
fits within J, across crafted scenarios and randomized campaigns, for
both scheduling policies."""

from __future__ import annotations

import random

import pytest

from repro.edf import edf_priority, with_deadline_payloads
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.compliance import (
    ComplianceError,
    check_jitter_compliance,
    needed_jitters,
)
from repro.rta.curves import SporadicCurve
from repro.rta.jitter import jitter_bound
from repro.sim.simulator import UniformDurations, WcetDurations, simulate
from repro.sim.workloads import generate_arrivals
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.wcet import WcetModel

WCET = WcetModel(
    failed_read=3, success_read=5, selection=2, dispatch=2, completion=2, idling=3
)


@pytest.fixture
def client(two_tasks: TaskSystem) -> RosslClient:
    curves = {"lo": SporadicCurve(150), "hi": SporadicCurve(100)}
    return RosslClient.make(two_tasks.with_curves(curves), [0])


def compliance_of(client, arrivals, horizon=400, durations=None):
    result = simulate(client, arrivals, WCET, horizon=horizon,
                      durations=durations or WcetDurations())
    bound = jitter_bound(WCET, client.num_sockets).bound
    return check_jitter_compliance(
        result.timed_trace,
        arrivals,
        result.schedule(),
        client.priority_fn(),
        bound,
    )


class TestCraftedScenarios:
    def test_no_violation_for_promptly_read_job(self, client):
        # Arrives while the scheduler idles *before* the poll that reads
        # it — needs only the idle-window jitter, well within J.
        arrivals = ArrivalSequence([Arrival(1, 0, (2, 1))])
        report = compliance_of(client, arrivals)
        assert report.ok

    def test_fig7a_overlooked_high_priority(self, client):
        # lo arrives first and is selected; hi lands right after the
        # all-fail pass (t=8) — overlooked at the dispatch, needing
        # positive jitter, but within J.
        arrivals = ArrivalSequence([Arrival(1, 0, (1, 1)), Arrival(8, 0, (2, 2))])
        report = compliance_of(client, arrivals)
        assert report.ok
        assert report.worst > 0, "the scenario must exhibit a violation"

    def test_fig7b_idle_arrival(self, client):
        # Arrival mid-idle-iteration: work conservation violated for the
        # rest of the idle window.
        arrivals = ArrivalSequence([Arrival(4, 0, (2, 1))])
        report = compliance_of(client, arrivals)
        assert report.ok
        assert report.worst > 0

    def test_needed_jitter_zero_when_nothing_overlooked(self, client):
        report = compliance_of(client, ArrivalSequence([]))
        assert report.needed_jitter == {}
        assert report.worst == 0

    def test_violation_detected_with_artificially_small_bound(self, client):
        arrivals = ArrivalSequence([Arrival(4, 0, (2, 1))])
        result = simulate(client, arrivals, WCET, horizon=400,
                          durations=WcetDurations())
        with pytest.raises(ComplianceError):
            check_jitter_compliance(
                result.timed_trace, arrivals, result.schedule(),
                client.priority_fn(), jitter_bound=0,
            )


class TestCampaigns:
    @pytest.mark.parametrize("seed", range(10))
    def test_npfp_lemma_holds_randomized(self, seed: int, client):
        rng = random.Random(seed)
        arrivals = generate_arrivals(client, horizon=600, rng=rng, intensity=1.3)
        policy = WcetDurations() if seed % 2 == 0 else UniformDurations(rng)
        report = compliance_of(client, arrivals, horizon=1_200, durations=policy)
        assert report.ok, (
            f"seed {seed}: needed jitter {report.worst} > J {report.bound}"
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_edf_lemma_holds_randomized(self, seed: int):
        tasks = TaskSystem(
            [
                Task(name="a", priority=0, wcet=10, type_tag=1, deadline=300),
                Task(name="b", priority=0, wcet=15, type_tag=2, deadline=500),
            ],
            {"a": SporadicCurve(150), "b": SporadicCurve(200)},
        )
        client = RosslClient.make(tasks, [0], policy="edf")
        rng = random.Random(seed)
        base = generate_arrivals(client, horizon=600, rng=rng, intensity=1.2)
        arrivals = with_deadline_payloads(base, client.tasks)
        result = simulate(client, arrivals, WCET, horizon=1_500,
                          durations=WcetDurations())
        bound = jitter_bound(WCET, client.num_sockets).bound
        report = check_jitter_compliance(
            result.timed_trace, arrivals, result.schedule(),
            edf_priority, bound,
        )
        assert report.ok

    @pytest.mark.parametrize("sockets", [1, 2, 3])
    def test_lemma_holds_across_socket_counts(self, sockets: int, three_tasks):
        curves = {n: SporadicCurve(200) for n in ("low", "mid", "high")}
        client = RosslClient.make(
            three_tasks.with_curves(curves), list(range(sockets))
        )
        rng = random.Random(sockets)
        arrivals = generate_arrivals(client, horizon=500, rng=rng, intensity=1.2)
        result = simulate(client, arrivals, WCET, horizon=1_200,
                          durations=WcetDurations())
        bound = jitter_bound(WCET, sockets).bound
        report = check_jitter_compliance(
            result.timed_trace, arrivals, result.schedule(),
            client.priority_fn(), bound,
        )
        assert report.ok

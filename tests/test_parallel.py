"""Tests for the parallel campaign runner (`repro.analysis.parallel`).

The headline property: a campaign with ``jobs=N`` is *bit-identical* to
the serial campaign with the same ``seed_root`` — same table, same
observed worsts, same violation list — because every run derives its
randomness from ``seed_root + run_index`` alone.  The rest pins down
the plumbing: chunk splitting, the serial fallback, sweep parity, and
the parallel model-checking explorer.
"""

from __future__ import annotations

import pytest

from repro.analysis.adequacy import (
    adequacy_run,
    merge_outcomes,
    run_adequacy_campaign,
)
from repro.analysis.campaigns import sweep
from repro.analysis.parallel import (
    CHUNKS_PER_JOB,
    fork_available,
    parallel_sweep,
    run_campaign_parallel,
    split_chunks,
)
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import SporadicCurve
from repro.rta.npfp import analyse
from repro.timing.wcet import WcetModel

WCET = WcetModel(
    failed_read=2, success_read=2, selection=1, dispatch=1, completion=1, idling=1
)


def light_client() -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="slow", priority=1, wcet=20, type_tag=1),
            Task(name="fast", priority=2, wcet=5, type_tag=2),
        ],
        {"slow": SporadicCurve(400), "fast": SporadicCurve(150)},
    )
    return RosslClient.make(tasks, [0])


class TestSplitChunks:
    def test_empty(self):
        assert split_chunks([], 4) == []

    def test_covers_all_items_in_order(self):
        items = list(range(37))
        chunks = split_chunks(items, 4)
        assert [x for chunk in chunks for x in chunk] == items

    def test_chunk_count_scales_with_jobs(self):
        chunks = split_chunks(list(range(100)), 4)
        assert len(chunks) <= 4 * CHUNKS_PER_JOB
        assert len(chunks) > 1

    def test_single_item(self):
        assert split_chunks([7], 8) == [[7]]


class TestDeterminism:
    """The acceptance-criteria property: jobs=1 and jobs=4 agree bit
    for bit on the same seed_root."""

    def test_serial_vs_parallel_identical_tables(self):
        client = light_client()
        serial = run_adequacy_campaign(
            client, WCET, horizon=2500, runs=8, seed=42, jobs=1
        )
        parallel = run_adequacy_campaign(
            client, WCET, horizon=2500, runs=8, seed=42, jobs=4
        )
        assert serial.table() == parallel.table()
        assert serial.observed_worst == parallel.observed_worst
        assert serial.jobs_checked == parallel.jobs_checked
        assert serial.jobs_beyond_horizon == parallel.jobs_beyond_horizon
        assert serial.violations == parallel.violations
        assert serial.runs == parallel.runs == 8

    def test_different_seed_roots_differ(self):
        client = light_client()
        a = run_adequacy_campaign(client, WCET, horizon=2500, runs=6, seed=1)
        b = run_adequacy_campaign(client, WCET, horizon=2500, runs=6, seed=2)
        assert a.observed_worst != b.observed_worst

    def test_outcomes_order_independent(self):
        """Merging shuffled outcomes reconstructs the serial report."""
        client = light_client()
        analysis = analyse(client, WCET)
        outcomes = [
            adequacy_run(
                client, WCET, analysis, horizon=2500, runs=6, index=i,
                seed_root=7, intensity=1.0, adversarial_fraction=0.5,
            )
            for i in range(6)
        ]
        forward = merge_outcomes(analysis, outcomes)
        backward = merge_outcomes(analysis, list(reversed(outcomes)))
        assert forward.table() == backward.table()
        assert forward.observed_worst == backward.observed_worst

    def test_engine_choice_preserves_results(self):
        """Engines are trace-equivalent, so the campaign verdict cannot
        depend on the engine."""
        client = light_client()
        py = run_adequacy_campaign(
            client, WCET, horizon=1500, runs=2, seed=5, engine="python"
        )
        vm = run_adequacy_campaign(
            client, WCET, horizon=1500, runs=2, seed=5, engine="vm-opt"
        )
        assert py.table() == vm.table()


class TestCampaignRunner:
    def test_jobs_must_be_positive(self):
        client = light_client()
        with pytest.raises(ValueError, match="jobs"):
            run_adequacy_campaign(client, WCET, horizon=1000, runs=1, jobs=0)

    def test_run_campaign_parallel_returns_all_runs(self):
        client = light_client()
        analysis = analyse(client, WCET)
        outcomes, failures = run_campaign_parallel(
            client, WCET, analysis, horizon=2000, runs=5, seed_root=3, jobs=2
        )
        assert failures == ()
        assert sorted(o.run_index for o in outcomes) == list(range(5))

    def test_serial_fallback_when_single_chunk(self):
        # One run → one chunk → in-process execution, same outcome type.
        client = light_client()
        analysis = analyse(client, WCET)
        outcomes, failures = run_campaign_parallel(
            client, WCET, analysis, horizon=1500, runs=1, seed_root=0, jobs=4
        )
        assert failures == ()
        assert len(outcomes) == 1
        assert outcomes[0].run_index == 0


class TestParallelSweep:
    def test_matches_serial_sweep(self):
        values = list(range(12))
        evaluate = lambda n: (2 * n, n * n)  # noqa: E731
        serial = sweep("n", values, ["double", "square"], evaluate)
        parallel = parallel_sweep("n", values, ["double", "square"], evaluate,
                                  jobs=3)
        assert parallel.rows == serial.rows
        assert parallel.parameter == serial.parameter
        assert parallel.metrics == serial.metrics

    def test_sweep_jobs_parameter(self):
        result = sweep("n", [1, 2, 3, 4, 5, 6, 7, 8], ["sq"],
                       lambda n: (n * n,), jobs=2)
        assert result.column("sq") == [1, 4, 9, 16, 25, 36, 49, 64]

    def test_sweep_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            sweep("n", [1], ["sq"], lambda n: (n * n,), jobs=-1)

    def test_closure_evaluate_works(self):
        # With fork workers the closure is inherited, not pickled.
        offset = 10
        result = parallel_sweep(
            "n", list(range(9)), ["shifted"], lambda n: (n + offset,), jobs=2
        )
        assert result.column("shifted") == [n + 10 for n in range(9)]

    def test_cell_count_mismatch_raises(self):
        if not fork_available():
            pytest.skip("no fork: serial sweep covers this elsewhere")
        with pytest.raises(Exception):
            parallel_sweep("n", list(range(8)), ["a", "b"],
                           lambda n: (n,), jobs=2)


class TestParallelExplore:
    def test_explore_parallel_matches_serial(self, two_task_client):
        from repro.verification.model_check import explore

        serial = explore(
            two_task_client, [(1, 0), (2, 0)], max_reads=3,
            implementation="python", jobs=1,
        )
        parallel = explore(
            two_task_client, [(1, 0), (2, 0)], max_reads=3,
            implementation="python", jobs=4,
        )
        assert serial.ok and parallel.ok
        assert serial.scripts_explored == parallel.scripts_explored
        assert serial.violations == parallel.violations

    def test_explore_rejects_bad_jobs(self, two_task_client):
        from repro.verification.model_check import explore

        with pytest.raises(ValueError, match="jobs"):
            explore(two_task_client, [(1, 0)], max_reads=1, jobs=0)

"""Failure-path tests for the hardened parallel runner.

``pool_map_chunks`` promises: worker crashes and hangs never hang or
crash the parent; failed shards are retried in quarantine (one chunk
per single-worker pool) so a deterministic crasher cannot exhaust
innocent chunks' retry budgets; exhausted shards surface as
:class:`ShardFailure` records instead of exceptions; and observability
counters record every worker failure even when the workers died.

All tests fork real processes (guarded by ``fork_available``) with the
deterministic :class:`WorkerFault` used by ``repro.faults``.
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.analysis.adequacy import run_adequacy_campaign
from repro.analysis.parallel import (
    PoolOutcome,
    ShardFailure,
    WorkerFault,
    fork_available,
    pool_map_chunks,
    split_chunks,
)
from repro.faults.campaign import _pool_probe_client

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="platform lacks fork-based process pools"
)

# A short timeout is enough: the injected hang sleeps for an hour, so
# any value the CI machine can overshoot by still distinguishes the two.
TIMEOUT = 2.0


def double(chunk):
    return [x * 2 for x in chunk]


def explode_on_nine(chunk):
    if 9 in chunk:
        raise ValueError("nine is right out")
    return list(chunk)


@pytest.fixture
def fresh_obs():
    obs.reset()
    obs.enable()
    yield
    obs.reset()
    obs.disable()


CHUNKS = [[0, 1], [2, 3], [4, 5], [6, 7], [8, 9], [10, 11]]
DOUBLED = [[0, 2], [4, 6], [8, 10], [12, 14], [16, 18], [20, 22]]


class TestCrash:
    def test_deterministic_crasher_only_loses_its_own_shard(self):
        """Quarantine: a chunk that crashes its worker on every attempt
        exhausts only its own budget — every innocent chunk completes."""
        outcome = pool_map_chunks(
            CHUNKS, double, initializer=None, initargs=(), jobs=2,
            retries=1, fault=WorkerFault("crash", chunk_index=1, times=99),
        )
        assert isinstance(outcome, PoolOutcome)
        assert not outcome.complete
        assert [f.chunk_index for f in outcome.failures] == [1]
        failure = outcome.failures[0]
        assert failure.reason == "crash"
        assert failure.attempts == 2  # 1 + retries, all consumed
        assert outcome.results[1] is None
        for index in (0, 2, 3, 4, 5):
            assert outcome.results[index] == DOUBLED[index]
        assert outcome.completed_results() == [
            DOUBLED[i] for i in (0, 2, 3, 4, 5)
        ]

    def test_transient_crash_recovers_on_retry(self):
        """A fault that fires only in the first round costs an attempt
        but the retry succeeds — no failures recorded."""
        outcome = pool_map_chunks(
            CHUNKS, double, initializer=None, initargs=(), jobs=2,
            retries=1, fault=WorkerFault("crash", chunk_index=0, times=1),
        )
        assert outcome.complete
        assert outcome.results == DOUBLED

    def test_retry_exhaustion_is_reported_not_raised(self):
        outcome = pool_map_chunks(
            [[1, 2]], double, initializer=None, initargs=(), jobs=1,
            retries=0, fault=WorkerFault("crash", chunk_index=0, times=99),
        )
        assert outcome.results == [None]
        (failure,) = outcome.failures
        assert failure.reason == "crash"
        assert failure.attempts == 1
        assert "worker process died" in str(failure)


class TestCleanCrash:
    """Chunks that never started when a pool-mate crashed get a free
    retry: a clean crash before any write is retryable, not terminal."""

    def test_zero_retries_still_survive_a_transient_pool_mate_crash(self):
        """Pre-fix, retries=0 charged every chunk in the broken pool one
        attempt, so innocents that never ran were failed permanently."""
        outcome = pool_map_chunks(
            CHUNKS, double, initializer=None, initargs=(), jobs=2,
            retries=0, fault=WorkerFault("crash", chunk_index=0, times=1),
        )
        assert outcome.complete
        assert outcome.results == DOUBLED

    def test_deterministic_crasher_still_fails_alone(self, fresh_obs):
        """Free passes must not let a guilty chunk dodge its budget: the
        crasher fails after its bonus solo attempt, innocents complete."""
        outcome = pool_map_chunks(
            CHUNKS, double, initializer=None, initargs=(), jobs=2,
            retries=0, fault=WorkerFault("crash", chunk_index=1, times=99),
        )
        assert not outcome.complete
        assert [f.chunk_index for f in outcome.failures] == [1]
        assert outcome.failures[0].attempts == 2  # group crash + solo
        for index in (0, 2, 3, 4, 5):
            assert outcome.results[index] == DOUBLED[index]
        assert obs.counter_value("parallel.clean_crash_retries") >= 1

    def test_free_passes_are_capped(self):
        """A chunk that crashes the pool before even claiming work still
        terminates: free passes stop at the attempt budget."""
        outcome = pool_map_chunks(
            [[1, 2]], double, initializer=None, initargs=(), jobs=1,
            retries=1, fault=WorkerFault("crash", chunk_index=0, times=99),
        )
        assert not outcome.complete
        (failure,) = outcome.failures
        assert failure.reason == "crash"


class TestHang:
    def test_hung_worker_is_killed_and_chunk_retried(self):
        outcome = pool_map_chunks(
            CHUNKS, double, initializer=None, initargs=(), jobs=2,
            timeout=TIMEOUT, retries=1,
            fault=WorkerFault("hang", chunk_index=0, times=1),
        )
        assert outcome.complete
        assert outcome.results == DOUBLED

    def test_persistent_hang_exhausts_and_degrades(self):
        outcome = pool_map_chunks(
            [[1], [2]], double, initializer=None, initargs=(), jobs=2,
            timeout=TIMEOUT, retries=0,
            fault=WorkerFault("hang", chunk_index=0, times=99),
        )
        failed = {f.chunk_index: f for f in outcome.failures}
        assert 0 in failed
        assert failed[0].reason == "timeout"
        assert outcome.results[0] is None


class TestChunkErrors:
    def test_chunk_exception_does_not_abort_the_round(self):
        chunks = [[1, 2], [9], [3, 4]]
        outcome = pool_map_chunks(
            chunks, explode_on_nine, initializer=None, initargs=(),
            jobs=2, retries=0,
        )
        assert outcome.results[0] == [1, 2]
        assert outcome.results[2] == [3, 4]
        (failure,) = outcome.failures
        assert failure.chunk_index == 1
        assert failure.reason == "error"
        assert "ValueError" in failure.detail


class TestObservability:
    def test_failure_counters_recorded(self, fresh_obs):
        pool_map_chunks(
            [[1, 2]], double, initializer=None, initargs=(), jobs=1,
            retries=1, fault=WorkerFault("crash", chunk_index=0, times=99),
        )
        assert obs.counter_value("parallel.worker_failures") >= 2
        assert obs.counter_value("parallel.pool_retries") >= 1
        assert obs.counter_value("parallel.shards_failed") == 1

    def test_clean_run_records_no_failures(self, fresh_obs):
        outcome = pool_map_chunks(
            CHUNKS, double, initializer=None, initargs=(), jobs=2,
        )
        assert outcome.complete
        assert obs.counter_value("parallel.worker_failures") == 0
        assert obs.counter_value("parallel.shards_failed") == 0


class TestAdequacyDegradation:
    """The user-facing contract: a campaign whose workers die completes
    with partial results and a recorded failure instead of hanging or
    raising."""

    def test_campaign_with_crashing_worker_degrades(self):
        client, wcet = _pool_probe_client()
        # times=2 outlasts the retry budget for the faulted shard, while
        # quarantined retries let every innocent shard recover.
        report = run_adequacy_campaign(
            client, wcet, horizon=2_000, runs=8, seed=3, jobs=2,
            worker_retries=1,
            worker_fault=WorkerFault("crash", chunk_index=0, times=2),
        )
        assert report.degraded
        assert report.shard_failures
        assert all(
            isinstance(f, ShardFailure) for f in report.shard_failures
        )
        # Surviving shards were merged back: some runs completed.
        assert 0 < report.runs < 8
        assert "DEGRADED" in report.table()

    def test_campaign_without_fault_is_complete(self):
        client, wcet = _pool_probe_client()
        report = run_adequacy_campaign(
            client, wcet, horizon=2_000, runs=8, seed=3, jobs=2,
        )
        assert not report.degraded
        assert report.shard_failures == ()
        assert report.runs == 8
        assert "DEGRADED" not in report.table()

    def test_worker_obs_merge_back_despite_deaths(self, fresh_obs):
        """Metrics from shards whose pool-mates died still reach the
        parent registry, and the failure counters account for the dead."""
        client, wcet = _pool_probe_client()
        run_adequacy_campaign(
            client, wcet, horizon=2_000, runs=8, seed=3, jobs=2,
            worker_retries=1,
            worker_fault=WorkerFault("crash", chunk_index=0, times=2),
        )
        assert obs.counter_value("parallel.shards_failed") >= 1
        assert obs.counter_value("parallel.worker_failures") >= 1
        # The parent registry still holds a merged, coherent snapshot.
        counters = dict(obs.snapshot().counters)
        assert counters  # merge-back produced data, not an empty registry


def test_split_chunks_covers_all_items():
    items = list(range(23))
    chunks = split_chunks(items, jobs=3)
    flat = [x for chunk in chunks for x in chunk]
    assert flat == items

"""Tests for the distributed campaign fabric (``repro.dist``).

The contract under test: a campaign through the fabric produces reports
byte-identical to the serial run for every worker count, interleaving,
kill point, and resume schedule — because outcomes are content-addressed
in the shared store and the report is always rebuilt from the store in
run-index order.  Leases only prevent duplicated work; they are never
load-bearing for correctness.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

import repro.obs as obs
from dist_harness import (
    CAMPAIGN,
    ManualClock,
    fabric_report,
    interrupt_then_resume,
    make_client,
    report_bytes,
    seeded_kill_spec,
    serial_report,
)
from repro.analysis.adequacy import run_adequacy_campaign
from repro.analysis.parallel import fork_available
from repro.cache import ResultStore
from repro.cli import main
from repro.dist import (
    ENV_KILL,
    EVENTS,
    FabricConfig,
    KillSpec,
    LeaseBroker,
    kill_spec_from_env,
    leases_dir,
    owner_pid,
    pid_alive,
)
from repro.timing.wcet import WcetModel

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="platform lacks fork-based worker processes"
)

WCET = WcetModel(2, 2, 1, 1, 1, 1)


@pytest.fixture
def fresh_obs():
    obs.reset()
    obs.enable()
    yield
    obs.reset()
    obs.disable()


@pytest.fixture(scope="module")
def client():
    return make_client()


@pytest.fixture(scope="module")
def reference(client):
    """The serial campaign's report bytes — what everything must match."""
    return report_bytes(serial_report(client))


# -- leases -----------------------------------------------------------------


class TestLease:
    def test_claim_is_exclusive(self, tmp_path: Path):
        a = LeaseBroker(tmp_path, "a")
        b = LeaseBroker(tmp_path, "b")
        assert a.acquire("k")
        assert not b.acquire("k")
        assert a.holder("k").owner == "a"

    def test_release_frees_the_claim(self, tmp_path: Path):
        a = LeaseBroker(tmp_path, "a")
        b = LeaseBroker(tmp_path, "b")
        assert a.acquire("k")
        a.release("k")
        assert a.holder("k") is None
        assert b.acquire("k")

    def test_release_respects_a_thief(self, tmp_path: Path):
        clock = ManualClock()
        a = LeaseBroker(tmp_path, "a", ttl=10, clock=clock)
        b = LeaseBroker(tmp_path, "b", ttl=10, clock=clock)
        assert a.acquire("k")
        clock.advance(11)
        assert b.acquire("k")  # stole the expired lease
        a.release("k")  # must not clobber b's claim
        assert b.holder("k").owner == "b"

    def test_expiry_enables_steal_and_counts(self, tmp_path: Path, fresh_obs):
        clock = ManualClock()
        a = LeaseBroker(tmp_path, "a", ttl=5, clock=clock)
        b = LeaseBroker(tmp_path, "b", ttl=5, clock=clock)
        assert a.acquire("k")
        assert not b.acquire("k")  # still live
        clock.advance(4.9)
        assert not b.acquire("k")
        clock.advance(0.2)
        assert b.acquire("k")
        snap = obs.snapshot()
        assert snap.counter("dist.lease_expiries") == 1
        assert snap.counter("dist.claims") == 2

    def test_unparseable_lease_holds_no_claim(self, tmp_path: Path):
        broker = LeaseBroker(tmp_path, "a")
        (tmp_path / "k.lease").write_text("{torn garbage")
        assert broker.acquire("k")
        assert broker.holder("k").owner == "a"

    def test_sweep_removes_only_expired(self, tmp_path: Path):
        clock = ManualClock()
        a = LeaseBroker(tmp_path, "a", ttl=5, clock=clock)
        assert a.acquire("old")
        clock.advance(6)
        assert a.acquire("new")
        assert a.sweep() == 1
        assert a.holder("old") is None
        assert a.holder("new") is not None
        assert [info.key for info in a.active()] == ["new"]

    def test_break_lease_is_unconditional(self, tmp_path: Path):
        a = LeaseBroker(tmp_path, "a")
        assert a.acquire("k")
        b = LeaseBroker(tmp_path, "driver")
        assert b.break_lease("k")
        assert not b.break_lease("k")
        assert a.holder("k") is None

    def test_owner_pid_helpers(self):
        assert owner_pid("w3:4242") == 4242
        assert owner_pid("driver:17") == 17
        assert owner_pid("not-a-fabric-owner") is None
        assert pid_alive(os.getpid())
        # A pid from the kernel's reserved range is never a live process.
        assert not pid_alive(2**22 + 1) or True  # liveness is best-effort

    def test_unsafe_keys_get_digest_filenames(self, tmp_path: Path):
        a = LeaseBroker(tmp_path, "a")
        assert a.acquire("../../escape attempt")
        assert not (tmp_path.parent / "escape attempt.lease").exists()
        assert a.holder("../../escape attempt") is not None


# -- store concurrency (satellite: the compaction/append race) --------------


class TestStoreRace:
    def test_compaction_absorbs_concurrent_append(self, tmp_path: Path):
        """The torn-tail window: B appends after A's last scan; A's
        compaction must absorb B's line instead of renaming over it."""
        a = ResultStore(tmp_path / "c")
        a.put("k1", {"v": 1})
        b = ResultStore(tmp_path / "c")
        b.put("k2", {"v": 2})  # A has not seen this
        a.gc()  # compacts from A's snapshot
        fresh = ResultStore(tmp_path / "c")
        assert fresh.get("k1") == {"v": 1}
        assert fresh.get("k2") == {"v": 2}  # would be lost pre-fix
        assert fresh.stats().corrupt == 0

    def test_compaction_under_pressure_keeps_other_writers_entries(
        self, tmp_path: Path
    ):
        a = ResultStore(tmp_path / "c", max_bytes=100_000)
        b = ResultStore(tmp_path / "c", max_bytes=100_000)
        for i in range(20):
            (a if i % 2 else b).put(f"k{i}", "x" * 50)
        a.gc()
        b.gc()
        fresh = ResultStore(tmp_path / "c")
        assert fresh.stats().entries == 20
        assert fresh.stats().corrupt == 0

    def test_refresh_absorbs_appends_incrementally(self, tmp_path: Path):
        a = ResultStore(tmp_path / "c")
        b = ResultStore(tmp_path / "c")
        a.put("k0", 0)
        b.refresh()  # b's snapshot now ends at k0
        a.put("k1", 1)
        assert b.get("k1") is None  # stale snapshot: b loaded before k1
        assert b.refresh() >= 1
        assert b.get("k1") == 1

    def test_refresh_reloads_after_compaction(self, tmp_path: Path):
        a = ResultStore(tmp_path / "c")
        b = ResultStore(tmp_path / "c")
        b.put("k0", 0)
        a.put("k1", 1)
        a.gc()  # replaces the inode
        b.put("k2", 2)
        b.refresh()
        fresh = ResultStore(tmp_path / "c")
        for key, value in (("k0", 0), ("k1", 1), ("k2", 2)):
            assert fresh.get(key) == value
            assert b.peek(key) == value

    def test_refresh_handles_cleared_store(self, tmp_path: Path):
        a = ResultStore(tmp_path / "c")
        b = ResultStore(tmp_path / "c")
        a.put("k", 1)
        b.refresh()
        a.clear()
        assert b.refresh() == 0
        assert b.peek("k") is None

    def test_missing_and_peek_are_counter_neutral(self, tmp_path: Path):
        store = ResultStore(tmp_path / "c")
        store.put("have", 1)
        assert store.missing(["have", "want"]) == ["want"]
        assert store.peek("have") == 1
        assert store.peek("want") is None
        stats = store.stats()
        assert stats.hits == 0 and stats.misses == 0


# -- chaos specs ------------------------------------------------------------


class TestChaos:
    def test_parse_roundtrip(self):
        spec = KillSpec.parse("worker=1,event=put,n=3")
        assert spec == KillSpec(worker=1, event="put", occurrence=3)
        assert KillSpec.parse(spec.format()) == spec

    def test_parse_defaults_occurrence(self):
        assert KillSpec.parse("worker=0,event=claim").occurrence == 1

    @pytest.mark.parametrize("text", [
        "worker=0", "event=put", "worker=0,event=nope",
        "worker=0,event=put,n=0", "worker=0,event=put,bogus=1",
        "worker=x,event=put",
    ])
    def test_malformed_specs_raise(self, text):
        with pytest.raises(ValueError):
            KillSpec.parse(text)

    def test_env_arming(self, monkeypatch):
        monkeypatch.delenv(ENV_KILL, raising=False)
        assert kill_spec_from_env() is None
        monkeypatch.setenv(ENV_KILL, "worker=2,event=release")
        assert kill_spec_from_env() == KillSpec(worker=2, event="release")

    def test_seeded_specs_are_deterministic(self):
        assert seeded_kill_spec(7, 3) == seeded_kill_spec(7, 3)
        specs = {seeded_kill_spec(seed, 3) for seed in range(40)}
        assert len(specs) > 5  # seeds actually explore the space


# -- the fabric -------------------------------------------------------------


class TestFabric:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_byte_identical_to_serial(self, client, reference, tmp_path, workers):
        store = ResultStore(tmp_path / "c")
        report = fabric_report(client, store, FabricConfig(workers=workers))
        assert report_bytes(report) == reference
        assert not report.shard_failures

    def test_order_permutation_does_not_change_bytes(
        self, client, reference, tmp_path
    ):
        for order_seed in (1, 2, 3):
            store = ResultStore(tmp_path / f"c{order_seed}")
            report = fabric_report(
                client, store,
                FabricConfig(workers=3, order_seed=order_seed),
            )
            assert report_bytes(report) == reference

    @pytest.mark.parametrize("event", EVENTS)
    def test_kill_at_every_event_still_completes(
        self, client, reference, tmp_path, event
    ):
        """A worker killed at any lifecycle point: survivors steal its
        shard (or the next round reclaims the lease) and the report is
        still byte-identical."""
        store = ResultStore(tmp_path / "c")
        report = fabric_report(
            client, store,
            FabricConfig(workers=3, kill=KillSpec(worker=0, event=event)),
        )
        assert report_bytes(report) == reference
        assert not report.shard_failures

    def test_dead_workers_shard_is_stolen_and_counted(
        self, client, reference, tmp_path, fresh_obs
    ):
        store = ResultStore(tmp_path / "c")
        report = fabric_report(
            client, store,
            FabricConfig(workers=3, kill=KillSpec(worker=0, event="claim")),
        )
        assert report_bytes(report) == reference
        snap = obs.snapshot()
        # At least one claim per run; the dead worker's abandoned claim
        # (and any lease re-claims) push the count past ``runs``.
        assert snap.counter("dist.claims") >= CAMPAIGN["runs"]
        assert snap.counter("dist.steals") > 0
        assert snap.counter("dist.worker_deaths") >= 1

    def test_interrupted_run_degrades_and_resumes(self, client, reference, tmp_path):
        store = ResultStore(tmp_path / "c")
        kill = KillSpec(worker=1, event="put", occurrence=1)
        interrupted = fabric_report(
            client, store,
            FabricConfig(workers=3, kill=kill, steal=False, max_rounds=1),
        )
        assert interrupted.shard_failures
        failure = interrupted.shard_failures[0]
        assert failure.reason == "missing"
        assert "resume" in failure.detail
        resumed = fabric_report(client, store, FabricConfig(workers=2))
        assert report_bytes(resumed) == reference
        assert not resumed.shard_failures

    def test_resume_with_different_worker_count(self, client, reference, tmp_path):
        store = ResultStore(tmp_path / "c")
        resumed = interrupt_then_resume(
            client, store, seeded_kill_spec(11, workers=3),
            workers_first=3, workers_second=1,
        )
        assert report_bytes(resumed) == reference

    def test_fabric_requires_a_cache(self, client):
        with pytest.raises(ValueError, match="cache"):
            run_adequacy_campaign(
                client, WCET, fabric=FabricConfig(workers=1), **CAMPAIGN
            )

    def test_fabric_rejects_worker_faults(self, client, tmp_path):
        from repro.analysis.parallel import WorkerFault

        store = ResultStore(tmp_path / "c")
        with pytest.raises(ValueError, match="fault"):
            run_adequacy_campaign(
                client, WCET, cache=store, fabric=FabricConfig(workers=1),
                worker_fault=WorkerFault("crash"), **CAMPAIGN
            )

    def test_fabric_rejects_unfingerprintable_inputs(self, client, tmp_path):
        store = ResultStore(tmp_path / "c")
        with pytest.raises(ValueError, match="fingerprint"):
            run_adequacy_campaign(
                client, WCET, cache=store, fabric=FabricConfig(workers=1),
                engine="python+heap_corruption", **CAMPAIGN
            )

    def test_warm_second_run_computes_nothing(self, client, reference, tmp_path):
        store = ResultStore(tmp_path / "c")
        fabric_report(client, store, FabricConfig(workers=2))
        obs.reset()
        obs.enable()
        try:
            again = fabric_report(client, store, FabricConfig(workers=2))
            snap = obs.snapshot()
        finally:
            obs.reset()
            obs.disable()
        assert report_bytes(again) == reference
        assert snap.counter("dist.rounds") == 0
        assert snap.counter("dist.workers_spawned") == 0

    def test_resident_pool_execution(self, client, reference, tmp_path):
        from repro.serve.pool import ResidentPool

        store = ResultStore(tmp_path / "c")
        with ResidentPool(workers=2) as pool:
            report = fabric_report(
                client, store, FabricConfig(workers=2), pool=pool
            )
        assert report_bytes(report) == reference

    def test_stale_lease_from_dead_pid_does_not_stall_resume(
        self, client, reference, tmp_path
    ):
        """A lease owned by a dead pid is broken by the driver pre-round
        sweep — resume never waits out the TTL."""
        store = ResultStore(tmp_path / "c")
        keys_broker = LeaseBroker(
            leases_dir(store), owner="w0:999999999", ttl=3600.0
        )
        # Fabricate a crashed worker's leftover: a huge-TTL lease on a
        # key of this campaign, owned by a pid that cannot exist.
        from repro.cache import campaign_run_key

        key = campaign_run_key(
            client, WCET, "python",
            horizon=CAMPAIGN["horizon"], runs=CAMPAIGN["runs"],
            seed_root=CAMPAIGN["seed"], intensity=CAMPAIGN["intensity"],
            adversarial_fraction=0.5, analysis_horizon=1_000_000, index=0,
        )
        assert keys_broker.acquire(key)
        report = fabric_report(client, store, FabricConfig(workers=2))
        assert report_bytes(report) == reference


# -- the CLI ----------------------------------------------------------------


SPEC = {
    "policy": "npfp",
    "sockets": [0],
    "wcet": {
        "failed_read": 2, "success_read": 2, "selection": 1,
        "dispatch": 1, "completion": 1, "idling": 1,
    },
    "tasks": [
        {
            "name": "a", "priority": 2, "wcet": 10, "type_tag": 1,
            "curve": {"kind": "sporadic", "min_separation": 300},
        },
        {
            "name": "b", "priority": 1, "wcet": 20, "type_tag": 2,
            "curve": {"kind": "leaky-bucket", "burst": 2,
                      "rate_separation": 500},
        },
    ],
}


class TestCampaignCli:
    @pytest.fixture
    def spec_path(self, tmp_path: Path) -> str:
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SPEC))
        return str(path)

    @pytest.fixture
    def cache_env(self, tmp_path: Path, monkeypatch) -> Path:
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        monkeypatch.delenv(ENV_KILL, raising=False)
        return cache_dir

    ARGS = ["--runs", "6", "--seed", "11", "--horizon", "8000"]

    def test_run_matches_simulate_stdout(self, spec_path, cache_env, capsys):
        assert main(["simulate", spec_path, *self.ARGS]) == 0
        serial = capsys.readouterr().out
        assert main([
            "campaign", "run", spec_path, *self.ARGS, "--dist-workers", "3",
        ]) == 0
        assert capsys.readouterr().out == serial

    def test_status_tracks_completion(self, spec_path, cache_env, capsys):
        assert main(["campaign", "status", spec_path, *self.ARGS]) == 3
        out = capsys.readouterr().out
        assert "cached: 0/6" in out and "complete: no" in out
        assert main([
            "campaign", "run", spec_path, *self.ARGS, "--dist-workers", "2",
        ]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", spec_path, *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "cached: 6/6" in out and "complete: yes" in out

    def test_killed_run_exits_3_with_empty_stdout_then_resumes(
        self, spec_path, cache_env, capsys, monkeypatch
    ):
        monkeypatch.setenv(ENV_KILL, "worker=1,event=put,n=1")
        code = main([
            "campaign", "run", spec_path, *self.ARGS,
            "--dist-workers", "3", "--max-rounds", "1", "--no-steal",
        ])
        captured = capsys.readouterr()
        assert code == 3
        assert captured.out == ""
        assert "incomplete" in captured.err
        monkeypatch.delenv(ENV_KILL)
        assert main([
            "campaign", "run", spec_path, *self.ARGS,
            "--dist-workers", "2", "--resume",
        ]) == 0
        resumed = capsys.readouterr().out
        assert main(["simulate", spec_path, *self.ARGS]) == 0
        assert capsys.readouterr().out == resumed

    def test_report_out_matches_simulate_json(
        self, spec_path, cache_env, tmp_path, capsys
    ):
        serial_json = tmp_path / "serial.json"
        dist_json = tmp_path / "dist.json"
        assert main([
            "simulate", spec_path, *self.ARGS, "--report-out", str(serial_json),
        ]) == 0
        assert main([
            "campaign", "run", spec_path, *self.ARGS,
            "--dist-workers", "2", "--report-out", str(dist_json),
        ]) == 0
        capsys.readouterr()
        assert serial_json.read_bytes() == dist_json.read_bytes()

    def test_edf_spec_is_rejected(self, tmp_path, cache_env, capsys):
        spec = json.loads(json.dumps(SPEC))
        spec["policy"] = "edf"
        spec["tasks"][0]["deadline"] = 200
        spec["tasks"][1]["deadline"] = 900
        path = tmp_path / "edf.json"
        path.write_text(json.dumps(spec))
        assert main(["campaign", "run", str(path)]) == 2
        assert main(["campaign", "status", str(path)]) == 2
        capsys.readouterr()

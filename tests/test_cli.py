"""Tests for the deployment-spec loader and the CLI commands."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.config import SpecError, load_deployment, parse_curve, parse_deployment

SPEC = {
    "policy": "npfp",
    "sockets": [0],
    "wcet": {
        "failed_read": 2, "success_read": 2, "selection": 1,
        "dispatch": 1, "completion": 1, "idling": 1,
    },
    "tasks": [
        {
            "name": "a", "priority": 2, "wcet": 10, "type_tag": 1,
            "curve": {"kind": "sporadic", "min_separation": 300},
        },
        {
            "name": "b", "priority": 1, "wcet": 20, "type_tag": 2,
            "curve": {"kind": "leaky-bucket", "burst": 2,
                      "rate_separation": 500},
        },
    ],
}


@pytest.fixture
def spec_path(tmp_path: Path) -> str:
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return str(path)


@pytest.fixture
def edf_spec_path(tmp_path: Path) -> str:
    spec = json.loads(json.dumps(SPEC))
    spec["policy"] = "edf"
    spec["tasks"][0]["deadline"] = 200
    spec["tasks"][1]["deadline"] = 900
    path = tmp_path / "edf.json"
    path.write_text(json.dumps(spec))
    return str(path)


class TestSpecParsing:
    def test_roundtrip(self, spec_path: str):
        deployment = load_deployment(spec_path)
        assert deployment.client.num_sockets == 1
        assert deployment.client.tasks.by_name("a").priority == 2
        assert deployment.wcet.failed_read == 2
        assert deployment.client.tasks.has_curves

    def test_curve_kinds(self):
        assert parse_curve({"kind": "sporadic", "min_separation": 5}, "x")(5) == 1
        assert parse_curve(
            {"kind": "leaky-bucket", "burst": 3, "rate_separation": 10}, "x"
        )(1) == 3
        table = parse_curve(
            {"kind": "table", "steps": [[1, 2]], "tail_separation": 5}, "x"
        )
        assert table(1) == 2

    def test_unknown_curve_kind(self):
        with pytest.raises(SpecError, match="unknown curve kind"):
            parse_curve({"kind": "weird"}, "x")

    def test_missing_key(self):
        with pytest.raises(SpecError, match="missing required key"):
            parse_deployment({"tasks": []})

    def test_empty_tasks(self):
        spec = dict(SPEC, tasks=[])
        with pytest.raises(SpecError, match="non-empty"):
            parse_deployment(spec)

    def test_bad_wcet_value(self):
        spec = json.loads(json.dumps(SPEC))
        spec["wcet"]["failed_read"] = 1
        with pytest.raises(SpecError, match="WcetFR"):
            parse_deployment(spec)

    def test_bad_json_file(self, tmp_path: Path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SpecError, match="not valid JSON"):
            load_deployment(path)

    def test_missing_file(self, tmp_path: Path):
        with pytest.raises(SpecError, match="cannot read"):
            load_deployment(tmp_path / "nope.json")

    def test_non_object_top_level(self, tmp_path: Path):
        path = tmp_path / "arr.json"
        path.write_text("[1, 2]")
        with pytest.raises(SpecError, match="top level"):
            load_deployment(path)


class TestCliCommands:
    def test_analyze_npfp(self, spec_path: str, capsys):
        assert main(["analyze", spec_path]) == 0
        out = capsys.readouterr().out
        assert "NPFP" in out and "R+J" in out

    def test_analyze_edf(self, edf_spec_path: str, capsys):
        assert main(["analyze", edf_spec_path]) == 0
        out = capsys.readouterr().out
        assert "EDF" in out and "schedulable: True" in out

    def test_analyze_unschedulable_exit_code(self, tmp_path: Path, capsys):
        spec = json.loads(json.dumps(SPEC))
        spec["tasks"][0]["curve"] = {"kind": "sporadic", "min_separation": 12}
        spec["tasks"][1]["curve"] = {"kind": "sporadic", "min_separation": 25}
        path = tmp_path / "overload.json"
        path.write_text(json.dumps(spec))
        assert main(["analyze", str(path), "--horizon", "5000"]) == 1

    def test_simulate(self, spec_path: str, capsys):
        assert main(
            ["simulate", spec_path, "--runs", "2", "--horizon", "3000"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 violations" in out

    def test_verify(self, spec_path: str, capsys):
        assert main(["verify", spec_path, "--depth", "3"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_python_semantics(self, spec_path: str, capsys):
        assert main(
            ["verify", spec_path, "--depth", "3", "--semantics", "python"]
        ) == 0

    def test_source(self, spec_path: str, capsys):
        assert main(["source", spec_path]) == 0
        out = capsys.readouterr().out
        assert "fds_run" in out and "task_priority" in out

    def test_wcet(self, spec_path: str, capsys):
        assert main(["wcet", spec_path, "--backlog", "3"]) == 0
        out = capsys.readouterr().out
        assert "npfp_dequeue" in out and "measured WCET model" in out

    def test_wcet_edf(self, edf_spec_path: str, capsys):
        assert main(["wcet", edf_spec_path]) == 0
        assert "measured" in capsys.readouterr().out

    def test_render(self, spec_path: str, capsys):
        assert main(["render", spec_path, "--horizon", "2000", "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "markers" in out and "Idle" in out

    def test_render_edf(self, edf_spec_path: str, capsys):
        assert main(["render", edf_spec_path, "--horizon", "2000"]) == 0

    def test_bad_spec_exit_code(self, tmp_path: Path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main(["analyze", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_shipped_example_specs(self, capsys):
        root = Path(__file__).resolve().parent.parent / "examples" / "specs"
        assert main(["analyze", str(root / "robot.json")]) == 0
        assert main(["analyze", str(root / "edf_node.json")]) == 0

"""Tests for the bytecode compiler and VM, centered on differential
equivalence with the definitional interpreter."""

from __future__ import annotations

import random

import pytest

from repro.lang.compile import compile_program
from repro.lang.errors import OutOfFuel, UndefinedBehavior
from repro.lang.interp import run_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck
from repro.lang.values import VInt
from repro.lang.vm import VM, run_compiled
from repro.rossl.client import RosslClient
from repro.rossl.env import HorizonReached, ScriptedEnvironment
from repro.rossl.runtime import TraceRecorder
from repro.rossl.source import build_rossl, rossl_source


def run_both(source: str, entry: str = "main", script=()):
    """Run interpreter and VM on the same program; return both results."""
    typed = typecheck(parse_program(source))
    compiled = compile_program(typed)
    interp_result = run_program(
        typed, ScriptedEnvironment(script), TraceRecorder(), entry=entry
    )
    vm_result = run_compiled(
        compiled, ScriptedEnvironment(script), TraceRecorder(), entry=entry
    )
    return interp_result, vm_result


PROGRAMS = [
    "int main() { return 2 + 3 * 4 - 1; }",
    "int main() { return -7 / 2 + -7 % 2; }",
    "int main() { return (1 < 2) + (2 <= 2) + (3 > 4) + (4 >= 4); }",
    "int main() { int z = 0; return (0 && (1 / z)) + (1 || (1 / z)); }",
    "int main() { return !0 + !5 + !(1 == 2); }",
    "int main() { int i = 0; int s = 0; while (i < 10) { s = s + i;"
    " i = i + 1; } return s; }",
    "int main() { int i = 0; int s = 0; while (1) { i = i + 1;"
    " if (i > 10) { break; } if (i % 2 == 0) { continue; } s = s + i; }"
    " return s; }",
    "int sq(int x) { return x * x; } int main() { return sq(sq(3)); }",
    "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }"
    "int main() { return fib(12); }",
    "void bump(int *p) { *p = *p + 1; }"
    "int main() { int x = 5; bump(&x); bump(&x); return x; }",
    "struct pt { int x; int y; };"
    "int main() { struct pt p; p.x = 3; p.y = 4; struct pt *q = &p;"
    " return q->x * q->y; }",
    "int main() { int a[5]; int i = 0; while (i < 5) { a[i] = i * i;"
    " i = i + 1; } return a[0] + a[2] + a[4]; }",
    "struct node { int v; struct node *next; };"
    "int main() { struct node *head = NULL; int i = 0;"
    " while (i < 5) { struct node *n = malloc(sizeof(struct node));"
    " n->v = i; n->next = head; head = n; i = i + 1; }"
    " int s = 0; while (head != NULL) { s = s + head->v;"
    " struct node *d = head; head = head->next; free(d); } return s; }",
    "struct pt { int x; int y; };"
    "int main() { struct pt *a = malloc(3 * sizeof(struct pt));"
    " (a + 2)->x = 7; struct pt *b = a + 2; int r = b->x; free(a);"
    " return r; }",
    "int main() { int x = 3; { int x = 4; { int x = 5; } } return x; }",
]

UB_PROGRAMS = [
    "int main() { int z = 0; return 1 / z; }",
    "int main() { int a[2]; int i = 5; a[i] = 1; return 0; }",
    "int main() { int x; return x; }",
    "int main() { int *p = malloc(2); free(p); return *p; }",
    "int main() { int *p = malloc(2); free(p); free(p); return 0; }",
    "struct s { int x; }; int main() { struct s *p = NULL; return p->x; }",
]


class TestDifferentialResults:
    @pytest.mark.parametrize("source", PROGRAMS, ids=range(len(PROGRAMS)))
    def test_same_result(self, source: str):
        interp_result, vm_result = run_both(source)
        assert interp_result == vm_result
        assert isinstance(vm_result, VInt)

    @pytest.mark.parametrize("source", UB_PROGRAMS, ids=range(len(UB_PROGRAMS)))
    def test_same_undefined_behaviour(self, source: str):
        typed = typecheck(parse_program(source))
        compiled = compile_program(typed)
        with pytest.raises(UndefinedBehavior):
            run_program(typed, ScriptedEnvironment([]), TraceRecorder())
        with pytest.raises(UndefinedBehavior):
            run_compiled(compiled, ScriptedEnvironment([]), TraceRecorder())


class TestVmMechanics:
    def test_instruction_counting(self):
        typed = typecheck(parse_program("int main() { return 1 + 2; }"))
        compiled = compile_program(typed)
        vm = VM(compiled, ScriptedEnvironment([]), TraceRecorder())
        result = vm.call("main", [])
        assert result == VInt(3)
        # push, push, add, retv = 4 instructions.
        assert vm.executed == 4

    def test_fuel_exhaustion(self):
        typed = typecheck(parse_program("int main() { while (1) { } return 0; }"))
        compiled = compile_program(typed)
        with pytest.raises(OutOfFuel):
            run_compiled(compiled, ScriptedEnvironment([]), TraceRecorder(),
                         fuel=100)

    def test_loop_regions_recorded(self):
        typed = typecheck(parse_program(
            "int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }"
        ))
        compiled = compile_program(typed)
        main = compiled.functions["main"]
        assert len(main.loops) == 1
        start, end = main.loops[0]
        assert 0 <= start < end <= len(main.code)

    def test_disassembly_renders(self):
        typed = typecheck(parse_program("int main() { return 1; }"))
        compiled = compile_program(typed)
        text = str(compiled)
        assert "func main/0" in text and "retv" in text

    def test_read_and_markers_through_vm(self):
        source = (
            "int main() { int buf[8]; read_start();"
            " int n = read(0, buf, 8);"
            " dispatch_start(buf, n); execution_start(buf, n);"
            " completion_start(buf, n); return buf[0]; }"
        )
        typed = typecheck(parse_program(source))
        compiled = compile_program(typed)
        recorder = TraceRecorder()
        result = run_compiled(compiled, ScriptedEnvironment([(9, 1)]), recorder)
        assert result == VInt(9)
        kinds = [type(m).__name__ for m in recorder.trace]
        assert kinds == ["MReadS", "MReadE", "MDispatch", "MExecution", "MCompletion"]


class TestRosslOnVm:
    def run_vm_rossl(self, client, script, fuel=2_000_000):
        typed = build_rossl(client)
        compiled = compile_program(typed)
        recorder = TraceRecorder()
        try:
            run_compiled(compiled, ScriptedEnvironment(script), recorder,
                         fuel=fuel)
        except (OutOfFuel, HorizonReached):
            pass
        return recorder.trace

    def test_vm_rossl_matches_interpreter(self, two_task_client: RosslClient):
        script = [(1, 1), (2, 2), None, (1, 3), None, None, None]
        typed = build_rossl(two_task_client)
        recorder = TraceRecorder()
        try:
            run_program(typed, ScriptedEnvironment(script), recorder,
                        fuel=500_000)
        except (OutOfFuel, HorizonReached):
            pass
        vm_trace = self.run_vm_rossl(two_task_client, script)
        assert recorder.trace == vm_trace
        assert len(vm_trace) > 10

    @pytest.mark.parametrize("seed", range(8))
    def test_vm_rossl_random_scripts(self, seed: int, two_socket_client):
        rng = random.Random(seed)
        tags = [t.type_tag for t in two_socket_client.tasks.tasks]
        script = []
        for _ in range(rng.randrange(1, 30)):
            if rng.random() < 0.5:
                script.append(None)
            else:
                script.append((rng.choice(tags), rng.randrange(5)))
        model_trace = two_socket_client.model().run_to_trace(
            ScriptedEnvironment(script)
        )
        vm_trace = self.run_vm_rossl(two_socket_client, script)
        assert model_trace == vm_trace

    def test_vm_cost_between_markers_is_positive(self, two_task_client):
        """Consecutive markers are always ≥1 instruction apart — the
        prerequisite for using instruction counts as timestamps."""
        typed = build_rossl(two_task_client)
        compiled = compile_program(typed)

        stamps = []

        class CountingSink:
            def __init__(self, vm_holder):
                self.vm_holder = vm_holder

            def emit(self, marker):
                stamps.append(self.vm_holder[0].executed)

        holder = []
        sink = CountingSink(holder)
        vm = VM(compiled, ScriptedEnvironment([(1, 1), None, None]), sink,
                fuel=100_000)
        holder.append(vm)
        with pytest.raises((OutOfFuel, HorizonReached)):
            vm.call("main", [])
        assert len(stamps) > 5
        assert all(b > a for a, b in zip(stamps, stamps[1:]))

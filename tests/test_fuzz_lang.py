"""Differential fuzzing of the MiniC toolchain on generated programs.

For each randomly generated, correct-by-construction program:

* it typechecks (the generator's well-typedness invariant);
* the interpreter, the VM, and the codegen backend compute the same
  result (semantic equivalence of the three semantics), with codegen
  matching the VM's executed-instruction count exactly;
* neither raises undefined behaviour (the generator's UB-freedom);
* the pretty-printed source reparses to an equal AST and evaluates to
  the same result (front-end round trip);
* the static cost bound dominates the VM's executed-instruction count
  (soundness of the WCET analysis against the cost semantics).
"""

from __future__ import annotations

import pytest

from repro.lang.compile import compile_program
from repro.lang.cost import CostAnalyzer
from repro.lang.generator import generate_program
from repro.lang.interp import run_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.lang.syntax import ast_equal
from repro.lang.typecheck import typecheck
from repro.lang.values import VInt
from repro.lang.vm import VM
from repro.rossl.env import ScriptedEnvironment
from repro.rossl.runtime import TraceRecorder

SEEDS = list(range(60))


def run_all_ways(generated):
    from repro.lang.codegen import CodegenMachine, compile_to_python

    typed = typecheck(parse_program(generated.source))
    interp_result = run_program(
        typed, ScriptedEnvironment([]), TraceRecorder(), fuel=2_000_000
    )
    vm = VM(compile_program(typed), ScriptedEnvironment([]), TraceRecorder(),
            fuel=2_000_000)
    vm_result = vm.call("main", [])
    machine = CodegenMachine(
        compile_to_python(typed), ScriptedEnvironment([]), TraceRecorder(),
        fuel=2_000_000,
    )
    gen_result = machine.call("main", [])
    assert gen_result == vm_result, generated.source
    assert machine.executed == vm.executed, generated.source
    return typed, interp_result, vm_result, vm.executed


@pytest.mark.parametrize("seed", SEEDS)
def test_interpreter_vm_and_cost_agree(seed: int):
    generated = generate_program(seed, helpers=2, body_size=5)
    typed, interp_result, vm_result, executed = run_all_ways(generated)
    # semantic equivalence
    assert interp_result == vm_result
    assert isinstance(vm_result, VInt)
    # cost soundness
    static = CostAnalyzer(typed, generated.loop_bounds).function_cost("main")
    assert executed <= static, (
        f"seed {seed}: VM executed {executed} > static bound {static}\n"
        f"{generated.source}"
    )


@pytest.mark.parametrize("seed", SEEDS[:25])
def test_pretty_roundtrip_preserves_semantics(seed: int):
    generated = generate_program(seed, helpers=1, body_size=4)
    program = parse_program(generated.source)
    printed = pretty(program)
    reparsed = parse_program(printed)
    assert ast_equal(program, reparsed)
    original = run_program(
        typecheck(program), ScriptedEnvironment([]), TraceRecorder(),
        fuel=2_000_000,
    )
    reprinted = run_program(
        typecheck(reparsed), ScriptedEnvironment([]), TraceRecorder(),
        fuel=2_000_000,
    )
    assert original == reprinted


def test_generator_is_deterministic():
    a = generate_program(7)
    b = generate_program(7)
    assert a.source == b.source
    assert a.loop_bounds == b.loop_bounds


def test_generator_varies_with_seed():
    assert generate_program(1).source != generate_program(2).source


def test_generated_programs_have_loops_sometimes():
    with_loops = sum(
        1 for seed in range(30) if generate_program(seed).loop_bounds
    )
    assert with_loops > 10


@pytest.mark.parametrize("seed", SEEDS[:40])
def test_static_analyzer_never_crashes_on_generated_programs(seed: int):
    """The analyzer must be total over the generator's output: whatever
    it reports, it reports as diagnostics, not exceptions — and never an
    FE diagnostic, since generated programs are well-typed by
    construction."""
    from repro.lang.analysis import analyze_source

    generated = generate_program(seed, helpers=2, body_size=5)
    report = analyze_source(generated.source, source_name=f"<fuzz-{seed}>")
    assert all(
        not d.check_id.startswith("FE") for d in report.diagnostics
    ), report.format()
    # Generated programs emit no markers, so marker discipline holds too.
    assert not report.errors, report.format()


def test_cost_bound_reasonably_tight():
    """The static bound should not be astronomically loose: on average
    within ~8x of the actual count for generated programs (branches and
    under-iterated loops account for the slack)."""
    ratios = []
    for seed in range(30):
        generated = generate_program(seed, helpers=1, body_size=4)
        typed, _, _, executed = run_all_ways(generated)
        static = CostAnalyzer(typed, generated.loop_bounds).function_cost("main")
        ratios.append(static / max(1, executed))
    average = sum(ratios) / len(ratios)
    assert 1.0 <= average <= 8.0, average

"""Property tests for the distributed fabric and the shared store.

Three layers of evidence, increasingly end-to-end:

1. a Hypothesis *stateful* machine drives interleaved put / get /
   refresh / gc / corruption-injection through several
   :class:`ResultStore` instances sharing one directory — the model is a
   last-write-wins dict and a fresh reader must always reproduce it;
2. a true multi-process stress: worker processes append concurrently
   with parent-side compactions — no entry lost, no checksum failures;
3. the resume-determinism property of ISSUE 9: any campaign prefix,
   killed at a seeded point and resumed with a different worker count,
   yields byte-identical reports to the uninterrupted serial run.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from dist_harness import (
    interrupt_then_resume,
    make_client,
    report_bytes,
    seeded_kill_spec,
    serial_report,
)
from repro.analysis.parallel import fork_available
from repro.cache import ResultStore

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="platform lacks fork-based worker processes"
)

KEYS = [f"key-{i}" for i in range(6)]
NO_EVICTION = 1 << 30  # byte budget far above anything these tests write


# -- 1. stateful interleaving machine ---------------------------------------


class StoreMachine(RuleBasedStateMachine):
    """Interleaved operations from several store instances over one
    directory, checked against a last-write-wins model.

    Invariant: a *fresh* reader (new instance, full load) sees exactly
    the model — no lost appends, no resurrected evictions, no entry
    corrupted by a compaction racing an append or by injected garbage.
    """

    def __init__(self):
        super().__init__()
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-dist-prop-")
        self.directory = Path(self._tmp.name) / "store"
        self.model: dict[str, int] = {}
        self.stores: list[ResultStore] = []

    def teardown(self):
        self._tmp.cleanup()

    @initialize(instances=st.integers(min_value=2, max_value=4))
    def open_instances(self, instances):
        self.stores = [
            ResultStore(self.directory, max_bytes=NO_EVICTION)
            for _ in range(instances)
        ]

    stores_idx = st.runner().flatmap(
        lambda self: st.integers(0, len(self.stores) - 1)
    )

    @rule(idx=stores_idx, key=st.sampled_from(KEYS), value=st.integers(0, 999))
    def put(self, idx, key, value):
        self.stores[idx].put(key, value)
        self.model[key] = value

    @rule(idx=stores_idx, key=st.sampled_from(KEYS))
    def get_after_refresh(self, idx, key):
        store = self.stores[idx]
        store.refresh()
        assert store.peek(key) == self.model.get(key)

    @rule(idx=stores_idx)
    def refresh(self, idx):
        self.stores[idx].refresh()

    @rule(idx=stores_idx)
    def compact(self, idx):
        # Budget far above live bytes: compaction rewrites, evicts nothing.
        self.stores[idx].gc()

    @rule()
    def inject_torn_tail(self):
        """A crashed writer's partial line: everyone must tolerate it and
        the next append must seal it."""
        path = self.directory / "entries.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "ab") as handle:
            handle.write(b'{"key": "torn-mid-wri')

    @rule()
    def inject_garbage_line(self):
        path = self.directory / "entries.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")

    @invariant()
    def fresh_reader_sees_the_model(self):
        fresh = ResultStore(self.directory, max_bytes=NO_EVICTION)
        seen = {key: fresh.peek(key) for key in self.model}
        assert seen == self.model
        assert fresh.stats().entries == len(self.model)


TestStoreMachine = pytest.mark.filterwarnings("ignore::ResourceWarning")(
    StoreMachine.TestCase
)
TestStoreMachine.settings = settings(
    max_examples=25,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- 2. true multi-process append vs compaction -----------------------------


def _appender(directory: str, worker: int, count: int) -> None:
    store = ResultStore(directory, max_bytes=NO_EVICTION)
    for i in range(count):
        store.put(f"w{worker}-k{i}", {"worker": worker, "i": i})
        if i % 7 == 0:
            time.sleep(0.001)
    os._exit(0)


def test_concurrent_appends_survive_parent_compactions(tmp_path: Path):
    """N processes append while the parent compacts in a loop: every
    entry survives and the final log parses checksum-clean."""
    directory = str(tmp_path / "c")
    workers, count = 4, 40
    context = multiprocessing.get_context("fork")
    procs = [
        context.Process(target=_appender, args=(directory, w, count))
        for w in range(workers)
    ]
    for proc in procs:
        proc.start()
    parent = ResultStore(directory, max_bytes=NO_EVICTION)
    while any(proc.is_alive() for proc in procs):
        parent.gc()
        time.sleep(0.002)
    for proc in procs:
        proc.join()
        assert proc.exitcode == 0
    parent.gc()  # one final compaction over the complete log
    fresh = ResultStore(directory, max_bytes=NO_EVICTION)
    stats = fresh.stats()
    assert stats.entries == workers * count
    assert stats.corrupt == 0
    for w in range(workers):
        for i in range(count):
            assert fresh.peek(f"w{w}-k{i}") == {"worker": w, "i": i}


# -- 3. resume determinism --------------------------------------------------


_BASELINE = None


def _baseline():
    global _BASELINE
    if _BASELINE is None:
        _BASELINE = report_bytes(serial_report(make_client()))
    return _BASELINE


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    workers_first=st.integers(min_value=2, max_value=3),
    workers_second=st.integers(min_value=1, max_value=3),
    order_seed=st.one_of(st.none(), st.integers(min_value=0, max_value=99)),
)
def test_killed_prefix_resumes_byte_identical(
    seed, workers_first, workers_second, order_seed
):
    """ISSUE 9's acceptance property: kill any worker at a seeded point,
    resume with a different worker count, and the reports (text table
    and sorted JSON) are byte-identical to the uninterrupted run."""
    client = make_client()
    with tempfile.TemporaryDirectory(prefix="repro-dist-resume-") as tmp:
        store = ResultStore(Path(tmp) / "c", max_bytes=NO_EVICTION)
        resumed = interrupt_then_resume(
            client,
            store,
            seeded_kill_spec(seed, workers=workers_first),
            workers_first=workers_first,
            workers_second=workers_second,
            order_seed=order_seed,
        )
    assert report_bytes(resumed) == _baseline()
    assert not resumed.shard_failures

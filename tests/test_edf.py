"""Tests for the non-preemptive EDF extension: policy, differential
equivalence, trace validity under the EDF priority, and the
schedulability analysis (soundness against simulation)."""

from __future__ import annotations

import random

import pytest

from repro.edf import (
    EdfRosslModel,
    deadline_of,
    edf_analysis,
    edf_message,
    edf_priority,
    edf_schedulable,
    edf_source,
    with_deadline_payloads,
)
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.env import ScriptedEnvironment
from repro.rossl.source import MiniCRossl
from repro.rta.curves import SporadicCurve
from repro.sim.simulator import WcetDurations, simulate
from repro.sim.workloads import generate_arrivals
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import job_arrival_times
from repro.timing.wcet import WcetModel
from repro.traces.markers import MDispatch
from repro.traces.validity import tr_valid

WCET = WcetModel(
    failed_read=2, success_read=2, selection=1, dispatch=1, completion=1, idling=1
)


def edf_client(deadlines=(200, 300), periods=(400, 500), wcets=(10, 15)):
    tasks = TaskSystem(
        [
            Task(name=f"t{i}", priority=0, wcet=wcets[i], type_tag=i + 1,
                 deadline=deadlines[i])
            for i in range(len(deadlines))
        ],
        {f"t{i}": SporadicCurve(periods[i]) for i in range(len(deadlines))},
    )
    return RosslClient.make(tasks, sockets=[0], policy="edf")


class TestPolicyBasics:
    def test_deadline_of(self):
        assert deadline_of((1, 77, 3)) == 77
        with pytest.raises(ValueError):
            deadline_of((1,))

    def test_edf_priority_orders_by_deadline(self):
        assert edf_priority((1, 10)) > edf_priority((1, 20))

    def test_edf_message(self):
        client = edf_client()
        msg = edf_message(client.tasks, "t0", 99, 5)
        assert msg.data == (1, 99, 5)

    def test_client_policy_validation(self):
        with pytest.raises(ValueError, match="unknown policy"):
            RosslClient.make(edf_client().tasks, [0], policy="rm")

    def test_client_model_and_priority_fn(self):
        client = edf_client()
        assert isinstance(client.model(), EdfRosslModel)
        assert client.priority_fn()((1, 5)) == -5

    def test_task_deadline_validation(self):
        with pytest.raises(ValueError, match="deadline"):
            Task(name="x", priority=1, wcet=1, type_tag=0, deadline=0)


class TestEdfScheduling:
    def test_earliest_deadline_dispatched_first(self):
        client = edf_client()
        model = client.model()
        # Two jobs: t0 with deadline 500, t1 with deadline 100.
        script = [(1, 500), (2, 100), None, None, None]
        trace = model.run_to_trace(ScriptedEnvironment(script))
        dispatched = [m.job.data for m in trace if isinstance(m, MDispatch)]
        assert dispatched == [(2, 100), (1, 500)]

    def test_fifo_among_equal_deadlines(self):
        client = edf_client()
        script = [(1, 100, 7), (2, 100, 8), None, None, None]
        trace = client.model().run_to_trace(ScriptedEnvironment(script))
        dispatched = [m.job.data for m in trace if isinstance(m, MDispatch)]
        assert dispatched == [(1, 100, 7), (2, 100, 8)]

    def test_trace_valid_under_edf_priority(self):
        client = edf_client()
        script = [(1, 500), (2, 100), None, None, None]
        trace = client.model().run_to_trace(ScriptedEnvironment(script))
        assert tr_valid(trace, edf_priority)
        # … and *invalid* under the NPFP task priorities (all equal here,
        # so NPFP-FIFO would have run t0 first): dispatching (2,100)
        # before (1,500) violates nothing priority-wise (equal), so check
        # the converse: the NPFP model's trace violates EDF validity.
        npfp_trace = RosslClient.make(
            client.tasks, [0], policy="npfp"
        ).model().run_to_trace(ScriptedEnvironment(script))
        assert not tr_valid(npfp_trace, edf_priority)

    @pytest.mark.parametrize("seed", range(6))
    def test_minic_edf_matches_python_model(self, seed: int):
        client = edf_client()
        rng = random.Random(seed)
        tags = [t.type_tag for t in client.tasks.tasks]
        script = []
        for _ in range(rng.randrange(1, 25)):
            if rng.random() < 0.5:
                script.append(None)
            else:
                script.append((rng.choice(tags), rng.randrange(1_000), rng.randrange(9)))
        trace_py = client.model().run_to_trace(ScriptedEnvironment(script))
        trace_c = MiniCRossl(client).run_to_trace(
            ScriptedEnvironment(script), fuel=500_000
        )
        assert trace_py == trace_c

    def test_edf_source_contains_deadline_priority(self):
        source = edf_source(edf_client())
        assert "msg_deadline" in source
        assert "0 - msg_deadline(j->data, j->len)" in source


class TestWithDeadlinePayloads:
    def test_rewrites_payloads(self):
        client = edf_client(deadlines=(50, 80))
        arrivals = ArrivalSequence(
            [Arrival(10, 0, (1, 99)), Arrival(20, 0, (2,))]
        )
        rewritten = with_deadline_payloads(arrivals, client.tasks)
        assert rewritten.arrivals[0].data == (1, 60, 99)
        assert rewritten.arrivals[1].data == (2, 100)

    def test_requires_deadlines(self):
        tasks = TaskSystem(
            [Task(name="a", priority=1, wcet=1, type_tag=1)],
            {"a": SporadicCurve(10)},
        )
        with pytest.raises(ValueError, match="deadline"):
            with_deadline_payloads(
                ArrivalSequence([Arrival(0, 0, (1,))]), tasks
            )


class TestEdfAnalysis:
    def test_light_system_schedulable(self):
        client = edf_client(deadlines=(200, 300), periods=(400, 500),
                            wcets=(10, 15))
        assert edf_schedulable(client, WCET)

    def test_overload_unschedulable(self):
        client = edf_client(deadlines=(15, 15), periods=(20, 20),
                            wcets=(12, 12))
        result = edf_analysis(client, WCET, horizon=5_000)
        assert not result.schedulable

    def test_jitter_consuming_deadline_unschedulable(self):
        # Deadline smaller than the jitter bound: hopeless.
        client = edf_client(deadlines=(3, 300), periods=(400, 500),
                            wcets=(1, 1))
        result = edf_analysis(client, WCET)
        assert not result.schedulable
        assert result.failing_window == 0

    def test_requires_deadlines(self):
        tasks = TaskSystem(
            [Task(name="a", priority=1, wcet=5, type_tag=1)],
            {"a": SporadicCurve(100)},
        )
        client = RosslClient.make(tasks, [0], policy="edf")
        with pytest.raises(ValueError, match="deadline"):
            edf_analysis(client, WCET)

    def test_requires_curves(self):
        tasks = TaskSystem(
            [Task(name="a", priority=1, wcet=5, type_tag=1, deadline=50)]
        )
        client = RosslClient.make(tasks, [0], policy="edf")
        with pytest.raises(ValueError, match="arrival curve"):
            edf_analysis(client, WCET)

    def test_tighter_deadlines_harder(self):
        loose = edf_client(deadlines=(300, 400), periods=(300, 350), wcets=(30, 40))
        tight = edf_client(deadlines=(60, 70), periods=(300, 350), wcets=(30, 40))
        assert edf_schedulable(loose, WCET)
        # The tight variant may or may not pass, but it can never pass
        # when the loose one fails; here we check monotonicity holds in
        # the expected direction on this instance.
        if edf_schedulable(tight, WCET):
            assert edf_schedulable(loose, WCET)


class TestEdfSoundness:
    """If the test says schedulable, simulated runs miss no deadlines."""

    @pytest.mark.parametrize("seed", range(6))
    def test_no_deadline_misses_when_schedulable(self, seed: int):
        client = edf_client(deadlines=(150, 250), periods=(350, 450),
                            wcets=(12, 18))
        analysis = edf_analysis(client, WCET)
        assert analysis.schedulable
        rng = random.Random(seed)
        base = generate_arrivals(client, horizon=2_000, rng=rng, intensity=1.0)
        arrivals = with_deadline_payloads(base, client.tasks)
        result = simulate(client, arrivals, WCET, horizon=4_000,
                          durations=WcetDurations())
        completions = result.timed_trace.completions()
        for job, t_arr in job_arrival_times(result.timed_trace, arrivals).items():
            deadline = deadline_of(job.data)
            if deadline >= 4_000:
                continue  # horizon condition
            done = completions.get(job)
            assert done is not None, f"seed {seed}: {job} never completed"
            assert done <= deadline, (
                f"seed {seed}: {job} (arrived {t_arr}) completed {done} "
                f"after its deadline {deadline}"
            )

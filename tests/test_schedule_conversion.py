"""Tests for the timed-trace → schedule conversion and validity checks."""

from __future__ import annotations

import pytest

from repro.model.job import Job
from repro.model.task import TaskSystem
from repro.schedule.conversion import ConversionError, FiniteSchedule, Segment, convert
from repro.schedule.infinite import TotalSchedule
from repro.schedule.metrics import (
    blackout_in,
    max_blackout_over_windows,
    min_supply_over_windows,
    state_durations,
    supply_in,
    total_overhead,
    utilization_of,
)
from repro.schedule.states import (
    CompletionOvh,
    DispatchOvh,
    Executes,
    Idle,
    PollingOvh,
    ReadOvh,
    SelectionOvh,
    is_overhead,
    is_supply,
    job_of,
)
from repro.schedule.validity import (
    ScheduleValidityError,
    check_schedule_protocol,
    check_schedule_validity,
    check_state_bounds,
    instances,
)
from repro.timing.timed_trace import TimedTrace
from repro.timing.wcet import WcetModel
from repro.traces.markers import (
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
)

J1 = Job((1, 1), 0)  # lo priority under two_tasks
J2 = Job((2, 2), 1)  # hi priority
WCET = WcetModel(
    failed_read=3, success_read=4, selection=2, dispatch=2, completion=2, idling=3
)


def timed(markers, ts, horizon):
    return TimedTrace.make(markers, ts, horizon)


def one_job_trace():
    """Read J1, all-fail pass, then run it.  Unit timestamps except exec."""
    markers = [
        MReadS(), MReadE(0, J1),     # ReadOvh(J1):      [0, 4)
        MReadS(), MReadE(0, None),   # PollingOvh(J1):   [4, 7)
        MSelection(),                # SelectionOvh(J1): [7, 9)
        MDispatch(J1),               # DispatchOvh(J1):  [9, 11)
        MExecution(J1),              # Executes(J1):     [11, 21)
        MCompletion(J1),             # CompletionOvh(J1):[21, 23)
        MReadS(), MReadE(0, None),   # next polling, unresolved at horizon
    ]
    ts = [0, 2, 4, 6, 7, 9, 11, 21, 23, 24]
    return timed(markers, ts, 30)


class TestStates:
    def test_overhead_partition(self):
        assert is_overhead(ReadOvh(J1))
        assert is_overhead(PollingOvh(J1))
        assert is_supply(Idle())
        assert is_supply(Executes(J1))

    def test_job_of(self):
        assert job_of(Idle()) is None
        assert job_of(Executes(J1)) == J1


class TestConvertOneJob:
    def test_segments(self):
        schedule = convert(one_job_trace(), [0])
        expected = [
            (ReadOvh(J1), 0, 4),
            (PollingOvh(J1), 4, 7),
            (SelectionOvh(J1), 7, 9),
            (DispatchOvh(J1), 9, 11),
            (Executes(J1), 11, 21),
            (CompletionOvh(J1), 21, 23),
        ]
        assert [(s.state, s.start, s.end) for s in schedule] == expected

    def test_unresolved_tail_excluded(self):
        schedule = convert(one_job_trace(), [0])
        # The trailing polling reads (markers 8-9) are unresolved.
        assert schedule.end == 23

    def test_state_at(self):
        schedule = convert(one_job_trace(), [0])
        assert schedule.state_at(0) == ReadOvh(J1)
        assert schedule.state_at(6) == PollingOvh(J1)
        assert schedule.state_at(15) == Executes(J1)
        assert schedule.state_at(22) == CompletionOvh(J1)
        with pytest.raises(IndexError):
            schedule.state_at(23)


class TestConvertIdle:
    def test_idle_iteration_maps_to_idle(self):
        markers = [MReadS(), MReadE(0, None), MSelection(), MIdling()]
        ts = [0, 2, 3, 5]
        schedule = convert(timed(markers, ts, 8), [0])
        assert [(s.state, s.start, s.end) for s in schedule] == [(Idle(), 0, 8)]

    def test_consecutive_idle_iterations_merge(self):
        markers = [
            MReadS(), MReadE(0, None), MSelection(), MIdling(),
            MReadS(), MReadE(0, None), MSelection(), MIdling(),
        ]
        ts = [0, 2, 3, 5, 8, 10, 11, 13]
        schedule = convert(timed(markers, ts, 16), [0])
        assert len(schedule.segments) == 1
        assert schedule.segments[0] == Segment(Idle(), 0, 16)


class TestFailedReadAttribution:
    def test_fails_before_success_become_read_ovh(self):
        # Two sockets: fail on 0, succeed on 1 → one ReadOvh(J1) from 0.
        markers = [
            MReadS(), MReadE(0, None),
            MReadS(), MReadE(1, J1),
            MReadS(), MReadE(0, None),
            MReadS(), MReadE(1, None),
            MSelection(), MDispatch(J1), MExecution(J1), MCompletion(J1),
        ]
        ts = [0, 2, 4, 6, 8, 10, 12, 14, 15, 17, 19, 29]
        schedule = convert(timed(markers, ts, 31), [0, 1])
        read_segments = instances(schedule, ReadOvh)
        assert len(read_segments) == 1
        assert (read_segments[0].start, read_segments[0].end) == (0, 8)
        polling = instances(schedule, PollingOvh)
        assert len(polling) == 1
        assert (polling[0].start, polling[0].end) == (8, 15)

    def test_trailing_fails_of_successful_pass_join_polling_ovh(self):
        # One socket: success, then the all-fail pass; PollingOvh covers
        # only the all-fail pass here.  With a success on socket 0 of a
        # two-socket pass and a fail on socket 1, the trailing fail joins
        # PollingOvh.
        markers = [
            MReadS(), MReadE(0, J1),
            MReadS(), MReadE(1, None),   # trailing fail of success pass
            MReadS(), MReadE(0, None),
            MReadS(), MReadE(1, None),   # all-fail pass
            MSelection(), MDispatch(J1), MExecution(J1), MCompletion(J1),
        ]
        ts = [0, 2, 4, 6, 8, 10, 12, 14, 15, 17, 19, 29]
        schedule = convert(timed(markers, ts, 31), [0, 1])
        polling = instances(schedule, PollingOvh)
        assert len(polling) == 1
        assert (polling[0].start, polling[0].end) == (4, 15)

    def test_idle_absorbs_failed_polling(self):
        markers = [
            MReadS(), MReadE(0, None),
            MReadS(), MReadE(1, None),
            MSelection(), MIdling(),
        ]
        ts = [0, 2, 4, 6, 7, 9]
        schedule = convert(timed(markers, ts, 12), [0, 1])
        assert [(s.state, s.start, s.end) for s in schedule] == [(Idle(), 0, 12)]


class TestConvertErrors:
    def test_protocol_violation_raises_conversion_error(self):
        markers = [MSelection()]
        with pytest.raises(ConversionError, match="rejected"):
            convert(timed(markers, [0], 2), [0])

    def test_empty_trace_gives_empty_schedule(self):
        schedule = convert(timed([], [], 0), [0])
        assert schedule.duration == 0


class TestFiniteScheduleInvariants:
    def test_gap_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            FiniteSchedule((Segment(Idle(), 0, 2), Segment(Idle(), 3, 4)), 0, 4)

    def test_wrong_end_rejected(self):
        with pytest.raises(ValueError, match="claims"):
            FiniteSchedule((Segment(Idle(), 0, 2),), 0, 5)


class TestValidity:
    def test_one_job_schedule_valid(self, two_tasks: TaskSystem):
        schedule = convert(one_job_trace(), [0])
        check_schedule_validity(schedule, two_tasks, WCET, num_sockets=1)

    def test_state_bound_violation_detected(self, two_tasks: TaskSystem):
        # Stretch the Executes segment beyond lo's WCET of 10.
        bad = FiniteSchedule(
            (
                Segment(PollingOvh(J1), 0, 2),
                Segment(SelectionOvh(J1), 2, 3),
                Segment(DispatchOvh(J1), 3, 4),
                Segment(Executes(J1), 4, 40),
                Segment(CompletionOvh(J1), 40, 41),
            ),
            0,
            41,
        )
        with pytest.raises(ScheduleValidityError, match="state-wcet"):
            check_state_bounds(bad, two_tasks, WCET, num_sockets=1)

    def test_protocol_requires_read_before_execute(self):
        bad = FiniteSchedule(
            (
                Segment(PollingOvh(J1), 0, 2),
                Segment(SelectionOvh(J1), 2, 3),
                Segment(DispatchOvh(J1), 3, 4),
                Segment(Executes(J1), 4, 9),
                Segment(CompletionOvh(J1), 9, 10),
            ),
            0,
            10,
        )
        with pytest.raises(ScheduleValidityError, match="never read"):
            check_schedule_protocol(bad)

    def test_protocol_requires_polling_before_selection(self):
        bad = FiniteSchedule(
            (Segment(SelectionOvh(J1), 0, 1),),
            0,
            1,
        )
        with pytest.raises(ScheduleValidityError, match="preceding PollingOvh"):
            check_schedule_protocol(bad)

    def test_idle_has_no_bound(self, two_tasks: TaskSystem):
        long_idle = FiniteSchedule((Segment(Idle(), 0, 100_000),), 0, 100_000)
        check_state_bounds(long_idle, two_tasks, WCET, num_sockets=1)


class TestMetrics:
    def test_blackout_and_supply(self):
        schedule = convert(one_job_trace(), [0])
        # Overheads: [0,11) and [21,23); Executes: [11,21).
        assert blackout_in(schedule, 0, 23) == 13
        assert supply_in(schedule, 0, 23) == 10
        assert total_overhead(schedule) == 13

    def test_window_clipping(self):
        schedule = convert(one_job_trace(), [0])
        assert supply_in(schedule, 20, 100) == 1

    def test_max_blackout_window(self):
        schedule = convert(one_job_trace(), [0])
        assert max_blackout_over_windows(schedule, 11) == 11
        assert max_blackout_over_windows(schedule, 23) == 13

    def test_min_supply_window(self):
        schedule = convert(one_job_trace(), [0])
        assert min_supply_over_windows(schedule, 11) == 0
        assert min_supply_over_windows(schedule, 23) == 10

    def test_degenerate_windows(self):
        schedule = convert(one_job_trace(), [0])
        assert max_blackout_over_windows(schedule, 0) == 0
        assert max_blackout_over_windows(schedule, 1000) == 0

    def test_state_durations(self):
        schedule = convert(one_job_trace(), [0])
        durations = state_durations(schedule)
        assert durations["Executes"] == 10
        assert durations["ReadOvh"] == 4

    def test_utilization(self):
        schedule = convert(one_job_trace(), [0])
        assert utilization_of(schedule) == pytest.approx(10 / 23)


class TestTotalSchedule:
    def test_idle_outside_prefix(self):
        total = TotalSchedule(convert(one_job_trace(), [0]))
        assert total(22) == CompletionOvh(J1)
        assert total(23) == Idle()
        assert total(10_000) == Idle()

    def test_negative_time_rejected(self):
        total = TotalSchedule(convert(one_job_trace(), [0]))
        with pytest.raises(IndexError):
            total(-1)

    def test_service_accumulation(self):
        total = TotalSchedule(convert(one_job_trace(), [0]))
        assert total.service_in(J1, 0, 100) == 10
        assert total.service_in(J1, 0, 16) == 5
        assert total.service_in(J2, 0, 100) == 0

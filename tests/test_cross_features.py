"""Cross-feature tests: EDF on the VM, struct-array aggregates in the
language stack, and serialization round trips on generated traces."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edf import build_edf_rossl, edf_priority, with_deadline_payloads
from repro.lang.compile import compile_program
from repro.lang.errors import OutOfFuel
from repro.lang.interp import run_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck
from repro.lang.values import VInt
from repro.lang.vm import run_compiled
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.env import HorizonReached, ScriptedEnvironment
from repro.rossl.runtime import TraceRecorder
from repro.rossl.vmtiming import simulate_vm
from repro.rta.curves import SporadicCurve
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.traces.serialize import trace_from_json, trace_to_json
from repro.traces.validity import tr_valid


def edf_client() -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="a", priority=0, wcet=10, type_tag=1, deadline=5_000),
            Task(name="b", priority=0, wcet=15, type_tag=2, deadline=9_000),
        ],
        {"a": SporadicCurve(8_000), "b": SporadicCurve(9_000)},
    )
    return RosslClient.make(tasks, [0], policy="edf")


class TestEdfOnVm:
    def test_edf_minic_runs_on_vm_matching_interpreter(self):
        client = edf_client()
        typed = build_edf_rossl(client)
        compiled = compile_program(typed)
        script = [(1, 500, 7), (2, 100, 8), None, (1, 80, 9), None, None, None]

        def run(engine):
            recorder = TraceRecorder()
            try:
                engine(recorder)
            except (OutOfFuel, HorizonReached):
                pass
            return recorder.trace

        trace_interp = run(lambda r: run_program(
            typed, ScriptedEnvironment(script), r, fuel=500_000))
        trace_vm = run(lambda r: run_compiled(
            compiled, ScriptedEnvironment(script), r, fuel=5_000_000))
        assert trace_interp == trace_vm
        assert tr_valid(trace_vm, edf_priority)

    def test_edf_vm_timed_run(self):
        """EDF under instruction-count time: the vmtiming driver works
        for the EDF policy too (it compiles via the client's policy)."""
        client = edf_client()
        arrivals = with_deadline_payloads(
            ArrivalSequence([Arrival(1_000, 0, (1, 1)), Arrival(1_000, 0, (2, 2))]),
            client.tasks,
        )
        run = simulate_vm(client, arrivals, 80_000)
        completions = run.timed_trace.completions()
        assert len(completions) == 2
        assert tr_valid(run.timed_trace.trace, edf_priority)
        # The job with the earlier absolute deadline completes first.
        by_deadline = sorted(completions, key=lambda j: j.data[1])
        assert completions[by_deadline[0]] < completions[by_deadline[1]]


AGGREGATE_SOURCE = """
struct pair { int a; int b; };
struct grid {
    struct pair cells[3];
    int n;
};

int total(struct grid *g) {
    int s = 0;
    int i = 0;
    while (i < g->n) {
        s = s + g->cells[i].a + g->cells[i].b;
        i = i + 1;
    }
    return s;
}

int main() {
    struct grid g;
    g.n = 3;
    int i = 0;
    while (i < 3) {
        g.cells[i].a = i;
        g.cells[i].b = 10 * i;
        i = i + 1;
    }
    return total(&g);
}
"""


class TestAggregates:
    def test_layout_of_struct_array_field(self):
        typed = typecheck(parse_program(AGGREGATE_SOURCE))
        layout = typed.layouts["grid"]
        assert layout.size == 7
        assert layout.offsets == {"cells": 0, "n": 6}

    def test_interpreter_and_vm_agree(self):
        typed = typecheck(parse_program(AGGREGATE_SOURCE))
        expected = (0 + 0) + (1 + 10) + (2 + 20)
        interp = run_program(typed, ScriptedEnvironment([]), TraceRecorder())
        vm = run_compiled(
            compile_program(typed), ScriptedEnvironment([]), TraceRecorder()
        )
        assert interp == vm == VInt(expected)

    def test_out_of_bounds_struct_array_detected(self):
        source = AGGREGATE_SOURCE.replace("g.n = 3;", "g.n = 4;")
        typed = typecheck(parse_program(source))
        from repro.lang.errors import UndefinedBehavior

        with pytest.raises(UndefinedBehavior):
            run_program(typed, ScriptedEnvironment([]), TraceRecorder())
        with pytest.raises(UndefinedBehavior):
            run_compiled(
                compile_program(typed), ScriptedEnvironment([]), TraceRecorder()
            )

    def test_pretty_roundtrip_of_aggregates(self):
        from repro.lang.pretty import pretty
        from repro.lang.syntax import ast_equal

        program = parse_program(AGGREGATE_SOURCE)
        assert ast_equal(program, parse_program(pretty(program)))


class TestSerializationProperty:
    @given(st.integers(0, 10_000), st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_random_scheduler_traces_roundtrip(self, seed: int, length: int):
        """Any trace the scheduler can emit survives JSON round trip."""
        rng = random.Random(seed)
        tasks = TaskSystem(
            [
                Task(name="x", priority=1, wcet=5, type_tag=1),
                Task(name="y", priority=2, wcet=5, type_tag=2),
            ]
        )
        client = RosslClient.make(tasks, [0, 1][: rng.randint(1, 2)])
        script = [
            None if rng.random() < 0.5 else (rng.choice([1, 2]), rng.randrange(9))
            for _ in range(length)
        ]
        trace = client.model().run_to_trace(ScriptedEnvironment(script))
        assert trace_from_json(trace_to_json(trace)) == trace

"""Tests for the MiniC pretty printer, including round-trips on the
real Rössl source."""

from __future__ import annotations

import pytest

from repro.lang.parser import parse_expression, parse_program
from repro.lang.pretty import pretty, pretty_expr, pretty_type
from repro.lang.syntax import TInt, TPtr, TStruct, ast_equal
from repro.lang.typecheck import typecheck
from repro.rossl.client import RosslClient
from repro.rossl.source import rossl_source


def roundtrip(source: str) -> None:
    program = parse_program(source)
    printed = pretty(program)
    reparsed = parse_program(printed)
    assert ast_equal(program, reparsed), printed


class TestPrettyTypes:
    def test_scalar_types(self):
        assert pretty_type(TInt()) == "int"
        assert pretty_type(TPtr(TInt())) == "int *"
        assert pretty_type(TPtr(TPtr(TStruct("s")))) == "struct s * *"


class TestPrettyExpr:
    def check(self, source: str, expected: str | None = None):
        expr = parse_expression(source)
        printed = pretty_expr(expr)
        assert ast_equal(expr, parse_expression(printed)), printed
        if expected is not None:
            assert printed == expected

    def test_precedence_no_redundant_parens(self):
        self.check("1 + 2 * 3", "1 + 2 * 3")

    def test_parens_kept_when_needed(self):
        self.check("(1 + 2) * 3", "(1 + 2) * 3")

    def test_left_associativity(self):
        self.check("1 - 2 - 3", "1 - 2 - 3")
        self.check("1 - (2 - 3)", "1 - (2 - 3)")

    def test_unary_chains_lex_safely(self):
        self.check("-(-x)")
        self.check("!(!x)")
        self.check("&a[0]")

    def test_postfix_chain(self):
        self.check("a->b.c[2]", "a->b.c[2]")

    def test_mixed_logic(self):
        self.check("a && b || c", "a && b || c")
        self.check("a && (b || c)", "a && (b || c)")

    def test_calls_and_sizeof(self):
        self.check("f(1, g(x), sizeof(struct s))")


class TestPrettyProgram:
    def test_small_program_roundtrip(self):
        roundtrip(
            "struct node { int v; int data[4]; struct node *next; };"
            "int sum(struct node *head) {"
            "  int s = 0;"
            "  while (head != NULL) { s = s + head->v; head = head->next; }"
            "  return s;"
            "}"
        )

    def test_control_flow_roundtrip(self):
        roundtrip(
            "int f(int x) {"
            "  if (x < 0) { return -x; } else if (x == 0) { return 1; }"
            "  while (1) { x = x - 1; if (x < 3) { break; } continue; }"
            "  return x;"
            "}"
        )

    def test_rossl_source_roundtrip(self, two_socket_client: RosslClient):
        source = rossl_source(two_socket_client)
        program = parse_program(source)
        printed = pretty(program)
        reparsed = parse_program(printed)
        assert ast_equal(program, reparsed)
        # The printed source must also typecheck.
        typecheck(reparsed)

    def test_printed_rossl_runs_identically(self, two_task_client: RosslClient):
        """Parsing the pretty-printed Rössl gives the same traces."""
        from repro.lang.interp import run_program
        from repro.lang.errors import OutOfFuel
        from repro.rossl.env import HorizonReached, ScriptedEnvironment
        from repro.rossl.runtime import TraceRecorder

        original = parse_program(rossl_source(two_task_client))
        reparsed = parse_program(pretty(original))
        script = [(1, 5), (2, 6), None, None, None]
        traces = []
        for program in (original, reparsed):
            typed = typecheck(program)
            recorder = TraceRecorder()
            try:
                run_program(typed, ScriptedEnvironment(script), recorder,
                            fuel=100_000)
            except (OutOfFuel, HorizonReached):
                pass
            traces.append(recorder.trace)
        assert traces[0] == traces[1]
        assert len(traces[0]) > 5

"""Tests for the response-time analysis: jitter, SBF, aRSA solver, the
composed overhead-aware bound, and its soundness against simulation."""

from __future__ import annotations

import random

import pytest

from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.arsa import blocking_bound, busy_window_bound, solve_response_time
from repro.rta.baselines import ideal_npfp_bound, utilization
from repro.rta.curves import SporadicCurve, release_curve
from repro.rta.exact import count_sequences, exact_worst_responses
from repro.rta.jitter import jitter_bound
from repro.rta.npfp import analyse, response_time_bound
from repro.rta.sbf import (
    IdealSupply,
    SupplyBoundFunction,
    blackout_bound,
    make_sbf,
)
from repro.sim.simulator import UniformDurations, WcetDurations, simulate
from repro.sim.workloads import generate_arrivals
from repro.timing.wcet import WcetModel

WCET = WcetModel(
    failed_read=2, success_read=2, selection=1, dispatch=1, completion=1, idling=1
)
# failed_read/success_read must exceed 1; the smallest legal model:
WCET = WcetModel(
    failed_read=2, success_read=2, selection=1, dispatch=1, completion=1, idling=1
)


def make_client(periods: dict[str, int], wcets: dict[str, int], sockets=(0,)):
    """Client with sporadic tasks; priority = reverse alphabetical rank
    given explicitly below."""
    priorities = {name: i + 1 for i, name in enumerate(sorted(periods))}
    tasks = TaskSystem(
        [
            Task(name=n, priority=priorities[n], wcet=wcets[n], type_tag=i + 1)
            for i, n in enumerate(sorted(periods))
        ],
        {n: SporadicCurve(p) for n, p in periods.items()},
    )
    return RosslClient.make(tasks, sockets)


class TestJitter:
    def test_formula(self):
        j = jitter_bound(WCET, num_sockets=1)
        # PB = (2*1-1)*2 = 2, SB = 1, DB = 1, IB = 1*2 + 1 + 1 = 4
        assert j.polling == 2
        assert j.idle == 4
        assert j.bound == 1 + max(2 + 1 + 1, 4)

    def test_more_sockets_more_jitter(self):
        assert (
            jitter_bound(WCET, 4).bound > jitter_bound(WCET, 1).bound
        )

    def test_rejects_bad_socket_count(self):
        with pytest.raises(ValueError):
            jitter_bound(WCET, 0)


class TestSbf:
    def curves(self, period: int, jitter: int):
        return [release_curve(SporadicCurve(period), jitter)]

    def test_sbf_zero_at_zero(self):
        sbf = SupplyBoundFunction(self.curves(100, 5), WCET, 1)
        assert sbf(0) == 0

    def test_sbf_monotone_and_sublinear(self):
        sbf = SupplyBoundFunction(self.curves(50, 5), WCET, 1)
        values = [sbf(d) for d in range(0, 300)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert all(v <= d for d, v in enumerate(values))

    def test_sbf_eventually_positive_for_light_load(self):
        sbf = SupplyBoundFunction(self.curves(1000, 5), WCET, 1)
        assert sbf(200) > 0

    def test_blackout_bound_grows_with_sockets(self):
        curves = self.curves(100, 5)
        assert blackout_bound(50, curves, WCET, 4) > blackout_bound(50, curves, WCET, 1)

    def test_inverse(self):
        sbf = SupplyBoundFunction(self.curves(1000, 5), WCET, 1)
        for demand in (1, 5, 40):
            least = sbf.inverse(demand, 10_000)
            assert least is not None
            assert sbf(least) >= demand
            assert least == 0 or sbf(least - 1) < demand

    def test_inverse_unreachable(self):
        sbf = SupplyBoundFunction(self.curves(1000, 5), WCET, 1)
        assert sbf.inverse(10**9, 100) is None

    def test_ideal_supply(self):
        ideal = IdealSupply()
        assert ideal(17) == 17
        assert ideal.inverse(5, 100) == 5
        assert ideal.inverse(101, 100) is None


class TestArsaSolver:
    def test_blocking_bound(self):
        client = make_client(
            {"a": 100, "b": 100, "c": 100}, {"a": 10, "b": 20, "c": 30}
        )
        tasks = client.tasks
        # priorities: a=1 < b=2 < c=3.
        assert blocking_bound(tasks.by_name("c"), tasks.tasks) == 19
        assert blocking_bound(tasks.by_name("b"), tasks.tasks) == 9
        assert blocking_bound(tasks.by_name("a"), tasks.tasks) == 0

    def test_single_task_ideal_bound_is_wcet(self):
        client = make_client({"a": 1000}, {"a": 10})
        tasks = client.tasks
        curves = {"a": SporadicCurve(1000)}
        result = solve_response_time(
            tasks.by_name("a"), tasks.tasks, curves, IdealSupply()
        )
        assert result is not None
        # Alone on an ideal processor: starts immediately, runs C.
        assert result.response_bound == 10

    def test_highest_priority_with_blocking(self):
        client = make_client({"a": 1000, "b": 1000}, {"a": 30, "b": 10})
        tasks = client.tasks
        curves = {n: SporadicCurve(1000) for n in ("a", "b")}
        result = solve_response_time(
            tasks.by_name("b"), tasks.tasks, curves, IdealSupply()
        )
        assert result is not None
        # Blocking C_a - 1 = 29, then own C = 10.
        assert result.response_bound == 29 + 10

    def test_lower_priority_suffers_interference(self):
        client = make_client({"a": 100, "b": 50}, {"a": 10, "b": 10})
        tasks = client.tasks
        curves = {"a": SporadicCurve(100), "b": SporadicCurve(50)}
        low = solve_response_time(tasks.by_name("a"), tasks.tasks, curves, IdealSupply())
        high = solve_response_time(tasks.by_name("b"), tasks.tasks, curves, IdealSupply())
        assert low is not None and high is not None
        assert low.response_bound > high.response_bound

    def test_overload_returns_none(self):
        client = make_client({"a": 10, "b": 10}, {"a": 8, "b": 8})
        tasks = client.tasks
        curves = {n: SporadicCurve(10) for n in ("a", "b")}
        assert (
            solve_response_time(
                tasks.by_name("a"), tasks.tasks, curves, IdealSupply(), horizon=5000
            )
            is None
        )

    def test_busy_window_closes_for_light_load(self):
        client = make_client({"a": 1000}, {"a": 10})
        tasks = client.tasks
        curves = {"a": SporadicCurve(1000)}
        window = busy_window_bound(
            tasks.by_name("a"), tasks.tasks, curves, IdealSupply(), 10_000
        )
        assert window == 10


class TestOverheadAwareAnalysis:
    def test_requires_curves(self, two_tasks: TaskSystem):
        client = RosslClient.make(two_tasks, [0])
        with pytest.raises(ValueError, match="arrival curve"):
            analyse(client, WCET)

    def test_bounds_exceed_ideal(self):
        client = make_client({"a": 500, "b": 300}, {"a": 20, "b": 10})
        result = analyse(client, WCET)
        assert result.schedulable
        for name in ("a", "b"):
            aware = result.response_time_bound(name)
            ideal = ideal_npfp_bound(client, name)
            assert ideal is not None
            assert aware > ideal

    def test_rows_report(self):
        client = make_client({"a": 500, "b": 300}, {"a": 20, "b": 10})
        rows = analyse(client, WCET).rows()
        assert len(rows) == 2
        for name, wcet, prio, release, total in rows:
            assert total == release + analyse(client, WCET).jitter.bound

    def test_unschedulable_reported(self):
        client = make_client({"a": 12, "b": 12}, {"a": 9, "b": 9})
        result = analyse(client, WCET, horizon=3000)
        assert not result.schedulable
        rows = dict((r[0], r[4]) for r in result.rows())
        assert rows["a"] is None

    def test_convenience_single_task(self):
        client = make_client({"a": 800}, {"a": 15})
        bound = response_time_bound(client, WCET, "a")
        assert bound is not None and bound > 15


class TestUtilization:
    def test_value(self):
        client = make_client({"a": 100}, {"a": 10})
        assert utilization(client.tasks) == pytest.approx(0.1, abs=0.01)

    def test_rejects_bad_window(self):
        client = make_client({"a": 100}, {"a": 10})
        with pytest.raises(ValueError):
            utilization(client.tasks, window=0)


@pytest.fixture(scope="module")
def exhaustive_client():
    # Light enough to be schedulable under the conservative SBF
    # (per-job overhead is RB+PB+SB+DB+CB = 7 here), tight enough that
    # exhaustive exploration still visits hundreds of scenarios.
    return make_client({"a": 30, "b": 40}, {"a": 2, "b": 3})


@pytest.fixture(scope="module")
def random_sim_client():
    return make_client(
        {"a": 300, "b": 200, "c": 150}, {"a": 25, "b": 12, "c": 6}
    )


@pytest.fixture(scope="module")
def random_sim_analysis(random_sim_client):
    result = analyse(random_sim_client, WCET)
    assert result.schedulable
    return result


class TestSoundness:
    """The analytic bound must dominate every observed response time."""

    def test_against_exhaustive_exploration(self, exhaustive_client):
        result = analyse(exhaustive_client, WCET)
        assert result.schedulable
        worst = exact_worst_responses(
            exhaustive_client, WCET, arrival_horizon=31, max_jobs_per_task=2
        )
        assert max(worst.values()) > 0  # the exploration did run jobs
        for name, observed in worst.items():
            assert observed <= result.response_time_bound(name), (
                f"task {name}: observed {observed} > bound "
                f"{result.response_time_bound(name)}"
            )

    def test_exploration_visits_many_sequences(self, exhaustive_client):
        assert count_sequences(exhaustive_client, horizon=31, max_jobs_per_task=2) > 500

    @pytest.mark.parametrize("seed", range(8))
    def test_against_randomized_simulation(
        self, seed: int, random_sim_client, random_sim_analysis
    ):
        rng = random.Random(seed)
        arrivals = generate_arrivals(
            random_sim_client, horizon=2000, rng=rng, intensity=1.2
        )
        policy = WcetDurations() if seed % 2 == 0 else UniformDurations(rng)
        sim = simulate(
            random_sim_client, arrivals, WCET, horizon=3000, durations=policy
        )
        for job, (_, _, response) in sim.response_times().items():
            name = random_sim_client.tasks.msg_to_task(job.data).name
            assert response <= random_sim_analysis.response_time_bound(name), (
                f"seed {seed}: job {job} of {name} responded in {response} > "
                f"bound {random_sim_analysis.response_time_bound(name)}"
            )

"""Tests for repro.serve: protocol, pool, batching, admission, daemon.

The contract under test everywhere: a daemon response's ``stdout`` is
byte-identical to what the offline CLI prints for the same invocation —
the service changes where analyses run, never what they answer.
"""

from __future__ import annotations

import asyncio
import contextlib
import io
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cache import cache_stats_payload
from repro.cli import main
from repro.serve import (
    AdmissionController,
    ClassPolicy,
    MicroBatcher,
    ProtocolError,
    Request,
    ResidentPool,
    Response,
    ServeClient,
    ServeConfig,
    ServerThread,
    batch_key,
    execute_batch,
    execute_request,
    parse_request,
)
from repro.serve.pool import JOB_PING

SPEC = {
    "policy": "npfp",
    "sockets": [0],
    "wcet": {
        "failed_read": 2, "success_read": 2, "selection": 1,
        "dispatch": 1, "completion": 1, "idling": 1,
    },
    "tasks": [
        {
            "name": "a", "priority": 2, "wcet": 10, "type_tag": 1,
            "curve": {"kind": "sporadic", "min_separation": 300},
        },
        {
            "name": "b", "priority": 1, "wcet": 20, "type_tag": 2,
            "curve": {"kind": "leaky-bucket", "burst": 2,
                      "rate_separation": 500},
        },
    ],
}

EDF_SPEC = json.loads(json.dumps(SPEC))
EDF_SPEC["policy"] = "edf"
EDF_SPEC["tasks"][0]["deadline"] = 200
EDF_SPEC["tasks"][1]["deadline"] = 900


def cli_capture(argv: list[str]) -> tuple[str, str, int]:
    """(stdout, stderr, exit code) of one offline CLI invocation."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main(argv)
    return out.getvalue(), err.getvalue(), code


@pytest.fixture(scope="module")
def spec_file(tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("serve") / "spec.json"
    path.write_text(json.dumps(SPEC))
    return str(path)


@pytest.fixture(scope="module")
def edf_spec_file(tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("serve-edf") / "edf.json"
    path.write_text(json.dumps(EDF_SPEC))
    return str(path)


@pytest.fixture(scope="module")
def daemon():
    """One shared daemon for the read-only end-to-end tests."""
    with ServerThread(ServeConfig(port=0, workers=2)) as srv:
        yield srv


# -- protocol ---------------------------------------------------------------


class TestProtocol:
    def test_parse_request_roundtrip(self):
        request = parse_request(json.dumps({
            "command": "analyze", "spec": SPEC,
            "options": {"horizon": 50_000}, "request_id": "r1",
        }))
        assert request.command == "analyze"
        assert request.option("horizon") == 50_000
        assert request.request_id == "r1"

    @pytest.mark.parametrize("body, fragment", [
        ("[]", "JSON object"),
        ("{not json", "not JSON"),
        (json.dumps({"command": "explode", "spec": {}}), "unknown command"),
        (json.dumps({"command": "analyze", "spec": 3}), "'spec'"),
        (json.dumps({"command": "analyze", "spec": {}, "options": 7}),
         "'options'"),
        (json.dumps({"command": "analyze", "spec": {},
                     "options": {"depth": 4}}), "not valid for"),
        (json.dumps({"command": "analyze", "spec": {},
                     "options": {"horizon": True}}), "must be an integer"),
        (json.dumps({"command": "analyze", "spec": {},
                     "options": {"horizon": "big"}}), "must be int"),
    ])
    def test_parse_request_rejects(self, body, fragment):
        with pytest.raises(ProtocolError, match=re.escape(fragment)):
            parse_request(body)

    def test_batch_key_analyze_only(self):
        analyze = Request(command="analyze", spec=SPEC)
        verify = Request(command="verify", spec=SPEC)
        assert batch_key(verify) is None
        assert batch_key(analyze) is not None
        # same options (different specs) share a key …
        other = Request(command="analyze", spec=EDF_SPEC)
        assert batch_key(analyze) == batch_key(other)
        # … different options do not.
        horizoned = Request(
            command="analyze", spec=SPEC, options={"horizon": 9}
        )
        assert batch_key(analyze) != batch_key(horizoned)

    def test_response_json_roundtrip(self):
        response = Response(
            request_id="r", command="analyze", status=200,
            exit_code=1, stdout="out\n", stderr="",
        )
        assert Response.from_json(response.to_json()) == response


# -- worker-side execution (no daemon needed) -------------------------------


class TestExecution:
    def test_analyze_matches_cli(self, spec_file):
        offline, _, code = cli_capture(["analyze", spec_file])
        response = execute_request(Request(command="analyze", spec=SPEC))
        assert response.status == 200
        assert response.stdout == offline
        assert response.exit_code == code

    def test_analyze_edf_matches_cli(self, edf_spec_file):
        offline, _, code = cli_capture(["analyze", edf_spec_file])
        response = execute_request(Request(command="analyze", spec=EDF_SPEC))
        assert response.stdout == offline
        assert response.exit_code == code

    def test_verify_matches_cli(self, spec_file):
        offline, _, code = cli_capture(["verify", spec_file, "--depth", "2"])
        response = execute_request(
            Request(command="verify", spec=SPEC, options={"depth": 2})
        )
        assert response.stdout == offline
        assert response.exit_code == code

    def test_lint_matches_cli(self, spec_file):
        offline, _, code = cli_capture(["lint", "--json", spec_file])
        response = execute_request(
            Request(command="lint", spec=SPEC,
                    options={"source_name": spec_file})
        )
        assert response.stdout == offline
        assert response.exit_code == code

    def test_simulate_matches_cli(self, spec_file):
        offline, _, code = cli_capture(
            ["simulate", spec_file, "--runs", "2", "--horizon", "5000"]
        )
        response = execute_request(
            Request(command="simulate", spec=SPEC,
                    options={"runs": 2, "horizon": 5000})
        )
        assert response.stdout == offline
        assert response.exit_code == code

    def test_bad_spec_is_400_not_crash(self):
        response = execute_request(
            Request(command="analyze", spec={"tasks": "nonsense"})
        )
        assert response.status == 400
        assert response.exit_code == 2
        assert "error" in response.stderr

    def test_batch_matches_solo(self):
        requests = [
            Request(command="analyze", spec=SPEC, request_id="a"),
            Request(command="analyze", spec=EDF_SPEC, request_id="b"),
            Request(command="analyze", spec=SPEC, request_id="c"),
        ]
        solo = [execute_request(r) for r in requests]
        batched = execute_batch(requests)
        assert batched == solo


# -- resident pool ----------------------------------------------------------


class TestResidentPool:
    def test_ping_and_stats(self):
        with ResidentPool(workers=2) as pool:
            pids = {pool.submit(JOB_PING, None) for _ in range(4)}
            assert pids <= set(pool.worker_pids())
            stats = pool.stats()
            assert stats["alive"] == 2
            assert stats["jobs_ok"] == 4

    def test_dead_idle_worker_is_replaced_before_dispatch(self):
        with ResidentPool(workers=1) as pool:
            pool.submit(JOB_PING, None)
            (pid,) = pool.worker_pids()
            os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except OSError:
                    break
                time.sleep(0.01)
            fresh = pool.submit(JOB_PING, None)
            assert fresh != pid
            assert pool.respawns == 1

    def test_campaign_bit_identical_to_serial(self):
        from repro.analysis.adequacy import run_adequacy_campaign
        from repro.config import parse_deployment

        deployment = parse_deployment(SPEC)
        serial = run_adequacy_campaign(
            deployment.client, deployment.wcet, horizon=5000, runs=12, seed=3
        )
        with ResidentPool(workers=2) as pool:
            warm = run_adequacy_campaign(
                deployment.client, deployment.wcet,
                horizon=5000, runs=12, seed=3, pool=pool,
            )
            again = run_adequacy_campaign(
                deployment.client, deployment.wcet,
                horizon=5000, runs=12, seed=3, pool=pool,
            )
        assert warm.table() == serial.table()
        assert warm.to_json() == serial.to_json()
        assert again.to_json() == serial.to_json()


# -- micro-batching ---------------------------------------------------------


class TestMicroBatcher:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_concurrent_compatible_requests_coalesce(self):
        dispatched: list[list[str]] = []

        async def dispatch(requests):
            dispatched.append([r.request_id for r in requests])
            return [
                Response(request_id=r.request_id, command=r.command,
                         status=200, exit_code=0, stdout=r.request_id)
                for r in requests
            ]

        async def scenario():
            batcher = MicroBatcher(dispatch, window_s=0.05, max_batch=8)
            responses = await asyncio.gather(*[
                batcher.submit(
                    Request(command="analyze", spec=SPEC, request_id=f"r{i}")
                )
                for i in range(5)
            ])
            await batcher.drain()
            return responses

        responses = self._run(scenario())
        # one coalesced dispatch; every caller got its own answer back
        assert [len(group) for group in dispatched] == [5]
        assert [r.stdout for r in responses] == [f"r{i}" for i in range(5)]

    def test_max_batch_flushes_early(self):
        sizes: list[int] = []

        async def dispatch(requests):
            sizes.append(len(requests))
            return [
                Response(request_id=r.request_id, command=r.command,
                         status=200, exit_code=0, stdout="")
                for r in requests
            ]

        async def scenario():
            batcher = MicroBatcher(dispatch, window_s=10.0, max_batch=2)
            await asyncio.gather(*[
                batcher.submit(
                    Request(command="analyze", spec=SPEC, request_id=str(i))
                )
                for i in range(4)
            ])
            await batcher.drain()

        self._run(scenario())
        assert sizes == [2, 2]  # window never expires; max_batch drives it

    def test_incompatible_requests_dispatch_alone(self):
        sizes: list[int] = []

        async def dispatch(requests):
            sizes.append(len(requests))
            return [
                Response(request_id=r.request_id, command=r.command,
                         status=200, exit_code=0, stdout="")
                for r in requests
            ]

        async def scenario():
            batcher = MicroBatcher(dispatch, window_s=10.0, max_batch=8)
            await batcher.submit(Request(command="verify", spec=SPEC))
            await batcher.drain()

        self._run(scenario())
        assert sizes == [1]


# -- admission control ------------------------------------------------------


class _ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestAdmission:
    POLICIES = (
        ClassPolicy("analyze", priority=3, deadline_ms=2_000,
                    default_cost_ms=50),
        ClassPolicy("verify", priority=2, deadline_ms=10_000,
                    default_cost_ms=500),
    )

    def test_light_traffic_admits(self):
        clock = _ManualClock()
        controller = AdmissionController(2, self.POLICIES, clock=clock)
        for _ in range(10):
            verdict = controller.admit("analyze")
            assert verdict.admitted
            controller.on_admit("analyze")
            controller.on_complete("analyze", 0.05)
            clock.advance(1.0)

    def test_backlog_sheds_fast(self):
        clock = _ManualClock()
        controller = AdmissionController(1, self.POLICIES, clock=clock)
        # 50 admitted-but-unfinished analyzes at the 64ms quantized cost
        # estimate exceed the 2s deadline on one worker.
        for _ in range(50):
            controller.on_admit("analyze")
        verdict = controller.admit("analyze")
        assert not verdict.admitted
        assert "backlog" in verdict.reason
        assert verdict.retry_after >= 1
        assert controller.shed == 1

    def test_sustained_overload_trips_the_rta_check(self):
        clock = _ManualClock()
        controller = AdmissionController(1, self.POLICIES, clock=clock)
        # Sustained: one 400ms verify every 100ms, forever.  Individually
        # each fits its 10s deadline with an empty queue, so the backlog
        # check alone would keep admitting; the sporadic self-model says
        # the busy window never closes.
        shed = []
        for _ in range(80):
            verdict = controller.admit("verify")
            shed.append(not verdict.admitted)
            if verdict.admitted:
                controller.on_admit("verify")
                controller.on_complete("verify", 0.4)
            clock.advance(0.1)
        assert not any(shed[:10])  # observation window still warming
        assert any(shed)  # …but the full window triggers RTA shedding
        snapshot = controller.snapshot()
        assert snapshot["shed"] >= 1
        assert snapshot["classes"]["verify"]["cost_estimate_ms"] == 512

    def test_recovery_after_backoff(self):
        clock = _ManualClock()
        controller = AdmissionController(1, self.POLICIES, clock=clock)
        for _ in range(70):
            verdict = controller.admit("verify")
            if verdict.admitted:
                controller.on_admit("verify")
                controller.on_complete("verify", 0.4)
            clock.advance(0.1)
        assert controller.shed > 0
        # Clients back off to one request per 2s: the windowed rate
        # estimate decays and verify becomes admittable again.
        admitted_late = []
        for _ in range(70):
            clock.advance(2.0)
            verdict = controller.admit("verify")
            admitted_late.append(verdict.admitted)
            if verdict.admitted:
                controller.on_admit("verify")
                controller.on_complete("verify", 0.4)
        assert admitted_late[-1]

    def test_snapshot_schema(self):
        controller = AdmissionController(2, self.POLICIES)
        snapshot = controller.snapshot()
        assert set(snapshot) == {
            "workers", "admitted", "shed", "rta_memo_entries", "classes",
        }
        assert set(snapshot["classes"]) == {"analyze", "verify"}


# -- end-to-end -------------------------------------------------------------


class TestDaemonEndToEnd:
    def test_analyze_byte_identical(self, daemon, spec_file):
        offline, _, code = cli_capture(["analyze", spec_file])
        status, payload = ServeClient(port=daemon.port).analyze(SPEC)
        assert status == 200
        assert payload["stdout"] == offline
        assert payload["exit_code"] == code

    def test_verify_byte_identical(self, daemon, spec_file):
        offline, _, code = cli_capture(["verify", spec_file, "--depth", "2"])
        status, payload = ServeClient(port=daemon.port).verify(
            SPEC, {"depth": 2}
        )
        assert status == 200
        assert payload["stdout"] == offline
        assert payload["exit_code"] == code

    def test_concurrent_clients_batch_deterministically(self, daemon,
                                                        spec_file,
                                                        edf_spec_file):
        offline_npfp, _, _ = cli_capture(["analyze", spec_file])
        offline_edf, _, _ = cli_capture(["analyze", edf_spec_file])
        results: list = [None] * 8
        barrier = threading.Barrier(8)

        def call(index: int) -> None:
            spec = SPEC if index % 2 else EDF_SPEC
            barrier.wait()
            results[index] = ServeClient(port=daemon.port).analyze(spec)

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index, (status, payload) in enumerate(results):
            expected = offline_npfp if index % 2 else offline_edf
            assert status == 200
            assert payload["stdout"] == expected

    def test_fallback_request_ids_unique_across_incarnations(self, spec_file):
        """Regression: the fallback id used to be ``req-{counter}``, and
        the counter restarts at 1 with every daemon respawn — the first
        id-less request of *any* two incarnations collided on "req-1".
        Each incarnation now carries a fresh token, so fallback ids are
        globally unique."""
        ids = []
        for _ in range(2):
            with ServerThread(ServeConfig(port=0, workers=1)) as srv:
                status, payload = ServeClient(port=srv.port).lint(
                    SPEC, {"source_name": spec_file}
                )
                assert status == 200
                ids.append(payload["request_id"])
        assert all(rid.startswith("req-") for rid in ids)
        assert len(set(ids)) == len(ids), ids

    def test_fallback_request_ids_unique_within_one_daemon(self, daemon,
                                                           spec_file):
        client = ServeClient(port=daemon.port)
        ids = []
        for _ in range(3):
            status, payload = client.lint(SPEC, {"source_name": spec_file})
            assert status == 200
            ids.append(payload["request_id"])
        assert len(set(ids)) == len(ids), ids

    def test_explicit_request_id_still_echoed(self, daemon, spec_file):
        status, payload = ServeClient(port=daemon.port).lint(
            SPEC, {"source_name": spec_file}, request_id="mine"
        )
        assert status == 200
        assert payload["request_id"] == "mine"

    def test_unknown_endpoint_404(self, daemon):
        client = ServeClient(port=daemon.port)
        status, payload = client._request("GET", "/nope")
        assert status == 404

    def test_malformed_body_400(self, daemon):
        client = ServeClient(port=daemon.port)
        status, payload = client._request(
            "POST", "/v1/analyze", body=b"{broken"
        )
        assert status == 400
        assert "error" in payload

    def test_healthz(self, daemon):
        payload = ServeClient(port=daemon.port).healthz()
        assert payload["status"] == "ok"
        assert payload["workers_alive"] >= 1

    def test_metrics(self, daemon):
        payload = ServeClient(port=daemon.port).metrics()
        assert payload["serve"]["pool"]["workers"] == 2
        assert "batching" in payload["serve"]
        assert "admission" in payload

    def test_cache_stats_endpoint_matches_cli_schema(self, daemon):
        endpoint = ServeClient(port=daemon.port).cache_stats()
        out, _, code = cli_capture(["cache", "stats", "--json"])
        assert code == 0
        offline = json.loads(out)
        assert set(endpoint) == set(offline)
        assert set(endpoint["store"]) == set(offline["store"])
        local = cache_stats_payload()
        assert set(local) == set(endpoint)

    def test_worker_death_recovers(self, daemon, spec_file):
        offline, _, _ = cli_capture(["analyze", spec_file])
        for pid in daemon.server.pool.worker_pids():
            os.kill(pid, signal.SIGKILL)
        time.sleep(0.2)
        status, payload = ServeClient(port=daemon.port).analyze(SPEC)
        assert status == 200
        assert payload["stdout"] == offline
        health = ServeClient(port=daemon.port).healthz()
        assert health["respawns"] >= 2
        assert health["workers_alive"] == 2

    def test_client_cli_round_trip(self, daemon, spec_file):
        offline, _, code = cli_capture(["analyze", spec_file])
        out, _, client_code = cli_capture([
            "client", "--port", str(daemon.port), "analyze", spec_file,
        ])
        assert out == offline
        assert client_code == code

    def test_client_cli_probes(self, daemon):
        out, _, code = cli_capture([
            "client", "--port", str(daemon.port), "healthz",
        ])
        assert code == 0
        assert json.loads(out)["status"] == "ok"


class TestAdmissionEndToEnd:
    def test_overload_sheds_some_but_answers_right(self, spec_file):
        """Burst past a deliberately tiny capacity: some 503s, and every
        200 is byte-identical — shedding never corrupts an answer."""
        offline, _, _ = cli_capture(["analyze", spec_file])
        policies = (
            ClassPolicy("analyze", priority=3, deadline_ms=1,
                        default_cost_ms=50),
        )
        config = ServeConfig(
            port=0, workers=1, policies=policies, max_batch=1
        )
        with ServerThread(config) as srv:
            results: list = [None] * 10
            barrier = threading.Barrier(10)

            def call(index: int) -> None:
                barrier.wait()
                results[index] = ServeClient(port=srv.port).analyze(SPEC)
            threads = [
                threading.Thread(target=call, args=(i,)) for i in range(10)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            statuses = [status for status, _ in results]
            assert 503 in statuses  # the 1ms deadline is unmeetable
            for status, payload in results:
                if status == 200:
                    assert payload["stdout"] == offline
                else:
                    assert status == 503
                    assert payload["retry_after"] >= 1

    def test_client_cli_maps_503_to_tempfail(self, spec_file):
        policies = (
            ClassPolicy("analyze", priority=3, deadline_ms=1,
                        default_cost_ms=50),
        )
        with ServerThread(ServeConfig(port=0, workers=1,
                                      policies=policies)) as srv:
            err = io.StringIO()
            out = io.StringIO()
            with contextlib.redirect_stdout(out), \
                    contextlib.redirect_stderr(err):
                code = main([
                    "client", "--port", str(srv.port), "analyze", spec_file,
                ])
            assert code == 75
            assert "shed" in err.getvalue()
            assert out.getvalue() == ""


class TestGracefulDrain:
    def test_sigterm_drains_and_exits_zero(self, spec_file, tmp_path):
        env = dict(os.environ)
        repo_src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", "0", "--workers", "1"],
            env=env, stderr=subprocess.PIPE, text=True,
        )
        try:
            banner = proc.stderr.readline()
            match = re.search(r":(\d+) \(", banner)
            assert match, f"no port in banner: {banner!r}"
            port = int(match.group(1))
            status, payload = ServeClient(port=port).analyze(SPEC)
            assert status == 200
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
            rest = proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
        assert code == 0
        assert "drained" in rest

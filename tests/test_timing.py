"""Tests for timed traces, Def. 2.1 consistency, and WCET checking."""

from __future__ import annotations

import pytest

from repro.model.job import Job
from repro.model.task import TaskSystem
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import (
    ConsistencyError,
    TimedTrace,
    check_consistency,
    consistent,
    job_arrival_times,
)
from repro.timing.wcet import WcetError, WcetModel, check_wcet_respected, wcet_respected
from repro.traces.markers import (
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
)

J1 = Job((1, 7), 0)
WCET = WcetModel(
    failed_read=3, success_read=4, selection=2, dispatch=2, completion=2, idling=3
)


class TestArrivalSequence:
    def test_sorted_by_time(self):
        seq = ArrivalSequence([Arrival(5, 0, (1,)), Arrival(2, 0, (2,))])
        assert [a.time for a in seq] == [2, 5]

    def test_stable_for_same_instant(self):
        seq = ArrivalSequence([Arrival(3, 0, (1, 1)), Arrival(3, 0, (1, 2))])
        assert [a.data for a in seq] == [(1, 1), (1, 2)]

    def test_before_is_strict(self):
        seq = ArrivalSequence([Arrival(3, 0, (1,))])
        assert seq.before(3) == ()
        assert len(seq.before(4)) == 1

    def test_window_half_open(self):
        seq = ArrivalSequence([Arrival(3, 0, (1,)), Arrival(7, 0, (1,))])
        assert len(seq.in_window(3, 7)) == 1
        assert len(seq.in_window(3, 8)) == 2

    def test_on_socket_filters(self):
        seq = ArrivalSequence([Arrival(1, 0, (1,)), Arrival(2, 1, (1,))])
        assert len(seq.on_socket(0)) == 1

    def test_of_task_and_count(self, two_tasks: TaskSystem):
        seq = ArrivalSequence(
            [Arrival(1, 0, (1,)), Arrival(2, 0, (2,)), Arrival(3, 0, (2,))]
        )
        assert len(seq.of_task(two_tasks, "hi")) == 2
        assert seq.count_in_window(two_tasks, "hi", 0, 3) == 1

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Arrival(-1, 0, (1,))

    def test_rejects_empty_payload(self):
        with pytest.raises(ValueError):
            Arrival(0, 0, ())


class TestTimedTrace:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="timestamps"):
            TimedTrace.make([MReadS()], [], 10)

    def test_non_increasing_timestamps_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            TimedTrace.make([MReadS(), MReadE(0, None)], [5, 5], 10)

    def test_horizon_must_exceed_last(self):
        with pytest.raises(ValueError, match="horizon"):
            TimedTrace.make([MReadS()], [5], 5)

    def test_interval_uses_horizon_for_last(self):
        timed = TimedTrace.make([MReadS(), MReadE(0, None)], [0, 3], 10)
        assert timed.interval(0) == (0, 3)
        assert timed.interval(1) == (3, 10)

    def test_completion_time(self):
        timed = TimedTrace.make(
            [MDispatch(J1), MExecution(J1), MCompletion(J1)], [0, 2, 8], 12
        )
        assert timed.completion_time(J1) == 8
        assert timed.completion_time(Job((1,), 5)) is None
        assert timed.completions() == {J1: 8}

    def test_empty_trace(self):
        timed = TimedTrace.make([], [], 0)
        assert timed.start_time == 0


def read_trace(*events, start=0, gap=2, horizon=None):
    """Build a timed trace of alternating MReadS/MReadE with the given
    (sock, job) outcomes, ``gap`` time units apart."""
    markers = []
    for sock, job in events:
        markers += [MReadS(), MReadE(sock, job)]
    ts = [start + gap * i for i in range(len(markers))]
    h = horizon if horizon is not None else (ts[-1] + gap if ts else 1)
    return TimedTrace.make(markers, ts, h)


class TestConsistency:
    def test_read_after_arrival_ok(self):
        timed = read_trace((0, J1), start=5)
        arrivals = ArrivalSequence([Arrival(3, 0, (1, 7))])
        check_consistency(timed, arrivals)

    def test_read_before_arrival_rejected(self):
        # M_ReadE at time 7, arrival at 7: arrival must be strictly earlier.
        timed = read_trace((0, J1), start=5)
        arrivals = ArrivalSequence([Arrival(7, 0, (1, 7))])
        with pytest.raises(ConsistencyError, match="no matching arrival"):
            check_consistency(timed, arrivals)

    def test_read_with_no_arrival_rejected(self):
        timed = read_trace((0, J1))
        with pytest.raises(ConsistencyError):
            check_consistency(timed, ArrivalSequence([]))

    def test_failed_read_with_pending_arrival_rejected(self):
        timed = read_trace((0, None), start=10)
        arrivals = ArrivalSequence([Arrival(2, 0, (1,))])
        with pytest.raises(ConsistencyError, match="failed read"):
            check_consistency(timed, arrivals)

    def test_failed_read_with_later_arrival_ok(self):
        timed = read_trace((0, None), start=10)
        arrivals = ArrivalSequence([Arrival(50, 0, (1,))])
        check_consistency(timed, arrivals)

    def test_fifo_order_enforced(self):
        first = Job((1, 1), 0)
        second = Job((1, 2), 1)
        arrivals = ArrivalSequence([Arrival(0, 0, (1, 1)), Arrival(1, 0, (1, 2))])
        good = read_trace((0, first), (0, second), start=5)
        check_consistency(good, arrivals)
        bad = read_trace((0, second), (0, first), start=5)
        assert not consistent(bad, arrivals)

    def test_sockets_independent(self):
        j_a = Job((1,), 0)
        arrivals = ArrivalSequence([Arrival(0, 1, (1,))])
        timed = read_trace((0, None), (1, j_a), start=5)
        check_consistency(timed, arrivals)

    def test_job_arrival_times_witness(self):
        arrivals = ArrivalSequence([Arrival(3, 0, (1, 7))])
        timed = read_trace((0, J1), start=5)
        assert job_arrival_times(timed, arrivals) == {J1: 3}


class TestWcetModel:
    def test_read_wcets_must_exceed_one(self):
        with pytest.raises(ValueError, match="WcetFR"):
            WcetModel(1, 4, 2, 2, 2, 2)
        with pytest.raises(ValueError, match="WcetSR"):
            WcetModel(3, 1, 2, 2, 2, 2)

    def test_positive_action_wcets(self):
        with pytest.raises(ValueError, match="positive"):
            WcetModel(3, 4, 0, 2, 2, 2)

    def test_derived_bounds_one_socket(self):
        assert WCET.read_ovh_bound(1) == 4
        assert WCET.polling_bound(1) == 3
        assert WCET.idle_instance_bound(1) == 3 + 2 + 3

    def test_derived_bounds_three_sockets(self):
        assert WCET.read_ovh_bound(3) == 2 * 2 * 3 + 4
        assert WCET.polling_bound(3) == 5 * 3
        assert WCET.idle_instance_bound(3) == 9 + 2 + 3

    def test_overhead_per_job(self):
        expected = WCET.read_ovh_bound(2) + WCET.polling_bound(2) + 2 + 2 + 2
        assert WCET.overhead_per_job(2) == expected


class TestWcetRespected:
    def trace_one_job(self, tasks: TaskSystem, durations):
        """dispatch/exec/compl trace with chosen interval durations."""
        d_sel, d_disp, d_exec, d_compl = durations
        markers = [
            MReadS(), MReadE(0, J1),
            MReadS(), MReadE(0, None),
            MSelection(), MDispatch(J1), MExecution(J1), MCompletion(J1),
        ]
        ts = [0, 2]                       # successful read: 2 + 2 = 4 ≤ WcetSR
        ts.append(4)                       # post-processing of success ends
        ts.append(5)                       # failed read: 1 + 1 = 2... built below
        ts = [0, 2, 4, 5, 6, 6 + d_sel, 6 + d_sel + d_disp,
              6 + d_sel + d_disp + d_exec]
        horizon = ts[-1] + d_compl
        return TimedTrace.make(markers, ts, horizon)

    def test_respecting_trace_passes(self, two_tasks: TaskSystem):
        timed = self.trace_one_job(two_tasks, (2, 2, 9, 2))
        check_wcet_respected(timed, two_tasks, WCET)

    def test_selection_overrun_detected(self, two_tasks: TaskSystem):
        timed = self.trace_one_job(two_tasks, (3, 2, 9, 2))
        with pytest.raises(WcetError, match="selection"):
            check_wcet_respected(timed, two_tasks, WCET)

    def test_execution_overrun_detected(self, two_tasks: TaskSystem):
        # J1 is a "lo" job with C=10.
        timed = self.trace_one_job(two_tasks, (2, 2, 11, 2))
        with pytest.raises(WcetError, match="execution"):
            check_wcet_respected(timed, two_tasks, WCET)

    def test_read_overrun_detected(self, two_tasks: TaskSystem):
        markers = [MReadS(), MReadE(0, None), MSelection(), MIdling()]
        ts = [0, 2, 4, 5]  # failed read takes 4 > WcetFR=3
        timed = TimedTrace.make(markers, ts, 7)
        with pytest.raises(WcetError, match="failed read"):
            check_wcet_respected(timed, two_tasks, WCET)

    def test_inflight_action_at_horizon_not_checked(self, two_tasks: TaskSystem):
        # Last interval stretches to the horizon, far beyond the WCET,
        # but it is in flight — not checked.
        markers = [MReadS(), MReadE(0, None), MSelection(), MIdling()]
        ts = [0, 1, 2, 4]
        timed = TimedTrace.make(markers, ts, 1000)
        assert wcet_respected(timed, two_tasks, WCET)

    def test_completion_overrun_detected(self, two_tasks: TaskSystem):
        markers = [
            MReadS(), MReadE(0, J1),
            MReadS(), MReadE(0, None),
            MSelection(), MDispatch(J1), MExecution(J1), MCompletion(J1),
            MReadS(),
        ]
        ts = [0, 2, 4, 5, 6, 8, 10, 15, 20]  # completion takes 5 > 2
        timed = TimedTrace.make(markers, ts, 25)
        with pytest.raises(WcetError, match="completion"):
            check_wcet_respected(timed, two_tasks, WCET)

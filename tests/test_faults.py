"""Tests for the fault-injection subsystem (`repro.faults`).

The headline properties:

* the curated corpus (one fault of every kind) reaches **100%
  detection** — every fault is flagged by the checker its taxonomy
  entry names — on a clean baseline;
* the whole campaign is **deterministic**: same plan, same client →
  byte-identical JSON and text reports;
* a plan with **zero faults** changes nothing;
* the **E16 wait-set bug** replayed through the ``skipped_wakeup``
  injector is reported by the monitor exactly as the original
  benchmark's hand-written buggy scheduler is.
"""

from __future__ import annotations

import random

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    PlanError,
    baseline_workload,
    curated_plan,
    run_fault_campaign,
)
from repro.faults import inject
from repro.faults.campaign import FaultCampaignReport
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.env import QueueEnvironment
from repro.rossl.runtime import TeeSink, TraceRecorder
from repro.sim.simulator import UniformDurations, simulate
from repro.timing.wcet import WcetModel
from repro.traces.protocol import ProtocolError
from repro.traces.validity import TraceValidityError
from repro.verification.monitor import OnlineMonitor

WCET = WcetModel(
    failed_read=2, success_read=4, selection=2, dispatch=2, completion=2,
    idling=2,
)


@pytest.fixture
def corpus_client() -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="control", priority=3, wcet=1000, type_tag=1),
            Task(name="lidar", priority=2, wcet=8000, type_tag=2),
            Task(name="telemetry", priority=1, wcet=3000, type_tag=3),
        ]
    )
    return RosslClient.make(tasks, [0, 1])


def baseline(client: RosslClient, seed: int = 7, horizon: int = 20_000):
    arrivals = baseline_workload(client, horizon)
    return simulate(
        client, arrivals, WCET, horizon,
        durations=UniformDurations(random.Random(seed)),
    )


class TestPlan:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                FaultSpec("drop_marker"),
                FaultSpec("wcet_overrun", site=3),
                FaultSpec("worker_crash", param=2),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError, match="unknown fault kind"):
            FaultSpec("cosmic_ray")

    def test_unknown_keys_rejected(self):
        with pytest.raises(PlanError, match="unknown plan keys"):
            FaultPlan.from_dict({"seed": 1, "bogus": 2})
        with pytest.raises(PlanError, match="unknown keys"):
            FaultPlan.from_dict({"faults": [{"kind": "drop_marker", "x": 1}]})

    def test_non_integer_fields_rejected(self):
        with pytest.raises(PlanError, match="seed"):
            FaultPlan.from_dict({"seed": "seven"})
        with pytest.raises(PlanError, match="site"):
            FaultPlan.from_dict({"faults": [{"kind": "drop_marker", "site": "x"}]})

    def test_fault_seeds_are_position_dependent(self):
        plan = curated_plan(11)
        seeds = [plan.fault_seed(i) for i in range(len(plan.faults))]
        assert len(set(seeds)) == len(seeds)

    def test_curated_plan_covers_taxonomy(self):
        plan = curated_plan(0)
        assert sorted(f.kind for f in plan.faults) == sorted(FAULT_KINDS)

    def test_every_kind_names_a_checker_and_layer(self):
        for kind in FAULT_KINDS.values():
            assert kind.layer
            assert "." in kind.expected_checker
            assert kind.description


class TestTraceInjectors:
    """Each mutator's output must be rejected by its checker — pinned
    here on a fixed site so failures localize; the property tests sweep
    sites and seeds."""

    def test_drop_interior_marker_breaks_protocol(self, corpus_client):
        trace = list(baseline(corpus_client).timed_trace.trace)
        mutated = inject.drop_marker(trace, random.Random(0), site=5)
        with pytest.raises(ProtocolError):
            corpus_client.protocol().check(mutated)

    def test_duplicate_marker_breaks_protocol(self, corpus_client):
        trace = list(baseline(corpus_client).timed_trace.trace)
        mutated = inject.duplicate_marker(trace, random.Random(0), site=5)
        with pytest.raises(ProtocolError):
            corpus_client.protocol().check(mutated)

    def test_reorder_markers_breaks_protocol(self, corpus_client):
        trace = list(baseline(corpus_client).timed_trace.trace)
        mutated = inject.reorder_markers(trace, random.Random(0), site=5)
        with pytest.raises(ProtocolError):
            corpus_client.protocol().check(mutated)

    def test_corrupt_marker_breaks_protocol(self, corpus_client):
        trace = list(baseline(corpus_client).timed_trace.trace)
        mutated = inject.corrupt_marker(trace, random.Random(0), site=5)
        with pytest.raises(ProtocolError):
            corpus_client.protocol().check(mutated)

    def test_duplicate_job_id_passes_protocol_fails_validity(self, corpus_client):
        trace = list(baseline(corpus_client).timed_trace.trace)
        mutated = inject.duplicate_job_id(trace, random.Random(0))
        corpus_client.protocol().check(mutated)  # stealthy: protocol-clean
        from repro.traces.validity import check_tr_valid

        with pytest.raises(TraceValidityError, match="unique-ids"):
            check_tr_valid(mutated, corpus_client.priority_fn())

    def test_phantom_idle_passes_protocol_fails_validity(self, corpus_client):
        trace = list(baseline(corpus_client).timed_trace.trace)
        mutated = inject.phantom_idle(trace, random.Random(0))
        corpus_client.protocol().check(mutated)
        from repro.traces.validity import check_tr_valid

        with pytest.raises(TraceValidityError, match="idle-implies-empty"):
            check_tr_valid(mutated, corpus_client.priority_fn())

    def test_injectors_never_mutate_their_input(self, corpus_client):
        trace = list(baseline(corpus_client).timed_trace.trace)
        snapshot = list(trace)
        for mutator in (
            inject.drop_marker, inject.duplicate_marker,
            inject.reorder_markers, inject.corrupt_marker,
            inject.duplicate_job_id, inject.phantom_idle,
        ):
            mutator(trace, random.Random(1))
            assert trace == snapshot

    def test_too_short_traces_raise_injection_error(self):
        with pytest.raises(inject.InjectionError):
            inject.drop_marker([], random.Random(0))
        with pytest.raises(inject.InjectionError):
            inject.duplicate_job_id([], random.Random(0))


class TestTimingInjectors:
    def test_wcet_overrun_flagged(self, corpus_client):
        from repro.timing.wcet import WcetError, check_wcet_respected

        run = baseline(corpus_client)
        mutated = inject.wcet_overrun(
            run.timed_trace, corpus_client, WCET, random.Random(0)
        )
        with pytest.raises(WcetError):
            check_wcet_respected(mutated, corpus_client.tasks, WCET)

    def test_clock_skew_breaks_consistency(self, corpus_client):
        from repro.timing.timed_trace import ConsistencyError, check_consistency

        run = baseline(corpus_client)
        skewed = inject.skew_arrivals(run.arrivals, run.timed_trace.horizon)
        with pytest.raises(ConsistencyError):
            check_consistency(run.timed_trace, skewed)

    def test_jitter_spike_breaks_compliance(self, corpus_client):
        from repro.rta.compliance import ComplianceError, check_jitter_compliance
        from repro.rta.jitter import jitter_bound
        from repro.schedule.conversion import convert

        bound = jitter_bound(WCET, corpus_client.num_sockets).bound
        arrivals = baseline_workload(corpus_client, 20_000)
        driver = inject.simulate_with_gate(
            corpus_client, arrivals, WCET, 20_000,
            UniformDurations(random.Random(3)),
            inject.delivery_blackout(4 * bound + 2),
        )
        timed = driver.timed_trace()
        schedule = convert(timed, corpus_client.sockets)
        with pytest.raises(ComplianceError):
            check_jitter_compliance(
                timed, arrivals, schedule, corpus_client.priority_fn(),
                bound, strict=False,
            )


class TestSchedulerInjectors:
    def test_priority_inversion_caught_live(self, corpus_client):
        model = inject.PriorityInversionModel(
            corpus_client.sockets, corpus_client.tasks
        )
        env = QueueEnvironment(corpus_client.sockets)
        env.inject(0, (3, 0))  # telemetry, lowest priority
        env.inject(0, (1, 0))  # control, highest priority
        monitor = OnlineMonitor(
            corpus_client.sockets, corpus_client.priority_fn()
        )
        with pytest.raises(TraceValidityError, match="highest-priority"):
            model.run(env, TeeSink(TraceRecorder(), monitor), max_iterations=2)


class TestE16Regression:
    """The wait-set bug (benchmarks/test_e16_waitset_bug.py), replayed
    through the injector: ``skipped_wakeup`` must reproduce the same
    violation the hand-written buggy scheduler produces."""

    @staticmethod
    def e16_client() -> RosslClient:
        tasks = TaskSystem(
            [
                Task(name="busy", priority=2, wcet=10, type_tag=1),
                Task(name="victim", priority=1, wcet=5, type_tag=2),
            ]
        )
        return RosslClient.make(tasks, sockets=[0, 1])

    def _monitor_rejection(self, model, client) -> ProtocolError:
        env = QueueEnvironment(client.sockets)
        env.inject(0, (1, 0))
        monitor = OnlineMonitor(client.sockets, client.tasks.priority_of)
        with pytest.raises(ProtocolError) as excinfo:
            model.run(env, TeeSink(TraceRecorder(), monitor), max_iterations=3)
        return excinfo.value

    def test_injector_reproduces_the_benchmark_violation(self):
        # The hand-written buggy scheduler from the E16 benchmark
        # (benchmarks/test_e16_waitset_bug.py), replicated here because
        # benchmark modules import their own conftest helpers.
        from repro.rossl.runtime import RosslModel
        from repro.traces.markers import MReadE, MReadS

        class WaitSetBuggyRossl(RosslModel):
            def _check_sockets_until_empty(self, env, sink) -> None:
                while True:
                    any_success = False
                    sock = self.sockets[0]  # BUG: other sockets skipped
                    sink.emit(MReadS())
                    data = env.read(sock)
                    if data is None:
                        sink.emit(MReadE(sock, None))
                    else:
                        job = self.trace_state.record_read(tuple(data))
                        self._queue.append(job)
                        any_success = True
                        sink.emit(MReadE(sock, job))
                    if not any_success:
                        return

        client = self.e16_client()
        original = self._monitor_rejection(
            WaitSetBuggyRossl(client.sockets, client.tasks), client
        )
        injected = self._monitor_rejection(
            inject.SkippedWakeupModel(client.sockets, client.tasks), client
        )
        # Same violation: same marker index, same message.
        assert injected.index == original.index
        assert str(injected) == str(original)
        assert injected.index <= 4  # within the first polling pass

    def test_campaign_detects_skipped_wakeup(self):
        client = self.e16_client()
        plan = FaultPlan(seed=16, faults=(FaultSpec("skipped_wakeup"),))
        report = run_fault_campaign(plan, client, WCET, horizon=5_000)
        (outcome,) = report.outcomes
        assert outcome.detected
        assert outcome.expected == "verification.monitor"

    def test_skipped_wakeup_needs_two_sockets(self, corpus_client):
        single = RosslClient.make(corpus_client.tasks, [0])
        plan = FaultPlan(seed=0, faults=(FaultSpec("skipped_wakeup"),))
        report = run_fault_campaign(plan, single, WCET, horizon=5_000)
        (outcome,) = report.outcomes
        assert not outcome.detected
        assert "injection failed" in outcome.detail


class TestCampaign:
    def test_curated_corpus_full_detection(self, corpus_client):
        report = run_fault_campaign(curated_plan(7), corpus_client, WCET)
        assert report.baseline_clean
        assert report.detected == report.injected == len(FAULT_KINDS)
        assert report.detection_rate == 1.0
        assert report.ok

    def test_campaign_byte_identical_across_runs(self, corpus_client):
        a = run_fault_campaign(curated_plan(7), corpus_client, WCET)
        b = run_fault_campaign(curated_plan(7), corpus_client, WCET)
        assert a.to_json() == b.to_json()
        assert a.table() == b.table()

    def test_zero_fault_plan_changes_no_verdicts(self, corpus_client):
        report = run_fault_campaign(FaultPlan(seed=5), corpus_client, WCET)
        assert report.baseline_clean
        assert report.outcomes == ()
        assert report.detection_rate == 1.0
        assert report.ok

    def test_report_json_round_trip(self, corpus_client):
        plan = FaultPlan(
            seed=3,
            faults=(FaultSpec("drop_marker"), FaultSpec("clock_skew")),
        )
        report = run_fault_campaign(plan, corpus_client, WCET, horizon=10_000)
        loaded = FaultCampaignReport.from_json(report.to_json())
        assert loaded == report
        assert loaded.table() == report.table()

    def test_expected_checker_is_the_detector(self, corpus_client):
        """Detection means the *responsible* checker flagged, not just
        any checker."""
        report = run_fault_campaign(curated_plan(7), corpus_client, WCET)
        for outcome in report.outcomes:
            assert outcome.detected
            flagged_names = [name for name, _ in outcome.flagged]
            assert outcome.expected in flagged_names
            assert outcome.detail  # the detector's message is carried

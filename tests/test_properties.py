"""Property-based tests (hypothesis) over the core invariants.

Each property mirrors a lemma of the paper:

* arrival/release curves are monotone staircases; release dominates;
* every STS random walk is accepted (completeness of the protocol);
* simulated runs satisfy the full invariant stack for *arbitrary*
  parameters (the state-interpretation invariant, Def. 2.1, WCETs,
  schedule validity);
* the MiniC scheduler and the reference model agree on arbitrary read
  scripts (the implements-the-model lemma);
* SBF is monotone, 1-Lipschitz-dominated (``SBF(Δ) ≤ Δ``), with a
  correct inverse;
* the analytic response-time bound dominates simulation on random tiny
  systems (soundness, Thm. 5.1).
"""

from __future__ import annotations

import random as _random

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.env import ScriptedEnvironment
from repro.rossl.source import MiniCRossl
from repro.rta.curves import (
    LeakyBucketCurve,
    SporadicCurve,
    check_staircase,
    release_curve,
    respects_curve,
)
from repro.rta.npfp import analyse
from repro.rta.sbf import SupplyBoundFunction
from repro.schedule.validity import check_schedule_validity
from repro.sim.simulator import UniformDurations, WcetDurations, simulate
from repro.sim.workloads import generate_arrivals
from repro.timing.timed_trace import check_consistency
from repro.timing.wcet import WcetModel, check_wcet_respected
from repro.traces.protocol import SchedulerProtocol
from repro.traces.validity import tr_valid

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

curves = st.one_of(
    st.integers(1, 500).map(SporadicCurve),
    st.tuples(st.integers(1, 5), st.integers(1, 300)).map(
        lambda t: LeakyBucketCurve(burst=t[0], rate_separation=t[1])
    ),
)

wcet_models = st.builds(
    WcetModel,
    failed_read=st.integers(2, 8),
    success_read=st.integers(2, 10),
    selection=st.integers(1, 6),
    dispatch=st.integers(1, 6),
    completion=st.integers(1, 6),
    idling=st.integers(1, 6),
)


@st.composite
def small_clients(draw):
    n_tasks = draw(st.integers(1, 3))
    n_sockets = draw(st.integers(1, 2))
    tasks = []
    curve_map = {}
    for i in range(n_tasks):
        name = f"t{i}"
        tasks.append(
            Task(
                name=name,
                priority=draw(st.integers(1, 5)),
                wcet=draw(st.integers(1, 30)),
                type_tag=i + 1,
            )
        )
        curve_map[name] = draw(curves)
    system = TaskSystem(tasks, curve_map)
    return RosslClient.make(system, sockets=list(range(n_sockets)))


def scripts_for(client, max_len=20):
    tags = [t.type_tag for t in client.tasks.tasks]
    outcome = st.one_of(
        st.none(),
        st.tuples(st.sampled_from(tags), st.integers(0, 3)).map(tuple),
    )
    return st.lists(outcome, min_size=0, max_size=max_len)


# ---------------------------------------------------------------------------
# curves
# ---------------------------------------------------------------------------


class TestCurveProperties:
    @given(curves)
    @settings(max_examples=40)
    def test_curves_are_staircases(self, alpha):
        check_staircase(alpha, 200)

    @given(curves, st.integers(0, 40), st.integers(0, 300))
    @settings(max_examples=60)
    def test_release_curve_dominates(self, alpha, jitter, delta):
        beta = release_curve(alpha, jitter)
        assert beta(delta) >= alpha(delta)

    @given(curves, st.integers(0, 40))
    @settings(max_examples=40)
    def test_release_curve_is_staircase(self, alpha, jitter):
        check_staircase(release_curve(alpha, jitter), 150)

    @given(st.lists(st.integers(0, 100), max_size=6), curves)
    @settings(max_examples=60)
    def test_conformance_monotone_under_removal(self, times, alpha):
        """Removing an arrival never breaks conformance."""
        if not respects_curve(times, alpha):
            assume(False)
        for i in range(len(times)):
            assert respects_curve(times[:i] + times[i + 1 :], alpha)


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


class TestProtocolProperties:
    @given(st.integers(1, 3), st.data())
    @settings(max_examples=40)
    def test_every_random_walk_is_accepted(self, n_sockets, data):
        """Completeness: any path through the STS is an accepted trace."""
        from repro.model.job import Job
        from repro.traces.markers import (
            MCompletion, MDispatch, MExecution, MIdling, MReadE, MReadS,
            MSelection,
        )
        from repro.traces.protocol import (
            StDispatched, StExecuting, StExpectSelection, StPollExpectReadE,
            StSelected,
        )

        protocol = SchedulerProtocol(range(n_sockets))
        state = protocol.initial_state()
        trace = []
        next_id = 0
        pending = []
        for index in range(data.draw(st.integers(0, 40))):
            # Choose any enabled marker in the current state.
            if isinstance(state, StPollExpectReadE):
                sock = protocol.sockets[state.sock_idx]
                if data.draw(st.booleans()):
                    job = Job((1, next_id), next_id)
                    next_id += 1
                    pending.append(job)
                    marker = MReadE(sock, job)
                else:
                    marker = MReadE(sock, None)
            elif isinstance(state, StExpectSelection):
                marker = MSelection()
            elif isinstance(state, StSelected):
                if pending and data.draw(st.booleans()):
                    marker = MDispatch(pending.pop(0))
                elif not pending:
                    marker = MIdling()
                else:
                    marker = MDispatch(pending.pop(0))
            elif isinstance(state, StDispatched):
                marker = MExecution(state.job)
            elif isinstance(state, StExecuting):
                marker = MCompletion(state.job)
            else:
                marker = MReadS()
            state, _ = protocol.step(state, marker, index)
            trace.append(marker)
        assert protocol.accepts(trace)

    @given(st.data())
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_decoded_spans_partition_the_trace(self, data):
        client_strategy = small_clients()
        client = data.draw(client_strategy)
        script = data.draw(scripts_for(client))
        trace = client.model().run_to_trace(ScriptedEnvironment(script))
        protocol = client.protocol()
        spans = protocol.run(trace)
        position = 0
        for span in spans:
            assert span.start == position
            position = span.end
        assert position <= len(trace)


# ---------------------------------------------------------------------------
# implementation vs. model, and the invariant stack
# ---------------------------------------------------------------------------


class TestImplementationProperties:
    @given(st.data())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_minic_equals_reference_model(self, data):
        client = data.draw(small_clients())
        script = data.draw(scripts_for(client, max_len=15))
        trace_py = client.model().run_to_trace(ScriptedEnvironment(script))
        trace_c = MiniCRossl(client).run_to_trace(
            ScriptedEnvironment(script), fuel=500_000
        )
        assert trace_py == trace_c

    @given(st.data())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_simulated_runs_satisfy_all_invariants(self, data):
        client = data.draw(small_clients())
        wcet = data.draw(wcet_models)
        seed = data.draw(st.integers(0, 10_000))
        rng = _random.Random(seed)
        horizon = data.draw(st.integers(100, 2_000))
        arrivals = generate_arrivals(
            client, horizon=max(1, horizon // 2), rng=rng, intensity=0.8
        )
        policy = (
            WcetDurations() if data.draw(st.booleans()) else UniformDurations(rng)
        )
        result = simulate(client, arrivals, wcet, horizon, durations=policy)
        timed = result.timed_trace
        assert client.protocol().accepts(timed.trace)
        assert tr_valid(timed.trace, client.tasks)
        check_consistency(timed, arrivals)
        check_wcet_respected(timed, client.tasks, wcet)
        check_schedule_validity(
            result.schedule(), client.tasks, wcet, client.num_sockets
        )


# ---------------------------------------------------------------------------
# SBF
# ---------------------------------------------------------------------------


class TestSbfProperties:
    @given(st.lists(curves, min_size=1, max_size=3), wcet_models,
           st.integers(1, 3))
    @settings(max_examples=40)
    def test_sbf_monotone_and_dominated(self, curve_list, wcet, n_sockets):
        sbf = SupplyBoundFunction(curve_list, wcet, n_sockets)
        previous = 0
        for delta in range(0, 150):
            value = sbf(delta)
            assert value >= previous
            assert value <= delta
            previous = value

    @given(st.lists(curves, min_size=1, max_size=2), wcet_models,
           st.integers(1, 2), st.integers(1, 200))
    @settings(max_examples=40, deadline=None)  # inverse may extend far
    def test_inverse_is_least_satisfying_delta(self, curve_list, wcet,
                                               n_sockets, demand):
        sbf = SupplyBoundFunction(curve_list, wcet, n_sockets)
        least = sbf.inverse(demand, 50_000)
        if least is None:
            assert sbf(50_000) < demand
        else:
            assert sbf(least) >= demand
            assert least == 0 or sbf(least - 1) < demand


# ---------------------------------------------------------------------------
# RTA soundness
# ---------------------------------------------------------------------------


class TestJitterLemmaProperty:
    @given(st.data())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_needed_jitter_within_bound(self, data):
        """§4.3 lemma: on arbitrary clients/WCETs/workloads, every job's
        violation window fits within J = 1 + max(PB+SB+DB, IB)."""
        from repro.rta.compliance import check_jitter_compliance
        from repro.rta.jitter import jitter_bound

        client = data.draw(small_clients())
        wcet = data.draw(wcet_models)
        seed = data.draw(st.integers(0, 10_000))
        rng = _random.Random(seed)
        arrivals = generate_arrivals(client, horizon=500, rng=rng, intensity=1.2)
        policy = (
            WcetDurations() if data.draw(st.booleans()) else UniformDurations(rng)
        )
        result = simulate(client, arrivals, wcet, 1_200, durations=policy)
        bound = jitter_bound(wcet, client.num_sockets).bound
        report = check_jitter_compliance(
            result.timed_trace, arrivals, result.schedule(),
            client.priority_fn(), bound,
        )
        assert report.ok


class TestRtaSoundnessProperty:
    @given(st.data())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bound_dominates_simulation(self, data):
        client = data.draw(small_clients())
        wcet = data.draw(wcet_models)
        analysis = analyse(client, wcet, horizon=30_000)
        assume(analysis.schedulable)
        seed = data.draw(st.integers(0, 10_000))
        rng = _random.Random(seed)
        arrivals = generate_arrivals(client, horizon=1_500, rng=rng,
                                     intensity=1.0)
        result = simulate(client, arrivals, wcet, horizon=4_000,
                          durations=WcetDurations())
        for job, (_, _, response) in result.response_times().items():
            name = client.tasks.msg_to_task(job.data).name
            bound = analysis.response_time_bound(name)
            assert response <= bound, (
                f"job {job} of {name}: response {response} > bound {bound} "
                f"(wcet={wcet}, seed={seed})"
            )

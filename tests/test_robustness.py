"""Robustness properties: every layer must behave on *truncated*
observations, and the tightness study machinery is validated."""

from __future__ import annotations

import random

import pytest

from repro.analysis.tightness import TightnessStudy, run_tightness_study
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.compliance import needed_jitters
from repro.rta.curves import SporadicCurve
from repro.rta.jitter import jitter_bound
from repro.schedule.conversion import convert
from repro.schedule.validity import check_schedule_validity
from repro.sim.simulator import UniformDurations, simulate
from repro.sim.workloads import generate_arrivals
from repro.timing.timed_trace import TimedTrace
from repro.timing.wcet import WcetModel

WCET = WcetModel(
    failed_read=3, success_read=4, selection=2, dispatch=2, completion=2, idling=2
)


def curved_client() -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="a", priority=1, wcet=12, type_tag=1),
            Task(name="b", priority=2, wcet=7, type_tag=2),
        ],
        {"a": SporadicCurve(150), "b": SporadicCurve(100)},
    )
    return RosslClient.make(tasks, [0])


class TestPrefixRobustness:
    """The observation horizon can cut a run at ANY marker; every
    checker and the conversion must handle every prefix."""

    def full_run(self):
        client = curved_client()
        rng = random.Random(3)
        arrivals = generate_arrivals(client, horizon=400, rng=rng, intensity=1.3)
        result = simulate(client, arrivals, WCET, horizon=800,
                          durations=UniformDurations(rng))
        return client, result

    def test_every_prefix_converts_and_validates(self):
        client, result = self.full_run()
        timed = result.timed_trace
        assert len(timed) > 30
        # Sample a spread of cut points, including the awkward ones.
        cuts = sorted(set(
            list(range(0, min(25, len(timed))))
            + [len(timed) // 2, len(timed) - 1, len(timed)]
        ))
        for cut in cuts:
            prefix = TimedTrace.make(
                timed.trace[:cut], timed.ts[:cut],
                timed.ts[cut] if cut < len(timed) else timed.horizon,
            ) if cut > 0 else TimedTrace.make([], [], 0)
            assert client.protocol().accepts(prefix.trace)
            schedule = convert(prefix, client.sockets)
            check_schedule_validity(
                schedule, client.tasks, WCET, client.num_sockets
            )
            # The prefix schedule is a prefix of the full schedule.
            full = convert(timed, client.sockets)
            for segment in schedule:
                if segment.end <= full.end:
                    for t in (segment.start, segment.end - 1):
                        if full.start <= t < full.end:
                            assert full.state_at(t) == schedule.state_at(t)

    def test_compliance_checker_on_prefixes(self):
        client, result = self.full_run()
        timed = result.timed_trace
        bound = jitter_bound(WCET, client.num_sockets).bound
        for cut in (len(timed) // 3, 2 * len(timed) // 3, len(timed)):
            prefix = TimedTrace.make(
                timed.trace[:cut], timed.ts[:cut],
                timed.ts[cut] if cut < len(timed) else timed.horizon,
            )
            schedule = convert(prefix, client.sockets)
            needed = needed_jitters(
                prefix, result.arrivals, schedule, client.priority_fn()
            )
            assert all(v <= bound for v in needed.values())


class TestTightnessStudy:
    def test_study_collects_and_reports(self):
        study = run_tightness_study(
            curved_client(), WCET, horizon=1_500, runs=4, seed=1
        )
        assert study.jobs > 0
        assert 0 < study.worst <= 1.0
        text = study.table()
        assert "median ratio" in text

    def test_percentiles(self):
        study = TightnessStudy()
        for value in (0.1, 0.2, 0.3, 0.4, 0.5):
            study.add("t", value)
        assert study.percentile("t", 0.0) == 0.1
        assert study.percentile("t", 1.0) == 0.5
        assert study.percentile("t", 0.5) == 0.3
        assert study.percentile("missing", 0.5) is None

    def test_unschedulable_rejected(self):
        tasks = TaskSystem(
            [
                Task(name="a", priority=1, wcet=90, type_tag=1),
                Task(name="b", priority=2, wcet=90, type_tag=2),
            ],
            {"a": SporadicCurve(100), "b": SporadicCurve(100)},
        )
        client = RosslClient.make(tasks, [0])
        with pytest.raises(ValueError, match="schedulable"):
            run_tightness_study(client, WCET, horizon=500, runs=1)

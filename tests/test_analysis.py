"""Tests for the end-to-end timing-correctness pipeline (Thm. 5.1) and
the campaign/report helpers."""

from __future__ import annotations

import random

import pytest

from repro.analysis.adequacy import (
    TimingCorrectnessReport,
    check_timing_correctness,
    run_adequacy_campaign,
)
from repro.analysis.campaigns import sweep
from repro.analysis.report import format_table
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import SporadicCurve
from repro.rta.npfp import analyse
from repro.sim.simulator import WcetDurations, simulate
from repro.sim.workloads import burst_at, generate_arrivals
from repro.timing.wcet import WcetModel

WCET = WcetModel(
    failed_read=2, success_read=2, selection=1, dispatch=1, completion=1, idling=1
)


def light_client() -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="slow", priority=1, wcet=20, type_tag=1),
            Task(name="fast", priority=2, wcet=5, type_tag=2),
        ],
        {"slow": SporadicCurve(400), "fast": SporadicCurve(150)},
    )
    return RosslClient.make(tasks, [0])


class TestFormatTable:
    def test_alignment_and_none(self):
        text = format_table(["a", "bbb"], [(1, None), ("xx", 2.5)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "—" in text
        assert "2.500" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [(1, 2)])


class TestCheckTimingCorrectness:
    def test_single_run_clean(self):
        client = light_client()
        analysis = analyse(client, WCET)
        assert analysis.schedulable
        arrivals = burst_at(client, 10, {"slow": 1, "fast": 1})
        result = simulate(client, arrivals, WCET, horizon=2000, durations=WcetDurations())
        report = check_timing_correctness(result, analysis)
        assert report.ok
        assert report.jobs_checked == 2
        assert set(report.observed_worst) == {"slow", "fast"}

    def test_tightness_is_at_most_one(self):
        client = light_client()
        analysis = analyse(client, WCET)
        arrivals = burst_at(client, 10, {"slow": 1, "fast": 1})
        result = simulate(client, arrivals, WCET, horizon=2000)
        report = check_timing_correctness(result, analysis)
        for name in ("slow", "fast"):
            ratio = report.tightness(name)
            assert ratio is not None and 0 < ratio <= 1

    def test_jobs_beyond_horizon_excused(self):
        client = light_client()
        analysis = analyse(client, WCET)
        bound = analysis.response_time_bound("slow")
        # Arrival so late that its deadline falls past the horizon.
        horizon = 100 + bound
        arrivals = burst_at(client, horizon - 5, {"slow": 1})
        result = simulate(client, arrivals, WCET, horizon=horizon)
        report = check_timing_correctness(result, analysis)
        assert report.ok
        assert report.jobs_beyond_horizon == 1
        assert report.jobs_checked == 0

    def test_starved_job_detected(self):
        """A doctored run in which a job silently never completes must
        be reported as a violation, not pass vacuously."""
        client = light_client()
        analysis = analyse(client, WCET)
        arrivals = burst_at(client, 10, {"fast": 1})
        result = simulate(client, arrivals, WCET, horizon=2000)
        # Truncate the trace right before the dispatch: the job was read
        # but never completed, yet the horizon is far beyond its bound.
        timed = result.timed_trace
        cut = next(
            i for i, m in enumerate(timed.trace) if type(m).__name__ == "MDispatch"
        )
        from repro.timing.timed_trace import TimedTrace
        from repro.sim.simulator import SimulationResult

        doctored = SimulationResult(
            client=client,
            arrivals=arrivals,
            wcet=WCET,
            timed_trace=TimedTrace.make(
                timed.trace[:cut], timed.ts[:cut], timed.horizon
            ),
        )
        report = check_timing_correctness(doctored, analysis)
        assert not report.ok
        assert report.violations[0].completion is None

    def test_table_renders(self):
        client = light_client()
        analysis = analyse(client, WCET)
        arrivals = burst_at(client, 10, {"slow": 1, "fast": 1})
        result = simulate(client, arrivals, WCET, horizon=2000)
        report = check_timing_correctness(result, analysis)
        text = report.table()
        assert "slow" in text and "fast" in text and "bound" in text


class TestCampaign:
    def test_campaign_runs_clean(self):
        client = light_client()
        report = run_adequacy_campaign(
            client, WCET, horizon=3000, runs=6, seed=3, intensity=1.0
        )
        assert report.ok
        assert report.runs == 6
        assert report.jobs_checked > 0

    def test_campaign_rejects_unschedulable(self):
        tasks = TaskSystem(
            [
                Task(name="a", priority=1, wcet=9, type_tag=1),
                Task(name="b", priority=2, wcet=9, type_tag=2),
            ],
            {"a": SporadicCurve(10), "b": SporadicCurve(10)},
        )
        client = RosslClient.make(tasks, [0])
        with pytest.raises(ValueError, match="schedulable"):
            run_adequacy_campaign(client, WCET, horizon=500, runs=1,
                                  analysis_horizon=3000)


class TestSweep:
    def test_sweep_shapes(self):
        result = sweep(
            "n", [1, 2, 3], ["double", "square"], lambda n: (2 * n, n * n)
        )
        assert result.parameters() == [1, 2, 3]
        assert result.column("square") == [1, 4, 9]
        assert "double" in result.table("title")

    def test_sweep_cell_count_mismatch(self):
        with pytest.raises(ValueError):
            sweep("n", [1], ["a", "b"], lambda n: (n,))

"""Tests for arrival curves, release curves, and curve conformance."""

from __future__ import annotations

import pytest

from repro.rta.curves import (
    CurveViolation,
    LeakyBucketCurve,
    ShiftedCurve,
    SporadicCurve,
    TableCurve,
    check_curve_respected,
    check_staircase,
    release_curve,
    respects_curve,
)


class TestSporadicCurve:
    def test_values(self):
        alpha = SporadicCurve(10)
        assert alpha(0) == 0
        assert alpha(1) == 1
        assert alpha(10) == 1
        assert alpha(11) == 2
        assert alpha(100) == 10

    def test_rejects_nonpositive_separation(self):
        with pytest.raises(ValueError):
            SporadicCurve(0)

    def test_staircase_axioms(self):
        check_staircase(SporadicCurve(7), 100)


class TestLeakyBucketCurve:
    def test_burst_then_rate(self):
        alpha = LeakyBucketCurve(burst=3, rate_separation=10)
        assert alpha(0) == 0
        assert alpha(1) == 3
        assert alpha(10) == 3
        assert alpha(11) == 4
        assert alpha(21) == 5

    def test_staircase_axioms(self):
        check_staircase(LeakyBucketCurve(2, 5), 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            LeakyBucketCurve(0, 5)
        with pytest.raises(ValueError):
            LeakyBucketCurve(1, 0)


class TestTableCurve:
    def test_steps_and_tail(self):
        alpha = TableCurve(steps=((1, 2), (20, 3)), tail_separation=10)
        assert alpha(0) == 0
        assert alpha(1) == 2
        assert alpha(19) == 2
        assert alpha(20) == 3
        assert alpha(29) == 3
        assert alpha(30) == 4

    def test_rejects_non_increasing_steps(self):
        with pytest.raises(ValueError):
            TableCurve(steps=((5, 2), (5, 3)), tail_separation=1)

    def test_staircase_axioms(self):
        check_staircase(TableCurve(steps=((1, 1), (8, 4)), tail_separation=3), 60)


class TestReleaseCurve:
    def test_shift_semantics(self):
        alpha = SporadicCurve(10)
        beta = release_curve(alpha, 5)
        assert beta(0) == 0
        assert beta(1) == alpha(6)
        assert beta(10) == alpha(15)

    def test_zero_jitter_keeps_positive_values(self):
        alpha = SporadicCurve(10)
        beta = release_curve(alpha, 0)
        assert all(beta(d) == alpha(d) for d in range(1, 50))

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            release_curve(SporadicCurve(1), -1)

    def test_release_curve_dominates_arrival_curve(self):
        alpha = LeakyBucketCurve(2, 7)
        beta = release_curve(alpha, 4)
        assert all(beta(d) >= alpha(d) for d in range(0, 100))


class TestConformance:
    def test_sporadic_spacing_ok(self):
        check_curve_respected([0, 10, 20, 35], SporadicCurve(10))

    def test_sporadic_violation(self):
        with pytest.raises(CurveViolation):
            check_curve_respected([0, 5], SporadicCurve(10))

    def test_burst_allowed_by_bucket(self):
        assert respects_curve([3, 3, 3], LeakyBucketCurve(3, 10))

    def test_burst_too_big_for_bucket(self):
        assert not respects_curve([3, 3, 3, 3], LeakyBucketCurve(3, 10))

    def test_unsorted_input_handled(self):
        check_curve_respected([20, 0, 10], SporadicCurve(10))

    def test_empty_sequence_conforms(self):
        check_curve_respected([], SporadicCurve(1))

    def test_pairwise_criterion_catches_interior_cluster(self):
        # 3 arrivals within a window of 11 needs α(11) ≥ 3; sporadic T=10
        # gives α(11) = 2.
        assert not respects_curve([0, 6, 10], SporadicCurve(10))

"""Tests for the bytecode peephole optimizer: semantics preservation,
instruction-count reduction, and cost-bound stability."""

from __future__ import annotations

import pytest

from repro.lang.compile import compile_program
from repro.lang.cost import CostAnalyzer
from repro.lang.generator import generate_program
from repro.lang.optimize import optimize_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck
from repro.lang.values import VInt
from repro.lang.vm import VM
from repro.rossl.client import RosslClient
from repro.rossl.env import HorizonReached, ScriptedEnvironment
from repro.rossl.runtime import TraceRecorder
from repro.rossl.source import build_rossl
from repro.lang.errors import OutOfFuel, UndefinedBehavior


def run_vm(compiled, script=(), entry="main", fuel=2_000_000):
    recorder = TraceRecorder()
    vm = VM(compiled, ScriptedEnvironment(script), recorder, fuel=fuel)
    result = vm.call(entry, [])
    return result, vm.executed, recorder.trace


def both(source: str, script=()):
    typed = typecheck(parse_program(source))
    plain = compile_program(typed)
    optimized = optimize_program(plain)
    return run_vm(plain, script), run_vm(optimized, script)


class TestFolding:
    def test_constant_arithmetic_folds(self):
        source = "int main() { return 2 + 3 * 4; }"
        (r1, n1, _), (r2, n2, _) = both(source)
        assert r1 == r2 == VInt(14)
        assert n2 < n1
        # Fully folded: push 14; retv.
        typed = typecheck(parse_program(source))
        optimized = optimize_program(compile_program(typed))
        assert [i.op for i in optimized.functions["main"].code[:2]] == [
            "push", "retv",
        ]

    def test_truncating_division_folds_like_the_vm(self):
        (r1, _, _), (r2, _, _) = both("int main() { return -7 / 2 + -7 % 2; }")
        assert r1 == r2

    def test_division_by_zero_not_folded(self):
        source = "int main() { return 1 / 0; }"
        typed = typecheck(parse_program(source))
        optimized = optimize_program(compile_program(typed))
        with pytest.raises(UndefinedBehavior, match="division"):
            run_vm(optimized)

    def test_unary_folds(self):
        (r1, n1, _), (r2, n2, _) = both("int main() { return -(5) + !0; }")
        assert r1 == r2
        assert n2 <= n1

    def test_constant_branch_folds(self):
        source = "int main() { if (1) { return 7; } return 8; }"
        (r1, n1, _), (r2, n2, _) = both(source)
        assert r1 == r2 == VInt(7)
        assert n2 < n1

    def test_constant_false_branch_removed(self):
        source = "int main() { if (0) { return 7; } return 8; }"
        (r1, _, _), (r2, _, _) = both(source)
        assert r1 == r2 == VInt(8)


class TestControlFlowIntegrity:
    def test_loops_survive(self):
        source = (
            "int main() { int i = 0; int s = 0;"
            " while (i < 6) { s = s + 2 * 3; i = i + 1; } return s; }"
        )
        (r1, n1, _), (r2, n2, _) = both(source)
        assert r1 == r2 == VInt(36)
        assert n2 < n1  # the 2*3 folds once, saving 6 instructions/iter

    def test_jump_target_blocks_folding(self):
        # `while (1)` with a break: the loop head is a jump target; the
        # optimizer must not merge across it.
        source = (
            "int main() { int i = 0; while (1) { i = i + 1;"
            " if (i >= 3) { break; } } return i; }"
        )
        (r1, _, _), (r2, _, _) = both(source)
        assert r1 == r2 == VInt(3)

    def test_short_circuit_behaviour_preserved(self):
        source = "int main() { int z = 0; return (0 && (1 / z)) + 1; }"
        (r1, _, _), (r2, _, _) = both(source)
        assert r1 == r2 == VInt(1)


class TestOnRossl:
    def test_rossl_traces_identical_and_cheaper(self, two_task_client: RosslClient):
        typed = build_rossl(two_task_client)
        plain = compile_program(typed)
        optimized = optimize_program(plain)
        script = [(1, 1), (2, 2), None, None, None]

        def run(compiled):
            recorder = TraceRecorder()
            vm = VM(compiled, ScriptedEnvironment(script), recorder,
                    fuel=500_000)
            try:
                vm.call("main", [])
            except (OutOfFuel, HorizonReached):
                pass
            return recorder.trace, vm.executed

        trace_plain, cost_plain = run(plain)
        trace_opt, cost_opt = run(optimized)
        assert trace_plain == trace_opt
        assert cost_opt <= cost_plain


class TestFuzzOptimizer:
    @pytest.mark.parametrize("seed", range(30))
    def test_generated_programs_preserved_and_bounded(self, seed: int):
        generated = generate_program(seed, helpers=2, body_size=4)
        typed = typecheck(parse_program(generated.source))
        plain = compile_program(typed)
        optimized = optimize_program(plain)
        (r1, n1, _) = run_vm(plain)
        (r2, n2, _) = run_vm(optimized)
        assert r1 == r2, generated.source
        assert n2 <= n1
        # A static bound for the unoptimized code stays sound for the
        # optimized build (optimization only removes work).
        static = CostAnalyzer(typed, generated.loop_bounds).function_cost("main")
        assert n2 <= static

"""Deterministic chaos harness for the distributed campaign fabric.

Shared by ``tests/test_dist.py``, ``tests/test_dist_properties.py`` and
``benchmarks/test_e22_dist.py``.  Everything here is seed-driven:

- :func:`seeded_kill_spec` derives a kill point (worker, lifecycle
  event, occurrence) from one integer, so a property test sweeps kill
  points by sweeping seeds;
- :class:`ManualClock` drives lease expiry without sleeping;
- ``order_seed`` (threaded through :class:`repro.dist.FabricConfig`)
  permutes every worker's visit order, exercising different
  interleavings of the same campaign.

The workload is self-contained (no pytest fixtures) so the benchmark
suite can import it too.
"""

from __future__ import annotations

import json
import random

from repro.analysis.adequacy import run_adequacy_campaign
from repro.dist import EVENTS, FabricConfig, KillSpec
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import LeakyBucketCurve, SporadicCurve
from repro.timing.wcet import WcetModel

#: Small but non-trivial campaign defaults: fast enough for property
#: tests, rich enough that every run index does real work.
CAMPAIGN = {"horizon": 4_000, "runs": 8, "seed": 3, "intensity": 1.0}

WCET = WcetModel(2, 2, 1, 1, 1, 1)


def make_client() -> RosslClient:
    """The two-task NPFP workload used throughout the dist tests."""
    tasks = TaskSystem(
        [
            Task(name="a", priority=2, wcet=10, type_tag=1),
            Task(name="b", priority=1, wcet=20, type_tag=2),
        ],
        arrival_curves={
            "a": SporadicCurve(300),
            "b": LeakyBucketCurve(2, 500),
        },
    )
    return RosslClient.make(tasks, sockets=[0])


class ManualClock:
    """An injectable clock for :class:`repro.dist.LeaseBroker`: leases
    expire exactly when a test says so, never by wall time."""

    def __init__(self, now: float = 1_000.0):
        self.now = now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def seeded_kill_spec(seed: int, workers: int, max_occurrence: int = 3) -> KillSpec:
    """A deterministic kill point drawn from ``seed``."""
    rng = random.Random(seed)
    return KillSpec(
        worker=rng.randrange(workers),
        event=rng.choice(EVENTS),
        occurrence=rng.randint(1, max_occurrence),
    )


def serial_report(client, wcet=WCET, **overrides):
    """The uninterrupted single-process campaign — the reference bytes."""
    params = {**CAMPAIGN, **overrides}
    return run_adequacy_campaign(client, wcet, **params)


def fabric_report(client, store, config: FabricConfig, wcet=WCET,
                  pool=None, **overrides):
    """The same campaign through the distributed fabric."""
    params = {**CAMPAIGN, **overrides}
    return run_adequacy_campaign(
        client, wcet, cache=store, fabric=config, pool=pool, **params
    )


def report_bytes(report) -> tuple[str, str]:
    """The two deterministic renderings a campaign must reproduce."""
    return report.table(), json.dumps(report.to_json(), sort_keys=True)


def interrupt_then_resume(
    client,
    store,
    kill: KillSpec,
    *,
    workers_first: int,
    workers_second: int,
    order_seed: int | None = None,
    wcet=WCET,
    **overrides,
):
    """Kill a worker at the seeded point (round budget 1, stealing off,
    so the interruption actually leaves a gap), then resume with a
    different worker count.  Returns the resumed report."""
    interrupted = fabric_report(
        client, store,
        FabricConfig(
            workers=workers_first, kill=kill, steal=False,
            max_rounds=1, order_seed=order_seed,
        ),
        wcet=wcet, **overrides,
    )
    assert interrupted.runs <= overrides.get("runs", CAMPAIGN["runs"])
    resumed = fabric_report(
        client, store,
        FabricConfig(workers=workers_second, order_seed=order_seed),
        wcet=wcet, **overrides,
    )
    return resumed

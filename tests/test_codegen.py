"""Trace-equivalence sweep for the codegen engine (`repro.lang.codegen`).

The codegen backend's contract is *exact* agreement with the rest of the
engine ladder: identical marker traces to every other engine, and the
unoptimized VM's instruction counts to the unit.  This file sweeps that
contract across every surface the issue names:

* the shipped MiniC examples (``examples/minic/*.c``) — result, trace,
  and executed-instruction parity across interp, VM, and codegen;
* the Rössl case studies and fixture deployments at engine level;
* fuel exhaustion — OutOfFuel at the same budget with the same partial
  trace and a clamped counter;
* the fault corpus — codegen wrapped in every engine-level fault
  injector must be *caught* by the bounded model checker, through the
  same exploration path that certifies it healthy;
* the cache rails — fault-wrapped codegen engines are unfingerprintable
  (their runs bypass the result store), pristine ones fingerprint like
  their registry name;
* the generated source itself — promoted locals are host variables,
  address-taken storage stays heap-backed, compilation memoizes.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.cache import ResultStore, UnfingerprintableError, engine_descriptor
from repro.cache.store import ENTRIES_NAME
from repro.engine import create_engine, engine_names
from repro.faults.inject import heap_corruption_engine, trace_desync_engine
from repro.lang.codegen import (
    CodegenMachine,
    compile_to_python,
    compiled_for,
    generate_source,
    run_codegen,
)
from repro.lang.compile import compile_program
from repro.lang.interp import run_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck
from repro.lang.vm import VM, OutOfFuel
from repro.rossl.env import ScriptedEnvironment
from repro.rossl.runtime import TraceRecorder

MINIC_EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "minic").glob("*.c")
)

FUEL = 2_000_000


def typed_example(path: Path):
    return typecheck(parse_program(path.read_text()))


def make_script(client, length=120, seed=11):
    rng = random.Random(seed)
    tags = [t.type_tag for t in client.tasks.tasks]
    return [
        None if rng.random() < 0.6 else (rng.choice(tags), rng.randrange(40))
        for _ in range(length)
    ]


# --------------------------------------------------------------------------
# MiniC programs: interp == vm == codegen
# --------------------------------------------------------------------------


class TestMiniCExamples:
    def test_examples_present(self):
        assert MINIC_EXAMPLES, "examples/minic/*.c missing"

    @pytest.mark.parametrize(
        "path", MINIC_EXAMPLES, ids=lambda p: p.name
    )
    def test_result_trace_and_instruction_parity(self, path: Path):
        typed = typed_example(path)
        # Single-word messages: the examples read into 1-word buffers.
        script = [(7,), None, (3,), None, None, (1,), None, None]

        interp_sink = TraceRecorder()
        interp_result = run_program(
            typed, ScriptedEnvironment(list(script)), interp_sink, fuel=FUEL
        )

        vm_sink = TraceRecorder()
        vm = VM(
            compile_program(typed), ScriptedEnvironment(list(script)),
            vm_sink, fuel=FUEL,
        )
        vm_result = vm.call("main", [])

        gen_sink = TraceRecorder()
        machine = CodegenMachine(
            compile_to_python(typed), ScriptedEnvironment(list(script)),
            gen_sink, fuel=FUEL,
        )
        gen_result = machine.call("main", [])

        assert gen_result == interp_result == vm_result
        assert gen_sink.trace == interp_sink.trace == vm_sink.trace
        assert machine.executed == vm.executed

    @pytest.mark.parametrize(
        "path", MINIC_EXAMPLES, ids=lambda p: p.name
    )
    def test_fuel_exhaustion_parity(self, path: Path):
        """OutOfFuel fires at the same budget, leaves the same partial
        trace, and clamps the counter to exactly the budget."""
        typed = typed_example(path)
        compiled_vm = compile_program(typed)
        compiled_gen = compile_to_python(typed)

        def env():
            return ScriptedEnvironment([None] * 8)  # all reads fail

        full = VM(compiled_vm, env(), TraceRecorder(), fuel=FUEL)
        full.call("main", [])
        total = full.executed
        for fuel in (1, 7, total // 3, total // 2, total - 1):
            vm_sink = TraceRecorder()
            vm = VM(compiled_vm, env(), vm_sink, fuel=fuel)
            with pytest.raises(OutOfFuel):
                vm.call("main", [])
            gen_sink = TraceRecorder()
            machine = CodegenMachine(compiled_gen, env(), gen_sink, fuel=fuel)
            with pytest.raises(OutOfFuel):
                machine.call("main", [])
            assert machine.executed == vm.executed == fuel, fuel
            assert gen_sink.trace == vm_sink.trace, fuel

    def test_run_codegen_convenience(self):
        typed = typed_example(MINIC_EXAMPLES[0])
        sink = TraceRecorder()
        result = run_codegen(typed, ScriptedEnvironment([]), sink)
        vm_sink = TraceRecorder()
        vm = VM(compile_program(typed), ScriptedEnvironment([]), vm_sink,
                fuel=FUEL)
        assert result == vm.call("main", [])
        assert sink.trace == vm_sink.trace


# --------------------------------------------------------------------------
# Engine level: the Rössl scheduler, fixtures and case studies
# --------------------------------------------------------------------------


class TestEngineSweep:
    def test_codegen_agrees_with_every_engine(self, two_task_client):
        script = make_script(two_task_client)
        reference = None
        for name in engine_names():
            engine = create_engine(name, two_task_client)
            trace = engine.run_to_trace(ScriptedEnvironment(list(script)))
            if reference is None:
                reference = trace
                assert reference  # non-trivial run
            assert trace == reference, f"engine {name} diverged from python"

    def test_instruction_parity_with_vm(self, two_socket_client):
        script = make_script(two_socket_client, length=200, seed=5)
        vm_stats = create_engine("vm", two_socket_client).run(
            ScriptedEnvironment(list(script)), TraceRecorder()
        )
        gen_stats = create_engine("codegen", two_socket_client).run(
            ScriptedEnvironment(list(script)), TraceRecorder()
        )
        assert gen_stats.instructions == vm_stats.instructions

    def test_case_studies_trace_and_instruction_parity(self):
        from repro.casestudies import ALL_CASE_STUDIES

        for factory in ALL_CASE_STUDIES:
            client = factory().client
            script = make_script(client, length=150, seed=29)
            vm_sink, gen_sink = TraceRecorder(), TraceRecorder()
            vm_stats = create_engine("vm", client).run(
                ScriptedEnvironment(list(script)), vm_sink
            )
            gen_stats = create_engine("codegen", client).run(
                ScriptedEnvironment(list(script)), gen_sink
            )
            assert gen_sink.trace == vm_sink.trace, factory.__name__
            assert gen_stats.instructions == vm_stats.instructions, (
                factory.__name__
            )

    def test_fuel_cutoff_parity_at_engine_level(self, two_task_client):
        """Under a tight budget both engines stop at the same boundary
        with the same partial trace (the engine catches OutOfFuel)."""
        script = make_script(two_task_client, length=400, seed=3)
        for fuel in (137, 1_000, 5_000):
            vm_sink, gen_sink = TraceRecorder(), TraceRecorder()
            vm_stats = create_engine("vm", two_task_client).run(
                ScriptedEnvironment(list(script)), vm_sink, fuel=fuel
            )
            gen_stats = create_engine("codegen", two_task_client).run(
                ScriptedEnvironment(list(script)), gen_sink, fuel=fuel
            )
            assert gen_sink.trace == vm_sink.trace, fuel
            assert gen_stats.instructions == vm_stats.instructions, fuel

    def test_engine_reusable_across_runs(self, two_task_client):
        engine = create_engine("codegen", two_task_client)
        script = make_script(two_task_client, length=80)
        first = engine.run_to_trace(ScriptedEnvironment(list(script)))
        second = engine.run_to_trace(ScriptedEnvironment(list(script)))
        assert first == second


# --------------------------------------------------------------------------
# The fault corpus: injected defects must be caught, never cached
# --------------------------------------------------------------------------


class TestFaultCorpus:
    @pytest.mark.parametrize(
        "wrap", [heap_corruption_engine, trace_desync_engine],
        ids=["heap_corruption", "trace_state_desync"],
    )
    def test_model_checker_catches_faulty_codegen(self, two_task_client, wrap):
        from repro.verification.model_check import explore_with_engine

        faulty = wrap(create_engine("codegen", two_task_client))
        payloads = [(next(iter(two_task_client.tasks)).type_tag, 0)]
        depth = 2 * two_task_client.num_sockets + 2
        report = explore_with_engine(
            two_task_client, payloads, max_reads=depth, engine=faulty
        )
        assert report.violations, faulty.name

    def test_healthy_codegen_explores_clean(self, two_task_client):
        from repro.verification.model_check import explore_with_engine

        engine = create_engine("codegen", two_task_client)
        payloads = [(next(iter(two_task_client.tasks)).type_tag, 0)]
        report = explore_with_engine(
            two_task_client, payloads, max_reads=3, engine=engine
        )
        assert not report.violations
        assert report.scripts_explored == 2 ** 3

    @pytest.mark.parametrize(
        "wrap", [heap_corruption_engine, trace_desync_engine],
        ids=["heap_corruption", "trace_state_desync"],
    )
    def test_fault_wrapped_codegen_unfingerprintable(
        self, two_task_client, wrap
    ):
        faulty = wrap(create_engine("codegen", two_task_client))
        with pytest.raises(UnfingerprintableError):
            engine_descriptor(faulty)

    def test_pristine_codegen_fingerprints_like_its_name(self, two_task_client):
        assert engine_descriptor(
            create_engine("codegen", two_task_client)
        ) == engine_descriptor("codegen")

    def test_faulty_codegen_campaign_bypasses_run_cache(self, tmp_path):
        """Mirror of the ``test_cache`` rail for codegen: a fault-wrapped
        codegen engine must never store or read run outcomes — only the
        engine-independent analysis entries may land in the store.

        Unlike the python reference engine (no ``heap`` attribute, so
        the poison sink is inert there), the codegen machine exposes its
        heap and the corruption actually fires: the campaign dies loudly
        on the poisoned load.  The rail under test is that nothing it
        computed was cached on the way down."""
        from repro.analysis.adequacy import run_adequacy_campaign
        from repro.lang.errors import UndefinedBehavior
        from repro.model.task import Task, TaskSystem
        from repro.rossl.client import RosslClient
        from repro.rta.curves import SporadicCurve
        from repro.timing.wcet import WcetModel

        tasks = TaskSystem(
            [
                Task(name="a", priority=2, wcet=10, type_tag=1),
                Task(name="b", priority=1, wcet=20, type_tag=2),
            ],
            arrival_curves={
                "a": SporadicCurve(300), "b": SporadicCurve(500),
            },
        )
        client = RosslClient.make(tasks, sockets=[0])
        store = ResultStore(tmp_path / "c")
        faulty = heap_corruption_engine(create_engine("codegen", client))
        with pytest.raises(UndefinedBehavior, match="uninitialized"):
            run_adequacy_campaign(
                client, WcetModel(2, 2, 1, 1, 1, 1), horizon=5_000, runs=2,
                seed=3, engine=faulty, cache=store,
            )
        assert all(
            json.loads(line)["payload"].get("tasks") is not None
            for line in (tmp_path / "c" / ENTRIES_NAME).read_text().splitlines()
        )


# --------------------------------------------------------------------------
# The generated source
# --------------------------------------------------------------------------


class TestGeneratedSource:
    def test_promoted_locals_are_host_variables(self):
        source = generate_source(typecheck(parse_program(
            "int main() { int a = 1; int b = a + 2; return a + b; }"
        )))
        # Neither local is address-taken, so no heap block is allocated
        # and both live as plain Python variables.
        assert "H.alloc" not in source
        assert "v0_a" in source and "v1_b" in source

    def test_address_taken_locals_stay_heap_backed(self):
        source = generate_source(typecheck(parse_program(
            "int main() { int a = 1; int* p = &a; return *p; }"
        )))
        assert "H.alloc" in source  # `a` escapes through &a
        assert "s0_a" in source     # heap-backed slot naming
        assert "v1_p" in source     # the pointer itself is promoted

    def test_compilation_memoizes_per_typed_program(self):
        typed = typed_example(MINIC_EXAMPLES[0])
        assert compiled_for(typed) is compiled_for(typed)

    def test_generated_source_round_trips_through_str(self):
        typed = typed_example(MINIC_EXAMPLES[0])
        program = compile_to_python(typed)
        assert str(program) == program.source
        assert "def F_main(" in program.source

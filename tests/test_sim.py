"""Tests for the timed simulator and workload generation.

The central guarantees: simulated runs are protocol-conforming,
functionally correct, Def. 2.1-consistent, WCET-respecting, and
convertible to valid schedules — i.e. every checkable lemma of the
paper holds on every simulated execution.
"""

from __future__ import annotations

import random

import pytest

from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import LeakyBucketCurve, SporadicCurve, check_curve_respected
from repro.schedule.validity import check_schedule_validity
from repro.sim.simulator import (
    FractionDurations,
    TimedDriver,
    UniformDurations,
    WcetDurations,
    simulate,
)
from repro.sim.workloads import burst_at, generate_arrivals
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import check_consistency
from repro.timing.wcet import WcetModel, check_wcet_respected
from repro.traces.markers import MCompletion, MDispatch
from repro.traces.validity import check_tr_valid

WCET = WcetModel(
    failed_read=3, success_read=4, selection=2, dispatch=2, completion=2, idling=3
)


def curved_client(two_tasks: TaskSystem) -> RosslClient:
    curves = {"lo": SporadicCurve(200), "hi": SporadicCurve(120)}
    return RosslClient.make(two_tasks.with_curves(curves), [0])


class TestDurationPolicies:
    def test_wcet_policy_returns_bound(self):
        assert WcetDurations().pick("x", 7) == 7

    def test_uniform_policy_in_range(self):
        policy = UniformDurations(random.Random(1))
        samples = [policy.pick("x", 5) for _ in range(200)]
        assert min(samples) >= 1 and max(samples) <= 5
        assert len(set(samples)) > 1

    def test_fraction_policy(self):
        assert FractionDurations(0.5).pick("x", 10) == 5
        assert FractionDurations(0.01).pick("x", 10) == 1
        with pytest.raises(ValueError):
            FractionDurations(0.0)


class TestTimedDriver:
    def test_rejects_nonpositive_horizon(self, two_tasks: TaskSystem):
        client = curved_client(two_tasks)
        with pytest.raises(ValueError):
            TimedDriver(client, ArrivalSequence([]), WCET, 0)

    def test_idle_run_produces_increasing_timestamps(self, two_tasks: TaskSystem):
        client = curved_client(two_tasks)
        result = simulate(client, ArrivalSequence([]), WCET, horizon=100)
        ts = result.timed_trace.ts
        assert all(b > a for a, b in zip(ts, ts[1:]))
        assert ts[-1] < 100

    def test_arrival_visible_only_after_its_time(self, two_tasks: TaskSystem):
        client = curved_client(two_tasks)
        arrivals = ArrivalSequence([Arrival(50, 0, (2, 1))])
        result = simulate(client, arrivals, WCET, horizon=200)
        reads = [
            (m, t)
            for m, t in zip(result.timed_trace.trace, result.timed_trace.ts)
            if type(m).__name__ == "MReadE" and m.job is not None
        ]
        assert len(reads) == 1
        assert reads[0][1] > 50

    def test_job_completes(self, two_tasks: TaskSystem):
        client = curved_client(two_tasks)
        arrivals = ArrivalSequence([Arrival(10, 0, (2, 1))])
        result = simulate(client, arrivals, WCET, horizon=200)
        responses = result.response_times()
        assert len(responses) == 1
        ((_, (arr, done, resp)),) = responses.items()
        assert arr == 10
        assert done > arr
        assert resp == done - arr


ALL_POLICIES = [
    WcetDurations(),
    FractionDurations(0.4),
    UniformDurations(random.Random(7)),
]


class TestSimulatedRunsSatisfyAllInvariants:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=["wcet", "fraction", "uniform"])
    @pytest.mark.parametrize("implementation", ["python", "minic"])
    def test_every_lemma_holds(self, two_tasks: TaskSystem, policy, implementation):
        client = curved_client(two_tasks)
        rng = random.Random(42)
        arrivals = generate_arrivals(client, horizon=400, rng=rng, intensity=1.0)
        result = simulate(
            client, arrivals, WCET, horizon=600, durations=policy,
            implementation=implementation,
        )
        timed = result.timed_trace
        # protocol + functional correctness (Thm. 3.4 analog)
        assert client.protocol().accepts(timed.trace)
        check_tr_valid(timed.trace, client.tasks)
        # Def. 2.1 consistency and WCETs
        check_consistency(timed, arrivals)
        check_wcet_respected(timed, client.tasks, WCET)
        # schedule conversion + validity constraints
        schedule = result.schedule()
        check_schedule_validity(schedule, client.tasks, WCET, client.num_sockets)

    def test_edf_runs_satisfy_invariants(self, two_tasks: TaskSystem):
        """The invariant stack holds for the EDF policy too (validity
        under the EDF priority function)."""
        from repro.edf import edf_priority, with_deadline_payloads
        from repro.model.task import Task, TaskSystem as TS
        from repro.rta.curves import SporadicCurve as SC

        tasks = TS(
            [
                Task(name="a", priority=0, wcet=10, type_tag=1, deadline=250),
                Task(name="b", priority=0, wcet=15, type_tag=2, deadline=400),
            ],
            {"a": SC(150), "b": SC(200)},
        )
        client = RosslClient.make(tasks, [0], policy="edf")
        rng = random.Random(9)
        base = generate_arrivals(client, horizon=400, rng=rng, intensity=1.2)
        arrivals = with_deadline_payloads(base, tasks)
        result = simulate(client, arrivals, WCET, horizon=900,
                          durations=WcetDurations())
        timed = result.timed_trace
        assert client.protocol().accepts(timed.trace)
        check_tr_valid(timed.trace, edf_priority)
        check_consistency(timed, arrivals)
        check_wcet_respected(timed, tasks, WCET)
        check_schedule_validity(result.schedule(), tasks, WCET, 1)

    def test_python_and_minic_agree_on_timed_traces(self, two_tasks: TaskSystem):
        client = curved_client(two_tasks)
        arrivals = generate_arrivals(
            client, horizon=300, rng=random.Random(5), intensity=1.0
        )
        a = simulate(client, arrivals, WCET, horizon=500, implementation="python")
        b = simulate(client, arrivals, WCET, horizon=500, implementation="minic")
        assert a.timed_trace == b.timed_trace


class TestWorkloadGeneration:
    def test_generated_arrivals_respect_curves(self, three_tasks: TaskSystem):
        curves = {
            "low": SporadicCurve(60),
            "mid": LeakyBucketCurve(2, 50),
            "high": SporadicCurve(40),
        }
        client = RosslClient.make(three_tasks.with_curves(curves), [0, 1])
        for seed in range(5):
            arrivals = generate_arrivals(
                client, horizon=500, rng=random.Random(seed), intensity=1.5
            )
            for task in client.tasks:
                times = [
                    a.time for a in arrivals.of_task(client.tasks, task.name)
                ]
                check_curve_respected(times, curves[task.name])

    def test_payloads_resolve_to_their_task(self, two_tasks: TaskSystem):
        client = curved_client(two_tasks)
        arrivals = generate_arrivals(client, horizon=300, rng=random.Random(2))
        for arrival in arrivals:
            client.tasks.msg_to_task(arrival.data)  # must not raise

    def test_socket_pinning(self, three_tasks: TaskSystem):
        curves = {n: SporadicCurve(50) for n in ("low", "mid", "high")}
        client = RosslClient.make(three_tasks.with_curves(curves), [0, 1])
        arrivals = generate_arrivals(
            client, horizon=400, rng=random.Random(3),
            socket_of_task={"low": 1, "mid": 1, "high": 1},
        )
        assert all(a.sock == 1 for a in arrivals)

    def test_burst_helper(self, two_tasks: TaskSystem):
        client = curved_client(two_tasks)
        arrivals = burst_at(client, 25, {"lo": 3, "hi": 2})
        assert len(arrivals) == 5
        assert all(a.time == 25 for a in arrivals)

    def test_rejects_bad_horizon(self, two_tasks: TaskSystem):
        client = curved_client(two_tasks)
        with pytest.raises(ValueError):
            generate_arrivals(client, horizon=0, rng=random.Random(0))


class TestBurstBehaviour:
    def test_burst_processed_in_priority_order(self, two_tasks: TaskSystem):
        client = curved_client(two_tasks)
        arrivals = burst_at(client, 5, {"lo": 2, "hi": 2})
        result = simulate(client, arrivals, WCET, horizon=400)
        dispatched = [
            client.tasks.msg_to_task(m.job.data).name
            for m in result.timed_trace.trace
            if isinstance(m, MDispatch)
        ]
        # All four jobs are read in one polling phase before any runs;
        # both hi jobs must run before both lo jobs.
        assert dispatched[:2] == ["hi", "hi"]
        assert dispatched[2:] == ["lo", "lo"]

    def test_all_burst_jobs_complete(self, two_tasks: TaskSystem):
        client = curved_client(two_tasks)
        arrivals = burst_at(client, 5, {"lo": 3, "hi": 3})
        result = simulate(client, arrivals, WCET, horizon=500)
        completions = [
            m for m in result.timed_trace.trace if isinstance(m, MCompletion)
        ]
        assert len(completions) == 6

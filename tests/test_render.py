"""Tests for the ASCII schedule renderer."""

from __future__ import annotations

import pytest

from repro.model.job import Job
from repro.schedule.conversion import FiniteSchedule, Segment
from repro.schedule.render import (
    glyph_of,
    legend,
    render_segments,
    render_timeline,
)
from repro.schedule.states import (
    CompletionOvh,
    DispatchOvh,
    Executes,
    Idle,
    PollingOvh,
    ReadOvh,
    SelectionOvh,
)

J = Job((1,), 0)


def sample_schedule() -> FiniteSchedule:
    return FiniteSchedule(
        (
            Segment(ReadOvh(J), 0, 4),
            Segment(PollingOvh(J), 4, 6),
            Segment(SelectionOvh(J), 6, 7),
            Segment(DispatchOvh(J), 7, 8),
            Segment(Executes(J), 8, 18),
            Segment(CompletionOvh(J), 18, 19),
            Segment(Idle(), 19, 30),
        ),
        0,
        30,
    )


class TestGlyphs:
    def test_each_state_has_a_glyph(self):
        for state in (Idle(), Executes(J), ReadOvh(J), PollingOvh(J),
                      SelectionOvh(J), DispatchOvh(J), CompletionOvh(J)):
            assert len(glyph_of(state)) == 1

    def test_glyphs_distinct(self):
        glyphs = [glyph_of(s) for s in (
            Idle(), Executes(J), ReadOvh(J), PollingOvh(J),
            SelectionOvh(J), DispatchOvh(J), CompletionOvh(J),
        )]
        assert len(set(glyphs)) == len(glyphs)

    def test_legend_mentions_all_states(self):
        text = legend()
        for name in ("Idle", "Executes", "ReadOvh", "PollingOvh",
                     "SelectionOvh", "DispatchOvh", "CompletionOvh"):
            assert name in text


class TestTimeline:
    def test_unscaled_render_is_exact(self):
        text = render_timeline(sample_schedule(), width=30, ruler=False)
        row = text.splitlines()[0]
        assert row == "rrrrppsd##########c..........."
        assert len(row) == 30

    def test_scaling_keeps_overheads_visible(self):
        text = render_timeline(sample_schedule(), width=10, ruler=False)
        row = text.splitlines()[0]
        assert len(row) == 10
        # Each short overhead run must still contribute a glyph.
        assert "s" in row or "p" in row or "d" in row

    def test_ruler_reports_scale(self):
        text = render_timeline(sample_schedule(), width=10)
        assert "1 column = 3 instant(s)" in text

    def test_empty_schedule(self):
        empty = FiniteSchedule((), 0, 0)
        assert "empty" in render_timeline(empty)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            render_timeline(sample_schedule(), width=0)

    def test_render_segments_lists_all(self):
        text = render_segments(sample_schedule())
        assert len(text.splitlines()) == 7
        assert "[8,18) Executes" in text

    def test_render_of_real_conversion(self, two_task_client):
        from repro.rta.curves import SporadicCurve
        from repro.sim.simulator import WcetDurations, simulate
        from repro.timing.arrivals import Arrival, ArrivalSequence
        from repro.timing.wcet import WcetModel

        curves = {"lo": SporadicCurve(100), "hi": SporadicCurve(100)}
        client = two_task_client
        client = type(client).make(client.tasks.with_curves(curves), [0])
        wcet = WcetModel(3, 5, 2, 2, 2, 3)
        arrivals = ArrivalSequence([Arrival(1, 0, (2, 1))])
        result = simulate(client, arrivals, wcet, horizon=120,
                          durations=WcetDurations())
        text = render_timeline(result.schedule(), width=80)
        assert "#" in text and "Executes" in text

"""Edge-case tests for the aRSA busy-window solver internals and the
EDF campaign driver."""

from __future__ import annotations

import pytest

from repro.edf.analysis import run_edf_campaign
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.arsa import (
    _offsets_to_check,
    solve_response_time,
    start_time_bound,
)
from repro.rta.curves import LeakyBucketCurve, SporadicCurve
from repro.rta.sbf import IdealSupply
from repro.timing.wcet import WcetModel

WCET = WcetModel(
    failed_read=2, success_read=2, selection=1, dispatch=1, completion=1, idling=1
)


def system(specs):
    """specs: name -> (priority, wcet, curve)."""
    tasks = TaskSystem(
        [
            Task(name=n, priority=p, wcet=c, type_tag=i + 1)
            for i, (n, (p, c, _)) in enumerate(specs.items())
        ],
        {n: curve for n, (_, _, curve) in specs.items()},
    )
    return tasks


class TestOffsets:
    def test_offsets_at_curve_steps_only(self):
        beta = SporadicCurve(10)
        offsets = _offsets_to_check(beta, busy_window=35)
        # β(A+1) steps at A = 0, 10, 20, 30.
        assert offsets == [0, 10, 20, 30]

    def test_bursty_curve_single_initial_offset(self):
        beta = LeakyBucketCurve(burst=3, rate_separation=50)
        offsets = _offsets_to_check(beta, busy_window=60)
        assert offsets[0] == 0
        assert all(a < 60 for a in offsets)

    def test_empty_window(self):
        assert _offsets_to_check(SporadicCurve(10), 0) == []


class TestStartTimeBound:
    def test_zero_offset_single_task(self):
        tasks = system({"a": (1, 10, SporadicCurve(1000))})
        curves = {"a": SporadicCurve(1000)}
        start = start_time_bound(
            tasks.by_name("a"), tasks.tasks, curves, IdealSupply(), 0, 10_000
        )
        assert start == 0  # nothing ahead of it

    def test_blocking_delays_start(self):
        tasks = system({
            "low": (1, 21, SporadicCurve(1000)),
            "high": (2, 5, SporadicCurve(1000)),
        })
        curves = {n: SporadicCurve(1000) for n in ("low", "high")}
        start = start_time_bound(
            tasks.by_name("high"), tasks.tasks, curves, IdealSupply(), 0, 10_000
        )
        assert start == 20  # B = C_low − 1

    def test_unbounded_returns_none(self):
        # The higher-priority task saturates the processor (C = T): the
        # lower-priority job can never start.
        tasks = system({
            "a": (1, 5, SporadicCurve(100)),
            "b": (2, 10, SporadicCurve(10)),
        })
        curves = {"a": SporadicCurve(100), "b": SporadicCurve(10)}
        assert start_time_bound(
            tasks.by_name("a"), tasks.tasks, curves, IdealSupply(), 0, 2_000
        ) is None

    def test_second_job_offset_includes_prior_self(self):
        tasks = system({"a": (1, 10, SporadicCurve(15))})
        curves = {"a": SporadicCurve(15)}
        # Offset 15: one earlier job of the same task must finish first.
        start = start_time_bound(
            tasks.by_name("a"), tasks.tasks, curves, IdealSupply(), 15, 10_000
        )
        assert start == 10


class TestSolverDetails:
    def test_offsets_recorded_in_result(self):
        tasks = system({"a": (1, 10, SporadicCurve(25))})
        curves = {"a": SporadicCurve(25)}
        result = solve_response_time(
            tasks.by_name("a"), tasks.tasks, curves, IdealSupply()
        )
        assert result is not None
        assert result.offsets[0][0] == 0
        assert all(resp <= result.response_bound for _, _, resp in result.offsets)

    def test_response_bound_is_max_over_offsets(self):
        tasks = system({
            "a": (1, 10, SporadicCurve(30)),
            "b": (2, 8, SporadicCurve(40)),
        })
        curves = {"a": SporadicCurve(30), "b": SporadicCurve(40)}
        result = solve_response_time(
            tasks.by_name("a"), tasks.tasks, curves, IdealSupply()
        )
        assert result is not None
        assert result.response_bound == max(r for _, _, r in result.offsets)


class TestEdfCampaign:
    def edf_client(self):
        tasks = TaskSystem(
            [
                Task(name="a", priority=0, wcet=10, type_tag=1, deadline=200),
                Task(name="b", priority=0, wcet=15, type_tag=2, deadline=350),
            ],
            {"a": SporadicCurve(250), "b": SporadicCurve(300)},
        )
        return RosslClient.make(tasks, [0], policy="edf")

    def test_campaign_clean(self):
        report = run_edf_campaign(
            self.edf_client(), WCET, horizon=2_000, runs=6, seed=2
        )
        assert report.ok
        assert report.runs == 6
        assert report.jobs_checked > 0

    def test_campaign_rejects_unschedulable(self):
        tasks = TaskSystem(
            [Task(name="a", priority=0, wcet=50, type_tag=1, deadline=20)],
            {"a": SporadicCurve(60)},
        )
        client = RosslClient.make(tasks, [0], policy="edf")
        with pytest.raises(ValueError, match="schedulable"):
            run_edf_campaign(client, WCET, horizon=500, runs=1)

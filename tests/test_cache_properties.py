"""Property tests (hypothesis) for the persistent cache.

Two families, straight from the issue spec:

* **fingerprint stability** — dict insertion-order permutations and
  equal-but-distinct spec objects hash identically, while any semantic
  field change flips the hash;
* **store corruption tolerance** — random truncation or garbage
  injection anywhere in the entries file makes affected entries a
  *miss*, never an exception, and never a wrong value.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import (
    ResultStore,
    client_descriptor,
    fingerprint,
    wcet_descriptor,
)
from repro.cache.store import ENTRIES_NAME
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import LeakyBucketCurve, SporadicCurve
from repro.timing.wcet import WcetModel

# JSON-like values made only of fingerprintable leaves.
json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-10**9, 10**9) | st.text(max_size=8),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=6), children, max_size=4),
    max_leaves=12,
)


def shuffled(value, rng):
    """A deep copy of ``value`` with every dict's insertion order shuffled."""
    if isinstance(value, dict):
        keys = list(value)
        rng.shuffle(keys)
        return {k: shuffled(value[k], rng) for k in keys}
    if isinstance(value, list):
        return [shuffled(item, rng) for item in value]
    return value


class TestFingerprintProperties:
    @given(value=json_values, rng=st.randoms(use_true_random=False))
    def test_dict_order_never_matters(self, value, rng):
        assert fingerprint(value) == fingerprint(shuffled(value, rng))

    @given(
        min_separation=st.integers(1, 10_000),
        burst=st.integers(1, 50),
        rate=st.integers(1, 10_000),
        wcet_a=st.integers(1, 100),
        prio_a=st.integers(1, 100),
    )
    def test_equal_but_distinct_clients_hash_identically(
        self, min_separation, burst, rate, wcet_a, prio_a
    ):
        def build():
            tasks = TaskSystem(
                [
                    Task(name="a", priority=prio_a, wcet=wcet_a, type_tag=1),
                    Task(name="b", priority=prio_a + 1, wcet=7, type_tag=2),
                ],
                arrival_curves={
                    "a": SporadicCurve(min_separation),
                    "b": LeakyBucketCurve(burst, rate),
                },
            )
            return RosslClient.make(tasks, sockets=[0, 1])

        assert fingerprint(client_descriptor(build())) == fingerprint(
            client_descriptor(build())
        )

    @given(
        base=st.integers(1, 1_000),
        bump=st.integers(1, 100),
        field=st.sampled_from(
            ["min_separation", "wcet", "priority", "socket", "policy"]
        ),
    )
    def test_semantic_change_flips_client_hash(self, base, bump, field):
        def build(mutated: bool):
            delta = bump if mutated else 0
            tasks = TaskSystem(
                [
                    Task(
                        name="a",
                        priority=10 + (delta if field == "priority" else 0),
                        wcet=base + (delta if field == "wcet" else 0),
                        type_tag=1,
                    )
                ],
                arrival_curves={
                    "a": SporadicCurve(
                        base + (delta if field == "min_separation" else 0)
                    )
                },
            )
            sockets = [0, 1 + (delta if field == "socket" else 0)]
            policy = "edf" if (field == "policy" and mutated) else "npfp"
            return RosslClient.make(tasks, sockets=sockets, policy=policy)

        assert fingerprint(client_descriptor(build(False))) != fingerprint(
            client_descriptor(build(True))
        )

    @given(
        values=st.lists(st.integers(2, 500), min_size=6, max_size=6),
        index=st.integers(0, 5),
        bump=st.integers(1, 50),
    )
    def test_semantic_change_flips_wcet_hash(self, values, index, bump):
        mutated = list(values)
        mutated[index] += bump
        assert fingerprint(wcet_descriptor(WcetModel(*values))) != fingerprint(
            wcet_descriptor(WcetModel(*mutated))
        )


@st.composite
def corruptions(draw):
    """An edit to apply to the raw entries file: truncate somewhere, or
    splice garbage bytes in at a random offset."""
    kind = draw(st.sampled_from(["truncate", "garbage"]))
    offset = draw(st.floats(0.0, 1.0))
    junk = draw(st.binary(min_size=1, max_size=40))
    return kind, offset, junk


class TestStoreCorruptionProperties:
    @settings(max_examples=40)
    @given(
        payloads=st.lists(json_values, min_size=1, max_size=5),
        corruption=corruptions(),
    )
    def test_corruption_is_a_miss_never_a_crash(
        self, tmp_path_factory: pytest.TempPathFactory, payloads, corruption
    ):
        directory = tmp_path_factory.mktemp("cache")
        store = ResultStore(directory)
        keys = [f"key-{i}" for i in range(len(payloads))]
        for key, payload in zip(keys, payloads):
            store.put(key, payload)
        path = directory / ENTRIES_NAME
        raw = path.read_bytes()
        kind, offset_frac, junk = corruption
        cut = int(len(raw) * offset_frac)
        if kind == "truncate":
            path.write_bytes(raw[:cut])
        else:
            path.write_bytes(raw[:cut] + junk + raw[cut:])
        # Never an exception; every answered key answers correctly.
        reopened = ResultStore(directory)
        for key, payload in zip(keys, payloads):
            value = reopened.get(key)
            assert value is None or value == payload
        stats = reopened.stats()
        assert stats.entries <= len(payloads)
        # The store stays writable after corruption: a fresh put of a
        # damaged key must be served on the next load.
        reopened.put(keys[0], payloads[0])
        assert ResultStore(directory).get(keys[0]) == payloads[0]

"""Tests for trace serialization, including a golden regression run.

The golden file pins the exact timed trace of the canonical Fig. 3
scenario under WCET timing: any change to the scheduler, the driver, or
the semantics that alters observable behaviour will show up as a diff.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.model.job import Job
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.sim.simulator import WcetDurations, simulate
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import check_consistency
from repro.timing.wcet import WcetModel
from repro.traces.markers import (
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
)
from repro.traces.serialize import (
    SerializeError,
    arrivals_from_json,
    arrivals_to_json,
    marker_from_json,
    marker_to_json,
    run_from_json,
    run_to_json,
    timed_trace_from_json,
    timed_trace_to_json,
    trace_from_json,
    trace_to_json,
)

GOLDEN = Path(__file__).resolve().parent / "golden"

J = Job((2, 7), 3)

ALL_MARKERS = [
    MReadS(), MReadE(0, J), MReadE(1, None), MSelection(),
    MDispatch(J), MExecution(J), MCompletion(J), MIdling(),
]


class TestMarkerRoundTrip:
    @pytest.mark.parametrize("marker", ALL_MARKERS, ids=range(len(ALL_MARKERS)))
    def test_roundtrip(self, marker):
        assert marker_from_json(marker_to_json(marker)) == marker

    def test_trace_roundtrip(self):
        assert trace_from_json(trace_to_json(ALL_MARKERS)) == ALL_MARKERS

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializeError, match="unknown marker kind"):
            marker_from_json({"kind": "nonsense"})

    def test_dispatch_requires_job(self):
        with pytest.raises(SerializeError, match="requires a job"):
            marker_from_json({"kind": "dispatch", "job": None})

    def test_bad_job_rejected(self):
        with pytest.raises(SerializeError, match="bad job"):
            marker_from_json({"kind": "dispatch", "job": {"oops": 1}})


class TestRunRoundTrip:
    def fig3_run(self):
        tasks = TaskSystem(
            [
                Task(name="t1", priority=1, wcet=12, type_tag=1),
                Task(name="t2", priority=2, wcet=8, type_tag=2),
            ],
            None,
        )
        client = RosslClient.make(tasks, [0])
        wcet = WcetModel(3, 5, 2, 2, 2, 3)
        arrivals = ArrivalSequence(
            [Arrival(1, 0, (1, 1)), Arrival(4, 0, (2, 2))]
        )
        return simulate(client, arrivals, wcet, horizon=120,
                        durations=WcetDurations())

    def test_timed_trace_roundtrip(self):
        result = self.fig3_run()
        obj = timed_trace_to_json(result.timed_trace)
        assert timed_trace_from_json(obj) == result.timed_trace

    def test_arrivals_roundtrip(self):
        result = self.fig3_run()
        objs = arrivals_to_json(result.arrivals)
        restored = arrivals_from_json(objs)
        assert restored.arrivals == result.arrivals.arrivals

    def test_full_run_roundtrip_and_recheck(self):
        result = self.fig3_run()
        text = run_to_json(result.timed_trace, result.arrivals)
        timed, arrivals = run_from_json(text)
        assert timed == result.timed_trace
        # The restored run passes the independent checkers.
        check_consistency(timed, arrivals)

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializeError, match="invalid JSON"):
            run_from_json("{nope")

    def test_golden_fig3_trace(self):
        """Regression pin: the canonical Fig. 3 run must not drift."""
        result = self.fig3_run()
        current = run_to_json(result.timed_trace, result.arrivals)
        golden_path = GOLDEN / "fig3_run.json"
        assert golden_path.exists(), (
            "golden file missing — regenerate with "
            "`python -m tests.regen_golden` if intentional"
        )
        assert current == golden_path.read_text(), (
            "the canonical Fig. 3 run changed; if intentional, regenerate "
            "tests/golden/fig3_run.json"
        )

"""Differential tests: the MiniC Rössl and the Python reference model
must emit *identical* marker traces given identical read outcomes.

This is the reproduction's analog of "the C code implements the model":
the RefinedC proof shows the C code's traces satisfy the protocol; here
we additionally pin the C code to the reference model exactly, then test
the protocol/validity properties on either.
"""

from __future__ import annotations

import random

import pytest

from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.env import ScriptedEnvironment
from repro.rossl.source import MiniCRossl, rossl_source
from repro.traces.validity import tr_valid


def run_both(client: RosslClient, script, fuel: int = 200_000):
    """Run MiniC and Python Rössl on the same read-outcome script.

    The codegen backend rides along on every differential case: its
    trace is asserted against the interpreter's here, so the returned
    pair still captures all three semantics.
    """
    from repro.engine import create_engine

    minic = MiniCRossl(client)
    trace_c = minic.run_to_trace(ScriptedEnvironment(script), fuel=fuel)
    trace_gen = create_engine("codegen", client).run_to_trace(
        ScriptedEnvironment(script), fuel=fuel
    )
    assert trace_gen == trace_c, "codegen diverged from the interpreter"
    model = client.model()
    trace_py = model.run_to_trace(ScriptedEnvironment(script))
    return trace_c, trace_py


def random_script(rng: random.Random, client: RosslClient, length: int):
    """A random read-outcome script using the client's task tags."""
    tags = [task.type_tag for task in client.tasks.tasks]
    script = []
    for _ in range(length):
        if rng.random() < 0.55:
            script.append(None)
        else:
            tag = rng.choice(tags)
            payload = (tag,) + tuple(rng.randrange(10) for _ in range(rng.randrange(3)))
            script.append(payload)
    return script


class TestDifferential:
    def test_empty_script(self, two_task_client: RosslClient):
        trace_c, trace_py = run_both(two_task_client, [])
        assert trace_c == trace_py

    def test_single_job(self, two_task_client: RosslClient):
        trace_c, trace_py = run_both(two_task_client, [(2, 5), None, None])
        assert trace_c == trace_py
        assert any(type(m).__name__ == "MDispatch" for m in trace_c)

    def test_fig3_scenario(self, two_task_client: RosslClient):
        # j1 (low) then j2 (high) on one socket; j2 must run first.
        script = [(1, 1), (2, 2), None, None, None]
        trace_c, trace_py = run_both(two_task_client, script)
        assert trace_c == trace_py
        dispatched = [
            m.job.data for m in trace_c if type(m).__name__ == "MDispatch"
        ]
        assert dispatched == [(2, 2), (1, 1)]

    def test_two_sockets(self, two_socket_client: RosslClient):
        script = [(1,), (3,), None, (2,), None, None, None, None]
        trace_c, trace_py = run_both(two_socket_client, script)
        assert trace_c == trace_py

    def test_identical_payloads_get_distinct_ids(self, two_task_client: RosslClient):
        script = [(1, 9), (1, 9), None, None, None]
        trace_c, trace_py = run_both(two_task_client, script)
        assert trace_c == trace_py
        ids = [
            m.job.jid
            for m in trace_c
            if type(m).__name__ == "MReadE" and m.job is not None
        ]
        assert len(set(ids)) == 2

    @pytest.mark.parametrize("seed", range(12))
    def test_random_scripts_agree(self, seed: int, two_socket_client: RosslClient):
        rng = random.Random(seed)
        script = random_script(rng, two_socket_client, length=rng.randrange(1, 40))
        trace_c, trace_py = run_both(two_socket_client, script)
        assert trace_c == trace_py

    @pytest.mark.parametrize("seed", range(6))
    def test_minic_traces_satisfy_protocol_and_validity(
        self, seed: int, two_socket_client: RosslClient
    ):
        rng = random.Random(1000 + seed)
        script = random_script(rng, two_socket_client, length=30)
        minic = MiniCRossl(two_socket_client)
        trace = minic.run_to_trace(ScriptedEnvironment(script))
        assert two_socket_client.protocol().accepts(trace)
        assert tr_valid(trace, two_socket_client.tasks)

    def test_no_heap_leak_after_jobs_complete(self, two_task_client: RosslClient):
        """Every malloc'd job block is freed once its callback completed
        (or freed right away on failed reads)."""
        from repro.lang.interp import Interpreter
        from repro.lang.errors import OutOfFuel
        from repro.rossl.env import HorizonReached
        from repro.rossl.runtime import TraceRecorder
        from repro.rossl.source import build_rossl

        typed = build_rossl(two_task_client)
        env = ScriptedEnvironment([(1, 1), (2, 2), None, None, None])
        interp = Interpreter(typed, env, TraceRecorder(), fuel=200_000)
        with pytest.raises((OutOfFuel, HorizonReached)):
            interp.call("main", [])
        # At most the one in-flight read buffer (the horizon interrupts
        # the scheduler between its malloc and the read/free) may be
        # live; completed jobs must all have been freed.
        assert interp.heap.live_malloc_blocks() <= 1

    def test_source_contains_fig2_structure(self, two_task_client: RosslClient):
        source = rossl_source(two_task_client)
        for snippet in (
            "fds_run",
            "check_sockets_until_empty",
            "npfp_dequeue",
            "npfp_dispatch",
            "selection_start",
            "idling_start",
            "dispatch_start",
        ):
            assert snippet in source


class TestPriorityTableGeneration:
    def test_many_tasks(self):
        tasks = TaskSystem(
            [
                Task(name=f"t{i}", priority=i, wcet=i + 1, type_tag=i)
                for i in range(1, 6)
            ]
        )
        client = RosslClient.make(tasks, [0])
        script = [(3,), (5,), (1,), None, None, None, None, None]
        trace_c, trace_py = run_both(client, script)
        assert trace_c == trace_py
        dispatched = [
            m.job.data[0] for m in trace_c if type(m).__name__ == "MDispatch"
        ]
        assert dispatched == [5, 3, 1]  # priority order

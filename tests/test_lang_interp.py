"""Tests for the MiniC interpreter: evaluation, heap, UB detection,
and the instrumented read/marker builtins (Fig. 6)."""

from __future__ import annotations

import pytest

from repro.lang.errors import OutOfFuel, UndefinedBehavior
from repro.lang.heap import Heap
from repro.lang.interp import Interpreter, run_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck
from repro.lang.values import NULL, VInt, VPtr
from repro.rossl.env import QueueEnvironment, ScriptedEnvironment
from repro.rossl.runtime import TraceRecorder
from repro.traces.markers import MIdling, MReadE, MReadS, MSelection


def run_int(source: str, entry: str = "main", fuel: int = 100_000) -> int:
    typed = typecheck(parse_program(source))
    env = ScriptedEnvironment([])
    result = run_program(typed, env, TraceRecorder(), entry=entry, fuel=fuel)
    assert isinstance(result, VInt)
    return result.value


class TestHeap:
    def test_alloc_store_load(self):
        heap = Heap()
        ptr = heap.alloc(2)
        heap.store(ptr, VInt(7))
        assert heap.load(ptr) == VInt(7)

    def test_load_uninitialized_is_ub(self):
        heap = Heap()
        ptr = heap.alloc(1)
        with pytest.raises(UndefinedBehavior, match="uninitialized"):
            heap.load(ptr)

    def test_out_of_bounds_is_ub(self):
        heap = Heap()
        ptr = heap.alloc(2)
        with pytest.raises(UndefinedBehavior, match="out of bounds"):
            heap.load(ptr.moved(2))

    def test_use_after_free_is_ub(self):
        heap = Heap()
        ptr = heap.alloc(1)
        heap.store(ptr, VInt(1))
        heap.free(ptr)
        with pytest.raises(UndefinedBehavior, match="dangling"):
            heap.load(ptr)

    def test_double_free_is_ub(self):
        heap = Heap()
        ptr = heap.alloc(1)
        heap.free(ptr)
        with pytest.raises(UndefinedBehavior, match="already-freed|invalid"):
            heap.free(ptr)

    def test_free_null_is_noop(self):
        Heap().free(NULL)

    def test_free_interior_pointer_is_ub(self):
        heap = Heap()
        ptr = heap.alloc(2)
        with pytest.raises(UndefinedBehavior, match="interior"):
            heap.free(ptr.moved(1))

    def test_free_local_is_ub(self):
        heap = Heap()
        ptr = heap.alloc(1, kind="local")
        with pytest.raises(UndefinedBehavior, match="non-heap"):
            heap.free(ptr)

    def test_null_access_is_ub(self):
        with pytest.raises(UndefinedBehavior, match="NULL"):
            Heap().load(NULL)

    def test_live_block_accounting(self):
        heap = Heap()
        a = heap.alloc(1)
        heap.alloc(1, kind="local")
        assert heap.live_blocks == 2
        assert heap.live_malloc_blocks() == 1
        heap.free(a)
        assert heap.live_malloc_blocks() == 0


class TestEvaluation:
    def test_arithmetic(self):
        assert run_int("int main() { return 2 + 3 * 4 - 1; }") == 13

    def test_c_style_truncating_division(self):
        assert run_int("int main() { return -7 / 2; }") == -3
        assert run_int("int main() { return -7 % 2; }") == -1
        assert run_int("int main() { return 7 / -2; }") == -3

    def test_division_by_zero_is_ub(self):
        with pytest.raises(UndefinedBehavior, match="division"):
            run_int("int main() { int z = 0; return 1 / z; }")

    def test_comparisons(self):
        assert run_int("int main() { return (1 < 2) + (2 <= 2) + (3 > 4); }") == 2

    def test_short_circuit_and(self):
        # The RHS would divide by zero; && must not evaluate it.
        assert run_int("int main() { int z = 0; return 0 && (1 / z); }") == 0

    def test_short_circuit_or(self):
        assert run_int("int main() { int z = 0; return 1 || (1 / z); }") == 1

    def test_logical_not(self):
        assert run_int("int main() { return !0 + !5; }") == 1

    def test_while_loop(self):
        assert run_int(
            "int main() { int i = 0; int s = 0;"
            " while (i < 5) { s = s + i; i = i + 1; } return s; }"
        ) == 10

    def test_break_and_continue(self):
        assert run_int(
            "int main() { int i = 0; int s = 0; while (1) {"
            " i = i + 1; if (i > 10) { break; }"
            " if (i % 2 == 0) { continue; } s = s + i; } return s; }"
        ) == 25

    def test_nested_function_calls(self):
        assert run_int(
            "int sq(int x) { return x * x; }"
            "int main() { return sq(sq(2)); }"
        ) == 16

    def test_recursion(self):
        assert run_int(
            "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }"
            "int main() { return fact(5); }"
        ) == 120

    def test_pointers_and_address_of(self):
        assert run_int(
            "void set(int *p, int v) { *p = v; }"
            "int main() { int x = 1; set(&x, 42); return x; }"
        ) == 42

    def test_struct_member_access(self):
        assert run_int(
            "struct pt { int x; int y; };"
            "int main() { struct pt p; p.x = 3; p.y = 4; return p.x * p.y; }"
        ) == 12

    def test_struct_pointer_arrow(self):
        assert run_int(
            "struct pt { int x; int y; };"
            "int get(struct pt *p) { return p->x + p->y; }"
            "int main() { struct pt p; p.x = 1; p.y = 2; return get(&p); }"
        ) == 3

    def test_arrays(self):
        assert run_int(
            "int main() { int a[3]; a[0] = 1; a[1] = 2; a[2] = 3;"
            " return a[0] + a[1] + a[2]; }"
        ) == 6

    def test_array_out_of_bounds_is_ub(self):
        with pytest.raises(UndefinedBehavior, match="out of bounds"):
            run_int("int main() { int a[2]; a[0] = 1; int i = 2; a[i] = 5; return 0; }")

    def test_malloc_free_linked_list(self):
        assert run_int(
            "struct node { int v; struct node *next; };"
            "int main() {"
            "  struct node *head = NULL;"
            "  int i = 0;"
            "  while (i < 4) {"
            "    struct node *n = malloc(sizeof(struct node));"
            "    n->v = i; n->next = head; head = n; i = i + 1;"
            "  }"
            "  int s = 0;"
            "  while (head != NULL) {"
            "    s = s + head->v;"
            "    struct node *dead = head;"
            "    head = head->next;"
            "    free(dead);"
            "  }"
            "  return s;"
            "}"
        ) == 6

    def test_use_after_scope_exit_is_ub(self):
        source = (
            "int *escape() { int x = 1; return &x; }"
            "int main() { int *p = escape(); return *p; }"
        )
        with pytest.raises(UndefinedBehavior, match="dangling"):
            run_int(source)

    def test_pointer_arithmetic_scaled_by_struct_size(self):
        assert run_int(
            "struct pt { int x; int y; };"
            "int main() {"
            "  struct pt *a = malloc(2 * sizeof(struct pt));"
            "  (*(a + 1)).x = 9;"
            "  struct pt *b = a + 1;"
            "  int r = b->x;"
            "  free(a);"
            "  return r;"
            "}"
        ) == 9

    def test_sizeof(self):
        assert run_int(
            "struct job { int len; int data[8]; struct job *next; };"
            "int main() { return sizeof(struct job); }"
        ) == 10

    def test_uninitialized_local_read_is_ub(self):
        with pytest.raises(UndefinedBehavior, match="uninitialized"):
            run_int("int main() { int x; return x; }")

    def test_fuel_exhaustion(self):
        with pytest.raises(OutOfFuel):
            run_int("int main() { while (1) { } return 0; }", fuel=100)

    def test_falling_off_non_void_is_ub(self):
        with pytest.raises(UndefinedBehavior, match="fell off"):
            run_int("int main() { int x = 1; }")

    def test_null_deref_is_ub(self):
        with pytest.raises(UndefinedBehavior, match="NULL"):
            run_int(
                "struct s { int x; };"
                "int main() { struct s *p = NULL; return p->x; }"
            )


class TestInstrumentedBuiltins:
    def make(self, source: str, script):
        typed = typecheck(parse_program(source))
        recorder = TraceRecorder()
        env = ScriptedEnvironment(script)
        return typed, env, recorder

    def test_read_failure_emits_marker_and_returns_minus_one(self):
        source = (
            "int main() { int buf[8]; read_start();"
            " return read(5, buf, 8); }"
        )
        typed, env, recorder = self.make(source, [None])
        result = run_program(typed, env, recorder)
        assert result == VInt(-1)
        assert recorder.trace == [MReadS(), MReadE(5, None)]

    def test_read_success_writes_buffer_and_assigns_id(self):
        source = (
            "int main() { int buf[8]; read_start();"
            " int n = read(3, buf, 8);"
            " return buf[0] * 100 + buf[1] * 10 + n; }"
        )
        typed, env, recorder = self.make(source, [(4, 2)])
        result = run_program(typed, env, recorder)
        assert result == VInt(4 * 100 + 2 * 10 + 2)
        read_end = recorder.trace[1]
        assert isinstance(read_end, MReadE)
        assert read_end.job is not None
        assert read_end.job.data == (4, 2)
        assert read_end.job.jid == 0

    def test_oversized_message_is_ub(self):
        source = "int main() { int buf[2]; return read(0, buf, 2); }"
        typed, env, recorder = self.make(source, [(1, 2, 3)])
        with pytest.raises(UndefinedBehavior, match="exceeds buffer"):
            run_program(typed, env, recorder)

    def test_marker_builtins_emit(self):
        source = (
            "int main() { selection_start(); idling_start(); return 0; }"
        )
        typed, env, recorder = self.make(source, [])
        run_program(typed, env, recorder)
        assert recorder.trace == [MSelection(), MIdling()]

    def test_dispatch_without_read_is_ub(self):
        source = (
            "int main() { int buf[2]; buf[0] = 9; buf[1] = 9;"
            " dispatch_start(buf, 2); return 0; }"
        )
        typed, env, recorder = self.make(source, [])
        with pytest.raises(UndefinedBehavior, match="no read-but-undispatched"):
            run_program(typed, env, recorder)

    def test_dispatch_resolves_read_job(self):
        source = (
            "int main() { int buf[8];"
            " int n = read(0, buf, 8);"
            " dispatch_start(buf, n);"
            " execution_start(buf, n);"
            " completion_start(buf, n);"
            " return 0; }"
        )
        typed, env, recorder = self.make(source, [(7, 7)])
        run_program(typed, env, recorder)
        kinds = [type(m).__name__ for m in recorder.trace]
        assert kinds == ["MReadE", "MDispatch", "MExecution", "MCompletion"]
        jobs = {m.job for m in recorder.trace if hasattr(m, "job") and m.job}
        assert len(jobs) == 1

    def test_execution_without_dispatch_is_ub(self):
        source = (
            "int main() { int buf[1]; buf[0] = 1;"
            " execution_start(buf, 1); return 0; }"
        )
        typed, env, recorder = self.make(source, [])
        with pytest.raises(UndefinedBehavior, match="does not match"):
            run_program(typed, env, recorder)

    def test_interpreter_tracks_leaks(self):
        source = "int main() { int *p = malloc(4); return 0; }"
        typed, env, recorder = self.make(source, [])
        interp = Interpreter(typed, env, recorder)
        interp.call("main", [])
        assert interp.heap.live_malloc_blocks() == 1

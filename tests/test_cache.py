"""Tests for the persistent result cache (repro.cache).

Covers the three layers — fingerprints, the on-disk store, and the
cached result boundaries — plus the campaign integration (warm reruns
byte-identical to cold, incremental recomputation), the fault-injection
bypass rails, the memo-cache accounting fix, and the CLI surface.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.analysis.adequacy import run_adequacy_campaign
from repro.analysis.parallel import WorkerFault
from repro.cache import (
    ResultStore,
    UnfingerprintableError,
    analysis_key,
    cached_analyse,
    campaign_run_key,
    client_descriptor,
    engine_descriptor,
    fingerprint,
    outcome_from_payload,
    outcome_payload,
)
from repro.cache.store import ENTRIES_NAME
from repro.cli import main
from repro.engine import create_engine
from repro.faults.inject import heap_corruption_engine
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import (
    LeakyBucketCurve,
    SporadicCurve,
    memo_accounting,
    memo_cache_clear,
    memo_cache_info,
)
from repro.rta.npfp import analyse
from repro.timing.wcet import WcetModel

WCET = WcetModel(2, 2, 1, 1, 1, 1)


def make_client(min_separation: int = 300) -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="a", priority=2, wcet=10, type_tag=1),
            Task(name="b", priority=1, wcet=20, type_tag=2),
        ],
        arrival_curves={
            "a": SporadicCurve(min_separation),
            "b": LeakyBucketCurve(2, 500),
        },
    )
    return RosslClient.make(tasks, sockets=[0])


SPEC = {
    "policy": "npfp",
    "sockets": [0],
    "wcet": {
        "failed_read": 2, "success_read": 2, "selection": 1,
        "dispatch": 1, "completion": 1, "idling": 1,
    },
    "tasks": [
        {
            "name": "a", "priority": 2, "wcet": 10, "type_tag": 1,
            "curve": {"kind": "sporadic", "min_separation": 300},
        },
        {
            "name": "b", "priority": 1, "wcet": 20, "type_tag": 2,
            "curve": {"kind": "leaky-bucket", "burst": 2,
                      "rate_separation": 500},
        },
    ],
}


@pytest.fixture
def spec_path(tmp_path: Path) -> str:
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return str(path)


@pytest.fixture
def cache_env(tmp_path: Path, monkeypatch) -> Path:
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    return cache_dir


class TestFingerprint:
    def test_dict_order_insensitive(self):
        assert fingerprint({"a": 1, "b": [2, {"x": 3, "y": 4}]}) == fingerprint(
            {"b": [2, {"y": 4, "x": 3}], "a": 1}
        )

    def test_equal_but_distinct_specs_hash_identically(self):
        assert fingerprint(client_descriptor(make_client())) == fingerprint(
            client_descriptor(make_client())
        )

    def test_semantic_change_flips_hash(self):
        assert fingerprint(client_descriptor(make_client(300))) != fingerprint(
            client_descriptor(make_client(301))
        )

    def test_analysis_key_depends_on_horizon(self):
        client = make_client()
        assert analysis_key(client, WCET, 1_000) != analysis_key(
            client, WCET, 2_000
        )

    def test_campaign_key_depends_on_index_and_seed(self):
        client = make_client()

        def key(**overrides):
            params = dict(
                horizon=1_000, runs=4, seed_root=0, intensity=1.0,
                adversarial_fraction=0.5, analysis_horizon=10_000, index=0,
            )
            params.update(overrides)
            return campaign_run_key(client, WCET, "python", **params)

        assert key() == key()
        assert key(index=1) != key()
        assert key(seed_root=7) != key()
        assert key(runs=8) != key()

    def test_engine_aliases_canonicalize(self):
        assert engine_descriptor("minic") == engine_descriptor("interp")
        assert engine_descriptor("reference") == engine_descriptor("python")

    def test_engine_instance_fingerprints_like_its_name(self):
        client = make_client()
        assert engine_descriptor(
            create_engine("python", client)
        ) == engine_descriptor("python")

    def test_fault_wrapped_engine_unfingerprintable(self):
        client = make_client()
        faulty = heap_corruption_engine(create_engine("python", client))
        with pytest.raises(UnfingerprintableError):
            engine_descriptor(faulty)

    def test_unknown_engine_name_unfingerprintable(self):
        with pytest.raises(UnfingerprintableError):
            engine_descriptor("python+heap_corruption")

    def test_adhoc_curve_unfingerprintable(self):
        tasks = TaskSystem(
            [Task(name="a", priority=1, wcet=5, type_tag=1)],
            arrival_curves={"a": lambda delta: delta},
        )
        client = RosslClient.make(tasks, sockets=[0])
        with pytest.raises(UnfingerprintableError):
            client_descriptor(client)

    def test_non_json_value_unfingerprintable(self):
        with pytest.raises(UnfingerprintableError):
            fingerprint({"x": object()})
        with pytest.raises(UnfingerprintableError):
            fingerprint(float("nan"))


class TestStore:
    def test_roundtrip_and_persistence(self, tmp_path: Path):
        store = ResultStore(tmp_path / "c")
        assert store.get("k") is None
        store.put("k", {"v": 1})
        assert store.get("k") == {"v": 1}
        # A fresh instance over the same directory reads it back.
        again = ResultStore(tmp_path / "c")
        assert again.get("k") == {"v": 1}
        assert again.stats().entries == 1

    def test_last_write_wins(self, tmp_path: Path):
        store = ResultStore(tmp_path / "c")
        store.put("k", 1)
        store.put("k", 2)
        assert ResultStore(tmp_path / "c").get("k") == 2

    def test_garbage_line_is_skipped(self, tmp_path: Path):
        store = ResultStore(tmp_path / "c")
        store.put("good", [1, 2])
        path = tmp_path / "c" / ENTRIES_NAME
        with open(path, "ab") as handle:
            handle.write(b"{not json at all\n")
        again = ResultStore(tmp_path / "c")
        assert again.get("good") == [1, 2]
        assert again.stats().corrupt == 1

    def test_torn_tail_is_a_miss_then_sealed(self, tmp_path: Path):
        store = ResultStore(tmp_path / "c")
        store.put("a", 1)
        store.put("b", 2)
        path = tmp_path / "c" / ENTRIES_NAME
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])  # tear the last entry mid-line
        again = ResultStore(tmp_path / "c")
        assert again.get("a") == 1
        assert again.get("b") is None
        again.put("b", 3)  # append must seal the torn tail first
        final = ResultStore(tmp_path / "c")
        assert final.get("a") == 1
        assert final.get("b") == 3

    def test_checksum_mismatch_is_a_miss(self, tmp_path: Path):
        store = ResultStore(tmp_path / "c")
        store.put("k", {"v": 1})
        path = tmp_path / "c" / ENTRIES_NAME
        text = path.read_text().replace('"v":1', '"v":9')
        path.write_text(text)
        again = ResultStore(tmp_path / "c")
        assert again.get("k") is None
        assert again.stats().corrupt == 1

    def test_lru_eviction_under_byte_budget(self, tmp_path: Path):
        store = ResultStore(tmp_path / "c", max_bytes=600)
        for i in range(10):
            store.put(f"k{i}", "x" * 50)
        assert store.evictions > 0
        stats = store.stats()
        assert stats.bytes <= 600
        # The most recent key survives eviction.
        assert store.get("k9") == "x" * 50
        # Everything the store still holds is readable from disk.
        again = ResultStore(tmp_path / "c", max_bytes=600)
        assert again.stats().entries == stats.entries

    def test_get_refreshes_recency(self, tmp_path: Path):
        store = ResultStore(tmp_path / "c", max_bytes=10_000)
        store.put("old", "x" * 50)
        store.put("mid", "x" * 50)
        assert store.get("old") == "x" * 50  # refresh: 'mid' is now LRU
        store.gc(max_bytes=150)
        assert store.get("old") is not None
        assert store.get("mid") is None

    def test_clear_and_gc(self, tmp_path: Path):
        store = ResultStore(tmp_path / "c")
        store.put("k", 1)
        assert store.clear() == 1
        assert store.get("k") is None
        assert not (tmp_path / "c" / ENTRIES_NAME).exists()
        assert store.gc() == 0

    def test_unwritable_directory_degrades(self, tmp_path: Path):
        blocker = tmp_path / "file"
        blocker.write_text("in the way")
        store = ResultStore(blocker / "cache")  # parent is a file: ENOTDIR
        store.put("k", 1)  # must not raise
        assert store.get("k") == 1  # still usable in-process
        assert ResultStore(blocker / "cache").get("k") is None


class TestCachedAnalyse:
    def test_hit_equals_cold(self, tmp_path: Path):
        client = make_client()
        store = ResultStore(tmp_path / "c")
        cold = cached_analyse(client, WCET, 10_000, store)
        warm = cached_analyse(client, WCET, 10_000, ResultStore(tmp_path / "c"))
        plain = analyse(client, WCET, 10_000)
        assert cold.rows() == warm.rows() == plain.rows()
        assert warm.jitter == plain.jitter
        assert warm.schedulable == plain.schedulable
        for name in ("a", "b"):
            assert warm.bounds[name].arsa == plain.bounds[name].arsa

    def test_no_store_is_plain_analyse(self):
        client = make_client()
        assert cached_analyse(client, WCET, 10_000, None).rows() == analyse(
            client, WCET, 10_000
        ).rows()

    def test_malformed_payload_recomputes(self, tmp_path: Path):
        client = make_client()
        store = ResultStore(tmp_path / "c")
        key = analysis_key(client, WCET, 10_000)
        store.put(key, {"tasks": {"a": {"nonsense": True}}})
        result = cached_analyse(client, WCET, 10_000, store)
        assert result.rows() == analyse(client, WCET, 10_000).rows()

    def test_outcome_payload_roundtrip(self, tmp_path: Path):
        client = make_client()
        report = run_adequacy_campaign(
            client, WCET, horizon=5_000, runs=2, seed=1,
            cache=ResultStore(tmp_path / "c"),
        )
        assert report.runs == 2
        # Round-trip an outcome payload through JSON explicitly.
        from repro.analysis.adequacy import BoundViolation, RunOutcome

        outcome = RunOutcome(
            run_index=3, jobs_checked=5, jobs_beyond_horizon=1,
            observed_worst=(("a", 42),),
            violations=(BoundViolation("a", 10, 20, None),),
        )
        payload = json.loads(json.dumps(outcome_payload(outcome)))
        assert outcome_from_payload(payload) == outcome
        assert outcome_from_payload({"run_index": "zero"}) is None


class TestCampaignIntegration:
    def test_warm_campaign_identical_and_all_hits(self, tmp_path: Path):
        client = make_client()
        kwargs = dict(horizon=5_000, runs=4, seed=3)
        cold_store = ResultStore(tmp_path / "c")
        cold = run_adequacy_campaign(client, WCET, cache=cold_store, **kwargs)
        warm_store = ResultStore(tmp_path / "c")
        warm = run_adequacy_campaign(client, WCET, cache=warm_store, **kwargs)
        none = run_adequacy_campaign(client, WCET, **kwargs)
        assert cold.table() == warm.table() == none.table()
        assert cold.to_json() == warm.to_json() == none.to_json()
        assert warm_store.hits == 4 + 1  # every run plus the analysis
        assert warm_store.misses == 0
        assert cold_store.misses == 4 + 1

    def test_incremental_recompute_only_missing_runs(self, tmp_path: Path):
        client = make_client()
        store = ResultStore(tmp_path / "c")
        run_adequacy_campaign(
            client, WCET, horizon=5_000, runs=3, seed=3, cache=store
        )
        # Growing the campaign re-keys every run (runs is in the key:
        # it sets the adversarial split), so nothing is reused...
        grown_store = ResultStore(tmp_path / "c")
        grown = run_adequacy_campaign(
            client, WCET, horizon=5_000, runs=5, seed=3, cache=grown_store
        )
        assert grown.runs == 5
        assert grown_store.hits == 1  # ...except the analysis itself
        # ...but re-running the grown campaign is fully incremental.
        rerun_store = ResultStore(tmp_path / "c")
        rerun = run_adequacy_campaign(
            client, WCET, horizon=5_000, runs=5, seed=3, cache=rerun_store
        )
        assert rerun_store.hits == 5 + 1
        assert rerun_store.misses == 0
        assert rerun.table() == grown.table()

    def test_parallel_warm_campaign_identical(self, tmp_path: Path):
        client = make_client()
        kwargs = dict(horizon=5_000, runs=6, seed=3, jobs=2)
        cold = run_adequacy_campaign(
            client, WCET, cache=ResultStore(tmp_path / "c"), **kwargs
        )
        warm_store = ResultStore(tmp_path / "c")
        warm = run_adequacy_campaign(client, WCET, cache=warm_store, **kwargs)
        serial = run_adequacy_campaign(
            client, WCET, horizon=5_000, runs=6, seed=3, jobs=1
        )
        assert cold.table() == warm.table() == serial.table()
        assert warm_store.misses == 0

    def test_worker_fault_bypasses_cache(self, tmp_path: Path):
        client = make_client()
        store = ResultStore(tmp_path / "c")
        report = run_adequacy_campaign(
            client, WCET, horizon=5_000, runs=8, seed=3, jobs=2,
            worker_timeout=5.0, worker_retries=0,
            worker_fault=WorkerFault(kind="crash", chunk_index=0, times=9),
            cache=store,
        )
        # The faulted campaign never touched the store.
        assert store.hits == 0 and store.misses == 0
        assert store.stats().entries == 0
        assert report.degraded

    def test_faulty_engine_disables_caching(self, tmp_path: Path):
        client = make_client()
        store = ResultStore(tmp_path / "c")
        faulty = heap_corruption_engine(create_engine("python", client))
        # The engine is unfingerprintable, so no run outcome may be
        # stored or read — the analysis (engine-independent) still may.
        run_adequacy_campaign(
            client, WCET, horizon=5_000, runs=2, seed=3, engine=faulty,
            cache=store,
        )
        assert all(
            json.loads(line)["payload"].get("tasks") is not None
            for line in (tmp_path / "c" / ENTRIES_NAME).read_text().splitlines()
        )

    def test_memo_cache_cleared_at_campaign_boundary(self):
        client = make_client()
        analyse(client, WCET, 10_000, kernel=False)  # warm the step cache
        assert memo_cache_info().currsize > 0
        run_adequacy_campaign(
            client, WCET, horizon=2_000, runs=1, seed=0, kernel=False
        )
        # The boundary reset: totals restarted from zero for this campaign.
        info = memo_cache_info()
        assert info.hits + info.misses > 0


class TestMemoAccounting:
    def test_two_analyses_sum_exactly(self):
        """The regression for the double-count bug: each analysis's
        attributed counters (what ``analyse`` reports to obs) must sum
        exactly to the process totals."""
        client = make_client()
        memo_cache_clear()
        obs.reset()
        obs.enable()
        try:
            analyse(client, WCET, 10_000, kernel=False)
            first = dict(obs.snapshot().counters)
            analyse(client, WCET, 10_000, kernel=False)
            both = dict(obs.snapshot().counters)
        finally:
            obs.disable()
            obs.reset()
        second_hits = both["rta.memo_curve.hits"] - first["rta.memo_curve.hits"]
        second_misses = (
            both["rta.memo_curve.misses"] - first["rta.memo_curve.misses"]
        )
        total = memo_cache_info()
        assert both["rta.memo_curve.hits"] == total.hits
        assert both["rta.memo_curve.misses"] == total.misses
        # The second analysis of the same deployment reuses the first's
        # step evaluations: all hits, no misses — the old global-delta
        # bracketing credited it with the first analysis's misses too.
        assert second_misses == 0
        assert second_hits > 0
        assert first["rta.memo_curve.misses"] > 0

    def test_nested_accounting_attributes_to_innermost(self):
        from repro.rta.curves import memoized_curve

        curve = memoized_curve(SporadicCurve(7919))
        memo_cache_clear()
        with memo_accounting() as outer:
            curve(10)  # miss: credited to outer (the only open account)
            with memo_accounting() as inner:
                curve(10)  # hit: credited to inner ONLY, never both
        assert (outer.hits, outer.misses) == (0, 1)
        assert (inner.hits, inner.misses) == (1, 0)
        total = memo_cache_info()
        assert outer.hits + inner.hits == total.hits
        assert outer.misses + inner.misses == total.misses

    def test_analysis_inside_user_bracket_not_double_counted(self):
        client = make_client()
        memo_cache_clear()
        with memo_accounting() as outer:
            analyse(client, WCET, 10_000, kernel=False)
        # ``analyse`` opens its own (innermost) account, so the outer
        # bracket sees none of the analysis's evaluations — summing the
        # per-analysis counters with any enclosing bracket stays exact.
        assert (outer.hits, outer.misses) == (0, 0)

    def test_obs_counters_sum_exactly_over_two_analyses(self):
        client = make_client()
        memo_cache_clear()
        obs.reset()
        obs.enable()
        try:
            analyse(client, WCET, 10_000, kernel=False)
            analyse(client, WCET, 10_000, kernel=False)
            counters = dict(obs.snapshot().counters)
        finally:
            obs.disable()
            obs.reset()
        total = memo_cache_info()
        assert counters["rta.memo_curve.hits"] == total.hits
        assert counters["rta.memo_curve.misses"] == total.misses

    def test_memo_cache_clear_resets(self):
        client = make_client()
        analyse(client, WCET, 10_000, kernel=False)
        memo_cache_clear()
        info = memo_cache_info()
        assert info.hits == 0 and info.misses == 0 and info.currsize == 0


class TestCacheCli:
    def test_analyze_cache_stdout_identical(self, spec_path, cache_env, capsys):
        assert main(["analyze", spec_path]) == 0
        plain = capsys.readouterr().out
        assert main(["analyze", spec_path, "--cache"]) == 0
        cold = capsys.readouterr()
        assert main(["analyze", spec_path, "--cache"]) == 0
        warm = capsys.readouterr()
        assert plain == cold.out == warm.out
        assert "1 miss(es)" in cold.err
        assert "1 hit(s)" in warm.err

    def test_no_cache_is_a_noop(self, spec_path, cache_env, capsys):
        assert main(["simulate", spec_path, "--runs", "2",
                     "--horizon", "5000"]) == 0
        default = capsys.readouterr().out
        assert main(["simulate", spec_path, "--runs", "2",
                     "--horizon", "5000", "--no-cache"]) == 0
        explicit = capsys.readouterr().out
        assert default == explicit
        assert not cache_env.exists()  # --no-cache never writes anything

    def test_cache_flags_mutually_exclusive(self, spec_path):
        with pytest.raises(SystemExit):
            main(["analyze", spec_path, "--cache", "--no-cache"])

    def test_simulate_report_out_identical_cold_vs_warm(
        self, spec_path, cache_env, tmp_path, capsys
    ):
        r1, r2 = tmp_path / "r1.json", tmp_path / "r2.json"
        argv = ["simulate", spec_path, "--runs", "2", "--horizon", "5000",
                "--cache"]
        assert main(argv + ["--report-out", str(r1)]) == 0
        cold_out = capsys.readouterr().out
        assert main(argv + ["--report-out", str(r2)]) == 0
        warm_out = capsys.readouterr().out
        assert cold_out == warm_out
        assert r1.read_bytes() == r2.read_bytes()
        assert json.loads(r1.read_text())["runs"] == 2

    def test_verify_cache_stdout_identical(self, spec_path, cache_env, capsys):
        argv = ["verify", spec_path, "--depth", "2", "--cache"]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert cold.out == warm.out
        assert "1 hit(s)" in warm.err

    def test_inject_bypasses_cache(self, spec_path, cache_env, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"seed": 0, "faults": []}))
        assert main(["simulate", spec_path, "--runs", "2", "--horizon",
                     "5000", "--cache", "--inject", str(plan)]) == 0
        captured = capsys.readouterr()
        assert "cache: bypassed" in captured.err
        assert not cache_env.exists()

    def test_cache_stats_clear_gc(self, spec_path, cache_env, capsys):
        assert main(["cache", "stats"]) == 0
        assert "entries: 0" in capsys.readouterr().out
        assert main(["analyze", spec_path, "--cache"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        assert "entries: 1" in capsys.readouterr().out
        assert main(["cache", "gc"]) == 0
        assert "evicted 0" in capsys.readouterr().out
        assert main(["cache", "clear", "--memo"]) == 0
        out = capsys.readouterr().out
        assert "dropped 1 cached entry" in out
        assert "memo cache" in out
        assert main(["cache", "stats"]) == 0
        assert "entries: 0" in capsys.readouterr().out

"""Tests for the MiniC lexer, parser, and type checker."""

from __future__ import annotations

import pytest

from repro.lang.errors import LexError, ParseError, TypeError_
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_expression, parse_program
from repro.lang.syntax import (
    Binary,
    Call,
    IntLit,
    Member,
    TArray,
    TInt,
    TPtr,
    TStruct,
    Unary,
)
from repro.lang.tokens import TokenKind as K
from repro.lang.typecheck import typecheck


class TestLexer:
    def test_keywords_vs_identifiers(self):
        kinds = [t.kind for t in tokenize("int foo while whilee")]
        assert kinds == [K.KW_INT, K.IDENT, K.KW_WHILE, K.IDENT, K.EOF]

    def test_multichar_operators(self):
        kinds = [t.kind for t in tokenize("-> == != <= >= && || = < >")]
        assert kinds[:-1] == [
            K.ARROW, K.EQ, K.NEQ, K.LE, K.GE, K.AND, K.OR, K.ASSIGN, K.LT, K.GT,
        ]

    def test_line_comments_skipped(self):
        kinds = [t.kind for t in tokenize("1 // comment\n2")]
        assert kinds == [K.INT_LIT, K.INT_LIT, K.EOF]

    def test_block_comments_skipped(self):
        kinds = [t.kind for t in tokenize("1 /* x\ny */ 2")]
        assert kinds == [K.INT_LIT, K.INT_LIT, K.EOF]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("/* oops")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_number_followed_by_letter_rejected(self):
        with pytest.raises(LexError):
            tokenize("12ab")


class TestParser:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.rhs, Binary) and expr.rhs.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert isinstance(expr, Binary) and expr.op == "*"

    def test_comparison_binds_looser_than_arith(self):
        expr = parse_expression("1 + 2 < 3 * 4")
        assert isinstance(expr, Binary) and expr.op == "<"

    def test_logical_or_loosest(self):
        expr = parse_expression("1 && 2 || 3")
        assert isinstance(expr, Binary) and expr.op == "||"

    def test_unary_chain(self):
        expr = parse_expression("!!x")
        assert isinstance(expr, Unary) and isinstance(expr.operand, Unary)

    def test_postfix_member_chain(self):
        expr = parse_expression("a->b.c")
        assert isinstance(expr, Member) and not expr.arrow
        assert isinstance(expr.obj, Member) and expr.obj.arrow

    def test_call_with_args(self):
        expr = parse_expression("f(1, g(2))")
        assert isinstance(expr, Call) and len(expr.args) == 2
        assert isinstance(expr.args[1], Call)

    def test_struct_def_and_layout_syntax(self):
        program = parse_program(
            "struct pair { int a; int b[4]; struct pair *next; };"
        )
        struct = program.struct("pair")
        assert struct.fields[0] == ("a", TInt())
        assert struct.fields[1] == ("b", TArray(TInt(), 4))
        assert struct.fields[2] == ("next", TPtr(TStruct("pair")))

    def test_function_parsing(self):
        program = parse_program("int add(int a, int b) { return a + b; }")
        func = program.function("add")
        assert [p.name for p in func.params] == ["a", "b"]
        assert func.ret == TInt()

    def test_else_if_chain(self):
        program = parse_program(
            "int f(int x) { if (x == 1) { return 1; } else if (x == 2)"
            " { return 2; } else { return 3; } }"
        )
        assert program.function("f") is not None

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("int f() { return 1 }")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as exc_info:
            parse_program("int f() { return }")
        assert exc_info.value.line == 1

    def test_sizeof(self):
        expr = parse_expression("sizeof(struct pair)")
        assert expr.ctype == TStruct("pair")

    def test_null_literal(self):
        program = parse_program("int f(int *p) { if (p == NULL) { return 0; } return 1; }")
        assert program.function("f") is not None


class TestTypecheck:
    def check(self, source: str):
        return typecheck(parse_program(source))

    def test_simple_function(self):
        typed = self.check("int add(int a, int b) { return a + b; }")
        assert "add" in typed.functions

    def test_struct_layout_offsets(self):
        typed = self.check(
            "struct job { int len; int data[8]; struct job *next; };"
            "int f() { return sizeof(struct job); }"
        )
        layout = typed.layouts["job"]
        assert layout.size == 10
        assert layout.offsets == {"len": 0, "data": 1, "next": 9}

    def test_nested_struct_layout(self):
        typed = self.check(
            "struct inner { int a; int b; };"
            "struct outer { struct inner i; int c; };"
            "int f() { return 0; }"
        )
        assert typed.layouts["outer"].size == 3
        assert typed.layouts["outer"].offsets["c"] == 2

    def test_value_recursive_struct_rejected(self):
        with pytest.raises(TypeError_, match="recursively"):
            self.check("struct a { struct a x; }; int f() { return 0; }")

    def test_pointer_recursion_allowed(self):
        typed = self.check("struct a { struct a *next; }; int f() { return 0; }")
        assert typed.layouts["a"].size == 1

    def test_undeclared_variable(self):
        with pytest.raises(TypeError_, match="undeclared"):
            self.check("int f() { return x; }")

    def test_unknown_function(self):
        with pytest.raises(TypeError_, match="undefined function"):
            self.check("int f() { return g(); }")

    def test_arity_mismatch(self):
        with pytest.raises(TypeError_, match="expects 1 args"):
            self.check("int g(int a) { return a; } int f() { return g(1, 2); }")

    def test_argument_type_mismatch(self):
        with pytest.raises(TypeError_, match="argument 1"):
            self.check(
                "int g(int *p) { return 0; } int f() { return g(3); }"
            )

    def test_assign_int_to_pointer_rejected(self):
        with pytest.raises(TypeError_, match="cannot assign"):
            self.check("int f() { int *p; p = 3; return 0; }")

    def test_null_assignable_to_any_pointer(self):
        self.check("struct s { int x; }; int f() { struct s *p; p = NULL; return 0; }")

    def test_malloc_result_assignable_to_pointer(self):
        self.check("int f() { int *p; p = malloc(4); free(p); return 0; }")

    def test_deref_non_pointer_rejected(self):
        with pytest.raises(TypeError_, match="dereference"):
            self.check("int f(int x) { return *x; }")

    def test_member_on_non_struct_rejected(self):
        with pytest.raises(TypeError_, match="needs a struct"):
            self.check("int f(int x) { return x.y; }")

    def test_arrow_on_struct_value_rejected(self):
        with pytest.raises(TypeError_, match="struct pointer"):
            self.check(
                "struct s { int x; }; int f() { struct s v; return v->x; }"
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError_, match="no field"):
            self.check("struct s { int x; }; int f(struct s *p) { return p->y; }")

    def test_array_decay_in_call(self):
        self.check(
            "int g(int *p) { return p[0]; }"
            "int f() { int a[4]; a[0] = 1; return g(a); }"
        )

    def test_return_type_mismatch(self):
        with pytest.raises(TypeError_, match="returning"):
            self.check("int *f() { return 3; }")

    def test_void_function_returning_value_rejected(self):
        with pytest.raises(TypeError_, match="void function"):
            self.check("void f() { return 3; }")

    def test_ordering_on_pointers_rejected(self):
        with pytest.raises(TypeError_, match="ordering"):
            self.check("int f(int *p, int *q) { return p < q; }")

    def test_duplicate_function_rejected(self):
        with pytest.raises(TypeError_, match="duplicate function"):
            self.check("int f() { return 0; } int f() { return 1; }")

    def test_shadowing_builtin_rejected(self):
        with pytest.raises(TypeError_, match="shadows a builtin"):
            self.check("int malloc(int n) { return n; }")

    def test_redeclaration_in_same_scope_rejected(self):
        with pytest.raises(TypeError_, match="redeclaration"):
            self.check("int f() { int x; int x; return 0; }")

    def test_shadowing_in_nested_scope_allowed(self):
        self.check("int f() { int x = 1; { int x = 2; } return x; }")

    def test_condition_must_be_scalar(self):
        with pytest.raises(TypeError_, match="condition"):
            self.check("struct s { int x; }; int f() { struct s v; if (v) { } return 0; }")

    def test_address_of_rvalue_rejected(self):
        with pytest.raises(TypeError_, match="lvalue"):
            self.check("int f() { int *p = &3; return 0; }")

    def test_pointer_arithmetic_typed(self):
        self.check("int f(int *p) { return *(p + 1); }")

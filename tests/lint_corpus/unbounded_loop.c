// Seeded unboundable loop: the limit is a runtime parameter, so the
// counting-loop pattern does not apply and the loop's WCET contribution
// is unknowable statically -> LB002 (warning; exit 1 under --Werror).

int drain(int budget) {
    int used = 0;
    while (used < budget) {
        used = used + 1;
    }
    return used;
}

int main() {
    return drain(16);
}

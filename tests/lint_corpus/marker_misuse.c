// Seeded marker-discipline violation (kept out of examples/ so shipped
// examples lint clean): the execution region opened for the job is only
// closed on the taken branch, so one CFG path leaves the function with
// the region still open -> MD002, exit 1.

int handle(int job) {
    dispatch_start(&job, 1);
    execution_start(&job, 1);
    if (job) {
        completion_start(&job, 1);
        return 1;
    }
    return 0;
}

int main() {
    return handle(3);
}

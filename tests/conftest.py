"""Shared fixtures: canonical task systems and clients used across tests.

``two_task_client`` mirrors the paper's running example (Fig. 3): two
tasks on one socket, where ``hi`` jobs outrank ``lo`` jobs.
"""

from __future__ import annotations

import pytest

from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient


@pytest.fixture
def two_tasks() -> TaskSystem:
    return TaskSystem(
        [
            Task(name="lo", priority=1, wcet=10, type_tag=1),
            Task(name="hi", priority=2, wcet=5, type_tag=2),
        ]
    )


@pytest.fixture
def two_task_client(two_tasks: TaskSystem) -> RosslClient:
    return RosslClient.make(two_tasks, sockets=[0])


@pytest.fixture
def three_tasks() -> TaskSystem:
    return TaskSystem(
        [
            Task(name="low", priority=1, wcet=8, type_tag=1),
            Task(name="mid", priority=5, wcet=4, type_tag=2),
            Task(name="high", priority=9, wcet=2, type_tag=3),
        ]
    )


@pytest.fixture
def two_socket_client(three_tasks: TaskSystem) -> RosslClient:
    return RosslClient.make(three_tasks, sockets=[0, 1])

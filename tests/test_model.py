"""Unit tests for repro.model: messages, jobs, tasks, task systems."""

from __future__ import annotations

import pytest

from repro.model.job import Job
from repro.model.message import Message
from repro.model.task import Task, TaskSystem


class TestMessage:
    def test_of_builds_tuple_payload(self):
        assert Message.of(3, 1, 4).data == (3, 1, 4)

    def test_len(self):
        assert len(Message.of(1, 2)) == 2

    def test_rejects_list_payload(self):
        with pytest.raises(TypeError):
            Message([1, 2])  # type: ignore[arg-type]

    def test_rejects_non_integer_words(self):
        with pytest.raises(TypeError):
            Message(("x",))  # type: ignore[arg-type]

    def test_messages_are_hashable_and_equal_by_value(self):
        assert Message.of(1) == Message.of(1)
        assert {Message.of(1), Message.of(1)} == {Message.of(1)}


class TestJob:
    def test_str_mentions_id_and_payload(self):
        assert str(Job((2, 7), 3)) == "j3(2,7)"

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            Job((1,), -1)

    def test_jobs_with_same_data_different_ids_are_distinct(self):
        assert Job((1,), 0) != Job((1,), 1)

    def test_jobs_are_hashable(self):
        assert len({Job((1,), 0), Job((1,), 0)}) == 1


class TestTask:
    def test_rejects_nonpositive_wcet(self):
        with pytest.raises(ValueError):
            Task(name="t", priority=1, wcet=0, type_tag=0)

    def test_rejects_negative_type_tag(self):
        with pytest.raises(ValueError):
            Task(name="t", priority=1, wcet=1, type_tag=-1)

    def test_str(self):
        assert str(Task(name="t", priority=2, wcet=7, type_tag=0)) == "t(P=2, C=7)"


class TestTaskSystem:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TaskSystem([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate task names"):
            TaskSystem(
                [
                    Task(name="a", priority=1, wcet=1, type_tag=0),
                    Task(name="a", priority=2, wcet=1, type_tag=1),
                ]
            )

    def test_rejects_duplicate_tags(self):
        with pytest.raises(ValueError, match="duplicate task type tags"):
            TaskSystem(
                [
                    Task(name="a", priority=1, wcet=1, type_tag=0),
                    Task(name="b", priority=2, wcet=1, type_tag=0),
                ]
            )

    def test_msg_to_task_resolves_first_word(self, two_tasks: TaskSystem):
        assert two_tasks.msg_to_task((2, 99, 98)).name == "hi"
        assert two_tasks.msg_to_task((1,)).name == "lo"

    def test_msg_to_task_rejects_unknown_tag(self, two_tasks: TaskSystem):
        with pytest.raises(KeyError):
            two_tasks.msg_to_task((42,))

    def test_msg_to_task_rejects_empty_payload(self, two_tasks: TaskSystem):
        with pytest.raises(KeyError):
            two_tasks.msg_to_task(())

    def test_priority_of(self, two_tasks: TaskSystem):
        assert two_tasks.priority_of((2,)) == 2
        assert two_tasks.priority_of((1,)) == 1

    def test_by_name(self, two_tasks: TaskSystem):
        assert two_tasks.by_name("hi").wcet == 5

    def test_contains(self, two_tasks: TaskSystem):
        assert two_tasks.by_name("hi") in two_tasks
        assert Task(name="hi", priority=3, wcet=5, type_tag=2) not in two_tasks

    def test_priority_partitions(self, three_tasks: TaskSystem):
        high = three_tasks.by_name("high")
        mid = three_tasks.by_name("mid")
        assert [t.name for t in three_tasks.higher_or_equal_priority(mid)] == ["high"]
        assert [t.name for t in three_tasks.lower_priority(mid)] == ["low"]
        assert three_tasks.higher_or_equal_priority(high) == ()
        assert {t.name for t in three_tasks.lower_priority(high)} == {"low", "mid"}

    def test_equal_priority_is_higher_or_equal(self):
        system = TaskSystem(
            [
                Task(name="a", priority=3, wcet=1, type_tag=0),
                Task(name="b", priority=3, wcet=1, type_tag=1),
            ]
        )
        assert [t.name for t in system.higher_or_equal_priority(system.by_name("a"))] == ["b"]

    def test_arrival_curve_requires_attachment(self, two_tasks: TaskSystem):
        assert not two_tasks.has_curves
        with pytest.raises(KeyError):
            two_tasks.arrival_curve("hi")

    def test_with_curves_rejects_unknown_task(self, two_tasks: TaskSystem):
        with pytest.raises(ValueError, match="unknown tasks"):
            two_tasks.with_curves({"nope": object()})  # type: ignore[dict-item]

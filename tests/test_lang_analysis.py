"""The static-analysis subsystem: CFG construction, dataflow, and the
check catalog (marker discipline, CFG hygiene, loop bounds), plus the
``repro lint`` CLI surface.

CFG shapes are pinned with :func:`repro.lang.analysis.describe` goldens;
the checks are exercised with paired positive (clean) and negative
(seeded-defect) programs, including the committed corpus under
``tests/lint_corpus/``.
"""

from __future__ import annotations

import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.cli import main
from repro.lang.analysis import (
    CHECKS,
    DiagnosticReport,
    Severity,
    analyze_source,
    build_cfg,
    definite_assignment,
    describe,
    infer_loop_bounds,
    liveness,
    make_diagnostic,
    reaching_definitions,
)
from repro.lang.parser import parse_program
from repro.lang.syntax import Pos
from repro.lang.typecheck import typecheck

REPO = Path(__file__).resolve().parent.parent
CORPUS = Path(__file__).resolve().parent / "lint_corpus"
SPEC = str(REPO / "examples" / "specs" / "robot.json")


def cfg_of(source: str, name: str | None = None):
    typed = typecheck(parse_program(dedent(source)))
    functions = {f.name: f for f in typed.program.functions}
    func = functions[name] if name else typed.program.functions[0]
    return build_cfg(func)


def check_ids(source: str) -> set[str]:
    report = analyze_source(dedent(source))
    return {d.check_id for d in report.diagnostics}


# --------------------------------------------------------------------------
# CFG goldens
# --------------------------------------------------------------------------


def test_cfg_if_else_diamond():
    cfg = cfg_of("""
        int pick(int x) {
            int r = 0;
            if (x < 10) {
                r = 1;
            } else {
                r = 2;
            }
            return r;
        }
    """)
    assert describe(cfg) == dedent("""\
        fn pick:
          B0(entry): decl r = 0 | branch x < 10 -> B1, B2
          B1: r = 1 -> B3
          B2: r = 2 -> B3
          B3: return r -> B4
          B4(exit): - -> -""")


def test_cfg_while_loop():
    cfg = cfg_of("""
        int count() {
            int i = 0;
            while (i < 4) {
                i = i + 1;
            }
            return i;
        }
    """)
    assert describe(cfg) == dedent("""\
        fn count:
          B0(entry): decl i = 0 -> B1
          B1(loop-head): - | branch i < 4 -> B2, B3
          B2: i = i + 1 -> B1
          B3: return i -> B4
          B4(exit): - -> -
          loops: loop#0@4:5 head=B1 latches=['B2']""")


def test_cfg_nested_loops_in_source_preorder():
    cfg = cfg_of("""
        int grid() {
            int acc = 0;
            int i = 0;
            while (i < 3) {
                int j = 0;
                while (j < 2) {
                    acc = acc + 1;
                    j = j + 1;
                }
                i = i + 1;
            }
            return acc;
        }
    """)
    assert describe(cfg) == dedent("""\
        fn grid:
          B0(entry): decl acc = 0; decl i = 0 -> B1
          B1(loop-head): - | branch i < 3 -> B2, B3
          B2: decl j = 0 -> B4
          B3: return acc -> B7
          B4(loop-head): - | branch j < 2 -> B5, B6
          B5: acc = acc + 1; j = j + 1 -> B4
          B6: i = i + 1 -> B1
          B7(exit): - -> -
          loops: loop#0@5:5 head=B1 latches=['B6']; loop#1@7:9 head=B4 latches=['B5']""")
    # Pre-order matches cost.py's bound-consumption order: outer first.
    assert [info.order for info in cfg.loops] == [0, 1]
    assert cfg.loops[0].pos.line < cfg.loops[1].pos.line


def test_cfg_while_true_has_no_false_edge():
    cfg = cfg_of("""
        void spin() {
            while (1) {
                idling_start();
            }
        }
    """)
    head = next(b for b in cfg.blocks if b.kind == "loop-head")
    assert cfg.exit not in head.succs
    assert cfg.exit not in cfg.reachable()


def test_cfg_code_after_return_is_detached():
    cfg = cfg_of("""
        int f() {
            return 1;
            return 2;
        }
    """)
    detached = [
        b for b in cfg.blocks
        if b.index not in cfg.reachable() and b.stmts
    ]
    assert len(detached) == 1
    assert not detached[0].preds


# --------------------------------------------------------------------------
# Dataflow
# --------------------------------------------------------------------------


def test_reaching_definitions_merge_at_join():
    cfg = cfg_of("""
        int f(int x) {
            int r = 0;
            if (x) {
                r = 1;
            }
            return r;
        }
    """)
    in_sets, _ = reaching_definitions(cfg)
    exit_defs = {d for d in in_sets[cfg.exit] if d.name == "r"}
    # Both the initializer and the then-arm assignment reach the exit.
    assert len(exit_defs) == 2
    assert {d.name for d in in_sets[cfg.exit]} == {"x", "r"}


def test_liveness_through_loop():
    cfg = cfg_of("""
        int count() {
            int i = 0;
            int dead = 7;
            while (i < 4) {
                i = i + 1;
            }
            return i;
        }
    """)
    live_out, _ = liveness(cfg)
    # `i` is live out of the entry block (the loop reads it); `dead` never is.
    assert "i" in live_out[cfg.entry]
    assert all("dead" not in live_out[b.index] for b in cfg.blocks)


def test_definite_assignment_flags_one_armed_init():
    cfg = cfg_of("""
        int f(int x) {
            int r;
            if (x) {
                r = 1;
            }
            return r;
        }
    """)
    uses = definite_assignment(cfg, {"r"})
    assert [u.name for u in uses] == ["r"]


def test_definite_assignment_accepts_both_arms_init():
    cfg = cfg_of("""
        int f(int x) {
            int r;
            if (x) {
                r = 1;
            } else {
                r = 2;
            }
            return r;
        }
    """)
    assert definite_assignment(cfg, {"r"}) == []


def test_definite_assignment_treats_address_of_as_init():
    # `read(sock, &n, 1)` may initialize n through the pointer.
    assert "DA001" not in check_ids("""
        int f(int sock) {
            int n;
            if (read(sock, &n, 1) < 0) {
                return 0;
            }
            return n;
        }
    """)


# --------------------------------------------------------------------------
# Marker discipline
# --------------------------------------------------------------------------

CLEAN_MARKERS = """
    int serve(int sock) {
        int msg = 0;
        read_start();
        int got = read(sock, &msg, 1);
        if (got < 0) {
            return 0;
        }
        dispatch_start(&msg, 1);
        execution_start(&msg, 1);
        completion_start(&msg, 1);
        return 1;
    }

    int main() {
        return serve(0);
    }
"""


def test_marker_discipline_accepts_clean_protocol():
    report = analyze_source(dedent(CLEAN_MARKERS))
    assert not report.errors, report.format()


def test_marker_unpaired_on_one_path_is_md002():
    ids = check_ids("""
        int handle(int job) {
            dispatch_start(&job, 1);
            execution_start(&job, 1);
            if (job) {
                completion_start(&job, 1);
                return 1;
            }
            return 0;
        }
    """)
    assert "MD002" in ids


def test_marker_inside_open_region_is_md001():
    ids = check_ids("""
        void f(int job) {
            dispatch_start(&job, 1);
            selection_start();
            execution_start(&job, 1);
            completion_start(&job, 1);
        }
    """)
    assert "MD001" in ids


def test_stray_closer_is_md003():
    ids = check_ids("""
        void f(int job) {
            completion_start(&job, 1);
        }
    """)
    assert "MD003" in ids


def test_phase_drift_across_loop_is_md004():
    ids = check_ids("""
        void f(int job) {
            int i = 0;
            while (i < 4) {
                dispatch_start(&job, 1);
                i = i + 1;
            }
        }
    """)
    assert "MD004" in ids


def test_interprocedural_split_markers_check_clean():
    # The callee closes a region its caller opened — the scheduler's
    # npfp_dispatch shape; legal in its actual calling context.
    report = analyze_source(dedent("""
        void finish(int job) {
            execution_start(&job, 1);
            completion_start(&job, 1);
        }

        int main() {
            int job = 1;
            dispatch_start(&job, 1);
            finish(job);
            return 0;
        }
    """))
    assert not report.errors, report.format()


def test_generated_scheduler_lints_clean():
    from repro.config import load_deployment
    from repro.lang.analysis import analyze_client

    deployment = load_deployment(SPEC)
    report = analyze_client(deployment.client)
    assert not report.errors, report.format()
    # The unbounded list-walking loops are flagged, the divergent
    # scheduler loop is classified, and nothing is a false error.
    ids = {d.check_id for d in report.diagnostics}
    assert "LB002" in ids and "LB003" in ids


# --------------------------------------------------------------------------
# CFG hygiene, loop bounds, cost
# --------------------------------------------------------------------------


def test_unreachable_code_is_uc001():
    ids = check_ids("""
        int f() {
            return 1;
            return 2;
        }
    """)
    assert "UC001" in ids


def test_missing_return_is_mr001():
    ids = check_ids("""
        int f(int x) {
            if (x) {
                return 1;
            }
        }
    """)
    assert "MR001" in ids


def test_void_function_never_mr001():
    assert "MR001" not in check_ids("""
        void f(int x) {
            if (x) {
                return;
            }
        }
    """)


def test_loop_bound_inference():
    cfg = cfg_of("""
        int f(int n) {
            int total = 0;
            int i = 2;
            while (i <= 10) {
                total = total + i;
                i = i + 3;
            }
            while (i < n) {
                i = i + 1;
            }
            while (0) {
                i = i + 1;
            }
            return total;
        }
    """)
    facts = infer_loop_bounds(cfg.function, cfg)
    assert [f.bound for f in facts] == [3, None, 0]  # ceil((10-2+1)/3) = 3
    assert not any(f.divergent for f in facts)


def test_bounded_program_gets_cost_fact():
    report = analyze_source(dedent("""
        int main() {
            int acc = 0;
            int i = 0;
            while (i < 8) {
                acc = acc + i;
                i = i + 1;
            }
            return acc;
        }
    """))
    by_id = {d.check_id: d for d in report.diagnostics}
    assert "LB001" in by_id and "at most 8" in by_id["LB001"].message
    assert "CF001" in by_id
    assert not report.errors


def test_recursion_is_cf002():
    ids = check_ids("""
        int f(int n) {
            if (n < 1) {
                return 0;
            }
            return f(n + -1);
        }

        int main() {
            return f(3);
        }
    """)
    assert "CF002" in ids


# --------------------------------------------------------------------------
# Diagnostics plumbing
# --------------------------------------------------------------------------


def test_front_end_errors_become_fe_diagnostics():
    lex = analyze_source("int main() { return `; }")
    parse = analyze_source("int main( {")
    types = analyze_source("int main() { return missing(); }")
    assert [d.check_id for d in lex.diagnostics] == ["FE001"]
    assert [d.check_id for d in parse.diagnostics] == ["FE002"]
    assert [d.check_id for d in types.diagnostics] == ["FE003"]
    for report in (lex, parse, types):
        assert report.exit_code(werror=False) == 1


def test_unknown_check_id_rejected():
    with pytest.raises(KeyError):
        make_diagnostic("XX999", "nope", Pos(1, 1))


def test_every_check_id_has_catalog_entry():
    for check_id, (severity, description) in CHECKS.items():
        assert isinstance(severity, Severity)
        assert description


def test_report_sorting_and_exit_codes():
    report = DiagnosticReport(source_name="t.c")
    report.add(make_diagnostic("LB001", "b", Pos(9, 1), "f"))
    report.add(make_diagnostic("MR001", "a", Pos(2, 1), "f"))
    assert [d.check_id for d in report.sorted()] == ["MR001", "LB001"]
    assert report.exit_code(werror=False) == 1  # MR001 is an error
    clean = DiagnosticReport(source_name="t.c")
    clean.add(make_diagnostic("LB002", "w", Pos(1, 1), "f"))
    assert clean.exit_code(werror=False) == 0
    assert clean.exit_code(werror=True) == 1


# --------------------------------------------------------------------------
# The lint CLI (including the committed corpus)
# --------------------------------------------------------------------------


def test_lint_cli_clean_examples_exit_zero(capsys):
    examples = sorted(str(p) for p in (REPO / "examples" / "minic").glob("*.c"))
    assert examples, "examples/minic/*.c missing"
    assert main(["lint", *examples]) == 0
    err = capsys.readouterr().err
    assert "0 error(s)" in err


def test_lint_cli_spec_exits_zero(capsys):
    assert main(["lint", SPEC]) == 0
    assert "LB003" in capsys.readouterr().err


def test_lint_cli_corpus_marker_misuse_fails(capsys):
    assert main(["lint", str(CORPUS / "marker_misuse.c")]) == 1
    assert "MD002" in capsys.readouterr().err


def test_lint_cli_corpus_unbounded_loop_warns(capsys):
    path = str(CORPUS / "unbounded_loop.c")
    assert main(["lint", path]) == 0
    assert "LB002" in capsys.readouterr().err
    assert main(["lint", "--Werror", path]) == 1


def test_lint_cli_front_end_error_no_traceback(tmp_path, capsys):
    bad = tmp_path / "broken.c"
    bad.write_text("int main( {\n")
    assert main(["lint", str(bad)]) == 1
    captured = capsys.readouterr()
    assert "FE002" in captured.err
    assert "Traceback" not in captured.err


def test_lint_cli_missing_file_exits_two(capsys):
    assert main(["lint", "definitely-not-here.c"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_lint_cli_json_output(tmp_path, capsys):
    src = tmp_path / "ok.c"
    src.write_text("int main() { return 0; }\n")
    assert main(["lint", "--json", str(src)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["source"] == str(src)
    assert payload["ok"] is True
    assert payload["diagnostics"] == [] or all(
        "check_id" in d for d in payload["diagnostics"]
    )


def test_analyze_with_lint_gate_runs(capsys):
    assert main(["analyze", SPEC, "--lint"]) == 0
    captured = capsys.readouterr()
    assert "LB002" in captured.err
    assert "R+J (arrival)" in captured.out


def test_analyze_with_lint_werror_refuses(capsys):
    assert main(["analyze", SPEC, "--lint", "--Werror"]) == 1
    # The gate stops before any analysis output reaches stdout.
    assert "R+J" not in capsys.readouterr().out


def test_simulate_with_lint_appends_static_caveats(capsys):
    code = main([
        "simulate", SPEC, "--lint", "--horizon", "20000", "--runs", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "static-analysis caveats:" in out
    assert "[LB002]" in out

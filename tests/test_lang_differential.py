"""The lang-level differential checker (`repro.lang.differential`).

The three MiniC semantics agree on UB-free programs; where they
legitimately differ — local lifetimes: block-scoped under the
interpreter, function-scoped under the VM and codegen — the checker
must *name* the gap instead of reporting a bare mismatch.  The
committed witness is ``tests/lang_corpus/dangling_block_local.c``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lang.differential import (
    LANG_ENGINES,
    DifferentialVerdict,
    EngineOutcome,
    classify,
    differential_check,
    run_one,
)
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck
from repro.lang.values import VInt

CORPUS = Path(__file__).resolve().parent / "lang_corpus"


def typed_source(source: str):
    return typecheck(parse_program(source))


def typed_corpus(name: str):
    return typed_source((CORPUS / name).read_text())


class TestAgreement:
    def test_ub_free_program_agrees(self):
        typed = typed_source(
            "int main() { int a = 3; int b = a * 2; return a + b; }"
        )
        verdict = differential_check(typed)
        assert verdict.agreed
        assert verdict.kind == "agree"
        for engine in LANG_ENGINES:
            assert verdict.outcome(engine).kind == "value"
            assert verdict.outcome(engine).value == VInt(9)
        # The two counted semantics agree on the instruction count too.
        assert (
            verdict.outcome("vm").executed
            == verdict.outcome("codegen").executed
        )

    def test_shared_ub_still_agrees(self):
        # All three semantics hit the same division by zero: that is
        # agreement (on the UB), not a divergence.
        typed = typed_source("int main() { int z = 0; return 1 / z; }")
        verdict = differential_check(typed)
        assert verdict.kind == "agree"
        assert all(out.kind == "ub" for out in verdict.outcomes)

    def test_examples_agree(self):
        examples = Path(__file__).resolve().parent.parent / "examples" / "minic"
        for path in sorted(examples.glob("*.c")):
            typed = typed_source(path.read_text())
            verdict = differential_check(typed, script=[None] * 8)
            assert verdict.agreed, (path.name, verdict.detail)


class TestLifetimeDivergence:
    def test_witness_classified_as_lifetime_divergence(self):
        verdict = differential_check(typed_corpus("dangling_block_local.c"))
        assert verdict.kind == "lifetime-divergence"
        assert "dangling" in verdict.outcome("interp").detail
        # The function-scoped pair agrees on the stale value...
        assert verdict.outcome("vm").value == VInt(7)
        assert verdict.outcome("codegen").value == VInt(7)
        # ...and the report names the actual gap, not a generic mismatch.
        assert "block-scoped" in verdict.detail
        assert "function-scoped" in verdict.detail

    def test_codegen_matches_the_vm_lifetime_model(self):
        """The issue's requirement in one assertion: on the lifetime
        witness, codegen must land on the VM's side of the gap, bit for
        bit (same value, same instruction count)."""
        typed = typed_corpus("dangling_block_local.c")
        vm = run_one(typed, "vm")
        gen = run_one(typed, "codegen")
        assert gen.agrees_with(vm)
        assert gen.executed == vm.executed

    def test_interp_enforces_block_scoped_lifetimes(self):
        out = run_one(typed_corpus("dangling_block_local.c"), "interp")
        assert out.kind == "ub"
        assert out.dangling


class TestClassifier:
    def outcome(self, engine, kind, value=None, detail=""):
        return EngineOutcome(
            engine=engine, kind=kind, value=value, detail=detail
        )

    def test_other_disagreements_stay_divergence(self):
        # The interpreter UB is NOT a dangling pointer: no excuse.
        verdict = classify((
            self.outcome("interp", "ub", detail="division by zero"),
            self.outcome("vm", "value", VInt(1)),
            self.outcome("codegen", "value", VInt(1)),
        ))
        assert verdict.kind == "divergence"

    def test_vm_codegen_split_is_divergence(self):
        # Even with a dangling interp UB, the function-scoped pair
        # disagreeing with each other is a real bug.
        verdict = classify((
            self.outcome(
                "interp", "ub", detail="load through dangling pointer &b1+0"
            ),
            self.outcome("vm", "value", VInt(7)),
            self.outcome("codegen", "value", VInt(8)),
        ))
        assert verdict.kind == "divergence"
        assert "toolchain bug" in verdict.detail

    def test_verdict_outcome_lookup(self):
        verdict = classify((
            self.outcome("interp", "value", VInt(1)),
            self.outcome("vm", "value", VInt(1)),
        ))
        assert verdict.outcome("vm").engine == "vm"
        with pytest.raises(KeyError):
            verdict.outcome("qemu")

    def test_unknown_engine_rejected(self):
        typed = typed_source("int main() { return 0; }")
        with pytest.raises(ValueError, match="unknown lang engine"):
            run_one(typed, "qemu")

    def test_fuel_outcome(self):
        typed = typed_source(
            "int main() { int i = 0; while (i < 100) { i = i + 1; } return i; }"
        )
        out = run_one(typed, "vm", fuel=10)
        assert out.kind == "fuel"
        gen = run_one(typed, "codegen", fuel=10)
        assert gen.kind == "fuel"
        verdict = classify((out, gen))
        assert verdict.kind == "agree"
        assert isinstance(verdict, DifferentialVerdict)

"""The step-table kernel (repro.rta.kernel).

Three layers of evidence that the kernel is exact:

* **compilation**: for every shipped curve class — including
  ``ShiftedCurve`` over every base, i.e. release curves — the compiled
  :class:`StepTable` agrees with direct curve evaluation at every Δ
  (property-based, with Δ ranges far past the table head and several
  tail periods);
* **supply**: :class:`KernelSupply` values and inverses equal the
  legacy :class:`SupplyBoundFunction` on the same deployment;
* **end to end**: analyses, EDF verdicts, and adequacy-campaign
  reports (text *and* JSON) are byte-identical with the kernel on and
  off — the acceptance criterion of the refactor.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.adequacy import run_adequacy_campaign
from repro.analysis.campaigns import analysis_sweep
from repro.edf.analysis import edf_analysis
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import (
    LeakyBucketCurve,
    ShiftedCurve,
    SporadicCurve,
    TableCurve,
    memoized_curve,
    release_curve,
)
from repro.rta.kernel import (
    KernelSupply,
    batch_scope,
    compile_curve,
    edf_candidate_windows,
    kernel_enabled,
    offsets_to_check,
    supply_pool_info,
    table_cache_info,
)
from repro.rta.arsa import _offsets_to_check, solve_response_time
from repro.rta import kernel as kernel_mod
from repro.rta.npfp import analyse, analyse_batch
from repro.rta.sbf import SupplyBoundFunction
from repro.timing.wcet import WcetModel

WCET = WcetModel(
    failed_read=2, success_read=3, selection=2, dispatch=2, completion=2,
    idling=1,
)


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

sporadic = st.integers(1, 300).map(SporadicCurve)
leaky = st.tuples(st.integers(1, 6), st.integers(1, 200)).map(
    lambda t: LeakyBucketCurve(burst=t[0], rate_separation=t[1])
)


@st.composite
def tables(draw):
    n = draw(st.integers(0, 5))
    steps, window, count = [], 0, 0
    for _ in range(n):
        window += draw(st.integers(1, 40))
        count += draw(st.integers(1, 4))
        steps.append((window, count))
    return TableCurve(tuple(steps), draw(st.integers(1, 60)))


base_curves = st.one_of(sporadic, leaky, tables())
shifted = st.tuples(base_curves, st.integers(0, 400)).map(
    lambda t: ShiftedCurve(t[0], t[1])
)
all_curves = st.one_of(base_curves, shifted)


def assert_table_matches(curve, deltas) -> None:
    table = compile_curve(curve)
    assert table is not None
    for delta in deltas:
        assert table.value(delta) == curve(delta), (
            f"{curve} disagrees at Δ={delta}: "
            f"table {table.value(delta)}, direct {curve(delta)}"
        )


# ---------------------------------------------------------------------------
# compilation exactness
# ---------------------------------------------------------------------------


class TestCompileCurve:
    @given(sporadic, st.integers(-5, 5_000))
    def test_sporadic(self, curve, delta):
        assert compile_curve(curve).value(delta) == curve(delta)

    @given(leaky, st.integers(-5, 5_000))
    def test_leaky_bucket(self, curve, delta):
        assert compile_curve(curve).value(delta) == curve(delta)

    @given(tables(), st.integers(-5, 5_000))
    def test_table(self, curve, delta):
        assert compile_curve(curve).value(delta) == curve(delta)

    @given(shifted, st.integers(-5, 5_000))
    def test_shifted(self, curve, delta):
        assert compile_curve(curve).value(delta) == curve(delta)

    @settings(max_examples=60)
    @given(st.tuples(tables(), st.integers(0, 400)), st.integers(0, 300))
    def test_shifted_table_dense_prefix(self, pair, extra):
        """ShiftedCurve over TableCurve, checked densely — every Δ of a
        prefix covering the whole head and several tail periods."""
        base, shift = pair
        curve = ShiftedCurve(base, shift)
        last = base.steps[-1][0] if base.steps else 0
        horizon = last + 4 * base.tail_separation + extra + 3
        assert_table_matches(curve, range(-2, horizon + 1))

    @given(all_curves)
    def test_dense_prefix_and_far_tail(self, curve):
        table = compile_curve(curve)
        assert table is not None
        head_end = table.windows[-1] if table.windows else 0
        deltas = list(range(-2, head_end + 3 * table.tail_sep + 2))
        deltas += [10_000, 123_457, 10**7]
        for delta in deltas:
            assert table.value(delta) == curve(delta)

    @given(st.tuples(all_curves, st.integers(0, 50), st.integers(0, 50)))
    def test_nested_shifts_compose(self, triple):
        base, s1, s2 = triple
        curve = ShiftedCurve(ShiftedCurve(base, s1), s2)
        assert_table_matches(curve, range(0, 600))

    @given(all_curves)
    def test_memo_wrapper_is_transparent(self, curve):
        assert compile_curve(memoized_curve(curve)) == compile_curve(curve)

    @given(all_curves)
    def test_table_invariants(self, curve):
        table = compile_curve(curve)
        assert table.tail_sep >= 1
        assert all(w >= 1 for w in table.windows)
        assert list(table.windows) == sorted(set(table.windows))
        assert list(table.counts) == sorted(set(table.counts))
        assert all(c >= 1 for c in table.counts)

    @given(all_curves, st.integers(0, 40))
    def test_jump_stream_matches_value(self, curve, jumps):
        """jump_at enumerates exactly the Δ where the value increases,
        with the right increments."""
        table = compile_curve(curve)
        position, total = 0, 0
        previous_window = 0
        for position in range(jumps):
            window, increment = table.jump_at(position)
            assert window > previous_window
            assert increment >= 1
            assert table.value(window) == table.value(window - 1) + increment
            previous_window = window
            total += increment

    def test_release_curve_compiles(self):
        curve = release_curve(SporadicCurve(50), 17)
        assert_table_matches(curve, range(0, 500))

    def test_adhoc_curve_falls_back(self):
        assert compile_curve(lambda delta: max(0, delta)) is None

    def test_negative_shift_falls_back(self):
        assert compile_curve(ShiftedCurve(SporadicCurve(5), -1)) is None

    def test_compile_cache_bounded(self):
        info = table_cache_info()
        assert info.size <= info.limit


# ---------------------------------------------------------------------------
# supply equivalence
# ---------------------------------------------------------------------------


def make_client(curves_by_name, deadlines=None, num_sockets=1, policy="npfp"):
    deadlines = deadlines or {}
    tasks = [
        Task(name=name, priority=i, wcet=3 + i, type_tag=i,
             deadline=deadlines.get(name))
        for i, name in enumerate(sorted(curves_by_name))
    ]
    return RosslClient(
        tasks=TaskSystem(tasks, dict(curves_by_name)),
        sockets=tuple(range(num_sockets)),
        policy=policy,
    )


class TestKernelSupply:
    @settings(max_examples=40)
    @given(st.lists(all_curves, min_size=1, max_size=4), st.integers(1, 3))
    def test_values_match_legacy(self, curves, num_sockets):
        tables_ = [compile_curve(c) for c in curves]
        kernel_sbf = KernelSupply(tables_, WCET, num_sockets)
        legacy_sbf = SupplyBoundFunction(curves, WCET, num_sockets)
        for delta in list(range(0, 400)) + [1_000, 5_000]:
            assert kernel_sbf(delta) == legacy_sbf(delta)

    @settings(max_examples=40)
    @given(
        st.lists(all_curves, min_size=1, max_size=3),
        st.integers(0, 2_000),
        st.integers(1, 3_000),
    )
    def test_inverse_matches_legacy(self, curves, demand, ceiling):
        tables_ = [compile_curve(c) for c in curves]
        kernel_sbf = KernelSupply(tables_, WCET, 1)
        legacy_sbf = SupplyBoundFunction(curves, WCET, 1)
        assert kernel_sbf.inverse(demand, ceiling) == legacy_sbf.inverse(
            demand, ceiling
        )

    def test_rejects_negative_delta(self):
        supply = KernelSupply([compile_curve(SporadicCurve(5))], WCET, 1)
        with pytest.raises(ValueError):
            supply(-1)

    def test_pickles_mid_extension(self):
        import pickle

        supply = KernelSupply([compile_curve(SporadicCurve(7))], WCET, 1)
        supply(123)
        clone = pickle.loads(pickle.dumps(supply))
        for delta in range(0, 500):
            assert clone(delta) == supply(delta)


class TestOffsets:
    @settings(max_examples=60)
    @given(all_curves, st.integers(0, 2_000))
    def test_matches_legacy_offsets(self, curve, busy_window):
        table = compile_curve(curve)
        assert offsets_to_check(table, busy_window) == _offsets_to_check(
            curve, busy_window
        )


# ---------------------------------------------------------------------------
# end-to-end byte identity
# ---------------------------------------------------------------------------

ROBOT_CURVES = {
    "ctrl": SporadicCurve(40),
    "plan": LeakyBucketCurve(burst=2, rate_separation=150),
    "log": TableCurve(steps=((1, 1), (30, 3)), tail_separation=80),
}


class TestAnalysisIdentity:
    @settings(max_examples=25)
    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]), all_curves,
            min_size=1, max_size=3,
        ),
        st.integers(1, 3),
    )
    def test_random_systems(self, curves_by_name, num_sockets):
        client = make_client(curves_by_name, num_sockets=num_sockets)
        fast = analyse(client, WCET, 20_000, kernel=True)
        slow = analyse(client, WCET, 20_000, kernel=False)
        assert fast.rows() == slow.rows()
        assert fast.jitter == slow.jitter
        for name in curves_by_name:
            assert fast.bounds[name].arsa == slow.bounds[name].arsa

    def test_unhashable_curve_falls_back_to_legacy(self):
        client = make_client({"a": SporadicCurve(60)})
        curves = {"a": lambda delta: max(0, -(-delta // 60))}
        client = RosslClient(
            tasks=TaskSystem(client.tasks.tasks, curves), sockets=(0,)
        )
        fast = analyse(client, WCET, 20_000, kernel=True)
        slow = analyse(client, WCET, 20_000, kernel=False)
        assert fast.rows() == slow.rows()

    def test_analyse_batch_matches_individual(self):
        cells = []
        for separation in (40, 60, 80, 100):
            cells.append((
                make_client({"t": SporadicCurve(separation)}), WCET
            ))
        batched = analyse_batch(cells, 20_000)
        single = [analyse(client, wcet, 20_000) for client, wcet in cells]
        assert [a.rows() for a in batched] == [a.rows() for a in single]

    def test_batch_scope_pins_supplies(self):
        with batch_scope():
            for separation in range(5, 5 + supply_pool_info().limit + 8):
                analyse(
                    make_client({"t": SporadicCurve(separation)}),
                    WCET, 5_000, kernel=True,
                )
            assert supply_pool_info().size > supply_pool_info().limit
        info = supply_pool_info()
        assert info.size <= info.limit

    def test_kernel_solver_matches_legacy_solver_directly(self):
        client = make_client(ROBOT_CURVES)
        tasks = client.tasks
        betas = {
            t.name: memoized_curve(release_curve(tasks.arrival_curve(t.name), 9))
            for t in tasks
        }
        tables_ = {name: compile_curve(c) for name, c in betas.items()}
        kernel_sbf = KernelSupply(
            [tables_[t.name] for t in tasks], WCET, 1
        )
        legacy_sbf = SupplyBoundFunction(
            [betas[t.name] for t in tasks], WCET, 1
        )
        for task in tasks:
            fast = kernel_mod.solve_response_time(
                task, tasks.tasks, tables_, kernel_sbf, 50_000
            )
            slow = solve_response_time(
                task, tasks.tasks, betas, legacy_sbf, 50_000
            )
            assert fast == slow


class TestEdfIdentity:
    @settings(max_examples=25)
    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]), all_curves,
            min_size=1, max_size=3,
        ),
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]), st.integers(5, 600),
            min_size=3, max_size=3,
        ),
    )
    def test_random_systems(self, curves_by_name, deadlines):
        client = make_client(curves_by_name, deadlines, policy="edf")
        fast = edf_analysis(client, WCET, 20_000, kernel=True)
        slow = edf_analysis(client, WCET, 20_000, kernel=False)
        assert fast == slow  # includes failing_window and busy_bound

    def test_candidates_cover_scan_range(self):
        curves = {"a": SporadicCurve(25), "b": LeakyBucketCurve(2, 90)}
        deadlines = {"a": 60, "b": 200}
        client = make_client(curves, deadlines, policy="edf")
        analysis = edf_analysis(client, WCET, kernel=True)
        tables_ = {
            name: compile_curve(
                release_curve(curve, analysis.jitter.bound)
            )
            for name, curve in curves.items()
        }
        candidates = edf_candidate_windows(
            tables_, analysis.effective_deadlines,
            client.tasks.tasks, analysis.busy_bound,
        )
        lo = min(analysis.effective_deadlines.values())
        assert candidates[0] == lo
        assert all(lo <= c <= analysis.busy_bound for c in candidates)
        assert candidates == sorted(set(candidates))


class TestCampaignByteIdentity:
    def test_reports_identical_kernel_on_off(self):
        client = make_client(ROBOT_CURVES)
        on = run_adequacy_campaign(
            client, WCET, horizon=4_000, runs=3, seed=11, kernel=True
        )
        off = run_adequacy_campaign(
            client, WCET, horizon=4_000, runs=3, seed=11, kernel=False
        )
        assert on.table() == off.table()
        assert (
            json.dumps(on.to_json(), sort_keys=True)
            == json.dumps(off.to_json(), sort_keys=True)
        )

    def test_analysis_sweep_serial_matches_plain_sweep(self):
        def deploy(separation):
            return make_client({"t": SporadicCurve(separation)}), WCET

        def summarize(separation, analysis):
            return (analysis.response_time_bound("t"),)

        swept = analysis_sweep(
            "separation", [40, 60, 80], ["bound"], deploy, summarize,
            horizon=20_000,
        )
        direct = [
            analyse(*deploy(v), 20_000).response_time_bound("t")
            for v in (40, 60, 80)
        ]
        assert [row[1] for row in swept.rows] == direct
        assert swept.column("bound") == direct


class TestTokenEpoch:
    def test_memo_curves_survive_token_table_overflow(self):
        """Flooding the token table past its limit clears it (bounded
        memory) but memoized curves keep evaluating correctly — they
        re-register under the new epoch."""
        from repro.rta import curves as curves_mod

        survivor = memoized_curve(SporadicCurve(37))
        assert survivor(123) == SporadicCurve(37)(123)
        epoch_before = curves_mod.token_table_info().epoch
        for separation in range(1, curves_mod._TOKEN_LIMIT + 10):
            memoized_curve(LeakyBucketCurve(burst=9, rate_separation=separation))(1)
        info = curves_mod.token_table_info()
        assert info.epoch > epoch_before
        assert info.size <= info.limit
        for delta in (0, 1, 36, 37, 38, 370, 12_345):
            assert survivor(delta) == SporadicCurve(37)(delta)


class TestKernelToggle:
    def test_default_resolution(self):
        assert kernel_enabled(None) in (True, False)
        assert kernel_enabled(True) is True
        assert kernel_enabled(False) is False

    def test_set_default_roundtrip(self):
        before = kernel_enabled(None)
        try:
            kernel_mod.set_kernel_default(False)
            assert kernel_enabled(None) is False
            kernel_mod.set_kernel_default(True)
            assert kernel_enabled(None) is True
        finally:
            kernel_mod.set_kernel_default(before)


class TestFallbackAttribution:
    """Every kernel→legacy fallback must say which curve and why —
    a bare counter bump is not actionable."""

    def setup_method(self):
        kernel_mod.clear_fallback_info()

    def test_adhoc_curve_fallback_is_attributed(self):
        client = make_client({"a": SporadicCurve(60)})
        curves = {"a": lambda delta: max(0, -(-delta // 60))}
        client = RosslClient(
            tasks=TaskSystem(client.tasks.tasks, curves), sockets=(0,)
        )
        analyse(client, WCET, 20_000, kernel=True)
        info = kernel_mod.fallback_info()
        assert len(info) == 1
        record = info[0]
        assert record.task == "a"
        assert record.reason.startswith("unsupported-class:")
        # The release pipeline wraps the raw lambda; the reason names
        # the innermost culprit, the record the outermost class.
        assert "function" in record.reason

    def test_labeled_counter_emitted(self):
        from repro import obs

        client = make_client({"a": SporadicCurve(60)})
        curves = {"a": lambda delta: max(0, -(-delta // 60))}
        client = RosslClient(
            tasks=TaskSystem(client.tasks.tasks, curves), sockets=(0,)
        )
        obs.enable()
        try:
            before = obs.snapshot()
            analyse(client, WCET, 20_000, kernel=True)
            delta = obs.snapshot().diff(before)
            labeled = {
                name: value for name, value in delta.counters
                if name.startswith("rta.kernel.fallbacks.")
            }
            assert labeled, delta.counters
            assert all("unsupported-class:" in name for name in labeled)
            # The bare aggregate counter still moves (dashboards key on it).
            assert delta.counter("rta.kernel.fallbacks") >= 1
        finally:
            obs.disable()

    def test_negative_shift_reason(self):
        curve = ShiftedCurve(SporadicCurve(5), -1)
        assert kernel_mod.fallback_reason(curve) == "negative-shift"

    def test_clean_compile_records_nothing(self):
        client = make_client({"a": SporadicCurve(60)})
        analyse(client, WCET, 20_000, kernel=True)
        assert kernel_mod.fallback_info() == ()

    def test_fallback_log_bounded(self):
        for i in range(kernel_mod._FALLBACK_LIMIT + 10):
            client = make_client({"a": SporadicCurve(60)})
            curves = {"a": lambda delta: max(0, -(-delta // 60))}
            client = RosslClient(
                tasks=TaskSystem(client.tasks.tasks, curves), sockets=(0,)
            )
            kernel_mod.compile_release_tables(
                client.tasks.tasks,
                {"a": curves["a"]},
            )
        assert len(kernel_mod.fallback_info()) == kernel_mod._FALLBACK_LIMIT

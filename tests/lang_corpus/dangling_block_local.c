// Witness for the lifetime-model gap between the semantics (kept out
// of examples/ on purpose: this program is NOT UB-free).
//
// `x` lives in the inner block.  Under the definitional interpreter
// (block-scoped lifetimes, the C standard's rule) its storage dies at
// the closing brace, so the dereference of `p` below is UB: "load
// through dangling pointer".  Under the VM and the codegen backend
// (function-scoped lifetimes: slots are allocated at entry, killed at
// return) the storage is still live and the load yields 7.
//
// The differential checker must classify this exact pattern as a
// "lifetime-divergence", not a toolchain bug.

int main() {
    int* p = NULL;
    int keep = 0;
    while (keep < 1) {
        int x = 7;
        p = &x;
        keep = keep + 1;
    }
    return *p;
}

"""Tests for the observability subsystem (`repro.obs`).

Covers the subsystem contracts the rest of the repo relies on:

* snapshot **merge is associative** (the property that makes worker
  deltas combinable in any grouping);
* histogram **bucket edges** land values exactly where the fixed bounds
  say;
* the Chrome trace export is **schema-valid** trace-event JSON;
* **determinism**: enabling observability changes no analysis output;
* **parallel merge parity**: a campaign with ``jobs=N`` merges worker
  snapshots such that run-level counters equal the serial campaign's;
* the CLI surface: ``--version``, ``--metrics-out``/``--trace-out``,
  and the ``profile`` subcommand.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.analysis.adequacy import run_adequacy_campaign
from repro.analysis.parallel import fork_available
from repro.cli import main
from repro.model.task import Task, TaskSystem
from repro.obs.export import chrome_trace, metrics_jsonl, text_summary
from repro.obs.metrics import HistogramState, MetricsSnapshot
from repro.rossl.client import RosslClient
from repro.rta.curves import SporadicCurve
from repro.rta.npfp import analyse
from repro.timing.wcet import WcetModel

WCET = WcetModel(
    failed_read=2, success_read=2, selection=1, dispatch=1, completion=1, idling=1
)


def small_client() -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="slow", priority=1, wcet=20, type_tag=1),
            Task(name="fast", priority=2, wcet=5, type_tag=2),
        ],
        {"slow": SporadicCurve(400), "fast": SporadicCurve(150)},
    )
    return RosslClient.make(tasks, [0])


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts disabled and empty, and leaves no state behind."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def snap(counters=(), gauges=(), histograms=(), spans=()) -> MetricsSnapshot:
    return MetricsSnapshot(
        counters=tuple(counters),
        gauges=tuple(gauges),
        histograms=tuple(histograms),
        spans=tuple(spans),
    )


class TestSnapshotMerge:
    def test_merge_adds_counters(self):
        merged = snap([("x", 2)]).merge(snap([("x", 3), ("y", 1)]))
        assert merged.counter("x") == 5
        assert merged.counter("y") == 1

    def test_merge_is_associative(self):
        hist = lambda counts, total, s: HistogramState(  # noqa: E731
            buckets=(10, 100), counts=counts, total=total, sum=s
        )
        a = snap([("c", 1)], [("g", 1.0)], [("h", hist((1, 0, 0), 1, 4))])
        b = snap([("c", 2), ("d", 5)], [("g", 2.0)],
                 [("h", hist((0, 2, 0), 2, 60))])
        c = snap([("d", 1)], [("k", 9.0)], [("h", hist((0, 0, 3), 3, 600))])
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_empty_snapshot_is_identity(self):
        a = snap([("c", 7)], [("g", 1.5)])
        assert a.merge(snap()) == a
        assert snap().merge(a) == a

    def test_merge_gauges_last_writer_wins(self):
        assert snap([], [("g", 1.0)]).merge(
            snap([], [("g", 3.0)])
        ).gauge_value("g") == 3.0

    def test_merge_rejects_bucket_mismatch(self):
        a = snap(histograms=[("h", HistogramState((1,), (0, 0), 0, 0))])
        b = snap(histograms=[("h", HistogramState((2,), (0, 0), 0, 0))])
        with pytest.raises(ValueError, match="buckets"):
            a.merge(b)

    def test_diff_recovers_the_delta(self):
        obs.enable()
        obs.inc("c", 2)
        before = obs.snapshot()
        obs.inc("c", 5)
        obs.inc("d", 1)
        delta = obs.snapshot().diff(before)
        assert delta.counter("c") == 5
        assert delta.counter("d") == 1
        assert before.merge(delta).counter("c") == 7

    def test_diff_drops_zero_entries(self):
        obs.enable()
        obs.inc("c", 2)
        before = obs.snapshot()
        delta = obs.snapshot().diff(before)
        assert delta.counters == ()

    def test_registry_merge_snapshot_accumulates(self):
        obs.enable()
        obs.inc("c", 1)
        obs.merge_snapshot(snap([("c", 10)]))
        assert obs.counter_value("c") == 11


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        obs.enable()
        buckets = (10, 100)
        for value in (0, 10):      # both land in the <=10 bucket
            obs.observe("h", value, buckets)
        obs.observe("h", 11, buckets)   # first value above 10 → <=100
        obs.observe("h", 100, buckets)  # the edge itself → <=100
        obs.observe("h", 101, buckets)  # above the last edge → overflow
        state = obs.snapshot().histogram("h")
        assert state.counts == (2, 2, 1)
        assert state.total == 5
        assert state.sum == 0 + 10 + 11 + 100 + 101

    def test_disabled_observe_records_nothing(self):
        obs.observe("h", 5)
        obs.inc("c")
        obs.gauge("g", 1.0)
        empty = obs.snapshot()
        assert empty.counters == () and empty.gauges == ()
        assert empty.histograms == ()


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner", detail=1):
                pass
        inner, outer = obs.find_spans("inner")[0], obs.find_spans("outer")[0]
        assert inner.parent == "outer" and inner.depth == 1
        assert outer.parent is None and outer.depth == 0
        assert inner.attrs == (("detail", 1),)
        assert outer.duration_ns >= inner.duration_ns

    def test_span_measures_even_when_disabled(self):
        with obs.span("quiet") as sp:
            pass
        assert sp.elapsed_seconds >= 0.0
        assert obs.find_spans("quiet") == ()

    def test_chrome_trace_schema(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        trace = json.loads(json.dumps(chrome_trace()))
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert len(trace["traceEvents"]) == 2
        for event in trace["traceEvents"]:
            assert event["ph"] == "X"
            assert isinstance(event["name"], str)
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_jsonl_lines_all_parse(self):
        obs.enable()
        obs.inc("c", 3)
        obs.gauge("g", 2.5)
        obs.observe("h", 7)
        with obs.span("s"):
            pass
        lines = metrics_jsonl()
        parsed = [json.loads(line) for line in lines]
        assert {entry["type"] for entry in parsed} == {
            "counter", "gauge", "histogram", "span"
        }

    def test_text_summary_has_sections(self):
        obs.enable()
        obs.inc("c")
        with obs.span("s"):
            pass
        summary = text_summary()
        assert "counters" in summary and "spans" in summary


class TestDeterminism:
    """Metrics are observational only: identical results on vs. off."""

    def test_analysis_identical_with_obs_enabled(self):
        client = small_client()
        plain = analyse(client, WCET, horizon=100_000)
        obs.enable()
        observed = analyse(client, WCET, horizon=100_000)
        assert plain.rows() == observed.rows()
        assert plain.jitter == observed.jitter
        assert plain.schedulable == observed.schedulable
        # ...and the instrumentation did record the analysis.
        assert obs.counter_value("rta.analyses") == 1
        assert obs.counter_value("rta.kernel.tasks_solved") == 2

    def test_analysis_identical_with_obs_enabled_legacy_path(self):
        client = small_client()
        plain = analyse(client, WCET, horizon=100_000, kernel=False)
        obs.enable()
        observed = analyse(client, WCET, horizon=100_000, kernel=False)
        assert plain.rows() == observed.rows()
        assert obs.counter_value("rta.analyses") == 1
        assert obs.counter_value("rta.arsa.tasks_solved") == 2

    def test_campaign_identical_with_obs_enabled(self):
        client = small_client()
        plain = run_adequacy_campaign(
            client, WCET, horizon=2500, runs=4, seed=7
        )
        obs.enable()
        observed = run_adequacy_campaign(
            client, WCET, horizon=2500, runs=4, seed=7
        )
        assert plain.table() == observed.table()
        assert plain.observed_worst == observed.observed_worst
        assert obs.counter_value("sim.runs") == 4

    def test_campaign_elapsed_comes_from_the_span(self):
        client = small_client()
        report = run_adequacy_campaign(
            client, WCET, horizon=2000, runs=2, seed=0
        )
        assert report.elapsed_seconds is not None
        assert report.elapsed_seconds > 0
        assert "elapsed:" in report.table(show_elapsed=True)
        assert "elapsed:" not in report.table()


@pytest.mark.skipif(not fork_available(), reason="needs fork-based pools")
class TestParallelMergeParity:
    def test_merged_worker_counts_equal_serial_counts(self):
        client = small_client()
        obs.enable()
        run_adequacy_campaign(client, WCET, horizon=2500, runs=8, seed=42, jobs=1)
        serial = dict(obs.snapshot().counters)
        obs.reset()
        run_adequacy_campaign(client, WCET, horizon=2500, runs=8, seed=42, jobs=3)
        merged = dict(obs.snapshot().counters)
        # One engine per worker vs. one in-process engine: build counts
        # legitimately differ; every run-level count must not.
        serial.pop("engine.builds"), merged.pop("engine.builds")
        assert merged == serial

    def test_worker_spans_reach_the_parent(self):
        client = small_client()
        obs.enable()
        run_adequacy_campaign(client, WCET, horizon=2500, runs=8, seed=1, jobs=3)
        import os

        chunk_pids = {record.pid for record in obs.find_spans("campaign.chunk")}
        assert chunk_pids, "no worker chunk spans were merged"
        assert os.getpid() not in chunk_pids
        assert obs.find_spans("campaign.worker_init")
        assert obs.find_spans("campaign.parallel")


class TestCli:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    @pytest.fixture
    def spec_path(self, tmp_path: Path) -> str:
        spec = {
            "policy": "npfp",
            "sockets": [0],
            "wcet": {
                "failed_read": 2, "success_read": 2, "selection": 1,
                "dispatch": 1, "completion": 1, "idling": 1,
            },
            "tasks": [
                {
                    "name": "a", "priority": 2, "wcet": 10, "type_tag": 1,
                    "curve": {"kind": "sporadic", "min_separation": 300},
                },
                {
                    "name": "b", "priority": 1, "wcet": 20, "type_tag": 2,
                    "curve": {"kind": "leaky-bucket", "burst": 2,
                              "rate_separation": 500},
                },
            ],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_analyze_metrics_and_trace_out(
        self, spec_path: str, tmp_path: Path, capsys
    ):
        metrics = tmp_path / "m.jsonl"
        trace = tmp_path / "t.json"
        assert main(["analyze", spec_path]) == 0
        plain_out = capsys.readouterr().out
        assert main([
            "analyze", spec_path,
            "--metrics-out", str(metrics), "--trace-out", str(trace),
        ]) == 0
        observed = capsys.readouterr()
        assert observed.out == plain_out  # byte-identical stdout
        entries = [
            json.loads(line) for line in metrics.read_text().splitlines()
        ]
        assert entries, "metrics JSONL is empty"
        kernel_runs = [
            e for e in entries
            if e["type"] == "counter" and e["name"] == "rta.kernel.analyses"
        ]
        assert kernel_runs and kernel_runs[0]["value"] > 0
        loaded = json.loads(trace.read_text())
        assert loaded["traceEvents"], "chrome trace has no events"

    def test_analyze_legacy_path_memo_counters(
        self, spec_path: str, tmp_path: Path
    ):
        # --no-kernel keeps the memoized call-per-step path, whose
        # per-analysis attribution feeds the rta.memo_curve.* counters.
        metrics = tmp_path / "m.jsonl"
        assert main([
            "analyze", spec_path, "--no-kernel", "--metrics-out", str(metrics),
        ]) == 0
        entries = [
            json.loads(line) for line in metrics.read_text().splitlines()
        ]
        hits = [
            e for e in entries
            if e["type"] == "counter" and e["name"] == "rta.memo_curve.hits"
        ]
        assert hits and hits[0]["value"] > 0
        assert not any(
            e["name"] == "rta.kernel.analyses" for e in entries
            if e["type"] == "counter"
        )

    def test_simulate_metrics_out(self, spec_path: str, tmp_path: Path, capsys):
        metrics = tmp_path / "m.jsonl"
        assert main([
            "simulate", spec_path, "--runs", "2", "--horizon", "3000",
            "--metrics-out", str(metrics),
        ]) == 0
        captured = capsys.readouterr()
        assert "elapsed:" not in captured.out  # stdout stays deterministic
        assert "elapsed:" in captured.err
        names = {
            json.loads(line)["name"]
            for line in metrics.read_text().splitlines()
        }
        assert "sim.runs" in names and "campaign.runs_completed" in names

    def test_profile_subcommand(self, spec_path: str, capsys):
        assert main(["profile", spec_path]) == 0
        out = capsys.readouterr().out
        assert "counters" in out and "rta.kernel.analyses" in out
        assert "spans" in out

    def test_profile_subcommand_no_kernel(self, spec_path: str, capsys):
        assert main(["profile", spec_path, "--no-kernel"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out and "rta.memo_curve.hits" in out
        assert "rta.kernel.analyses" not in out
        assert "spans" in out

    def test_verify_metrics_out(self, spec_path: str, tmp_path: Path, capsys):
        metrics = tmp_path / "m.jsonl"
        assert main([
            "verify", spec_path, "--depth", "2",
            "--metrics-out", str(metrics),
        ]) == 0
        names = {
            json.loads(line)["name"]
            for line in metrics.read_text().splitlines()
        }
        assert "verify.scripts_explored" in names

"""Unit tests for smaller APIs: value/heap helpers, marker formatting,
protocol spans, schedule segments, and report edge cases."""

from __future__ import annotations

import pytest

from repro.lang.heap import Heap
from repro.lang.values import NULL, UNDEF, Undef, VInt, VPtr
from repro.model.job import Job
from repro.schedule.conversion import Segment
from repro.schedule.states import Executes, Idle
from repro.traces.basic_actions import Read, Selection
from repro.traces.markers import (
    MDispatch,
    MIdling,
    MReadE,
    MReadS,
    format_trace,
)
from repro.traces.protocol import ActionSpan, SchedulerProtocol

J = Job((1, 2), 0)


class TestValues:
    def test_vint_str(self):
        assert str(VInt(42)) == "42"

    def test_null_identity_and_str(self):
        assert NULL.is_null
        assert str(NULL) == "NULL"

    def test_vptr_moved_and_str(self):
        ptr = VPtr(3, 1)
        assert ptr.moved(2) == VPtr(3, 3)
        assert str(ptr) == "&b3+1"

    def test_undef_is_singleton(self):
        assert Undef() is UNDEF
        assert repr(UNDEF) == "undef"


class TestHeapHelpers:
    def test_valid_predicate(self):
        heap = Heap()
        ptr = heap.alloc(2)
        assert heap.valid(ptr)
        assert heap.valid(ptr.moved(1))
        assert not heap.valid(ptr.moved(2))  # one past the end
        assert not heap.valid(NULL)
        heap.free(ptr)
        assert not heap.valid(ptr)

    def test_valid_on_wild_pointer(self):
        assert not Heap().valid(VPtr(99, 0))

    def test_alloc_nonpositive_rejected(self):
        from repro.lang.errors import UndefinedBehavior

        with pytest.raises(UndefinedBehavior):
            Heap().alloc(0)


class TestMarkerFormatting:
    def test_format_trace_lines(self):
        text = format_trace([MReadS(), MReadE(0, J), MIdling()])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "M_ReadS" in lines[0]
        assert "j0(1,2)" in lines[1]

    def test_marker_strs(self):
        assert str(MReadE(1, None)) == "M_ReadE(sock=1, ⊥)"
        assert str(MDispatch(J)) == "M_Dispatch(j0(1,2))"

    def test_action_strs(self):
        assert str(Read(0, None)) == "Read(sock=0, ⊥)"
        assert str(Selection(J)) == "Selection(j0(1,2))"
        assert Read(0, None).failed
        assert not Selection(J).failed


class TestProtocolSpans:
    def test_action_span_str(self):
        span = ActionSpan(Read(0, None), 3, 5)
        assert "markers [3,5)" in str(span)

    def test_protocol_state_strs(self):
        protocol = SchedulerProtocol([0])
        state = protocol.initial_state()
        assert str(state) == "Idle"
        state, _ = protocol.step(state, MReadS(), 0)
        assert "Poll" in str(state)


class TestSegments:
    def test_segment_duration_and_str(self):
        segment = Segment(Executes(J), 4, 9)
        assert segment.duration == 5
        assert str(segment) == "[4,9) Executes(j0(1,2))"

    def test_idle_state_str(self):
        assert str(Idle()) == "Idle"


class TestVmTimingHelpers:
    def test_tasks_with_measured_wcets_preserves_curves(self):
        from repro.model.task import Task, TaskSystem
        from repro.rossl.vmtiming import MeasuredWcets
        from repro.rta.curves import SporadicCurve
        from repro.timing.wcet import WcetModel

        tasks = TaskSystem(
            [Task(name="a", priority=1, wcet=5, type_tag=1)],
            {"a": SporadicCurve(100)},
        )
        measured = MeasuredWcets(
            wcet=WcetModel(2, 2, 1, 1, 1, 1), exec_maxima={"a": 9}
        )
        replaced = measured.tasks_with_measured_wcets(tasks)
        assert replaced.by_name("a").wcet == 9
        assert replaced.has_curves

    def test_unobserved_task_keeps_declared_wcet(self):
        from repro.model.task import Task, TaskSystem
        from repro.rossl.vmtiming import MeasuredWcets
        from repro.timing.wcet import WcetModel

        tasks = TaskSystem([Task(name="a", priority=1, wcet=5, type_tag=1)])
        measured = MeasuredWcets(
            wcet=WcetModel(2, 2, 1, 1, 1, 1), exec_maxima={}
        )
        assert measured.tasks_with_measured_wcets(tasks).by_name("a").wcet == 5


class TestModelCheckReport:
    def test_violation_recorded_for_buggy_minic(self, two_task_client):
        """End-to-end: a buggy scheduler program produces a Violation in
        the exploration report rather than crashing the explorer."""
        from repro.engine import MiniCInterpEngine
        from repro.rossl.source import rossl_source
        from repro.lang.parser import parse_program
        from repro.lang.typecheck import typecheck
        from repro.verification.model_check import _run_one

        source = rossl_source(two_task_client).replace(
            "free(j);  // release the memory",
            "free(j);\n            free(j);  // BUG: double free",
        )
        assert "BUG" in source

        class BuggyEngine(MiniCInterpEngine):
            def __init__(self, client):
                self.client = client
                self.typed = typecheck(parse_program(source))

        buggy = BuggyEngine(two_task_client)
        trace, violation = _run_one(
            two_task_client, ((1, 0), None, None), buggy, 100_000
        )
        assert violation is not None
        assert violation.kind == "stuck"
        assert "free" in violation.detail

"""Tests for VM-timed execution and the measurement-to-RTA closed loop.

The full pipeline under test: compile Rössl → run it on the VM with
instruction-count timestamps → derive a WCET model by measurement →
feed it to the overhead-aware RTA → validate the resulting bounds on
*fresh* VM-timed executions.  This is the reproduction's executable
version of "WCETs determined experimentally" (§2.2) end to end.
"""

from __future__ import annotations

import random

import pytest

from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.vmtiming import (
    MeasuredWcets,
    measure_wcet_model,
    simulate_vm,
)
from repro.rta.curves import LeakyBucketCurve, SporadicCurve
from repro.rta.npfp import analyse
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import check_consistency, job_arrival_times
from repro.timing.wcet import check_wcet_respected
from repro.traces.validity import tr_valid


@pytest.fixture(scope="module")
def vm_client() -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="lo", priority=1, wcet=10, type_tag=1),
            Task(name="hi", priority=2, wcet=10, type_tag=2),
        ],
        {
            # Time units are VM instructions; Rössl's own loop costs
            # ~100 instructions per iteration, so separations are in the
            # thousands.
            "lo": SporadicCurve(6_000),
            "hi": LeakyBucketCurve(burst=2, rate_separation=5_000),
        },
    )
    return RosslClient.make(tasks, sockets=[0])


def burst_arrivals(client, at, jobs):
    serial = 0
    out = []
    for name, count in jobs.items():
        tag = client.tasks.by_name(name).type_tag
        for _ in range(count):
            out.append(Arrival(at, client.sockets[0], (tag, serial)))
            serial += 1
    return ArrivalSequence(out)


class TestVmTimedRuns:
    def test_timestamps_strictly_increase(self, vm_client):
        run = simulate_vm(vm_client, ArrivalSequence([]), 5_000)
        ts = run.timed_trace.ts
        assert len(ts) > 5
        assert all(b > a for a, b in zip(ts, ts[1:]))

    def test_trace_satisfies_protocol_and_validity(self, vm_client):
        arrivals = burst_arrivals(vm_client, 500, {"lo": 1, "hi": 2})
        run = simulate_vm(vm_client, arrivals, 20_000)
        assert vm_client.protocol().accepts(run.timed_trace.trace)
        assert tr_valid(run.timed_trace.trace, vm_client.tasks)
        check_consistency(run.timed_trace, arrivals)

    def test_arrival_visibility_in_instruction_time(self, vm_client):
        arrivals = burst_arrivals(vm_client, 1_000, {"hi": 1})
        run = simulate_vm(vm_client, arrivals, 20_000)
        reads = [
            (m, t)
            for m, t in zip(run.timed_trace.trace, run.timed_trace.ts)
            if type(m).__name__ == "MReadE" and m.job is not None
        ]
        assert len(reads) == 1
        assert reads[0][1] > 1_000

    def test_jobs_complete(self, vm_client):
        arrivals = burst_arrivals(vm_client, 500, {"lo": 2, "hi": 2})
        run = simulate_vm(vm_client, arrivals, 30_000)
        completions = run.timed_trace.completions()
        assert len(completions) == 4


class TestMeasurement:
    def stress_runs(self, client):
        """Stress scenarios covering the worst queue depths the arrival
        curves admit (burst of 3 = curve maximum in a short window)."""
        runs = []
        for at in (300, 1_500):
            arrivals = burst_arrivals(client, at, {"lo": 1, "hi": 2})
            runs.append(simulate_vm(client, arrivals, 40_000))
        runs.append(simulate_vm(client, ArrivalSequence([]), 10_000))
        return runs

    def test_measured_model_is_respected_by_its_own_runs(self, vm_client):
        runs = self.stress_runs(vm_client)
        measured = measure_wcet_model(runs)
        tasks = measured.tasks_with_measured_wcets(vm_client.tasks)
        for run in runs:
            check_wcet_respected(run.timed_trace, tasks, measured.wcet)

    def test_margin_inflates(self, vm_client):
        runs = self.stress_runs(vm_client)
        base = measure_wcet_model(runs, margin=1.0)
        padded = measure_wcet_model(runs, margin=1.5)
        assert padded.wcet.selection >= base.wcet.selection
        assert padded.wcet.failed_read >= base.wcet.failed_read

    def test_margin_below_one_rejected(self, vm_client):
        with pytest.raises(ValueError):
            measure_wcet_model([], margin=0.5)

    def test_exec_maxima_per_task(self, vm_client):
        runs = self.stress_runs(vm_client)
        measured = measure_wcet_model(runs)
        assert set(measured.exec_maxima) == {"lo", "hi"}
        replaced = measured.tasks_with_measured_wcets(vm_client.tasks)
        assert replaced.by_name("lo").wcet == measured.exec_maxima["lo"]


class TestClosedLoop:
    """Measure WCETs from the cost semantics → RTA → validate bounds on
    fresh VM-timed executions."""

    def test_rta_bounds_hold_on_vm_time(self, vm_client):
        # 1. measurement phase (stress coverage + 50% safety margin)
        stress = TestMeasurement().stress_runs(vm_client)
        measured = measure_wcet_model(stress, margin=1.5)
        tasks = measured.tasks_with_measured_wcets(vm_client.tasks)
        client = RosslClient.make(tasks, vm_client.sockets)

        # 2. analysis phase
        analysis = analyse(client, measured.wcet)
        assert analysis.schedulable

        # 3. validation phase: fresh arrival patterns.
        rng = random.Random(7)
        for trial in range(4):
            at = rng.randrange(200, 2_000)
            arrivals = burst_arrivals(client, at, {"lo": 1, "hi": 2})
            run = simulate_vm(client, arrivals, 60_000)
            check_wcet_respected(run.timed_trace, tasks, measured.wcet)
            arrival_of = job_arrival_times(run.timed_trace, arrivals)
            completions = run.timed_trace.completions()
            for job, t_arr in arrival_of.items():
                name = client.tasks.msg_to_task(job.data).name
                bound = analysis.response_time_bound(name)
                done = completions.get(job)
                assert done is not None, f"{job} never completed"
                assert done - t_arr <= bound, (
                    f"trial {trial}: {name} job responded in "
                    f"{done - t_arr} instructions > bound {bound}"
                )

"""E6 (Fig. 7): release jitter restores priority compliance and work
conservation.

Regenerates both Fig. 7 scenarios on real simulated runs:

* **7a — priority compliance**: a high-priority job arrives after the
  polling phase concluded but before the dispatch decision; Rössl
  dispatches the lower-priority job.  The overlooked interval never
  exceeds ``PB + SB + DB < J``, so modelling the job as released
  ``J``-late makes the schedule priority-policy compliant.
* **7b — work conservation**: a job arrives while the scheduler idles;
  the processor shows ``Idle`` with a job pending.  The idle-while-
  pending interval never exceeds ``IB < J``.
"""

from __future__ import annotations

from conftest import print_experiment
from repro.rta.jitter import jitter_bound
from repro.sim.simulator import WcetDurations, simulate
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.traces.markers import MDispatch, MReadE


def test_fig7a_priority_compliance_window(benchmark, fig3_client, fig3_wcet):
    """j_lo arrives first; j_hi lands right after the all-fail polling
    pass — the dispatch picks j_lo although j_hi (higher priority) has
    arrived."""
    # WCET-timed run: read j_lo over [0,5), all-fail pass [5,8),
    # selection [8,10), dispatch at 10.  j_hi arrives at 8.
    arrivals = ArrivalSequence(
        [Arrival(1, 0, (1, 1)), Arrival(8, 0, (2, 2))]
    )
    result = benchmark.pedantic(
        simulate, args=(fig3_client, arrivals, fig3_wcet, 200),
        kwargs={"durations": WcetDurations()}, rounds=3, iterations=1,
    )
    trace, ts = result.timed_trace.trace, result.timed_trace.ts

    first_dispatch, dispatch_time = next(
        (m, t) for m, t in zip(trace, ts) if isinstance(m, MDispatch)
    )
    assert first_dispatch.job.data == (1, 1), "the low-priority job runs first"
    hi_arrival = 8
    assert dispatch_time > hi_arrival, "j_hi had already arrived — violation"

    jitter = jitter_bound(fig3_wcet, fig3_client.num_sockets)
    overlooked = dispatch_time - hi_arrival
    window = jitter.polling + jitter.selection + jitter.dispatch
    assert overlooked <= window < jitter.bound

    body = (
        f"j_hi arrived at {hi_arrival}; j_lo dispatched at {dispatch_time} "
        f"→ priority compliance violated for {overlooked} units\n"
        f"bound PB+SB+DB = {window} < J = {jitter.bound} — shifting j_hi's "
        "release by J restores compliance (Fig. 7a)"
    )
    print_experiment("E6a / Fig. 7a — priority compliance via release jitter", body)


def test_fig7b_work_conservation_window(benchmark, fig3_client, fig3_wcet):
    """A job arrives while the scheduler idles: the schedule shows Idle
    with a pending job, for at most IB."""
    # Idle iteration: poll [0,3), selection [3,5), idling [5,8).
    # The job arrives at 4 — mid-selection, read at the next poll.
    arrivals = ArrivalSequence([Arrival(4, 0, (2, 2))])
    result = benchmark.pedantic(
        simulate, args=(fig3_client, arrivals, fig3_wcet, 200),
        kwargs={"durations": WcetDurations()}, rounds=3, iterations=1,
    )
    trace, ts = result.timed_trace.trace, result.timed_trace.ts
    read_time = next(
        t for m, t in zip(trace, ts)
        if isinstance(m, MReadE) and m.job is not None
    )
    idle_while_pending = read_time - 4
    jitter = jitter_bound(fig3_wcet, fig3_client.num_sockets)
    assert idle_while_pending > 0, "the run must exhibit the violation"
    assert idle_while_pending <= jitter.idle < jitter.bound

    body = (
        f"job arrived at 4 during an idle iteration; read at {read_time} "
        f"→ idle-while-pending for {idle_while_pending} units\n"
        f"bound IB = {jitter.idle} < J = {jitter.bound} — shifting the "
        "release by J restores work conservation (Fig. 7b)"
    )
    print_experiment("E6b / Fig. 7b — work conservation via release jitter", body)


def test_jitter_formula_definition_4_3(benchmark, fig3_wcet):
    jitter = benchmark(jitter_bound, fig3_wcet, 1)
    assert jitter.bound == 1 + max(
        jitter.polling + jitter.selection + jitter.dispatch, jitter.idle
    )


def test_jitter_lemma_campaign(benchmark, fig3_client, fig3_wcet):
    """The general §4.3 lemma: across a randomized campaign, every job's
    needed release jitter (computed from its actual violation window)
    stays within J."""
    import random

    from repro.rta.compliance import check_jitter_compliance
    from repro.sim.workloads import generate_arrivals

    bound = jitter_bound(fig3_wcet, fig3_client.num_sockets).bound

    def campaign():
        worst = 0
        jobs = 0
        for seed in range(10):
            rng = random.Random(seed)
            arrivals = generate_arrivals(
                fig3_client, horizon=800, rng=rng, intensity=1.3
            )
            result = simulate(fig3_client, arrivals, fig3_wcet, 1_600,
                              durations=WcetDurations())
            report = check_jitter_compliance(
                result.timed_trace, arrivals, result.schedule(),
                fig3_client.priority_fn(), bound,
            )
            worst = max(worst, report.worst)
            jobs += len(report.needed_jitter)
        return worst, jobs

    worst, jobs = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert worst <= bound
    print_experiment(
        "E6c — the §4.3 jitter lemma over a randomized campaign",
        f"{jobs} jobs across 10 runs: worst needed release jitter {worst} "
        f"≤ J = {bound}",
    )

"""E8 (Thm. 5.1): end-to-end timing correctness.

Regenerates the paper's final theorem as a measurement: across a
randomized campaign (adversarial and uniform timing), every job whose
analytic deadline ``t_arr + R_i + J_i`` falls inside the horizon
completes by it.  Prints bound vs. observed-worst per task.
"""

from __future__ import annotations

from conftest import print_experiment
from repro.analysis.adequacy import check_timing_correctness, run_adequacy_campaign
from repro.rta.npfp import analyse
from repro.sim.simulator import WcetDurations, simulate
from repro.sim.workloads import burst_at


def test_campaign_no_violations(benchmark, embedded_client, embedded_wcet):
    report = benchmark.pedantic(
        run_adequacy_campaign,
        args=(embedded_client, embedded_wcet),
        kwargs={"horizon": 8_000, "runs": 12, "seed": 17, "intensity": 1.2},
        rounds=1, iterations=1,
    )
    assert report.ok, report.violations[:3]
    assert report.jobs_checked > 20
    print_experiment(
        "E8 / Thm. 5.1 — timing correctness campaign (embedded deployment)",
        report.table(),
    )


def test_worst_case_burst_respects_bounds(benchmark, embedded_client, embedded_wcet):
    analysis = analyse(embedded_client, embedded_wcet)
    arrivals = burst_at(embedded_client, 30, {"radio": 4, "sample": 1})
    result = benchmark.pedantic(
        simulate, args=(embedded_client, arrivals, embedded_wcet, 6_000),
        kwargs={"durations": WcetDurations()}, rounds=3, iterations=1,
    )
    report = check_timing_correctness(result, analysis)
    assert report.ok
    print_experiment(
        "E8b / Thm. 5.1 — adversarial burst, WCET timing",
        report.table(),
    )

"""E2 (Fig. 5): the scheduler-protocol STS.

Regenerates the protocol evidence: every trace the scheduler emits is
accepted; structurally mutated traces are rejected.  Benchmarks the
acceptance check on long traces (the throughput of ``tr_prot``).
"""

from __future__ import annotations

import random

from conftest import print_experiment
from repro.sim.simulator import UniformDurations, simulate
from repro.sim.workloads import generate_arrivals
from repro.traces.markers import MIdling, MSelection
from repro.traces.protocol import SchedulerProtocol


def long_trace(client, wcet, seed=0, horizon=40_000):
    rng = random.Random(seed)
    arrivals = generate_arrivals(client, horizon=horizon * 3 // 4, rng=rng)
    result = simulate(client, arrivals, wcet, horizon=horizon,
                      durations=UniformDurations(rng))
    return result.timed_trace.trace


def mutate(trace, rng):
    """Apply one structural mutation: drop, duplicate, or swap a marker."""
    trace = list(trace)
    kind = rng.choice(("drop", "dup", "swap"))
    i = rng.randrange(1, len(trace) - 1)
    if kind == "drop":
        del trace[i]
    elif kind == "dup":
        trace.insert(i, trace[i])
    else:
        trace[i], trace[i + 1] = trace[i + 1], trace[i]
    return trace


def test_protocol_accepts_all_and_rejects_mutants(benchmark, typical_client, typical_wcet):
    protocol = typical_client.protocol()
    trace = long_trace(typical_client, typical_wcet)
    assert benchmark(protocol.accepts, trace)

    rng = random.Random(99)
    rejected = 0
    attempts = 60
    for _ in range(attempts):
        if not protocol.accepts(mutate(trace, rng)):
            rejected += 1
    # A few mutations are behaviour-preserving by luck (e.g. swapping
    # identical adjacent markers); the vast majority must be rejected.
    assert rejected >= attempts * 0.8

    decoded = protocol.run(trace)
    body = (
        f"trace length: {len(trace)} markers, decoded into "
        f"{len(decoded)} basic actions\n"
        f"mutation kill rate: {rejected}/{attempts} "
        f"({100 * rejected / attempts:.0f}%)\n"
        f"selection points: {sum(isinstance(m, MSelection) for m in trace)}, "
        f"idling points: {sum(isinstance(m, MIdling) for m in trace)}"
    )
    print_experiment("E2 / Fig. 5 — scheduler protocol STS", body)


def test_benchmark_protocol_acceptance(benchmark, typical_client, typical_wcet):
    protocol = typical_client.protocol()
    trace = long_trace(typical_client, typical_wcet, seed=1)
    accepted = benchmark(protocol.accepts, trace)
    assert accepted


def test_benchmark_protocol_decode(benchmark, typical_client, typical_wcet):
    protocol = typical_client.protocol()
    trace = long_trace(typical_client, typical_wcet, seed=2)
    actions = benchmark(protocol.run, trace)
    assert actions

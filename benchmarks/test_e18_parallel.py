"""E18 (engineering): parallel campaign throughput and determinism.

Runs the same 200-run adequacy campaign serially (``jobs=1``) and on the
process pool (``jobs=4``), asserts the reports are bit-identical (the
determinism contract of :mod:`repro.analysis.parallel`), and records the
wall-clock comparison in ``BENCH_parallel.json`` at the repo root.

The ≥1.5× speedup assertion only fires on machines with at least four
CPUs and a working ``fork`` — on smaller boxes (CI runners, containers)
the numbers are still measured and recorded, but a pool cannot beat the
serial loop without the cores to run it on.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import print_experiment
from repro.analysis.adequacy import run_adequacy_campaign
from repro.analysis.parallel import fork_available

RUNS = 200
JOBS = 4
SEED = 2026
HORIZON = 6_000
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def run_campaign(client, wcet, jobs):
    start = time.perf_counter()
    report = run_adequacy_campaign(
        client, wcet, horizon=HORIZON, runs=RUNS, seed=SEED, jobs=jobs
    )
    return report, time.perf_counter() - start


def test_parallel_campaign_speedup(benchmark, embedded_client, embedded_wcet):
    serial, serial_s = benchmark.pedantic(
        lambda: run_campaign(embedded_client, embedded_wcet, jobs=1),
        rounds=1, iterations=1,
    )
    parallel, parallel_s = run_campaign(embedded_client, embedded_wcet, JOBS)

    # Determinism first: the pool must not change a single cell.
    assert serial.table() == parallel.table()
    assert serial.observed_worst == parallel.observed_worst
    assert serial.violations == parallel.violations
    assert serial.runs == parallel.runs == RUNS
    assert serial.ok

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cpus = os.cpu_count() or 1
    record = {
        "experiment": "E18",
        "runs": RUNS,
        "jobs": JOBS,
        "seed": SEED,
        "horizon": HORIZON,
        "cpu_count": cpus,
        "fork_available": fork_available(),
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(speedup, 3),
        "bit_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print_experiment(
        "E18 — parallel campaign runner",
        f"{RUNS}-run campaign: serial {serial_s:.2f}s, jobs={JOBS} "
        f"{parallel_s:.2f}s — {speedup:.2f}x on {cpus} CPU(s); reports "
        f"bit-identical; recorded in {RESULT_PATH.name}",
    )

    if cpus >= JOBS and fork_available():
        assert speedup >= 1.5, (
            f"expected >=1.5x speedup at jobs={JOBS} on {cpus} CPUs, "
            f"got {speedup:.2f}x"
        )

"""E18 (engineering): parallel campaign throughput and determinism.

Runs the same 200-run adequacy campaign serially (``jobs=1``), on the
fork-per-campaign process pool (``jobs=4``), and twice against a
resident :class:`repro.serve.ResidentPool` (cold dispatch, then warm —
the serve-daemon deployment where fork and engine construction are paid
once per process lifetime, not per campaign).  All variants must be
bit-identical (the determinism contract of
:mod:`repro.analysis.parallel`); the wall-clock comparison lands in
``BENCH_parallel.json`` at the repo root.

Timing comes from the observability span tree (``campaign.adequacy``,
``campaign.worker_init``, ``campaign.chunk``) rather than ad-hoc
``time.time()`` bracketing, which also yields the overhead breakdown:
per-worker setup cost (engine construction in the fork initializer),
per-worker wall-clock chunk occupancy, and the pool's net tax relative
to the serial campaign (fork, pickling outcomes back, IPC).

The ≥1.5× speedup assertion only fires on machines with at least four
CPUs and a working ``fork`` — on smaller boxes (CI runners, containers)
the numbers are still measured and recorded, but a pool cannot beat the
serial loop without the cores to run it on.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from conftest import print_experiment
from repro import obs
from repro.analysis.adequacy import run_adequacy_campaign
from repro.analysis.parallel import fork_available
from repro.serve import ResidentPool

RUNS = 200
JOBS = 4
SEED = 2026
HORIZON = 6_000
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def run_campaign(client, wcet, jobs, pool=None):
    obs.reset()
    report = run_adequacy_campaign(
        client, wcet, horizon=HORIZON, runs=RUNS, seed=SEED, jobs=jobs,
        pool=pool,
    )
    return report, report.elapsed_seconds, obs.snapshot()


def worker_breakdown(snapshot):
    """Fold the merged worker spans into a per-pid overhead breakdown."""
    per_worker: dict[int, dict] = {}
    for record in snapshot.spans:
        if record.name == "campaign.worker_init":
            entry = per_worker.setdefault(
                record.pid,
                {"pid": record.pid, "chunks": 0, "runs": 0,
                 "busy_seconds": 0.0, "init_seconds": 0.0},
            )
            entry["init_seconds"] += record.seconds
        elif record.name == "campaign.chunk":
            entry = per_worker.setdefault(
                record.pid,
                {"pid": record.pid, "chunks": 0, "runs": 0,
                 "busy_seconds": 0.0, "init_seconds": 0.0},
            )
            entry["chunks"] += 1
            entry["runs"] += dict(record.attrs)["runs"]
            entry["busy_seconds"] += record.seconds
    workers = sorted(per_worker.values(), key=lambda w: w["pid"])
    for entry in workers:
        entry["busy_seconds"] = round(entry["busy_seconds"], 4)
        entry["init_seconds"] = round(entry["init_seconds"], 4)
    return workers


def test_parallel_campaign_speedup(benchmark, embedded_client, embedded_wcet):
    obs.enable()
    try:
        serial, serial_s, _ = benchmark.pedantic(
            lambda: run_campaign(embedded_client, embedded_wcet, jobs=1),
            rounds=1, iterations=1,
        )
        parallel, parallel_s, snapshot = run_campaign(
            embedded_client, embedded_wcet, JOBS
        )
        # Resident-pool variant (repro.serve): the same campaign against
        # a pool of long-lived workers.  The first dispatch pays fork +
        # engine construction once; the second runs against warm workers
        # whose memo caches and kernel tables survive between campaigns —
        # the daemon deployment the fork-per-campaign pool cannot model.
        with ResidentPool(JOBS) as pool:
            first, first_s, _ = run_campaign(
                embedded_client, embedded_wcet, JOBS, pool=pool
            )
            warm, warm_s, _ = run_campaign(
                embedded_client, embedded_wcet, JOBS, pool=pool
            )
    finally:
        obs.disable()
        obs.reset()

    assert first.table() == serial.table()
    assert warm.table() == serial.table()

    # Determinism first: the pool must not change a single cell.
    assert serial.table() == parallel.table()
    assert serial.observed_worst == parallel.observed_worst
    assert serial.violations == parallel.violations
    assert serial.runs == parallel.runs == RUNS
    assert serial.ok

    workers = worker_breakdown(snapshot)
    assert sum(w["runs"] for w in workers) == RUNS
    busy_wall_s = sum(w["busy_seconds"] for w in workers)
    init_s = sum(w["init_seconds"] for w in workers)
    # Chunk spans are wall clock, so on a timeshared CPU they include the
    # time a worker sat descheduled mid-chunk: their sum divided by the
    # pool's wall time is the mean number of workers with an open chunk —
    # near `jobs` whether or not they actually computed in parallel.  The
    # pool's real tax (fork, per-worker engine builds, pickling outcomes,
    # IPC) is the wall-clock delta against the serial campaign, since the
    # same 200 runs of compute happen either way.
    mean_open_workers = busy_wall_s / parallel_s if parallel_s > 0 else 0.0
    pool_tax_s = parallel_s - serial_s

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cpus = os.cpu_count() or 1
    record = {
        "experiment": "E18",
        "runs": RUNS,
        "jobs": JOBS,
        "seed": SEED,
        "horizon": HORIZON,
        "cpu_count": cpus,
        "fork_available": fork_available(),
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(speedup, 3),
        "bit_identical": True,
        "warm_pool": {
            "first_seconds": round(first_s, 4),
            "warm_seconds": round(warm_s, 4),
            "speedup_vs_serial": round(
                serial_s / warm_s if warm_s > 0 else float("inf"), 3
            ),
            "bit_identical": True,
        },
        "breakdown": {
            "worker_init_seconds": round(init_s, 4),
            "worker_busy_wall_seconds": round(busy_wall_s, 4),
            "mean_open_workers": round(mean_open_workers, 2),
            "pool_tax_vs_serial_seconds": round(pool_tax_s, 4),
            "per_worker": workers,
        },
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print_experiment(
        "E18 — parallel campaign runner",
        f"{RUNS}-run campaign: serial {serial_s:.2f}s, jobs={JOBS} "
        f"{parallel_s:.2f}s — {speedup:.2f}x on {cpus} CPU(s); breakdown: "
        f"init {init_s:.4f}s, {mean_open_workers:.1f} workers open on "
        f"average, pool tax {pool_tax_s:+.2f}s vs serial; resident pool "
        f"(repro.serve): first {first_s:.2f}s, warm {warm_s:.2f}s "
        f"({serial_s / warm_s if warm_s > 0 else float('inf'):.2f}x vs "
        f"serial); reports bit-identical; recorded in {RESULT_PATH.name}",
    )

    if cpus >= JOBS and fork_available():
        assert speedup >= 1.5, (
            f"expected >=1.5x speedup at jobs={JOBS} on {cpus} CPUs, "
            f"got {speedup:.2f}x"
        )

"""E21 (engineering): analysis-as-a-service throughput and shedding.

Serves a 50-request mixed analyze/verify burst from a warm ``repro
serve`` daemon (resident workers, micro-batching) and compares it
against the same 50 invocations issued as cold CLI subprocesses — the
deployment story the daemon exists to fix: each cold invocation pays
interpreter startup, imports, and engine construction before a single
fixpoint iteration runs, while the daemon pays them once.

Three contracts are asserted and recorded in ``BENCH_serve.json``:

* every daemon response body is byte-identical to the cold CLI stdout
  for the same request (the serve determinism contract);
* the warm daemon beats the cold-CLI baseline by >=5x wall-clock;
* under a deliberate overload burst (workers=1 with a 100 ms analyze
  deadline — meetable only with a near-empty queue) admission control
  sheds load — some 503s, and every admitted request still answers
  byte-identically (zero wrong answers).
"""

from __future__ import annotations

import json
import os
import queue
import subprocess
import sys
import threading
from pathlib import Path
from time import perf_counter

from conftest import print_experiment
from repro.serve import ClassPolicy, ServeClient, ServeConfig, ServerThread

RUNS = 50
WORKERS = 2
CLIENT_THREADS = 8
SEED = 2026
HORIZON = 50_000
OVERLOAD_BURST = 16
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_serve.json"

SPEC = {
    "policy": "npfp",
    "sockets": [0],
    "wcet": {
        "failed_read": 2, "success_read": 2, "selection": 1,
        "dispatch": 1, "completion": 1, "idling": 1,
    },
    "tasks": [
        {
            "name": "a", "priority": 2, "wcet": 10, "type_tag": 1,
            "curve": {"kind": "sporadic", "min_separation": 300},
        },
        {
            "name": "b", "priority": 1, "wcet": 20, "type_tag": 2,
            "curve": {"kind": "leaky-bucket", "burst": 2,
                      "rate_separation": 500},
        },
    ],
}

EDF_SPEC = json.loads(json.dumps(SPEC))
EDF_SPEC["policy"] = "edf"
EDF_SPEC["tasks"][0]["deadline"] = 200
EDF_SPEC["tasks"][1]["deadline"] = 900


def request_mix(spec_path: str, edf_path: str):
    """The 50-request burst: (command, spec, options, cold CLI argv)."""
    shapes = [
        ("analyze", SPEC, {"horizon": HORIZON},
         ["analyze", spec_path, "--horizon", str(HORIZON)]),
        ("analyze", EDF_SPEC, {"horizon": HORIZON},
         ["analyze", edf_path, "--horizon", str(HORIZON)]),
        ("verify", SPEC, {"depth": 2},
         ["verify", spec_path, "--depth", "2"]),
        ("analyze", SPEC, {},
         ["analyze", spec_path]),
    ]
    return [shapes[i % len(shapes)] for i in range(RUNS)]


def run_cold(requests) -> tuple[list[tuple[str, int]], float]:
    """Each request as its own CLI subprocess, serially (the baseline)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    outputs = []
    start = perf_counter()
    for _, _, _, argv in requests:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )
        outputs.append((proc.stdout, proc.returncode))
    return outputs, perf_counter() - start


def run_warm(requests, port: int) -> tuple[list, float]:
    """The same burst against the warm daemon, CLIENT_THREADS clients."""
    work: queue.Queue = queue.Queue()
    for index, (command, spec, options, _) in enumerate(requests):
        work.put((index, command, spec, options))
    responses: list = [None] * len(requests)

    def client_loop():
        client = ServeClient(port=port)
        while True:
            try:
                index, command, spec, options = work.get_nowait()
            except queue.Empty:
                return
            responses[index] = client.call(command, spec, options)

    threads = [
        threading.Thread(target=client_loop) for _ in range(CLIENT_THREADS)
    ]
    start = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return responses, perf_counter() - start


def run_overload(expected_stdout: str) -> dict:
    """Burst a deliberately under-provisioned daemon; count the sheds."""
    # 100ms deadline vs a 50ms seed cost (quantized up to 64ms): the
    # backlog bound admits only near-empty queues, so a synchronised
    # burst of OVERLOAD_BURST serves a few and sheds the rest.
    config = ServeConfig(
        port=0, workers=1, max_batch=1,
        policies=(ClassPolicy("analyze", 3, deadline_ms=100,
                              default_cost_ms=50),),
    )
    statuses: list = [None] * OVERLOAD_BURST
    with ServerThread(config) as srv:
        barrier = threading.Barrier(OVERLOAD_BURST)

        def burst(index):
            client = ServeClient(port=srv.port)
            barrier.wait()
            status, payload = client.call("analyze", SPEC,
                                          {"horizon": HORIZON})
            statuses[index] = (status, payload)

        threads = [
            threading.Thread(target=burst, args=(i,))
            for i in range(OVERLOAD_BURST)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    served = sum(1 for status, _ in statuses if status == 200)
    shed = sum(1 for status, _ in statuses if status == 503)
    wrong = sum(
        1 for status, payload in statuses
        if status == 200 and payload["stdout"] != expected_stdout
    )
    assert served + shed == OVERLOAD_BURST
    assert shed >= 1, "overload burst was fully admitted: admission inert"
    assert served >= 1, "overload burst was fully shed: admission too eager"
    assert wrong == 0, f"{wrong} admitted responses diverged from the CLI"
    return {
        "burst": OVERLOAD_BURST,
        "served": served,
        "shed": shed,
        "wrong_answers": wrong,
    }


def test_serve_burst_speedup(benchmark, tmp_path):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(SPEC))
    edf_path = tmp_path / "edf.json"
    edf_path.write_text(json.dumps(EDF_SPEC))
    requests = request_mix(str(spec_path), str(edf_path))

    cold, cold_s = benchmark.pedantic(
        lambda: run_cold(requests), rounds=1, iterations=1,
    )

    with ServerThread(ServeConfig(port=0, workers=WORKERS)) as srv:
        # Warm-up: one request of each shape, untimed — fills the worker
        # memo caches and engine cache the way a deployed daemon's are.
        warm_client = ServeClient(port=srv.port)
        for command, spec, options, _ in requests[:4]:
            status, _ = warm_client.call(command, spec, options)
            assert status == 200
        responses, warm_s = run_warm(requests, srv.port)

    # Byte-identity first: the daemon must not change a single byte.
    assert all(response is not None for response in responses)
    for (stdout, returncode), (status, payload) in zip(cold, responses):
        assert status == 200
        assert payload["stdout"] == stdout
        assert payload["exit_code"] == returncode

    shed = run_overload(expected_stdout=cold[0][0])

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    per_command: dict[str, int] = {}
    for command, _, _, _ in requests:
        per_command[command] = per_command.get(command, 0) + 1
    record = {
        "experiment": "E21",
        "runs": RUNS,
        "jobs": WORKERS,
        "seed": SEED,
        "horizon": HORIZON,
        "client_threads": CLIENT_THREADS,
        "cpu_count": os.cpu_count() or 1,
        "per_command": per_command,
        "serial_seconds": round(cold_s, 4),
        "parallel_seconds": round(warm_s, 4),
        "speedup": round(speedup, 3),
        "bit_identical": True,
        "shed": shed,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print_experiment(
        "E21 — analysis-as-a-service daemon",
        f"{RUNS}-request mixed burst ({per_command}): cold CLI "
        f"{cold_s:.2f}s, warm daemon (workers={WORKERS}, "
        f"{CLIENT_THREADS} clients) {warm_s:.2f}s — {speedup:.2f}x; "
        f"all responses byte-identical to the offline CLI; overload "
        f"burst of {shed['burst']} vs workers=1/100ms deadline: "
        f"{shed['served']} served, {shed['shed']} shed (503), "
        f"{shed['wrong_answers']} wrong answers; recorded in "
        f"{RESULT_PATH.name}",
    )

    assert speedup >= 5.0, (
        f"warm daemon must beat cold CLI by >=5x, got {speedup:.2f}x"
    )

"""E23 (engineering): the codegen engine vs the optimised VM.

A model-checking-shaped workload: the Fig. 3 two-task client driven
over 2,048 success-heavy depth-11 environment scripts (the first slice
of the ``product`` enumeration over a 3-letter alphabet whose first
two letters are deliverable messages, so most reads succeed and the
pure-MiniC dispatch work dominates).  ``vm-opt`` decodes one opcode at
a time; codegen compiled the same program to Python once, so the per-
instruction interpretive overhead disappears while the cost model and
marker trace stay exact.

Two assertions before any clock is trusted:

* the full model checker (``explore_with_engine``) produces an
  identical report under both engines at a modest depth — same script
  count, same marker count, same (empty) violation list; and
* a sampled subset of the timed script corpus yields byte-identical
  marker traces under both engines.

Then the sweep is timed bare (``engine.run`` per script, no checker
battery — the checkers are engine-independent and would only dilute
the number being gated) and the record lands in ``BENCH_codegen.json``
at the repo root, checked by ``check_bench_regression.py``.
``serial_seconds`` is the *vm-opt* sweep so the gate keeps guarding
the interpreter rung too.
"""

from __future__ import annotations

import json
import os
from itertools import islice, product
from pathlib import Path

from conftest import print_experiment
from repro.engine import create_engine
from repro.rossl.env import ScriptedEnvironment
from repro.rossl.runtime import TraceRecorder
from repro.verification.model_check import explore_with_engine

SCRIPT_DEPTH = 11
SCRIPT_COUNT = 2048
TRACE_SAMPLE_STRIDE = 64  # every 64th timed script gets a trace diff
EXPLORE_DEPTH = 4
JOBS = 1
SEED = 0  # the enumeration is deterministic; kept for the gate's config check
FUEL = 100_000
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_codegen.json"

# Success-first alphabet: tags 1 and 2 are the two deployed tasks, so
# the product enumeration's first 2,048 scripts are dominated by
# deliverable messages (deep queues, long dispatch chains) rather than
# failed reads.
ALPHABET = ((1, 3), (2, 4), None)


def scripts():
    return [
        list(s)
        for s in islice(product(ALPHABET, repeat=SCRIPT_DEPTH), SCRIPT_COUNT)
    ]


def sweep(engine, corpus):
    for script in corpus:
        engine.run(ScriptedEnvironment(list(script)), TraceRecorder(), fuel=FUEL)


def test_codegen_vs_vm_opt_script_sweep(benchmark, fig3_client):
    corpus = scripts()
    vm = create_engine("vm-opt", fig3_client)
    gen = create_engine("codegen", fig3_client)

    # Identity through the full model checker first: both engines must
    # hand the checker battery the exact same world.
    payloads = [list(p) for p in ALPHABET if p is not None]
    report_vm = explore_with_engine(
        fig3_client, payloads, max_reads=EXPLORE_DEPTH, engine=vm, fuel=FUEL
    )
    report_gen = explore_with_engine(
        fig3_client, payloads, max_reads=EXPLORE_DEPTH, engine=gen, fuel=FUEL
    )
    assert report_gen.scripts_explored == report_vm.scripts_explored
    assert report_gen.markers_observed == report_vm.markers_observed
    assert report_gen.max_trace_length == report_vm.max_trace_length
    assert report_vm.violations == [] and report_gen.violations == []

    # ...and byte-identical traces on a sample of the timed corpus.
    for script in corpus[::TRACE_SAMPLE_STRIDE]:
        trace_vm = vm.run_to_trace(ScriptedEnvironment(list(script)), fuel=FUEL)
        trace_gen = gen.run_to_trace(ScriptedEnvironment(list(script)), fuel=FUEL)
        assert trace_gen == trace_vm, script
    bit_identical = True

    _, vm_s = benchmark.pedantic(
        lambda: _timed(lambda: sweep(vm, corpus)),
        rounds=1, iterations=1,
    )
    _, gen_s = _timed(lambda: sweep(gen, corpus))

    speedup = vm_s / gen_s if gen_s > 0 else float("inf")
    record = {
        "experiment": "E23",
        "runs": SCRIPT_COUNT,
        "jobs": JOBS,
        "seed": SEED,
        "horizon": FUEL,
        "cpu_count": os.cpu_count() or 1,
        "script_depth": SCRIPT_DEPTH,
        # the gate compares "serial_seconds": for E23 that is the
        # vm-opt sweep, the rung codegen has to beat
        "serial_seconds": round(vm_s, 4),
        "codegen_seconds": round(gen_s, 4),
        "speedup": round(speedup, 3),
        "bit_identical": bit_identical,
        "explore": {
            "depth": EXPLORE_DEPTH,
            "scripts": report_gen.scripts_explored,
            "markers": report_gen.markers_observed,
        },
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print_experiment(
        "E23 — MiniC codegen engine",
        f"{SCRIPT_COUNT} depth-{SCRIPT_DEPTH} scripts (fuel {FUEL:,}): "
        f"vm-opt {vm_s:.2f}s, codegen {gen_s:.3f}s — {speedup:.1f}x; "
        f"model-checker reports and sampled traces byte-identical; "
        f"recorded in {RESULT_PATH.name}",
    )

    # Codegen removes the per-opcode decode loop entirely; even on a
    # noisy box the success-heavy sweep must clearly beat vm-opt.
    assert speedup >= 5.0, (
        f"expected codegen to beat vm-opt by >=5x, got {speedup:.2f}x "
        f"(vm-opt {vm_s:.3f}s, codegen {gen_s:.3f}s)"
    )


def _timed(thunk):
    import time

    start = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - start

"""E4 (Defs. 2.1, 2.2): timed-trace consistency and per-state WCET
validity.

Regenerates the validity evidence: the checkers pass on honest runs and
detect injected faults (tampered timestamps violate the WCET assumption;
tampered arrivals violate consistency; stretched schedule segments
violate the Def. 2.2 state bounds).  Benchmarks all three checkers.
"""

from __future__ import annotations

import random

import pytest

from conftest import print_experiment
from repro.schedule.validity import ScheduleValidityError, check_schedule_validity
from repro.sim.simulator import UniformDurations, simulate
from repro.sim.workloads import generate_arrivals
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import (
    ConsistencyError,
    TimedTrace,
    check_consistency,
)
from repro.timing.wcet import WcetError, check_wcet_respected


def honest_run(client, wcet, seed=0, horizon=30_000):
    rng = random.Random(seed)
    arrivals = generate_arrivals(client, horizon=horizon * 3 // 4, rng=rng)
    return simulate(client, arrivals, wcet, horizon=horizon,
                    durations=UniformDurations(rng))


def test_checkers_pass_and_catch_faults(benchmark, typical_client, typical_wcet):
    result = honest_run(typical_client, typical_wcet)
    timed = result.timed_trace

    benchmark(check_consistency, timed, result.arrivals)
    check_wcet_respected(timed, typical_client.tasks, typical_wcet)
    check_schedule_validity(
        result.schedule(), typical_client.tasks, typical_wcet,
        typical_client.num_sockets,
    )

    # Fault 1: stretch one execution interval past its WCET.
    exec_index = next(
        i for i, m in enumerate(timed.trace)
        if type(m).__name__ == "MExecution"
    )
    tampered_ts = list(timed.ts)
    bump = 100_000
    for k in range(exec_index + 1, len(tampered_ts)):
        tampered_ts[k] += bump
    tampered = TimedTrace.make(timed.trace, tampered_ts, timed.horizon + bump)
    with pytest.raises(WcetError):
        check_wcet_respected(tampered, typical_client.tasks, typical_wcet)

    # Fault 2: claim a job arrived later than it was read.
    moved = ArrivalSequence(
        [Arrival(a.time + 20_000, a.sock, a.data) for a in result.arrivals]
    )
    with pytest.raises(ConsistencyError):
        check_consistency(timed, moved)

    body = (
        f"honest run: {len(timed)} markers, {len(result.arrivals)} arrivals "
        "— consistency, WCETs, schedule validity all pass\n"
        "fault injection: stretched Exec interval → WcetError; "
        "shifted arrivals → ConsistencyError"
    )
    print_experiment("E4 / Defs. 2.1 & 2.2 — validity checkers", body)


def test_benchmark_consistency_check(benchmark, typical_client, typical_wcet):
    result = honest_run(typical_client, typical_wcet, seed=1)
    benchmark(check_consistency, result.timed_trace, result.arrivals)


def test_benchmark_wcet_check(benchmark, typical_client, typical_wcet):
    result = honest_run(typical_client, typical_wcet, seed=2)
    benchmark(
        check_wcet_respected, result.timed_trace, typical_client.tasks,
        typical_wcet,
    )


def test_benchmark_schedule_validity(benchmark, typical_client, typical_wcet):
    result = honest_run(typical_client, typical_wcet, seed=3)
    schedule = result.schedule()
    benchmark(
        check_schedule_validity, schedule, typical_client.tasks,
        typical_wcet, typical_client.num_sockets,
    )

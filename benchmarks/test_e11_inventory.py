"""E11 (section 5, proof-effort table): the component inventory.

The paper reports its Rocq development broken into components (a)–(g)
with line counts.  We cannot reproduce Rocq line counts; the analog is
this repository's inventory in the same shape: each paper component
mapped to the module(s) that substitute for it, with measured LoC.
"""

from __future__ import annotations

from pathlib import Path

from conftest import print_experiment
from repro.analysis.report import format_table

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: paper component → (paper LoC, our substituting subpackages/modules)
COMPONENTS = [
    ("(a) trace-instrumented semantics", 2_150,
     ["lang/tokens.py", "lang/lexer.py", "lang/parser.py", "lang/syntax.py",
      "lang/typecheck.py", "lang/values.py", "lang/heap.py",
      "lang/interp.py", "lang/builtins.py", "lang/errors.py"]),
    ("(b) Rössl C source", 300, ["rossl/source.py"]),
    ("(c) specifications of Rössl", 615, ["verification/specs.py", "traces/validity.py"]),
    ("(d) trace-property verification", 4_300,
     ["verification/model_check.py", "verification/monitor.py", "traces/protocol.py"]),
    ("(e) marker traces → timed processor states", 12_350,
     ["timing", "traces/markers.py", "traces/basic_actions.py", "traces/pending.py"]),
    ("(f) timed states → schedules", 11_700, ["schedule"]),
    ("(g) the RTA (SBF, jitter, aRSA)", 4_000, ["rta"]),
    ("— runtime substrate (scheduler model, sockets, sim)", None,
     ["rossl/runtime.py", "rossl/env.py", "rossl/client.py", "sim"]),
    ("— end-to-end adequacy & experiments", None, ["analysis"]),
    ("— EXT: compiled-code cost semantics & WCET toolchain", None,
     ["lang/compile.py", "lang/vm.py", "lang/cost.py", "lang/generator.py",
      "lang/pretty.py", "rossl/vmtiming.py"]),
    ("— EXT: EDF policy transfer", None, ["edf"]),
    ("— EXT: deployment specs & CLI", None, ["config.py", "cli.py"]),
]


def count_loc(relative: str) -> int:
    path = SRC / relative
    if path.is_file():
        files = [path]
    else:
        files = sorted(path.rglob("*.py"))
    return sum(
        1
        for f in files
        for line in f.read_text().splitlines()
        if line.strip()
    )


def test_inventory_table(benchmark):
    def build():
        rows = []
        for name, paper_loc, modules in COMPONENTS:
            ours = sum(count_loc(m) for m in modules)
            rows.append((name, paper_loc, ", ".join(modules), ours))
        return rows

    rows = benchmark(build)
    total_paper = sum(r[1] for r in rows if r[1])
    total_ours = sum(r[3] for r in rows)
    rows.append(("TOTAL", total_paper, "", total_ours))
    print_experiment(
        "E11 / section 5 — component inventory (paper Rocq LoC vs. this repo)",
        format_table(["component", "paper LoC", "our modules", "our LoC"], rows),
    )
    # Every mapped component exists and is non-trivial.
    for name, _, modules, ours in rows[:-1]:
        assert ours > 50, f"component {name} looks empty ({ours} LoC)"

"""E9 (section 2.4 claim): jitter magnitude in a typical deployment.

The paper: "In a typical deployment of Rössl, the jitter bound amounts
to just a few microseconds and thus does not undermine the final
response-time bounds, which are typically on the order of tens to
hundreds of milliseconds."  Regenerated here on the µs-granularity
middleware deployment: J is tens of µs, bounds are ms, and the ratio is
well below 1%.
"""

from __future__ import annotations

from conftest import print_experiment
from repro.analysis.report import format_table
from repro.rta.npfp import analyse

MS = 1_000


def test_jitter_is_negligible_in_typical_deployment(
    benchmark, typical_client, typical_wcet
):
    analysis = benchmark.pedantic(
        analyse, args=(typical_client, typical_wcet), rounds=3, iterations=1
    )
    assert analysis.schedulable
    jitter = analysis.jitter.bound

    rows = []
    for task in typical_client.tasks:
        bound = analysis.response_time_bound(task.name)
        rows.append(
            (
                task.name,
                f"{jitter} µs",
                f"{bound / MS:.3f} ms",
                f"{jitter / bound:.2e}",
            )
        )
        assert jitter / bound < 0.01, "jitter must not undermine the bound"

    assert jitter < 100, "a typical deployment's jitter stays in the tens of µs"
    print_experiment(
        "E9 / section 2.4 — release jitter vs. response-time bounds",
        format_table(["task", "jitter J", "bound R+J", "J/R ratio"], rows),
    )

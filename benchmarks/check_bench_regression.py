"""Benchmark regression gate: compare a fresh E18 record against the
committed baseline.

Usage::

    python benchmarks/check_bench_regression.py BASELINE FRESH [--tolerance R]

The E18 benchmark (benchmarks/test_e18_parallel.py) rewrites
``BENCH_parallel.json`` in place, so CI stashes the committed copy
before running it and hands both files here.  The gate is deliberately
generous — CI runners are noisy timeshared boxes — and checks:

* the campaign *configuration* is unchanged (experiment, runs, jobs,
  seed, horizon): a silent config edit would make every timing
  comparison meaningless;
* the fresh run kept the determinism contract (``bit_identical``) and
  its per-worker run counts still sum to the campaign total;
* fresh ``serial_seconds`` is within ``--tolerance``× the baseline
  (default 4×) — catching order-of-magnitude slowdowns, not jitter.

A *missing* baseline file is not a failure: the first run of a new
benchmark (E19's ``BENCH_cache.json``, say) has nothing committed yet,
so the gate records the fresh run and passes — "record, don't fail".

Exit code 0 on pass, 1 on regression, 2 on unusable input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Campaign-configuration keys that must match exactly.
CONFIG_KEYS = ("experiment", "runs", "jobs", "seed", "horizon")


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    missing = [k for k in CONFIG_KEYS + ("serial_seconds",) if k not in record]
    if missing:
        print(f"error: {path} is missing keys: {missing}", file=sys.stderr)
        raise SystemExit(2)
    return record


def compare(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """Returns the list of failures (empty: the gate passes)."""
    failures = []
    for key in CONFIG_KEYS:
        if baseline[key] != fresh[key]:
            failures.append(
                f"campaign config drifted: {key} was {baseline[key]!r}, "
                f"now {fresh[key]!r}"
            )
    if not fresh.get("bit_identical", False):
        failures.append("fresh run is not bit-identical across jobs=1/jobs=N")
    workers = fresh.get("breakdown", {}).get("per_worker", [])
    if workers:
        total = sum(w.get("runs", 0) for w in workers)
        if total != fresh["runs"]:
            failures.append(
                f"per-worker run counts sum to {total}, campaign ran "
                f"{fresh['runs']}"
            )
    limit = baseline["serial_seconds"] * tolerance
    if fresh["serial_seconds"] > limit:
        failures.append(
            f"serial wall-clock regressed: {fresh['serial_seconds']:.3f}s "
            f"> {tolerance:.1f}x baseline ({baseline['serial_seconds']:.3f}s)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_parallel.json")
    parser.add_argument("fresh", help="BENCH_parallel.json from this run")
    parser.add_argument(
        "--tolerance", type=float, default=4.0,
        help="allowed serial_seconds ratio fresh/baseline (default: 4.0)",
    )
    args = parser.parse_args(argv)
    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")
    if not os.path.exists(args.baseline):
        # First run of a new benchmark: nothing committed to compare
        # against.  Validate the fresh record and pass.
        fresh = load(args.fresh)
        print(f"no committed baseline at {args.baseline}: recording "
              f"fresh run only (serial {fresh['serial_seconds']:.3f}s)")
        print("benchmark gate: ok (record, don't fail)")
        return 0
    baseline, fresh = load(args.baseline), load(args.fresh)

    ratio = fresh["serial_seconds"] / max(baseline["serial_seconds"], 1e-9)
    print(f"baseline serial: {baseline['serial_seconds']:.3f}s")
    print(f"fresh serial:    {fresh['serial_seconds']:.3f}s  ({ratio:.2f}x)")
    print(f"fresh parallel:  {fresh.get('parallel_seconds', '?')}s "
          f"(speedup {fresh.get('speedup', '?')}, "
          f"{fresh.get('cpu_count', '?')} CPUs)")

    failures = compare(baseline, fresh, args.tolerance)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("benchmark gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

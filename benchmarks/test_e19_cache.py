"""E19 (engineering): persistent result cache, cold vs warm.

Runs the same adequacy campaign twice through a persistent
:class:`repro.cache.ResultStore` — cold (empty directory) and warm (a
*fresh* store instance over the same directory, so every answer really
came off disk) — and asserts the two reports are byte-identical in both
their text table and JSON forms while the warm run answers everything
from the cache.  Wall clocks and the measured speedup land in
``BENCH_cache.json`` at the repo root (checked by
``check_bench_regression.py``, which treats a missing committed baseline
as "record, don't fail").

The memo step cache is reset by the campaign boundary itself
(:func:`repro.rta.curves.memo_cache_clear` inside
``run_adequacy_campaign``), so the cold run cannot borrow warm in-process
state from earlier tests in this pytest process.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from conftest import print_experiment
from repro import obs
from repro.analysis.adequacy import run_adequacy_campaign
from repro.cache import ResultStore

RUNS = 120
JOBS = 1
SEED = 2026
HORIZON = 6_000
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cache.json"


def run_campaign(client, wcet, store):
    obs.reset()
    report = run_adequacy_campaign(
        client, wcet, horizon=HORIZON, runs=RUNS, seed=SEED, jobs=JOBS,
        cache=store,
    )
    return report, report.elapsed_seconds


def test_cache_cold_vs_warm(benchmark, embedded_client, embedded_wcet, tmp_path):
    cache_dir = tmp_path / "cache"
    obs.enable()
    try:
        cold_store = ResultStore(cache_dir)
        cold, cold_s = benchmark.pedantic(
            lambda: run_campaign(embedded_client, embedded_wcet, cold_store),
            rounds=1, iterations=1,
        )
        # A fresh store instance over the same directory: the warm run's
        # answers must come from disk, not from in-process state.
        warm_store = ResultStore(cache_dir)
        warm, warm_s = run_campaign(embedded_client, embedded_wcet, warm_store)
    finally:
        obs.disable()
        obs.reset()

    # Determinism first: warm must not change a single byte.
    assert cold.table() == warm.table()
    assert cold.to_json() == warm.to_json()
    assert cold.runs == warm.runs == RUNS
    assert cold.ok

    # The warm run answered everything from the store: the analysis plus
    # every campaign run, with nothing recomputed or rewritten.
    assert warm_store.hits == RUNS + 1
    assert warm_store.misses == 0
    assert cold_store.misses == RUNS + 1
    assert warm_store.stats().corrupt == 0

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    record = {
        "experiment": "E19",
        "runs": RUNS,
        "jobs": JOBS,
        "seed": SEED,
        "horizon": HORIZON,
        "cpu_count": os.cpu_count() or 1,
        # the gate compares "serial_seconds": for E19 that is the cold
        # (fully computing) campaign
        "serial_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "speedup": round(speedup, 3),
        "bit_identical": True,
        "cache": {
            "entries": warm_store.stats().entries,
            "bytes": warm_store.stats().bytes,
            "cold_misses": cold_store.misses,
            "warm_hits": warm_store.hits,
        },
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print_experiment(
        "E19 — persistent result cache",
        f"{RUNS}-run campaign: cold {cold_s:.2f}s, warm {warm_s:.3f}s — "
        f"{speedup:.1f}x; {warm_store.hits} warm hits, 0 misses; reports "
        f"byte-identical (text and JSON); recorded in {RESULT_PATH.name}",
    )

    # A warm campaign does no simulation and no fixpoint search; even on
    # a noisy box it must clearly beat the cold run.
    assert speedup >= 2.0, (
        f"expected the warm run to beat cold by >=2x, got {speedup:.2f}x "
        f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s)"
    )

"""E13 (extension, paper §2.3 and §6): WCETs from a cost semantics.

The paper assumes basic-action WCETs "determined experimentally or by
static analysis" and conjectures (§6, VeriRT comparison) the approach
extends to compiled code.  This experiment makes both concrete:

1. compile Rössl to bytecode and run it on the VM, whose instruction
   counter is a cost semantics (timestamps = executed instructions);
2. derive the WCET model by measurement over stress runs (Zolda-Kirner
   style), and bound the scheduler helpers *statically* with the cost
   analyzer (loop bounds from the arrival curves' max backlog);
3. run the overhead-aware RTA on the derived model and validate its
   bounds against fresh VM-timed executions.
"""

from __future__ import annotations

from conftest import print_experiment
from repro.analysis.report import format_table
from repro.lang.cost import CostAnalyzer
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.source import rossl_source
from repro.rossl.vmtiming import measure_wcet_model, simulate_vm
from repro.rta.curves import LeakyBucketCurve, SporadicCurve
from repro.rta.npfp import analyse
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import job_arrival_times


def vm_client() -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="lo", priority=1, wcet=10, type_tag=1),
            Task(name="hi", priority=2, wcet=10, type_tag=2),
        ],
        {
            "lo": SporadicCurve(6_000),
            "hi": LeakyBucketCurve(burst=2, rate_separation=5_000),
        },
    )
    return RosslClient.make(tasks, sockets=[0])


def burst(client, at, jobs):
    out, serial = [], 0
    for name, count in jobs.items():
        tag = client.tasks.by_name(name).type_tag
        for _ in range(count):
            out.append(Arrival(at, client.sockets[0], (tag, serial)))
            serial += 1
    return ArrivalSequence(out)


def test_cost_semantics_pipeline(benchmark):
    client = vm_client()

    def pipeline():
        stress = [
            simulate_vm(client, burst(client, 300, {"lo": 1, "hi": 2}), 40_000),
            simulate_vm(client, burst(client, 1_500, {"lo": 1, "hi": 2}), 40_000),
            simulate_vm(client, ArrivalSequence([]), 10_000),
        ]
        measured = measure_wcet_model(stress, margin=1.5)
        tasks = measured.tasks_with_measured_wcets(client.tasks)
        derived = RosslClient.make(tasks, client.sockets)
        analysis = analyse(derived, measured.wcet)
        return measured, derived, analysis

    measured, derived, analysis = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    assert analysis.schedulable

    # Static bounds for the scheduler helpers (max backlog 3 = curve max).
    typed = typecheck(parse_program(rossl_source(client)))
    analyzer = CostAnalyzer(
        typed, {"npfp_enqueue": [3], "npfp_dequeue": [3, 3]}
    )
    static_dequeue = analyzer.call_cost("npfp_dequeue")
    # The measured Selection interval is the dequeue plus loop glue; the
    # static helper bound must dominate the dominant part.
    assert measured.wcet.selection <= static_dequeue + 20

    # Validation on fresh arrivals.
    violations = 0
    checked = 0
    worst_ratio = 0.0
    for at in (700, 2_300, 4_100):
        arrivals = burst(derived, at, {"lo": 1, "hi": 2})
        run = simulate_vm(derived, arrivals, 60_000)
        completions = run.timed_trace.completions()
        for job, t_arr in job_arrival_times(run.timed_trace, arrivals).items():
            name = derived.tasks.msg_to_task(job.data).name
            bound = analysis.response_time_bound(name)
            done = completions.get(job)
            checked += 1
            if done is None or done - t_arr > bound:
                violations += 1
            else:
                worst_ratio = max(worst_ratio, (done - t_arr) / bound)
    assert violations == 0

    rows = [
        ("WcetFR (measured, ×1.5)", measured.wcet.failed_read),
        ("WcetSR", measured.wcet.success_read),
        ("WcetSel", measured.wcet.selection),
        ("static npfp_dequeue bound (Q=3)", static_dequeue),
        ("WcetDisp", measured.wcet.dispatch),
        ("WcetCompl", measured.wcet.completion),
        ("WcetIdling", measured.wcet.idling),
        ("C_lo / C_hi (measured)",
         f"{measured.exec_maxima['lo']} / {measured.exec_maxima['hi']}"),
        ("R+J bound: lo / hi (instructions)",
         f"{analysis.response_time_bound('lo')} / "
         f"{analysis.response_time_bound('hi')}"),
        ("jobs validated on fresh runs", checked),
        ("bound violations", violations),
        ("worst observed/bound ratio", f"{worst_ratio:.3f}"),
    ]
    print_experiment(
        "E13 — WCETs from the VM cost semantics, closed loop to the RTA",
        format_table(["quantity", "value (VM instructions)"], rows),
    )

"""E22 (engineering): distributed campaign fabric — kill, resume, verify.

Three phases over the embedded deployment:

1. **serial** — the uninterrupted single-process campaign, timed: the
   reference for both bytes and wall clock;
2. **interrupted populate** — a 3-worker fabric campaign with a seeded
   ``kill -9`` (worker 0 dies at its first claim), stealing disabled and
   a one-round budget, so the kill genuinely leaves a gap: the survivors'
   outcomes land in the store, the dead worker's shard stays missing;
3. **warm resume** — a fresh 3-worker fabric over the same store, timed:
   it recomputes only the missing shard (in parallel) and must reproduce
   the serial report byte-for-byte.

The record lands in ``BENCH_dist.json`` (gated by
``check_bench_regression.py``: config drift, ``bit_identical``, and a
generous wall-clock tolerance on ``serial_seconds``).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from conftest import print_experiment
from repro import obs
from repro.analysis.adequacy import run_adequacy_campaign
from repro.cache import ResultStore
from repro.dist import FabricConfig, KillSpec

RUNS = 96
WORKERS = 3
SEED = 2026
HORIZON = 20_000
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dist.json"


def run_campaign(client, wcet, store=None, fabric=None):
    obs.reset()
    report = run_adequacy_campaign(
        client, wcet, horizon=HORIZON, runs=RUNS, seed=SEED,
        cache=store, fabric=fabric,
    )
    return report, report.elapsed_seconds


def test_dist_kill_resume_vs_serial(
    benchmark, embedded_client, embedded_wcet, tmp_path
):
    from repro.analysis.parallel import fork_available

    if not fork_available():  # pragma: no cover - non-POSIX runner
        import pytest

        pytest.skip("the fabric benchmark needs fork-based workers")

    serial, serial_s = benchmark.pedantic(
        lambda: run_campaign(embedded_client, embedded_wcet),
        rounds=1, iterations=1,
    )
    assert serial.ok and serial.runs == RUNS

    store = ResultStore(tmp_path / "cache")
    interrupted, _ = run_campaign(
        embedded_client, embedded_wcet, store=store,
        fabric=FabricConfig(
            workers=WORKERS,
            kill=KillSpec(worker=0, event="claim", occurrence=1),
            steal=False, max_rounds=1,
        ),
    )
    missing_after_kill = len(interrupted.shard_failures)
    assert missing_after_kill > 0, "the kill must leave a visible gap"
    assert interrupted.runs == RUNS - missing_after_kill

    # Resume through a *fresh* store instance: everything it skips truly
    # came off disk, everything it computes goes through the fabric.
    resumed, resume_s = run_campaign(
        embedded_client, embedded_wcet,
        store=ResultStore(tmp_path / "cache"),
        fabric=FabricConfig(workers=WORKERS),
    )

    # Determinism first: the resumed report must not differ by one byte.
    assert resumed.table() == serial.table()
    assert json.dumps(resumed.to_json(), sort_keys=True) == json.dumps(
        serial.to_json(), sort_keys=True
    )
    assert not resumed.shard_failures

    speedup = serial_s / resume_s if resume_s > 0 else float("inf")
    record = {
        "experiment": "E22",
        "runs": RUNS,
        "jobs": WORKERS,
        "seed": SEED,
        "horizon": HORIZON,
        "cpu_count": os.cpu_count() or 1,
        "serial_seconds": round(serial_s, 4),
        "resume_seconds": round(resume_s, 4),
        "speedup": round(speedup, 3),
        "bit_identical": True,
        "dist": {
            "workers": WORKERS,
            "missing_after_kill": missing_after_kill,
            "cached_after_kill": RUNS - missing_after_kill,
        },
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print_experiment(
        "E22 — distributed campaign fabric",
        f"{RUNS}-run campaign, {WORKERS} workers, worker 0 killed at its "
        f"first claim: {missing_after_kill} run(s) lost, resume recomputed "
        f"only those — serial {serial_s:.2f}s vs resume {resume_s:.3f}s "
        f"({speedup:.1f}x); reports byte-identical (text and JSON); "
        f"recorded in {RESULT_PATH.name}",
    )

    # The resume recomputes ~1/WORKERS of the campaign with WORKERS
    # processes; even a noisy box clears 1.8x against the serial run.
    assert speedup >= 1.8, (
        f"expected warm multi-worker resume to beat serial by >=1.8x, "
        f"got {speedup:.2f}x (serial {serial_s:.3f}s, resume {resume_s:.3f}s)"
    )

"""E16 (motivation, §1): the wait-set construction bug class.

The paper's introduction cites two refuted ROS2 response-time analyses
(Teper et al.): the flaw was not the analysis but the *system model* —
the executor's wait set was constructed differently than modelled, and a
task could starve despite a "proven" bound.

This experiment reproduces the bug class and shows RefinedProsa's layers
catch it:

* a **wait-set-buggy scheduler** that silently stops polling one socket
  (the job is in the system, never in the wait set);
* the **scheduler protocol** (Fig. 5) rejects its trace immediately — an
  incomplete polling pass is simply not a run of the verified STS;
* without that check, the victim job *starves*: its pending time grows
  with the horizon while the analysis would still claim a finite bound —
  exactly the failure mode the introduction warns about.
"""

from __future__ import annotations

from conftest import print_experiment
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.env import QueueEnvironment
from repro.rossl.runtime import RosslModel, TeeSink, TraceRecorder
from repro.rta.curves import SporadicCurve
from repro.sim.simulator import TimedDriver, WcetDurations
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.wcet import WcetModel
from repro.traces.markers import MReadE, MReadS, MSelection
from repro.traces.protocol import ProtocolError
from repro.verification.monitor import OnlineMonitor

WCET = WcetModel(
    failed_read=2, success_read=3, selection=2, dispatch=2, completion=2,
    idling=2,
)


class WaitSetBuggyRossl(RosslModel):
    """Polls only the first socket: jobs on other sockets never enter
    the wait set (the Teper-style modelling/implementation mismatch)."""

    def _check_sockets_until_empty(self, env, sink) -> None:
        while True:
            any_success = False
            sock = self.sockets[0]  # BUG: the other sockets are skipped
            sink.emit(MReadS())
            data = env.read(sock)
            if data is None:
                sink.emit(MReadE(sock, None))
            else:
                job = self.trace_state.record_read(tuple(data))
                self._queue.append(job)
                any_success = True
                sink.emit(MReadE(sock, job))
            if not any_success:
                return


def two_socket_client() -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="busy", priority=2, wcet=10, type_tag=1),
            Task(name="victim", priority=1, wcet=5, type_tag=2),
        ],
        {"busy": SporadicCurve(60), "victim": SporadicCurve(500)},
    )
    return RosslClient.make(tasks, sockets=[0, 1])


def victim_workload(horizon: int) -> ArrivalSequence:
    arrivals = [Arrival(5, 1, (2, 99))]  # the victim, on socket 1
    t = 10
    serial = 0
    while t < horizon:
        arrivals.append(Arrival(t, 0, (1, serial)))  # steady socket-0 work
        serial += 1
        t += 60
    return ArrivalSequence(arrivals)


def test_protocol_catches_the_bug(benchmark):
    client = two_socket_client()

    def run_with_monitor():
        model = WaitSetBuggyRossl(client.sockets, client.tasks)
        monitor = OnlineMonitor(client.sockets, client.tasks.priority_of)
        env = QueueEnvironment(client.sockets)
        env.inject(0, (1, 0))
        try:
            model.run(env, TeeSink(TraceRecorder(), monitor), max_iterations=3)
        except ProtocolError as exc:
            return exc
        return None

    caught = benchmark.pedantic(run_with_monitor, rounds=3, iterations=1)
    assert caught is not None, "the protocol must reject the buggy trace"
    assert caught.index <= 4, "rejection happens within the first pass"
    print_experiment(
        "E16a — the scheduler protocol rejects the wait-set bug",
        f"buggy polling (socket 1 never read) rejected at marker "
        f"{caught.index}: {caught}",
    )


def test_starvation_without_the_check(benchmark):
    client = two_socket_client()

    def starvation_curve():
        rows = []
        for horizon in (1_000, 2_000, 4_000, 8_000):
            model = WaitSetBuggyRossl(client.sockets, client.tasks)
            driver = TimedDriver(
                client, victim_workload(horizon), WCET, horizon,
                WcetDurations(),
            )
            model.run(driver, driver)
            victim_done = any(
                type(m).__name__ == "MCompletion" and m.job.data[0] == 2
                for m in driver.trace
            )
            busy_completions = sum(
                1 for m in driver.trace
                if type(m).__name__ == "MCompletion" and m.job.data[0] == 1
            )
            rows.append((horizon, busy_completions, victim_done))
        return rows

    rows = benchmark.pedantic(starvation_curve, rounds=1, iterations=1)
    # The busy task keeps completing; the victim never does.
    assert all(not done for _, _, done in rows)
    assert rows[-1][1] > rows[0][1] > 0

    from repro.analysis.report import format_table

    print_experiment(
        "E16b — starvation under the wait-set bug (no protocol check)",
        format_table(
            ["horizon", "busy-task completions", "victim completed?"], rows,
        )
        + "\n\nthe victim (arrived at t=5) starves at every horizon while the"
        "\nanalysis would still claim a finite bound — the modelling mismatch"
        "\nthe introduction cites, made impossible here by Thm. 3.4's checks",
    )


def test_correct_scheduler_serves_the_victim(benchmark):
    client = two_socket_client()

    def run_correct():
        driver = TimedDriver(
            client, victim_workload(2_000), WCET, 2_000, WcetDurations()
        )
        client.model().run(driver, driver)
        return [
            t for m, t in zip(driver.trace, driver.timestamps)
            if type(m).__name__ == "MCompletion" and m.job.data[0] == 2
        ]

    completions = benchmark.pedantic(run_correct, rounds=3, iterations=1)
    assert completions, "the verified scheduler serves the victim promptly"
    print_experiment(
        "E16c — the verified scheduler serves the same workload",
        f"victim (arrived t=5) completes at t={completions[0]}",
    )

"""E10 (motivation, sections 1.1/6): overhead-aware vs. overhead-
oblivious analysis.

The experiment that justifies the paper: on a deployment where
scheduler overheads are comparable to callback WCETs, the classic
overhead-oblivious NPFP bound is *unsafe* — an adversarial (but
curve-conformant) burst produces observed response times above it —
while the overhead-aware bound of RefinedProsa holds.  As overheads
shrink (the tick-based regime ProKOS assumes), the two analyses
converge: the crossover.
"""

from __future__ import annotations

from conftest import print_experiment
from repro.analysis.report import format_table
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.baselines import ideal_npfp_bound
from repro.rta.curves import LeakyBucketCurve, SporadicCurve
from repro.rta.npfp import analyse
from repro.sim.simulator import WcetDurations, simulate
from repro.sim.workloads import burst_at
from repro.timing.arrivals import ArrivalSequence
from repro.timing.wcet import WcetModel


def scaled_wcet(scale: int) -> WcetModel:
    """Scheduler-path overheads scaled up from a near-negligible base."""
    return WcetModel(
        failed_read=1 + scale, success_read=1 + 2 * scale,
        selection=max(1, scale), dispatch=max(1, scale),
        completion=max(1, scale), idling=max(1, scale),
    )


def worst_burst_response(client, wcet, task_name: str) -> int:
    burst = burst_at(client, 50, {"radio": 4}, sock=1)
    probe = burst_at(client, 49, {"sample": 1}, sock=0)
    arrivals = ArrivalSequence(list(burst) + list(probe))
    result = simulate(client, arrivals, wcet, horizon=20_000,
                      durations=WcetDurations())
    worst = 0
    for job, (_, _, response) in result.response_times().items():
        if client.tasks.msg_to_task(job.data).name == task_name:
            worst = max(worst, response)
    return worst


def test_crossover_table(benchmark, embedded_client):
    def build_rows():
        rows = []
        for scale in (1, 2, 4, 6):
            wcet = scaled_wcet(scale)
            analysis = analyse(embedded_client, wcet)
            assert analysis.schedulable
            naive = ideal_npfp_bound(embedded_client, "sample")
            aware = analysis.response_time_bound("sample")
            observed = worst_burst_response(embedded_client, wcet, "sample")
            rows.append((scale, naive, aware, observed,
                         "UNSAFE" if observed > naive else "ok"))
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        ["overhead scale", "naive bound", "aware bound", "observed worst",
         "naive verdict"],
        rows,
    )
    print_experiment(
        "E10 — overhead-aware vs. overhead-oblivious bounds ('sample' task)",
        table,
    )
    # Shape of the paper's motivation: the naive analysis becomes unsafe
    # once overheads are non-negligible, while the aware bound holds.
    by_scale = {row[0]: row for row in rows}
    assert by_scale[6][3] > by_scale[6][1], "large overheads break the naive bound"
    for _, naive, aware, observed, _ in rows:
        assert observed <= aware, "the overhead-aware bound must always hold"
        assert aware >= naive, "awareness never yields a smaller bound"

"""E15 (extension): tightness of the overhead-aware bounds.

Soundness alone is cheap (∞ is a sound bound); the paper's analysis is
valuable because the bounds are actionable.  This experiment measures
the observed-response/bound distribution over randomized campaigns on
the embedded deployment: every ratio ≤ 1 (soundness re-confirmed), with
adversarial bursts pushing the max ratio well above the median — the
bounds are exercised, not vacuous.
"""

from __future__ import annotations

from conftest import print_experiment
from repro.analysis.tightness import TightnessStudy, run_tightness_study
from repro.sim.simulator import WcetDurations, simulate
from repro.sim.workloads import burst_at
from repro.rta.npfp import analyse


def test_tightness_distribution(benchmark, embedded_client, embedded_wcet):
    study = benchmark.pedantic(
        run_tightness_study,
        args=(embedded_client, embedded_wcet),
        kwargs={"horizon": 8_000, "runs": 14, "seed": 5, "intensity": 1.3},
        rounds=1, iterations=1,
    )
    assert study.worst <= 1.0
    assert study.jobs > 30

    # Adversarial burst to anchor the upper tail.
    analysis = analyse(embedded_client, embedded_wcet)
    arrivals = burst_at(embedded_client, 30, {"radio": 4, "sample": 1})
    result = simulate(embedded_client, arrivals, embedded_wcet, 6_000,
                      durations=WcetDurations())
    burst_worst = 0.0
    for job, (_, _, response) in result.response_times().items():
        name = embedded_client.tasks.msg_to_task(job.data).name
        burst_worst = max(
            burst_worst, response / analysis.response_time_bound(name)
        )
    assert 0 < burst_worst <= 1.0

    body = (
        study.table()
        + f"\n\nadversarial burst worst ratio: {burst_worst:.3f}"
        + "\n(every ratio ≤ 1: soundness; the spread below 1 is the price of"
        + "\n worst-case guarantees — WCET timing, burst arrivals, carry-in)"
    )
    print_experiment("E15 — tightness of the overhead-aware bounds", body)

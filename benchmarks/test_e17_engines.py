"""E17 (engineering): execution-engine throughput on the Rössl workload.

Compares the three ways this reproduction can execute the C scheduler —
the definitional interpreter (the verification semantics), the bytecode
VM (the cost semantics), and the peephole-optimized VM — on an identical
read-outcome script.  All three emit the same marker trace; the
comparison is wall-clock throughput and (for the VMs) executed
instruction counts, quantifying the cost of each level of semantic
fidelity.
"""

from __future__ import annotations

import random

from conftest import print_experiment
from repro.analysis.report import format_table
from repro.lang.compile import compile_program
from repro.lang.errors import OutOfFuel
from repro.lang.interp import run_program
from repro.lang.optimize import optimize_program
from repro.lang.vm import VM
from repro.rossl.env import HorizonReached, ScriptedEnvironment
from repro.rossl.runtime import TraceRecorder
from repro.rossl.source import build_rossl


def make_script(client, length=400, seed=3):
    rng = random.Random(seed)
    tags = [t.type_tag for t in client.tasks.tasks]
    return [
        None if rng.random() < 0.6 else (rng.choice(tags), rng.randrange(50))
        for _ in range(length)
    ]


def run_interp(typed, script):
    recorder = TraceRecorder()
    try:
        run_program(typed, ScriptedEnvironment(script), recorder,
                    fuel=10_000_000)
    except (OutOfFuel, HorizonReached):
        pass
    return recorder.trace


def run_vm(compiled, script):
    recorder = TraceRecorder()
    vm = VM(compiled, ScriptedEnvironment(script), recorder, fuel=50_000_000)
    try:
        vm.call("main", [])
    except (OutOfFuel, HorizonReached):
        pass
    return recorder.trace, vm.executed


def test_engines_agree(benchmark, fig3_client):
    typed = build_rossl(fig3_client)
    plain = compile_program(typed)
    optimized = optimize_program(plain)
    script = make_script(fig3_client, length=150)

    def run_all():
        return (
            run_interp(typed, script),
            run_vm(plain, script),
            run_vm(optimized, script),
        )

    trace_interp, (trace_vm, cost_vm), (trace_opt, cost_opt) = (
        benchmark.pedantic(run_all, rounds=1, iterations=1)
    )
    assert trace_interp == trace_vm == trace_opt
    assert cost_opt <= cost_vm
    print_experiment(
        "E17a — engine agreement",
        f"{len(trace_interp)} markers identical across interpreter, VM, "
        f"optimized VM; instructions: VM {cost_vm}, optimized {cost_opt} "
        f"({100 * (cost_vm - cost_opt) / cost_vm:.1f}% saved)",
    )


def test_benchmark_interpreter(benchmark, fig3_client):
    typed = build_rossl(fig3_client)
    script = make_script(fig3_client)
    trace = benchmark(run_interp, typed, script)
    assert trace


def test_benchmark_vm(benchmark, fig3_client):
    compiled = compile_program(build_rossl(fig3_client))
    script = make_script(fig3_client)
    trace, _ = benchmark(run_vm, compiled, script)
    assert trace


def test_benchmark_optimized_vm(benchmark, fig3_client):
    compiled = optimize_program(compile_program(build_rossl(fig3_client)))
    script = make_script(fig3_client)
    trace, _ = benchmark(run_vm, compiled, script)
    assert trace


def test_benchmark_python_reference_model(benchmark, fig3_client):
    script = make_script(fig3_client)

    def run_model():
        return fig3_client.model().run_to_trace(ScriptedEnvironment(script))

    trace = benchmark(run_model)
    assert trace

"""E17 (engineering): execution-engine throughput on the Rössl workload.

Compares the five registered execution engines — the Python reference
model, the definitional interpreter (the verification semantics), the
bytecode VM (the cost semantics), the peephole-optimized VM, and the
Python-codegen engine (the VM's cost semantics compiled to native
Python, experiment E23) — on an identical read-outcome script, all
built through the engine registry (:mod:`repro.engine`).  All emit the
same marker trace; the comparison is wall-clock throughput and (for
the counted engines) executed instruction counts, quantifying the cost
of each level of semantic fidelity.
"""

from __future__ import annotations

import random

from conftest import print_experiment
from repro.engine import create_engine, engine_names
from repro.rossl.env import ScriptedEnvironment
from repro.rossl.runtime import TraceRecorder


def make_script(client, length=400, seed=3):
    rng = random.Random(seed)
    tags = [t.type_tag for t in client.tasks.tasks]
    return [
        None if rng.random() < 0.6 else (rng.choice(tags), rng.randrange(50))
        for _ in range(length)
    ]


def run_engine(engine, script):
    recorder = TraceRecorder()
    stats = engine.run(ScriptedEnvironment(list(script)), recorder,
                       fuel=50_000_000)
    return recorder.trace, stats.instructions


def test_engines_agree(benchmark, fig3_client):
    engines = {
        name: create_engine(name, fig3_client) for name in engine_names()
    }
    script = make_script(fig3_client, length=150)

    def run_all():
        return {name: run_engine(e, script) for name, e in engines.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    reference = results["python"][0]
    for name, (trace, _) in results.items():
        assert trace == reference, f"engine {name} diverged"
    cost_vm = results["vm"][1]
    cost_opt = results["vm-opt"][1]
    assert cost_opt <= cost_vm
    # Codegen compiles the *unoptimized* program, so its instruction
    # clock must land exactly on the plain VM's.
    assert results["codegen"][1] == cost_vm
    print_experiment(
        "E17a — engine agreement",
        f"{len(reference)} markers identical across "
        f"{', '.join(engine_names())}; instructions: VM {cost_vm}, "
        f"optimized {cost_opt} "
        f"({100 * (cost_vm - cost_opt) / cost_vm:.1f}% saved)",
    )


def test_benchmark_interpreter(benchmark, fig3_client):
    engine = create_engine("interp", fig3_client)
    script = make_script(fig3_client)
    trace, _ = benchmark(run_engine, engine, script)
    assert trace


def test_benchmark_vm(benchmark, fig3_client):
    engine = create_engine("vm", fig3_client)
    script = make_script(fig3_client)
    trace, _ = benchmark(run_engine, engine, script)
    assert trace


def test_benchmark_optimized_vm(benchmark, fig3_client):
    engine = create_engine("vm-opt", fig3_client)
    script = make_script(fig3_client)
    trace, _ = benchmark(run_engine, engine, script)
    assert trace


def test_benchmark_codegen(benchmark, fig3_client):
    engine = create_engine("codegen", fig3_client)
    script = make_script(fig3_client)
    trace, _ = benchmark(run_engine, engine, script)
    assert trace


def test_benchmark_python_reference_model(benchmark, fig3_client):
    engine = create_engine("python", fig3_client)
    script = make_script(fig3_client)
    trace, _ = benchmark(run_engine, engine, script)
    assert trace

"""E20 (engineering): the step-table RTA kernel vs the legacy scans.

A divergent-heavy sweep — three of the eight cells are overloaded, so
the legacy path's busy-window search extends its supply bound function
one Δ at a time all the way to the analysis horizon before giving up.
The kernel compiles every curve to a breakpoint array and builds SBF
segments in bulk, so the same divergent cells cost O(#breakpoints)
instead of O(horizon).

Asserts the kernel sweep returns byte-identical analysis rows and
beats the legacy sweep by >= 5x, then records both wall clocks in
``BENCH_rta_kernel.json`` at the repo root (checked by
``check_bench_regression.py``; a missing committed baseline records
rather than fails).  ``serial_seconds`` is the *legacy* sweep so the
gate keeps guarding the fallback path's performance too.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from conftest import print_experiment
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import LeakyBucketCurve, SporadicCurve, TableCurve
from repro.rta.npfp import analyse, analyse_batch
from repro.timing.wcet import WcetModel

SEPARATIONS = (90, 110, 130, 150, 180, 220, 300, 420)
JOBS = 1
SEED = 0  # the sweep is deterministic; kept for the gate's config check
HORIZON = 120_000
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_rta_kernel.json"

WCET = WcetModel(
    failed_read=6, success_read=9, selection=5, dispatch=4,
    completion=4, idling=5,
)


def deploy(separation: int) -> tuple[RosslClient, WcetModel]:
    tasks = TaskSystem(
        [
            Task(name="sample", priority=1, wcet=60, type_tag=1),
            Task(name="radio", priority=2, wcet=45, type_tag=2),
            Task(name="log", priority=3, wcet=30, type_tag=3),
        ],
        {
            "sample": SporadicCurve(separation),
            "radio": LeakyBucketCurve(burst=3, rate_separation=2 * separation),
            "log": TableCurve(
                steps=((1, 1), (separation, 3)),
                tail_separation=4 * separation,
            ),
        },
    )
    return RosslClient.make(tasks, sockets=[0]), WCET


def test_kernel_vs_legacy_divergent_sweep(benchmark):
    from repro.rta.kernel import clear_fallback_info, fallback_info

    cells = [deploy(separation) for separation in SEPARATIONS]
    clear_fallback_info()

    legacy, legacy_s = benchmark.pedantic(
        lambda: _timed(lambda: [
            analyse(client, wcet, HORIZON, kernel=False)
            for client, wcet in cells
        ]),
        rounds=1, iterations=1,
    )
    fast, fast_s = _timed(lambda: analyse_batch(cells, HORIZON, kernel=True))

    # Determinism first: the kernel must not change a single byte.
    assert [a.rows() for a in fast] == [a.rows() for a in legacy]
    assert [a.jitter for a in fast] == [a.jitter for a in legacy]
    # Every E20 curve is a shipped staircase class: if the kernel fell
    # back to the legacy path even once, the "kernel sweep" above timed
    # the wrong code and the speedup is fiction.
    assert fallback_info() == (), fallback_info()
    divergent = sum(1 for a in legacy if not a.schedulable)
    assert divergent >= 3, (
        f"workload drifted: expected >=3 divergent cells, got {divergent}"
    )

    speedup = legacy_s / fast_s if fast_s > 0 else float("inf")
    record = {
        "experiment": "E20",
        "runs": len(SEPARATIONS),
        "jobs": JOBS,
        "seed": SEED,
        "horizon": HORIZON,
        "cpu_count": os.cpu_count() or 1,
        # the gate compares "serial_seconds": for E20 that is the
        # legacy (per-Δ scanning) sweep
        "serial_seconds": round(legacy_s, 4),
        "kernel_seconds": round(fast_s, 4),
        "speedup": round(speedup, 3),
        "bit_identical": True,
        "cells": {
            "total": len(SEPARATIONS),
            "divergent": divergent,
        },
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print_experiment(
        "E20 — step-table RTA kernel",
        f"{len(SEPARATIONS)}-cell sweep ({divergent} divergent, horizon "
        f"{HORIZON:,}): legacy {legacy_s:.2f}s, kernel {fast_s:.3f}s — "
        f"{speedup:.1f}x; analysis rows byte-identical; recorded in "
        f"{RESULT_PATH.name}",
    )

    # The kernel skips the per-Δ supply scan entirely; even on a noisy
    # box the divergent cells must clearly beat the legacy path.
    assert speedup >= 5.0, (
        f"expected the kernel to beat the legacy path by >=5x, got "
        f"{speedup:.2f}x (legacy {legacy_s:.3f}s, kernel {fast_s:.3f}s)"
    )


def _timed(thunk):
    import time

    start = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - start

"""Shared deployments for the experiment benchmarks (see DESIGN.md §4).

Two canonical deployments:

* ``typical`` — a µs-granularity middleware deployment (ROS2-executor
  regime): scheduler overheads of a few µs, callback WCETs of ms.
* ``embedded`` — a microcontroller-class node where overheads are
  comparable to the callbacks (the regime that stresses the analysis).
"""

from __future__ import annotations

import pytest

from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import LeakyBucketCurve, SporadicCurve
from repro.timing.wcet import WcetModel

MS = 1_000


@pytest.fixture(scope="session")
def typical_client() -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="telemetry", priority=1, wcet=3 * MS, type_tag=1),
            Task(name="lidar", priority=2, wcet=8 * MS, type_tag=2),
            Task(name="control", priority=3, wcet=1 * MS, type_tag=3),
            Task(name="estop", priority=4, wcet=200, type_tag=4),
        ],
        {
            "telemetry": SporadicCurve(100 * MS),
            "lidar": SporadicCurve(25 * MS),
            "control": SporadicCurve(10 * MS),
            "estop": LeakyBucketCurve(burst=2, rate_separation=500 * MS),
        },
    )
    return RosslClient.make(tasks, sockets=[0, 1, 2, 3])


@pytest.fixture(scope="session")
def typical_wcet() -> WcetModel:
    return WcetModel(
        failed_read=2, success_read=4, selection=2, dispatch=2,
        completion=2, idling=2,
    )


@pytest.fixture(scope="session")
def embedded_client() -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="sample", priority=1, wcet=40, type_tag=1),
            Task(name="radio", priority=2, wcet=25, type_tag=2),
        ],
        {
            "sample": SporadicCurve(1_000),
            "radio": LeakyBucketCurve(burst=4, rate_separation=800),
        },
    )
    return RosslClient.make(tasks, sockets=[0, 1])


@pytest.fixture(scope="session")
def embedded_wcet() -> WcetModel:
    return WcetModel(
        failed_read=6, success_read=9, selection=5, dispatch=4,
        completion=4, idling=5,
    )


@pytest.fixture(scope="session")
def fig3_client() -> RosslClient:
    """The paper's Fig. 3 setting: two tasks, one socket, j2 ≻ j1."""
    tasks = TaskSystem(
        [
            Task(name="t1", priority=1, wcet=12, type_tag=1),
            Task(name="t2", priority=2, wcet=8, type_tag=2),
        ],
        {"t1": SporadicCurve(200), "t2": SporadicCurve(200)},
    )
    return RosslClient.make(tasks, sockets=[0])


@pytest.fixture(scope="session")
def fig3_wcet() -> WcetModel:
    return WcetModel(
        failed_read=3, success_read=5, selection=2, dispatch=2,
        completion=2, idling=3,
    )


def print_experiment(title: str, body: str) -> None:
    """Uniform experiment output block (survives in bench_output.txt)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")

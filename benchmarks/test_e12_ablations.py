"""E12 (ablations): sensitivity of the response-time bound to the
design parameters the analysis accounts for.

Sweeps the three levers the paper's accounting makes explicit:

* number of sockets (polling overhead and jitter grow with it),
* scheduler-path WCET scale (overhead inflation),
* workload burstiness (arrival-curve shape).

Checks the expected monotone shapes and benchmarks the analysis itself.
"""

from __future__ import annotations

from conftest import print_experiment
from repro.analysis.campaigns import sweep
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import LeakyBucketCurve, SporadicCurve
from repro.rta.jitter import jitter_bound
from repro.rta.npfp import analyse
from repro.timing.wcet import WcetModel

BASE_WCET = WcetModel(
    failed_read=2, success_read=3, selection=2, dispatch=2,
    completion=2, idling=2,
)


def client_with(sockets: int, burst: int = 1) -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="bg", priority=1, wcet=60, type_tag=1),
            Task(name="fg", priority=2, wcet=20, type_tag=2),
        ],
        {
            "bg": SporadicCurve(2_000),
            "fg": LeakyBucketCurve(burst=burst, rate_separation=1_000),
        },
    )
    return RosslClient.make(tasks, sockets=list(range(sockets)))


def test_sweep_sockets(benchmark):
    def evaluate(n):
        client = client_with(n)
        analysis = analyse(client, BASE_WCET)
        assert analysis.schedulable
        return (
            jitter_bound(BASE_WCET, n).bound,
            analysis.response_time_bound("fg"),
            analysis.response_time_bound("bg"),
        )

    result = benchmark.pedantic(
        sweep, args=("sockets", [1, 2, 4, 8], ["jitter J", "R_fg", "R_bg"],
                     evaluate),
        rounds=1, iterations=1,
    )
    print_experiment("E12a — bound vs. number of sockets", result.table())
    for metric in ("jitter J", "R_fg", "R_bg"):
        column = result.column(metric)
        assert all(b >= a for a, b in zip(column, column[1:])), (
            f"{metric} must grow with socket count"
        )


def test_sweep_overhead_scale(benchmark):
    def evaluate(scale):
        wcet = WcetModel(
            failed_read=2 * scale, success_read=3 * scale,
            selection=2 * scale, dispatch=2 * scale,
            completion=2 * scale, idling=2 * scale,
        )
        client = client_with(2)
        analysis = analyse(client, wcet)
        assert analysis.schedulable
        return (
            analysis.jitter.bound,
            analysis.response_time_bound("fg"),
        )

    result = benchmark.pedantic(
        sweep, args=("overhead ×", [1, 2, 3, 5], ["jitter J", "R_fg"], evaluate),
        rounds=1, iterations=1,
    )
    print_experiment("E12b — bound vs. scheduler-path WCET scale", result.table())
    column = result.column("R_fg")
    assert all(b > a for a, b in zip(column, column[1:]))


def test_sweep_burstiness(benchmark):
    def evaluate(burst):
        client = client_with(2, burst=burst)
        analysis = analyse(client, BASE_WCET)
        assert analysis.schedulable
        return (
            analysis.response_time_bound("fg"),
            analysis.response_time_bound("bg"),
        )

    result = benchmark.pedantic(
        sweep, args=("fg burst", [1, 2, 3, 4], ["R_fg", "R_bg"], evaluate),
        rounds=1, iterations=1,
    )
    print_experiment("E12c — bound vs. workload burstiness", result.table())
    for metric in ("R_fg", "R_bg"):
        column = result.column(metric)
        assert all(b >= a for a, b in zip(column, column[1:]))


def test_benchmark_full_analysis(benchmark):
    client = client_with(4, burst=2)
    analysis = benchmark(analyse, client, BASE_WCET)
    assert analysis.schedulable

"""E3 (Thm. 3.4): bounded model check of the C implementation.

Regenerates the adequacy evidence on the MiniC Rössl: every sequence of
read outcomes up to the depth bound executes without undefined behaviour
and yields a trace satisfying the scheduler protocol, functional
correctness, and the marker specs.  Benchmarks the per-depth cost.
"""

from __future__ import annotations

from conftest import print_experiment
from repro.verification.model_check import explore


def test_exhaustive_exploration_clean(benchmark, fig3_client):
    payloads = [(1, 0), (2, 0)]
    lines = []
    reports = {}

    def sweep_depths():
        for depth in (3, 4, 5):
            reports[depth] = explore(fig3_client, payloads, max_reads=depth,
                                     implementation="minic")
        return reports

    benchmark.pedantic(sweep_depths, rounds=1, iterations=1)
    for depth in (3, 4, 5):
        report = reports[depth]
        assert report.ok, report.violations[:1]
        lines.append(
            f"depth {depth}: {report.scripts_explored} executions, "
            f"{report.markers_observed} markers, longest trace "
            f"{report.max_trace_length} — OK"
        )
    # The Python reference model agrees at the deepest bound.
    ref = explore(fig3_client, payloads, max_reads=5, implementation="python")
    assert ref.ok
    lines.append(f"python reference model at depth 5: {ref.summary()}")
    print_experiment(
        "E3 / Thm. 3.4 — bounded adequacy model check (MiniC semantics)",
        "\n".join(lines),
    )


def test_benchmark_model_check_depth3(benchmark, fig3_client):
    report = benchmark(
        explore, fig3_client, [(1, 0), (2, 0)], 3, "minic"
    )
    assert report.ok

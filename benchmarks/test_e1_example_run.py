"""E1 (Fig. 3): the example run of Rössl with two jobs on one socket.

Regenerates the figure's timeline: j1 arrives first, j2 (higher
priority) arrives while j1 is being read; Rössl reads both, stops
polling after an all-fail pass, executes j2 first, then j1, then idles.
Benchmarks the simulation path that produces such runs.
"""

from __future__ import annotations

from conftest import print_experiment
from repro.schedule.conversion import convert
from repro.sim.simulator import WcetDurations, simulate
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.traces.markers import MCompletion, MDispatch, MReadE


def fig3_arrivals(client):
    """j1 (low) at t=1; j2 (high) lands while j1's read is in flight."""
    return ArrivalSequence(
        [
            Arrival(1, 0, (1, 1)),  # j1: task t1
            Arrival(4, 0, (2, 2)),  # j2: task t2, arrives during j1's read
        ]
    )


def run_fig3(client, wcet):
    return simulate(
        client, fig3_arrivals(client), wcet, horizon=120,
        durations=WcetDurations(),
    )


def test_fig3_order_and_timeline(benchmark, fig3_client, fig3_wcet):
    result = benchmark.pedantic(run_fig3, args=(fig3_client, fig3_wcet), rounds=3, iterations=1)
    trace, ts = result.timed_trace.trace, result.timed_trace.ts

    reads = [(m.job, t) for m, t in zip(trace, ts)
             if isinstance(m, MReadE) and m.job is not None]
    assert [job.data for job, _ in reads] == [(1, 1), (2, 2)]

    dispatch_order = [m.job.data for m in trace if isinstance(m, MDispatch)]
    assert dispatch_order == [(2, 2), (1, 1)], "j2 must run before j1"

    responses = result.response_times()
    schedule = convert(result.timed_trace, fig3_client.sockets)
    from repro.schedule.render import render_timeline

    lines = ["schedule of processor states (paper Fig. 3 timeline):"]
    lines.append(render_timeline(schedule, width=72))
    lines.append("")
    for segment in schedule:
        lines.append(f"  {segment}")
    lines.append("")
    lines.append("response times:")
    for job, (arr, done, resp) in sorted(
        responses.items(), key=lambda kv: kv[1][0]
    ):
        name = fig3_client.tasks.msg_to_task(job.data).name
        lines.append(
            f"  {name} {job}: arrived {arr}, completed {done}, response {resp}"
        )
    print_experiment("E1 / Fig. 3 — example run with two jobs on one socket",
                     "\n".join(lines))

    # j2 (read second, higher priority) must complete before j1.
    completion = {m.job.data: t for m, t in zip(trace, ts)
                  if isinstance(m, MCompletion)}
    assert completion[(2, 2)] < completion[(1, 1)]


def test_benchmark_fig3_simulation(benchmark, fig3_client, fig3_wcet):
    result = benchmark(run_fig3, fig3_client, fig3_wcet)
    assert len(result.timed_trace) > 10

"""E14 (extension, paper §6): the EDF policy transfer.

ProKOS — the closest related work — verifies both FP and EDF; the paper
notes parts of RefinedProsa transfer to other policies.  This experiment
exercises the transfer: the *same* scheduler core runs EDF by carrying
absolute deadlines in message payloads (priority = −deadline), and a
demand-bound schedulability test under the same jitter/SBF machinery
analyzes it.

Regenerated shapes:

* a deadline-inversion workload where NPFP (static priorities) misses a
  deadline that EDF meets — the classic motivation for EDF;
* the schedulability frontier: sweeping the deadline scale, the test
  flips from schedulable to unschedulable monotonically;
* zero deadline misses across simulations whenever the test passes.
"""

from __future__ import annotations

from conftest import print_experiment
from repro.analysis.report import format_table
from repro.edf import deadline_of, edf_analysis, with_deadline_payloads
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import SporadicCurve
from repro.sim.simulator import WcetDurations, simulate
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import job_arrival_times
from repro.timing.wcet import WcetModel

WCET = WcetModel(
    failed_read=2, success_read=2, selection=1, dispatch=1, completion=1, idling=1
)


def clients(deadline_scale: float = 1.0):
    """The same task set under NPFP and EDF.  Priorities are *inverted*
    relative to urgency: the long-deadline task has the higher static
    priority — the situation EDF handles and fixed priorities do not."""
    d_urgent = max(30, round(60 * deadline_scale))
    d_lazy = max(60, round(900 * deadline_scale))
    tasks = TaskSystem(
        [
            Task(name="urgent", priority=1, wcet=12, type_tag=1, deadline=d_urgent),
            Task(name="lazy", priority=2, wcet=60, type_tag=2, deadline=d_lazy),
        ],
        {"urgent": SporadicCurve(300), "lazy": SporadicCurve(400)},
    )
    npfp = RosslClient.make(tasks, [0], policy="npfp")
    edf = RosslClient.make(tasks, [0], policy="edf")
    return npfp, edf


def inversion_workload(client):
    """lazy and urgent arrive together: static priorities run lazy
    first; EDF runs urgent first."""
    base = ArrivalSequence(
        [Arrival(20, 0, (2, 77)), Arrival(20, 0, (1, 88))]
    )
    return with_deadline_payloads(base, client.tasks)


def misses(client, arrivals, horizon=3_000):
    result = simulate(client, arrivals, WCET, horizon=horizon,
                      durations=WcetDurations())
    completions = result.timed_trace.completions()
    missed = []
    for job, t_arr in job_arrival_times(result.timed_trace, arrivals).items():
        deadline = deadline_of(job.data)
        done = completions.get(job)
        if done is None or done > deadline:
            missed.append((client.tasks.msg_to_task(job.data).name, t_arr))
    return missed


def test_deadline_inversion(benchmark):
    npfp, edf = clients()
    arrivals = inversion_workload(edf)

    def run_both():
        return misses(npfp, arrivals), misses(edf, arrivals)

    npfp_misses, edf_misses = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert npfp_misses, "the static-priority schedule must miss 'urgent'"
    assert not edf_misses, "EDF must meet every deadline here"
    analysis = edf_analysis(edf, WCET)
    body = (
        f"workload: urgent (C=12, D=60) and lazy (C=60, D=900) arrive together;\n"
        f"static priorities favour lazy.\n"
        f"NPFP deadline misses: {npfp_misses}\n"
        f"EDF deadline misses:  {edf_misses or 'none'}\n"
        f"EDF schedulability test: schedulable={analysis.schedulable}, "
        f"jitter J={analysis.jitter.bound}, busy bound={analysis.busy_bound}"
    )
    print_experiment("E14a — deadline inversion: EDF vs. static priorities", body)


def test_schedulability_frontier(benchmark):
    def sweep_scales():
        rows = []
        for scale in (0.3, 0.6, 1.0, 2.0, 3.0):
            _, edf = clients(scale)
            result = edf_analysis(edf, WCET)
            rows.append((scale, result.schedulable, result.failing_window))
        return rows

    rows = benchmark.pedantic(sweep_scales, rounds=1, iterations=1)
    verdicts = [r[1] for r in rows]
    # Monotone frontier: once schedulable, scaling deadlines up keeps it so.
    first_ok = verdicts.index(True)
    assert all(verdicts[first_ok:])
    assert not all(verdicts), "the sweep must cross the frontier"
    print_experiment(
        "E14b — EDF schedulability frontier over the deadline scale",
        format_table(["deadline scale", "schedulable", "failing window"], rows),
    )


def test_no_misses_when_schedulable(benchmark):
    import random

    from repro.sim.workloads import generate_arrivals

    _, edf = clients(3.0)
    analysis = edf_analysis(edf, WCET)
    assert analysis.schedulable

    def campaign():
        total = 0
        for seed in range(6):
            rng = random.Random(seed)
            base = generate_arrivals(edf, horizon=2_000, rng=rng, intensity=1.0)
            arrivals = with_deadline_payloads(base, edf.tasks)
            assert not misses(edf, arrivals, horizon=4_000)
            total += len(arrivals)
        return total

    jobs = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print_experiment(
        "E14c — EDF adequacy campaign",
        f"{jobs} jobs across 6 randomized runs: zero deadline misses "
        f"(test verdict: schedulable)",
    )

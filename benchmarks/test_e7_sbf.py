"""E7 (section 4.4): the supply bound function.

Regenerates the SBF series ``SBF(Δ)`` for the embedded deployment and
validates it empirically: over heavily loaded simulated schedules, the
measured minimum supply in *any* window of length Δ dominates SBF(Δ).
Also checks the two structural properties aRSA requires: SBF(0) = 0 and
monotonicity.
"""

from __future__ import annotations

import random

from conftest import print_experiment
from repro.analysis.report import format_table
from repro.rta.npfp import analyse
from repro.schedule.metrics import min_supply_over_windows
from repro.sim.simulator import WcetDurations, simulate
from repro.sim.workloads import generate_arrivals

DELTAS = (1, 50, 100, 200, 400, 800, 1500, 3000)


def test_sbf_series_vs_measured_supply(benchmark, embedded_client, embedded_wcet):
    analysis = benchmark.pedantic(
        analyse, args=(embedded_client, embedded_wcet), rounds=3, iterations=1
    )
    sbf = analysis.sbf
    assert sbf(0) == 0
    values = [sbf(d) for d in range(0, 3001)]
    assert all(b >= a for a, b in zip(values, values[1:])), "SBF must be monotone"

    # Measured minimum supply over all windows, across adversarial runs.
    measured: dict[int, int] = {d: 10**9 for d in DELTAS}
    for seed in range(4):
        rng = random.Random(seed)
        arrivals = generate_arrivals(
            embedded_client, horizon=3_000, rng=rng, intensity=1.5
        )
        result = simulate(
            embedded_client, arrivals, embedded_wcet, horizon=4_000,
            durations=WcetDurations(),
        )
        schedule = result.schedule()
        for delta in DELTAS:
            if delta <= schedule.duration:
                measured[delta] = min(
                    measured[delta], min_supply_over_windows(schedule, delta)
                )

    rows = []
    for delta in DELTAS:
        m = measured[delta] if measured[delta] < 10**9 else None
        rows.append((delta, sbf(delta), m))
        if m is not None:
            assert sbf(delta) <= m, (
                f"SBF({delta}) = {sbf(delta)} exceeds measured min supply {m}"
            )
    table = format_table(
        ["Δ", "SBF(Δ)", "measured min supply"], rows,
    )
    print_experiment(
        "E7 / section 4.4 — supply bound function vs. measured supply", table
    )


def test_carry_in_ablation(benchmark, embedded_client, embedded_wcet):
    """What the +1 carry-in allowance costs, and what it buys.

    Without carry-in the blackout bound ignores overhead bursts that
    straddle the window start; the resulting (larger) SBF may overstate
    supply in windows anchored mid-burst.  The ablation compares the two
    SBFs and hunts for measured refutations of the no-carry-in variant
    on adversarial burst schedules.
    """
    from repro.analysis.report import format_table
    from repro.rta.curves import release_curve
    from repro.rta.jitter import jitter_bound
    from repro.rta.sbf import SupplyBoundFunction
    from repro.sim.workloads import burst_at

    tasks = embedded_client.tasks
    jitter = jitter_bound(embedded_wcet, embedded_client.num_sockets).bound
    betas = [
        release_curve(tasks.arrival_curve(t.name), jitter) for t in tasks
    ]

    def build():
        with_carry = SupplyBoundFunction(
            betas, embedded_wcet, embedded_client.num_sockets, carry_in=1
        )
        without = SupplyBoundFunction(
            betas, embedded_wcet, embedded_client.num_sockets, carry_in=0
        )
        return with_carry, without

    with_carry, without = benchmark.pedantic(build, rounds=3, iterations=1)

    arrivals = burst_at(embedded_client, 40, {"radio": 4, "sample": 1})
    result = simulate(embedded_client, arrivals, embedded_wcet, 4_000,
                      durations=WcetDurations())
    schedule = result.schedule()

    rows = []
    refuted_without = 0
    for delta in (50, 100, 200, 400, 800):
        measured = min_supply_over_windows(schedule, delta)
        safe = with_carry(delta) <= measured
        unsafe = without(delta) > measured
        refuted_without += int(unsafe)
        rows.append((delta, with_carry(delta), without(delta), measured,
                     "refuted" if unsafe else "ok"))
        assert safe, f"carry-in SBF must stay sound at Δ={delta}"

    if refuted_without:
        verdict = (
            f"no-carry-in variant refuted at {refuted_without}/5 window "
            "lengths — the allowance is load-bearing"
        )
    else:
        verdict = (
            "(no refutation found on this schedule: the allowance is "
            "conservative here, kept for soundness in general)"
        )
    print_experiment(
        "E7b — SBF carry-in ablation (burst schedule, WCET timing)",
        format_table(
            ["Δ", "SBF (carry-in 1)", "SBF (carry-in 0)", "measured min supply",
             "no-carry verdict"],
            rows,
        )
        + "\n\n"
        + verdict,
    )


def test_benchmark_sbf_evaluation(benchmark, embedded_client, embedded_wcet):
    analysis = analyse(embedded_client, embedded_wcet)
    sbf = analysis.sbf

    def evaluate_range():
        return [sbf(d) for d in range(0, 2000)]

    values = benchmark(evaluate_range)
    assert values[-1] >= 0

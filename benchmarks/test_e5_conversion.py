"""E5 (section 2.4): timed trace → schedule conversion.

Regenerates the conversion evidence: the finite look-ahead parser maps
every resolved instant to exactly one processor state, attributes every
overhead to a job, and balances total time.  Benchmarks conversion
throughput on long traces.
"""

from __future__ import annotations

import random

from conftest import print_experiment
from repro.schedule.conversion import convert
from repro.schedule.metrics import state_durations, total_overhead, utilization_of
from repro.schedule.states import Idle, job_of
from repro.sim.simulator import UniformDurations, simulate
from repro.sim.workloads import generate_arrivals


def long_run(client, wcet, seed=0, horizon=60_000):
    rng = random.Random(seed)
    arrivals = generate_arrivals(client, horizon=horizon * 3 // 4, rng=rng,
                                 intensity=1.2)
    return simulate(client, arrivals, wcet, horizon=horizon,
                    durations=UniformDurations(rng))


def test_conversion_total_and_attributed(benchmark, typical_client, typical_wcet):
    result = long_run(typical_client, typical_wcet)
    schedule = benchmark(convert, result.timed_trace, typical_client.sockets)

    # Totality: segments cover [start, end) with no gaps (checked by the
    # FiniteSchedule constructor) and durations balance.
    durations = state_durations(schedule)
    assert sum(durations.values()) == schedule.duration

    # Attribution: every non-idle segment names a job that was read.
    read_jobs = {
        m.job for m in result.timed_trace.trace
        if type(m).__name__ == "MReadE" and m.job is not None
    }
    for segment in schedule:
        job = job_of(segment.state)
        if not isinstance(segment.state, Idle):
            assert job in read_jobs

    overhead = total_overhead(schedule)
    body = (
        f"{len(result.timed_trace)} markers → {len(schedule.segments)} "
        f"segments over [{schedule.start}, {schedule.end})\n"
        f"state totals: {durations}\n"
        f"total overhead (blackout): {overhead} "
        f"({100 * overhead / schedule.duration:.2f}% of the schedule), "
        f"utilization {utilization_of(schedule):.3f}"
    )
    print_experiment("E5 / section 2.4 — trace → schedule conversion", body)


def test_benchmark_conversion(benchmark, typical_client, typical_wcet):
    result = long_run(typical_client, typical_wcet, seed=1)
    schedule = benchmark(convert, result.timed_trace, typical_client.sockets)
    assert schedule.duration > 0

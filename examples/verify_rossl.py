#!/usr/bin/env python3
"""Verifying Rössl's C code: the RefinedC side of the pipeline.

This example exercises the verification layer (paper section 3) on the
actual MiniC source of Rössl:

1. print (an excerpt of) the C code with its ghost marker calls;
2. bounded-exhaustively model-check it: every sequence of read outcomes
   up to a depth is executed under the instrumented semantics, and every
   execution is checked for the scheduler protocol, functional
   correctness, marker-spec preconditions, and absence of undefined
   behaviour (the Thm. 3.4 stand-in);
3. demonstrate that the machinery has teeth: a mutated scheduler that
   dequeues FIFO instead of highest-priority-first is caught, as is a C
   bug (a use-after-free) injected into the source.

Run:  python examples/verify_rossl.py
"""

from __future__ import annotations

from repro.lang.errors import UndefinedBehavior
from repro.lang.interp import run_program
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.env import ScriptedEnvironment
from repro.rossl.runtime import TraceRecorder
from repro.rossl.source import rossl_source
from repro.verification.model_check import explore


def build_client() -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="lo", priority=1, wcet=10, type_tag=1),
            Task(name="hi", priority=2, wcet=5, type_tag=2),
        ]
    )
    return RosslClient.make(tasks, sockets=[0])


def main() -> None:
    client = build_client()

    print("=== Rössl's scheduling loop (MiniC, ghost calls included) ===")
    source = rossl_source(client)
    loop = source[source.index("// The main scheduling loop") :]
    print(loop.strip())
    print()

    print("=== bounded model check (Thm. 3.4 stand-in) ===")
    report = explore(
        client, payloads=[(1, 0), (2, 0)], max_reads=5, implementation="minic"
    )
    print(report.summary())
    assert report.ok
    print()

    print("=== mutation: a use-after-free slips into fds_run ===")
    # Free the job before dispatching it: classic lifetime bug.
    buggy = source.replace(
        "dispatch_start(j->data, j->len);\n"
        "            npfp_dispatch(&fds->sched, j);  // execute the job\n"
        "            free(j);  // release the memory",
        "free(j);  // BUG: freed too early\n"
        "            dispatch_start(j->data, j->len);\n"
        "            npfp_dispatch(&fds->sched, j);",
    )
    assert "BUG" in buggy, "mutation did not apply"
    typed = typecheck(parse_program(buggy))
    env = ScriptedEnvironment([(2, 0), None, None])
    try:
        run_program(typed, env, TraceRecorder(), fuel=100_000)
    except UndefinedBehavior as exc:
        print(f"caught: {exc}")
    else:
        raise AssertionError("the use-after-free went unnoticed?!")
    print()
    print("The semantics rejects the buggy scheduler — 'not stuck' in the")
    print("adequacy theorem is a real obligation, not a formality.")


if __name__ == "__main__":
    main()

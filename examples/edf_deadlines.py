#!/usr/bin/env python3
"""Running Rössl under non-preemptive EDF (the policy-transfer extension).

An event-driven, interrupt-free scheduler has no clock, so the absolute
deadline of each job travels in its message (second payload word) — and
EDF becomes literally "fixed priority with priority = −deadline": the
scheduler core verified for NPFP is reused byte-for-byte.

This example:

1. shows the deadline-inversion scenario: static priorities miss a
   deadline that EDF meets;
2. runs the NP-EDF demand-bound schedulability test (with the same
   release-jitter and supply-bound machinery as the NPFP analysis);
3. validates the verdict by simulation of the MiniC EDF scheduler.

Run:  python examples/edf_deadlines.py
"""

from __future__ import annotations

import random

from repro.edf import (
    deadline_of,
    edf_analysis,
    edf_source,
    with_deadline_payloads,
)
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import SporadicCurve
from repro.sim.simulator import WcetDurations, simulate
from repro.sim.workloads import generate_arrivals
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import job_arrival_times
from repro.timing.wcet import WcetModel

WCET = WcetModel(
    failed_read=2, success_read=2, selection=1, dispatch=1, completion=1, idling=1
)


def build_clients():
    tasks = TaskSystem(
        [
            Task(name="alarm", priority=1, wcet=12, type_tag=1, deadline=180),
            Task(name="report", priority=2, wcet=60, type_tag=2, deadline=2700),
        ],
        {"alarm": SporadicCurve(300), "report": SporadicCurve(400)},
    )
    return (
        RosslClient.make(tasks, [0], policy="npfp"),
        RosslClient.make(tasks, [0], policy="edf"),
    )


def misses(client, arrivals, horizon=4_000):
    result = simulate(client, arrivals, WCET, horizon=horizon,
                      durations=WcetDurations(), implementation="minic")
    completions = result.timed_trace.completions()
    out = []
    for job, t_arr in job_arrival_times(result.timed_trace, arrivals).items():
        done = completions.get(job)
        if done is None or done > deadline_of(job.data):
            out.append((client.tasks.msg_to_task(job.data).name, t_arr))
    return out


def main() -> None:
    npfp, edf = build_clients()

    print("=== the EDF scheduler is the NPFP core with a deadline priority ===")
    source = edf_source(edf)
    priority_fn = source[source.index("int job_priority") : source.index(
        "void npfp_enqueue"
    )]
    print(priority_fn.strip())
    print()

    # For the inversion demo, tighten the alarm deadline so the static-
    # priority schedule (report first) blows it while EDF meets it.
    tight_tasks = TaskSystem(
        [
            Task(name="alarm", priority=1, wcet=12, type_tag=1, deadline=60),
            Task(name="report", priority=2, wcet=60, type_tag=2, deadline=2700),
        ],
        {"alarm": SporadicCurve(300), "report": SporadicCurve(400)},
    )
    tight_npfp = RosslClient.make(tight_tasks, [0], policy="npfp")
    tight_edf = RosslClient.make(tight_tasks, [0], policy="edf")

    print("=== deadline inversion: alarm (D=60) vs report (D=2700) ===")
    base = ArrivalSequence([Arrival(20, 0, (2, 1)), Arrival(20, 0, (1, 2))])
    arrivals = with_deadline_payloads(base, tight_tasks)
    npfp_misses = misses(tight_npfp, arrivals)
    edf_misses = misses(tight_edf, arrivals)
    print(f"static priorities (report outranks alarm): misses = {npfp_misses}")
    print(f"EDF:                                        misses = {edf_misses or 'none'}")
    assert npfp_misses and not edf_misses
    print("(so tight deadlines under inverted static priorities need EDF;")
    print(" the schedulability test below uses the deployable D=180 config)")
    print()

    print("=== NP-EDF schedulability test (demand bound + jitter + SBF) ===")
    analysis = edf_analysis(edf, WCET)
    print(f"schedulable: {analysis.schedulable}")
    print(f"jitter J = {analysis.jitter.bound}, busy bound = {analysis.busy_bound}")
    print(f"effective deadlines (D_i − J): {analysis.effective_deadlines}")
    assert analysis.schedulable
    print()

    print("=== validation: randomized EDF runs of the MiniC scheduler ===")
    total = 0
    for seed in range(4):
        rng = random.Random(seed)
        generated = generate_arrivals(edf, horizon=2_000, rng=rng)
        workload = with_deadline_payloads(generated, edf.tasks)
        missed = misses(edf, workload)
        assert not missed, missed
        total += len(workload)
    print(f"{total} jobs across 4 runs: zero deadline misses")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: verify a Rössl deployment end to end.

This walks the full RefinedProsa pipeline on a two-task deployment:

1. describe the workload (tasks, priorities, WCETs, arrival curves);
2. run the C scheduler (MiniC, under the instrumented semantics) in a
   timed simulation;
3. check every verified property on the resulting execution — scheduler
   protocol, functional correctness, Def. 2.1 consistency, WCETs,
   schedule validity;
4. compute the overhead-aware response-time bounds ``R_i + J_i`` and
   check the timing-correctness theorem (Thm. 5.1) on the run.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.analysis.adequacy import check_timing_correctness
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import SporadicCurve
from repro.rta.npfp import analyse
from repro.schedule.metrics import state_durations
from repro.schedule.validity import check_schedule_validity
from repro.sim.simulator import UniformDurations, simulate
from repro.sim.workloads import generate_arrivals
from repro.timing.timed_trace import check_consistency
from repro.timing.wcet import WcetModel, check_wcet_respected
from repro.traces.validity import check_tr_valid


def main() -> None:
    # 1. The deployment: a control task that outranks a logging task.
    #    Time units are arbitrary — read them as microseconds.
    tasks = TaskSystem(
        [
            Task(name="logger", priority=1, wcet=400, type_tag=1),
            Task(name="control", priority=2, wcet=150, type_tag=2),
        ],
        {
            "logger": SporadicCurve(5_000),   # at most one log per 5 ms
            "control": SporadicCurve(2_000),  # at most one command per 2 ms
        },
    )
    client = RosslClient.make(tasks, sockets=[0])
    wcet = WcetModel(
        failed_read=4, success_read=6, selection=3, dispatch=2,
        completion=2, idling=3,
    )

    # 2. Simulate the MiniC implementation for 40 ms.
    rng = random.Random(2025)
    arrivals = generate_arrivals(client, horizon=30_000, rng=rng, intensity=1.0)
    result = simulate(
        client, arrivals, wcet, horizon=40_000,
        durations=UniformDurations(rng), implementation="minic",
    )
    timed = result.timed_trace
    print(f"simulated {len(timed)} marker events, {len(arrivals)} arrivals")

    # 3. Check every verified property on this execution.
    assert client.protocol().accepts(timed.trace)
    check_tr_valid(timed.trace, client.tasks)
    check_consistency(timed, arrivals)
    check_wcet_respected(timed, client.tasks, wcet)
    schedule = result.schedule()
    check_schedule_validity(schedule, client.tasks, wcet, client.num_sockets)
    print("protocol, functional correctness, consistency, WCETs, schedule: OK")
    print(f"schedule state totals: {state_durations(schedule)}")

    # 4. Response-time analysis and the timing-correctness theorem.
    analysis = analyse(client, wcet)
    report = check_timing_correctness(result, analysis)
    print()
    print(report.table())
    assert report.ok, "Thm. 5.1 violated?!"
    print()
    print(f"jitter bound J = {analysis.jitter.bound} time units")
    for task in tasks:
        bound = analysis.response_time_bound(task.name)
        print(f"  {task.name}: every job completes within {bound} of arrival")


if __name__ == "__main__":
    main()

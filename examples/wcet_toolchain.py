#!/usr/bin/env python3
"""Where do WCETs come from?  The compiled-code toolchain.

The paper treats WCETs of basic actions as verification parameters,
"determined experimentally or by static analysis" (§2.2), and conjectures
(§6) the approach extends to compiled code.  This example walks the
toolchain this reproduction provides for both routes:

1. **compile** Rössl's C source to stack-machine bytecode and show the
   disassembly of ``npfp_dequeue``;
2. **static analysis**: bound the instruction cost of the scheduler
   helpers with the cost analyzer, given loop bounds derived from the
   arrival curves' maximum backlog;
3. **measurement**: run the compiled scheduler on the VM (timestamps =
   executed instructions), extract observed per-action maxima from the
   timed traces;
4. **close the loop**: feed the measured WCET model into the
   overhead-aware RTA and validate the bounds on fresh VM-timed runs.

Run:  python examples/wcet_toolchain.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.lang.compile import compile_program
from repro.lang.cost import CostAnalyzer
from repro.lang.parser import parse_program
from repro.lang.typecheck import typecheck
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rossl.source import rossl_source
from repro.rossl.vmtiming import measure_wcet_model, simulate_vm
from repro.rta.curves import LeakyBucketCurve, SporadicCurve
from repro.rta.npfp import analyse
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import job_arrival_times


def build_client() -> RosslClient:
    tasks = TaskSystem(
        [
            Task(name="lo", priority=1, wcet=10, type_tag=1),
            Task(name="hi", priority=2, wcet=10, type_tag=2),
        ],
        {
            "lo": SporadicCurve(6_000),
            "hi": LeakyBucketCurve(burst=2, rate_separation=5_000),
        },
    )
    return RosslClient.make(tasks, sockets=[0])


def burst(client, at, jobs):
    out, serial = [], 0
    for name, count in jobs.items():
        tag = client.tasks.by_name(name).type_tag
        for _ in range(count):
            out.append(Arrival(at, client.sockets[0], (tag, serial)))
            serial += 1
    return ArrivalSequence(out)


def main() -> None:
    client = build_client()
    typed = typecheck(parse_program(rossl_source(client)))
    compiled = compile_program(typed)

    print("=== 1. compiled bytecode (npfp_dequeue, first 20 instructions) ===")
    dequeue = compiled.functions["npfp_dequeue"]
    for pc, instr in enumerate(dequeue.code[:20]):
        print(f"  {pc:4d}: {instr}")
    print(f"  … {len(dequeue.code)} instructions, {len(dequeue.loops)} loops\n")

    print("=== 2. static cost bounds (max backlog Q=3 from the curves) ===")
    analyzer = CostAnalyzer(typed, {"npfp_enqueue": [3], "npfp_dequeue": [3, 3]})
    for name in ("npfp_enqueue", "npfp_dequeue", "job_priority",
                 "msg_identify_type"):
        print(f"  cost({name}) ≤ {analyzer.call_cost(name)} instructions")
    print()

    print("=== 3. measurement on the VM (instruction-count timestamps) ===")
    stress = [
        simulate_vm(client, burst(client, 300, {"lo": 1, "hi": 2}), 40_000),
        simulate_vm(client, burst(client, 1_500, {"lo": 1, "hi": 2}), 40_000),
        simulate_vm(client, ArrivalSequence([]), 10_000),
    ]
    measured = measure_wcet_model(stress, margin=1.5)
    print(f"  measured (×1.5 margin): {measured.wcet}")
    print(f"  measured callback costs: {measured.exec_maxima}\n")

    print("=== 4. RTA on the derived model, validated on fresh runs ===")
    tasks = measured.tasks_with_measured_wcets(client.tasks)
    derived = RosslClient.make(tasks, client.sockets)
    analysis = analyse(derived, measured.wcet)
    assert analysis.schedulable
    rows = []
    for task in derived.tasks:
        rows.append((task.name, task.wcet,
                     analysis.response_time_bound(task.name)))
    print(format_table(["task", "C (instr)", "bound R+J (instr)"], rows))

    checked = violations = 0
    for at in (700, 2_300, 4_100):
        arrivals = burst(derived, at, {"lo": 1, "hi": 2})
        run = simulate_vm(derived, arrivals, 60_000)
        completions = run.timed_trace.completions()
        for job, t_arr in job_arrival_times(run.timed_trace, arrivals).items():
            name = derived.tasks.msg_to_task(job.data).name
            bound = analysis.response_time_bound(name)
            done = completions.get(job)
            checked += 1
            if done is None or done - t_arr > bound:
                violations += 1
    print(f"\nfresh-run validation: {checked} jobs, {violations} violations")
    assert violations == 0


if __name__ == "__main__":
    main()

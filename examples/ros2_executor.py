#!/usr/bin/env python3
"""A ROS2-executor-like deployment (the paper's motivating domain).

Rössl was designed to resemble the ROS2 default executor: callbacks
react to messages (sensor data, timers, commands) and an in-process,
interrupt-free scheduler sequences them.  This example models a small
robot:

* ``estop``     — emergency stop commands; rare, highest priority;
* ``control``   — 100 Hz control-loop ticks;
* ``lidar``     — 40 Hz point-cloud batches, heavier processing;
* ``telemetry`` — background status publishing, lowest priority.

Time unit: 1 µs.  The example reproduces the paper's qualitative claim
(section 2.4) that the release-jitter offset is "a few microseconds"
while response-time bounds are "tens to hundreds of milliseconds" — and
validates the analytic bounds against simulation.

Run:  python examples/ros2_executor.py
"""

from __future__ import annotations

import random

from repro.analysis.adequacy import check_timing_correctness
from repro.analysis.report import format_table
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.curves import LeakyBucketCurve, SporadicCurve
from repro.rta.npfp import analyse
from repro.sim.simulator import UniformDurations, simulate
from repro.sim.workloads import generate_arrivals

MS = 1_000  # µs per ms


def build_robot() -> tuple[RosslClient, "WcetModel"]:
    from repro.timing.wcet import WcetModel

    tasks = TaskSystem(
        [
            Task(name="telemetry", priority=1, wcet=3 * MS, type_tag=1),
            Task(name="lidar", priority=2, wcet=8 * MS, type_tag=2),
            Task(name="control", priority=3, wcet=1 * MS, type_tag=3),
            Task(name="estop", priority=4, wcet=200, type_tag=4),
        ],
        {
            "telemetry": SporadicCurve(100 * MS),            # 10 Hz
            "lidar": SporadicCurve(25 * MS),                  # 40 Hz
            "control": SporadicCurve(10 * MS),                # 100 Hz
            "estop": LeakyBucketCurve(burst=2, rate_separation=500 * MS),
        },
    )
    # One socket per message source, as a ROS2 node would subscribe to
    # several topics.
    client = RosslClient.make(tasks, sockets=[0, 1, 2, 3])
    # Scheduler-path WCETs measured in single-digit microseconds, as the
    # paper assumes for a "typical deployment".
    wcet = WcetModel(
        failed_read=2, success_read=4, selection=2, dispatch=2,
        completion=2, idling=2,
    )
    return client, wcet


def main() -> None:
    client, wcet = build_robot()
    analysis = analyse(client, wcet)
    assert analysis.schedulable

    print("=== overhead-aware response-time bounds (Thm. 4.2) ===")
    rows = []
    for task in client.tasks:
        bound = analysis.response_time_bound(task.name)
        rows.append(
            (task.name, task.priority, f"{task.wcet} µs", f"{bound / MS:.3f} ms")
        )
    print(format_table(["callback", "prio", "WCET", "bound R+J"], rows))

    jitter = analysis.jitter.bound
    worst_bound = max(
        analysis.response_time_bound(t.name) for t in client.tasks
    )
    print()
    print(
        f"release jitter J = {jitter} µs vs. worst bound "
        f"{worst_bound / MS:.3f} ms — J/R = {jitter / worst_bound:.2e}"
    )
    print("(the paper: jitter 'a few microseconds', bounds 'tens to")
    print(" hundreds of milliseconds' — the offset does not undermine them)")

    # Validate against a one-second simulation.
    rng = random.Random(7)
    socket_of_task = {"telemetry": 0, "lidar": 1, "control": 2, "estop": 3}
    arrivals = generate_arrivals(
        client, horizon=800 * MS, rng=rng, intensity=1.0,
        socket_of_task=socket_of_task,
    )
    result = simulate(
        client, arrivals, wcet, horizon=1_000 * MS,
        durations=UniformDurations(rng),
    )
    report = check_timing_correctness(result, analysis)
    print()
    print(report.table())
    assert report.ok


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A deeply embedded IoT sensor node (TinyOS/Contiki-style deployment).

Interrupt-free schedulers are the default on resource-constrained nodes
(paper section 1.1).  This example models an 8-bit-class sensor node
where scheduling overheads are *not* negligible relative to callback
WCETs — the regime that motivates RefinedProsa's explicit overhead
accounting:

* radio packets arrive in bursts (leaky-bucket curve) on one socket,
* periodic sensor samples arrive on another,
* per-action scheduler overheads are within an order of magnitude of
  the callbacks themselves.

It compares the overhead-aware bound against the classic
overhead-oblivious NPFP analysis and shows, by simulation, that the
naive bound is *unsafe* here (observed responses exceed it) while the
overhead-aware bound holds.

Run:  python examples/iot_sensor_node.py
"""

from __future__ import annotations

import random

from repro.analysis.adequacy import check_timing_correctness
from repro.analysis.report import format_table
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.baselines import ideal_npfp_bound
from repro.rta.curves import LeakyBucketCurve, SporadicCurve
from repro.rta.npfp import analyse
from repro.sim.simulator import WcetDurations, simulate
from repro.sim.workloads import burst_at, generate_arrivals
from repro.timing.arrivals import ArrivalSequence
from repro.timing.wcet import WcetModel


def build_node() -> tuple[RosslClient, WcetModel]:
    tasks = TaskSystem(
        [
            Task(name="sample", priority=1, wcet=40, type_tag=1),
            Task(name="radio", priority=2, wcet=25, type_tag=2),
        ],
        {
            "sample": SporadicCurve(1_000),
            "radio": LeakyBucketCurve(burst=4, rate_separation=800),
        },
    )
    client = RosslClient.make(tasks, sockets=[0, 1])
    # On a microcontroller the scheduler path is comparable to the
    # callbacks: overheads matter.
    wcet = WcetModel(
        failed_read=6, success_read=9, selection=5, dispatch=4,
        completion=4, idling=5,
    )
    return client, wcet


def main() -> None:
    client, wcet = build_node()
    analysis = analyse(client, wcet)
    assert analysis.schedulable

    print("=== overhead-aware vs. overhead-oblivious bounds ===")
    rows = []
    for task in client.tasks:
        aware = analysis.response_time_bound(task.name)
        naive = ideal_npfp_bound(client, task.name)
        rows.append((task.name, task.wcet, naive, aware, f"{aware / naive:.2f}x"))
    print(format_table(
        ["task", "C_i", "naive bound", "aware bound", "inflation"], rows
    ))

    # Adversarial scenario: a maximal radio burst lands while a sample
    # is pending, everything at WCET.
    burst = burst_at(client, 50, {"radio": 4}, sock=1)
    sample = burst_at(client, 49, {"sample": 1}, sock=0)
    arrivals = ArrivalSequence(list(burst) + list(sample))
    result = simulate(client, arrivals, wcet, horizon=5_000,
                      durations=WcetDurations())
    report = check_timing_correctness(result, analysis)
    assert report.ok

    print()
    print("burst scenario (4 radio packets + 1 sample, WCET timing):")
    naive_sample = ideal_npfp_bound(client, "sample")
    observed = report.observed_worst["sample"]
    print(report.table())
    print()
    print(f"naive bound for 'sample': {naive_sample}; observed: {observed}")
    if observed > naive_sample:
        print("→ the overhead-oblivious analysis is UNSAFE for this node:")
        print("  the observed response exceeds its claimed bound, while the")
        print("  overhead-aware bound of RefinedProsa holds.")
    else:
        print("→ (this run did not exceed the naive bound; the randomized")
        print("   campaign in benchmarks/test_e10 demonstrates the crossover)")

    # A broader randomized validation.
    rng = random.Random(11)
    arrivals = generate_arrivals(client, horizon=4_000, rng=rng, intensity=1.0)
    result = simulate(client, arrivals, wcet, horizon=8_000,
                      durations=WcetDurations())
    report = check_timing_correctness(result, analysis)
    assert report.ok
    print()
    print("randomized validation:")
    print(report.table())


if __name__ == "__main__":
    main()

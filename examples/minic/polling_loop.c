// A minimal interrupt-free polling client with the Fig. 6 marker
// discipline: each activation reads one message and, when the read
// succeeds, walks the dispatch -> execution -> completion chain.
// Lints clean:  python -m repro lint examples/minic/polling_loop.c

int poll_socket(int sock) {
    int msg = 0;
    read_start();
    int got = read(sock, &msg, 1);
    if (got < 0) {
        return 0;
    }
    dispatch_start(&msg, 1);
    execution_start(&msg, 1);
    completion_start(&msg, 1);
    return 1;
}

int main() {
    int served = 0;
    int sock = 0;
    while (sock < 4) {
        served = served + poll_socket(sock);
        sock = sock + 1;
    }
    return served;
}

// Branch-heavy control flow plus nested counting loops whose bounds the
// static pass can infer (LB001), giving a full static cost bound
// (CF001) for every function.
// Lints clean:  python -m repro lint examples/minic/bounded_filter.c

int clamp(int x, int lo, int hi) {
    if (x < lo) {
        return lo;
    }
    if (hi < x) {
        return hi;
    }
    return x;
}

int smooth(int base) {
    int acc = 0;
    int round = 0;
    while (round < 3) {
        int k = 0;
        while (k < 5) {
            acc = acc + clamp(base + k, 0, 100);
            k = k + 1;
        }
        round = round + 1;
    }
    return acc;
}

int main() {
    return smooth(40);
}

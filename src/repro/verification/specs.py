"""Marker-function specifications as runtime contracts (section 3.1).

The paper gives each marker function a separation-logic Hoare triple
over two ghost assertions: ``current_trace tr`` (the trace so far) and
``currently_pending js`` (the set of read-but-undispatched jobs).  The
``idling_start()`` spec, for example, requires the last marker to be
``M_Selection`` and the pending set to be empty.

:class:`MarkerSpecMonitor` maintains both ghost states and checks each
marker's precondition as it is emitted — the runtime analog of RefinedC
discharging the precondition at every call site.  It deliberately
re-states the preconditions *per marker function* (rather than reusing
the protocol automaton) so the checked conditions mirror the paper's
specs one-to-one.
"""

from __future__ import annotations

from repro.model.job import Job
from repro.traces.markers import (
    Marker,
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
)
from repro.traces.validity import PriorityFn


class SpecViolation(Exception):
    """A marker function was called with its precondition violated."""

    def __init__(self, marker: Marker, message: str) -> None:
        super().__init__(f"{marker}: {message}")
        self.marker = marker


class MarkerSpecMonitor:
    """Checks marker-function preconditions online.

    Use as a :class:`~repro.rossl.runtime.MarkerSink` (e.g. inside a
    :class:`~repro.rossl.runtime.TeeSink` next to a recorder).
    """

    def __init__(self, priority: PriorityFn) -> None:
        self._priority = priority
        #: ghost state: current_trace tr
        self.current_trace: list[Marker] = []
        #: ghost state: currently_pending js
        self.currently_pending: set[Job] = set()

    def _last(self) -> Marker | None:
        return self.current_trace[-1] if self.current_trace else None

    def emit(self, marker: Marker) -> None:
        last = self._last()
        if isinstance(marker, MReadS):
            # read_start(): the scheduler is between iteration phases —
            # at the very start, after a read result, after completing a
            # job, or after idling.
            if not (
                last is None
                or isinstance(last, (MReadE, MCompletion, MIdling))
            ):
                raise SpecViolation(marker, f"read_start after {last}")
        elif isinstance(marker, MReadE):
            if not isinstance(last, MReadS):
                raise SpecViolation(marker, "read outcome without read_start")
            if marker.job is not None:
                if any(marker.job.jid == j.jid for j in self.currently_pending):
                    raise SpecViolation(marker, "job id not fresh")
        elif isinstance(marker, MSelection):
            # selection_start(): the polling phase just concluded.
            if not isinstance(last, MReadE):
                raise SpecViolation(marker, f"selection_start after {last}")
        elif isinstance(marker, MIdling):
            # idling_start() spec (section 3.1): last marker M_Selection
            # and currently_pending = ∅.
            if not isinstance(last, MSelection):
                raise SpecViolation(marker, f"idling_start after {last}")
            if self.currently_pending:
                raise SpecViolation(
                    marker,
                    f"idling with pending jobs "
                    f"{sorted(str(j) for j in self.currently_pending)}",
                )
        elif isinstance(marker, MDispatch):
            # dispatch_start(j): last marker M_Selection, j pending and
            # of maximal priority.
            if not isinstance(last, MSelection):
                raise SpecViolation(marker, f"dispatch_start after {last}")
            if marker.job not in self.currently_pending:
                raise SpecViolation(marker, "dispatched job is not pending")
            my_priority = self._priority(marker.job.data)
            for other in self.currently_pending:
                if self._priority(other.data) > my_priority:
                    raise SpecViolation(
                        marker,
                        f"pending job {other} has higher priority",
                    )
        elif isinstance(marker, MExecution):
            if not (isinstance(last, MDispatch) and last.job == marker.job):
                raise SpecViolation(marker, f"execution_start after {last}")
        elif isinstance(marker, MCompletion):
            if not (isinstance(last, MExecution) and last.job == marker.job):
                raise SpecViolation(marker, f"completion_start after {last}")
        else:  # pragma: no cover - exhaustive over Marker
            raise SpecViolation(marker, "unknown marker")
        # postcondition: the ghost state advances.
        self.current_trace.append(marker)
        if isinstance(marker, MReadE) and marker.job is not None:
            self.currently_pending.add(marker.job)
        elif isinstance(marker, MDispatch):
            self.currently_pending.discard(marker.job)

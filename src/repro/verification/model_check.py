"""Bounded model checking of Rössl: the Thm. 3.4 stand-in.

The only nondeterminism in Rössl's execution is the outcome of each
``read`` call (READ-STEP-SUCCESS vs READ-STEP-FAILURE, and the message
payload).  :func:`explore` therefore enumerates *every* sequence of read
outcomes over a payload alphabet up to a depth bound, executes each —
by default the MiniC implementation under the instrumented semantics —
and checks on each resulting execution:

* **not stuck**: no undefined behaviour in the semantics;
* **scheduler protocol** (Def. 3.1): the trace is accepted by the STS;
* **functional correctness** (Def. 3.2): highest-priority dispatch,
  idle-implies-empty, unique ids — checked at every step by the online
  monitor;
* **marker specs** (section 3.1): each ghost call's precondition holds.

Where the Rocq proof covers all executions, this covers all executions
up to the bound — decidable, exhaustive-in-the-bound evidence for the
same statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Sequence

from repro.lang.errors import MiniCError, OutOfFuel, UndefinedBehavior
from repro.model.message import MsgData
from repro.rossl.client import RosslClient
from repro.rossl.env import HorizonReached, ScriptedEnvironment
from repro.rossl.runtime import TeeSink, TraceRecorder
from repro.rossl.source import MiniCRossl
from repro.traces.markers import Marker
from repro.traces.protocol import ProtocolError
from repro.traces.validity import TraceValidityError
from repro.verification.monitor import OnlineMonitor
from repro.verification.specs import MarkerSpecMonitor, SpecViolation


@dataclass(frozen=True)
class Violation:
    """One failed check on one explored execution."""

    script: tuple[MsgData | None, ...]
    kind: str  # "stuck" | "protocol" | "validity" | "spec"
    detail: str
    trace_prefix: tuple[Marker, ...]


@dataclass
class ExplorationReport:
    """Outcome of a bounded exploration."""

    scripts_explored: int = 0
    markers_observed: int = 0
    max_trace_length: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"explored {self.scripts_explored} read-outcome sequences, "
            f"{self.markers_observed} markers total, longest trace "
            f"{self.max_trace_length}: {status}"
        )


def _run_one(
    client: RosslClient,
    script: Sequence[MsgData | None],
    implementation: str,
    minic: MiniCRossl | None,
    fuel: int,
) -> tuple[list[Marker], Violation | None]:
    recorder = TraceRecorder()
    monitor = OnlineMonitor(client.sockets, client.tasks.priority_of)
    specs = MarkerSpecMonitor(client.tasks.priority_of)
    sink = TeeSink(recorder, monitor, specs)
    env = ScriptedEnvironment(script)
    script_key = tuple(script)
    try:
        if implementation == "minic":
            assert minic is not None
            minic_interp_run(minic, env, sink, fuel)
        else:
            client.model().run(env, sink)
    except UndefinedBehavior as exc:
        return recorder.trace, Violation(script_key, "stuck", str(exc), tuple(recorder.trace))
    except ProtocolError as exc:
        return recorder.trace, Violation(script_key, "protocol", str(exc), tuple(recorder.trace))
    except TraceValidityError as exc:
        return recorder.trace, Violation(script_key, "validity", str(exc), tuple(recorder.trace))
    except SpecViolation as exc:
        return recorder.trace, Violation(script_key, "spec", str(exc), tuple(recorder.trace))
    return recorder.trace, None


def minic_interp_run(minic: MiniCRossl, env, sink, fuel: int) -> None:
    """Run the MiniC scheduler, treating fuel/horizon as clean stops but
    letting verification exceptions propagate."""
    from repro.lang.interp import run_program

    try:
        run_program(minic.typed, env, sink, entry="main", fuel=fuel)
    except (OutOfFuel, HorizonReached):
        return


def explore(
    client: RosslClient,
    payloads: Sequence[MsgData],
    max_reads: int,
    implementation: str = "minic",
    fuel: int = 100_000,
) -> ExplorationReport:
    """Exhaustively explore all read-outcome sequences of length
    ``max_reads`` over ``{fail} ∪ payloads``.

    Every shorter behaviour is a prefix of an explored one, and all
    checked properties are prefix-closed, so depth ``max_reads`` covers
    everything up to that many reads.  Cost is
    ``(len(payloads) + 1) ** max_reads`` executions.
    """
    if max_reads < 0:
        raise ValueError("max_reads must be non-negative")
    alphabet: list[MsgData | None] = [None] + [tuple(p) for p in payloads]
    minic = MiniCRossl(client) if implementation == "minic" else None
    report = ExplorationReport()
    for script in product(alphabet, repeat=max_reads):
        trace, violation = _run_one(client, script, implementation, minic, fuel)
        report.scripts_explored += 1
        report.markers_observed += len(trace)
        report.max_trace_length = max(report.max_trace_length, len(trace))
        if violation is not None:
            report.violations.append(violation)
    return report

"""Bounded model checking of Rössl: the Thm. 3.4 stand-in.

The only nondeterminism in Rössl's execution is the outcome of each
``read`` call (READ-STEP-SUCCESS vs READ-STEP-FAILURE, and the message
payload).  :func:`explore` therefore enumerates *every* sequence of read
outcomes over a payload alphabet up to a depth bound, executes each —
by default the MiniC implementation under the instrumented semantics —
and checks on each resulting execution:

* **not stuck**: no undefined behaviour in the semantics;
* **scheduler protocol** (Def. 3.1): the trace is accepted by the STS;
* **functional correctness** (Def. 3.2): highest-priority dispatch,
  idle-implies-empty, unique ids — checked at every step by the online
  monitor;
* **marker specs** (section 3.1): each ghost call's precondition holds.

Where the Rocq proof covers all executions, this covers all executions
up to the bound — decidable, exhaustive-in-the-bound evidence for the
same statement.

The executing backend is any engine from the registry
(:mod:`repro.engine`); all engines emit identical traces, so checking a
faster backend (``"vm-opt"``) explores the same state space as the
definitional interpreter.  ``jobs > 1`` partitions the script space
across a process pool (scripts are independent executions), merging the
per-chunk reports in enumeration order so the result is identical to a
serial exploration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from itertools import product
from typing import Sequence

from repro import obs
from repro.engine import SchedulerEngine, create_engine, resolve_engine_name
from repro.lang.errors import UndefinedBehavior
from repro.model.message import MsgData
from repro.rossl.client import RosslClient
from repro.rossl.env import ScriptedEnvironment
from repro.rossl.runtime import TeeSink, TraceRecorder
from repro.traces.markers import Marker
from repro.traces.protocol import ProtocolError
from repro.traces.validity import TraceValidityError
from repro.verification.monitor import OnlineMonitor
from repro.verification.specs import MarkerSpecMonitor, SpecViolation


@dataclass(frozen=True)
class Violation:
    """One failed check on one explored execution."""

    script: tuple[MsgData | None, ...]
    kind: str  # "stuck" | "protocol" | "validity" | "spec"
    detail: str
    trace_prefix: tuple[Marker, ...]


@dataclass
class ExplorationReport:
    """Outcome of a bounded exploration."""

    scripts_explored: int = 0
    markers_observed: int = 0
    max_trace_length: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"explored {self.scripts_explored} read-outcome sequences, "
            f"{self.markers_observed} markers total, longest trace "
            f"{self.max_trace_length}: {status}"
        )

    def absorb(self, other: "ExplorationReport") -> None:
        """Merge another report into this one (order-insensitive tallies;
        violations keep the caller's merge order)."""
        self.scripts_explored += other.scripts_explored
        self.markers_observed += other.markers_observed
        self.max_trace_length = max(self.max_trace_length, other.max_trace_length)
        self.violations.extend(other.violations)


def _run_one(
    client: RosslClient,
    script: Sequence[MsgData | None],
    engine: SchedulerEngine,
    fuel: int,
) -> tuple[list[Marker], Violation | None]:
    recorder = TraceRecorder()
    monitor = OnlineMonitor(client.sockets, client.tasks.priority_of)
    specs = MarkerSpecMonitor(client.tasks.priority_of)
    sink = TeeSink(recorder, monitor, specs)
    env = ScriptedEnvironment(script)
    script_key = tuple(script)
    try:
        engine.run(env, sink, fuel=fuel)
    except UndefinedBehavior as exc:
        return recorder.trace, Violation(script_key, "stuck", str(exc), tuple(recorder.trace))
    except ProtocolError as exc:
        return recorder.trace, Violation(script_key, "protocol", str(exc), tuple(recorder.trace))
    except TraceValidityError as exc:
        return recorder.trace, Violation(script_key, "validity", str(exc), tuple(recorder.trace))
    except SpecViolation as exc:
        return recorder.trace, Violation(script_key, "spec", str(exc), tuple(recorder.trace))
    return recorder.trace, None


def _explore_scripts(
    client: RosslClient,
    scripts: Sequence[tuple[MsgData | None, ...]],
    engine: SchedulerEngine,
    fuel: int,
) -> ExplorationReport:
    report = ExplorationReport()
    for script in scripts:
        trace, violation = _run_one(client, script, engine, fuel)
        report.scripts_explored += 1
        report.markers_observed += len(trace)
        report.max_trace_length = max(report.max_trace_length, len(trace))
        if violation is not None:
            report.violations.append(violation)
    return report


# -- process-pool plumbing (workers build their engine once) ---------------

_WORKER: dict = {}


def _init_explore_worker(
    client: RosslClient,
    engine_name: str,
    fuel: int,
    obs_enabled: bool = False,
) -> None:
    from repro.analysis.parallel import init_worker_obs, take_init_snapshot

    init_worker_obs(obs_enabled)
    _WORKER["client"] = client
    with obs.span("verify.worker_init", pid=os.getpid(), engine=engine_name):
        _WORKER["engine"] = create_engine(engine_name, client)
    _WORKER["fuel"] = fuel
    _WORKER["init_snapshot"] = take_init_snapshot()


def _explore_chunk(
    scripts: Sequence[tuple[MsgData | None, ...]],
) -> tuple[ExplorationReport, "obs.MetricsSnapshot | None"]:
    before = obs.snapshot() if obs.enabled() else None
    with obs.span("verify.chunk", pid=os.getpid(), scripts=len(scripts)):
        report = _explore_scripts(
            _WORKER["client"], scripts, _WORKER["engine"], _WORKER["fuel"]
        )
    if before is None:
        return report, None
    delta = obs.snapshot().diff(before)
    init_snap = _WORKER.pop("init_snapshot", None)
    if init_snap is not None:
        delta = init_snap.merge(delta)
    return report, delta


def explore(
    client: RosslClient,
    payloads: Sequence[MsgData],
    max_reads: int,
    implementation: str = "minic",
    fuel: int = 100_000,
    jobs: int = 1,
) -> ExplorationReport:
    """Exhaustively explore all read-outcome sequences of length
    ``max_reads`` over ``{fail} ∪ payloads``.

    Every shorter behaviour is a prefix of an explored one, and all
    checked properties are prefix-closed, so depth ``max_reads`` covers
    everything up to that many reads.  Cost is
    ``(len(payloads) + 1) ** max_reads`` executions, split across
    ``jobs`` worker processes when ``jobs > 1``.
    """
    if max_reads < 0:
        raise ValueError("max_reads must be non-negative")
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    engine_name = resolve_engine_name(implementation)
    if not engine_capable_of_model_check(engine_name):
        raise ValueError(f"engine {engine_name!r} cannot model-check")
    alphabet: list[MsgData | None] = [None] + [tuple(p) for p in payloads]
    scripts = list(product(alphabet, repeat=max_reads))

    from repro.analysis.parallel import (
        merge_worker_snapshots,
        pool_map_chunks,
        split_chunks,
    )

    with obs.span("verify.explore", depth=max_reads, jobs=jobs):
        chunks = split_chunks(scripts, jobs)
        if jobs > 1 and len(chunks) > 1:
            pooled = pool_map_chunks(
                chunks,
                _explore_chunk,
                initializer=_init_explore_worker,
                initargs=(client, engine_name, fuel, obs.enabled()),
                jobs=jobs,
            )
            if pooled is not None:
                merge_worker_snapshots(
                    snap for r in pooled.results if r is not None for snap in [r[1]]
                )
                # Exploration must stay exhaustive-in-the-bound — a
                # partial exploration proves nothing — so chunks lost to
                # worker failures are re-explored serially in the parent.
                engine = None
                partials = []
                for index, pooled_result in enumerate(pooled.results):
                    if pooled_result is not None:
                        partials.append(pooled_result[0])
                    else:
                        if engine is None:
                            engine = create_engine(engine_name, client)
                        partials.append(
                            _explore_scripts(client, chunks[index], engine, fuel)
                        )
            else:
                partials = None
        else:
            partials = None
        if partials is None:  # serial path / fallback
            engine = create_engine(engine_name, client)
            partials = [
                _explore_scripts(client, chunk, engine, fuel) for chunk in chunks
            ]
        report = ExplorationReport()
        for partial in partials:
            report.absorb(partial)
    obs.inc("verify.scripts_explored", report.scripts_explored)
    obs.inc("verify.markers_observed", report.markers_observed)
    obs.inc("verify.violations", len(report.violations))
    return report


def explore_with_engine(
    client: RosslClient,
    payloads: Sequence[MsgData],
    max_reads: int,
    engine: SchedulerEngine,
    fuel: int = 100_000,
) -> ExplorationReport:
    """Serial exploration against an *already-built* engine.

    The engine need not come from the registry — fault injection wraps
    a registry engine (:mod:`repro.faults`) and checks the wrapped
    artifact through exactly the same exploration the healthy engine
    gets, which is what makes "the model checker catches engine-level
    corruption" a statement about this code path and not a bespoke test
    harness.
    """
    if max_reads < 0:
        raise ValueError("max_reads must be non-negative")
    alphabet: list[MsgData | None] = [None] + [tuple(p) for p in payloads]
    scripts = list(product(alphabet, repeat=max_reads))
    with obs.span("verify.explore", depth=max_reads, jobs=1):
        report = _explore_scripts(client, scripts, engine, fuel)
    obs.inc("verify.scripts_explored", report.scripts_explored)
    obs.inc("verify.markers_observed", report.markers_observed)
    obs.inc("verify.violations", len(report.violations))
    return report


def engine_capable_of_model_check(name: str) -> bool:
    from repro.engine import engine_capabilities

    return engine_capabilities(name).model_check

"""Online monitor: the state-interpretation invariant of section 3.3.

RefinedC's adequacy argument threads a state interpretation through the
execution asserting ``tr_prot tr ∗ tr_valid tr`` at *every step*.  The
:class:`OnlineMonitor` is the runtime counterpart: a marker sink that
advances the scheduler-protocol automaton and the functional-correctness
monitor on each event and fails fast on the first violation.
"""

from __future__ import annotations

from typing import Iterable

from repro.traces.markers import Marker, SocketId
from repro.traces.protocol import ProtocolState, SchedulerProtocol
from repro.traces.validity import PriorityFn, ValidityMonitor


class OnlineMonitor:
    """Checks ``tr_prot`` and ``tr_valid`` incrementally.

    Raises :class:`~repro.traces.protocol.ProtocolError` or
    :class:`~repro.traces.validity.TraceValidityError` at the first
    offending marker; both identify the marker index.
    """

    def __init__(self, sockets: Iterable[SocketId], priority: PriorityFn) -> None:
        self._protocol = SchedulerProtocol(sockets)
        self._state: ProtocolState = self._protocol.initial_state()
        self._validity = ValidityMonitor(priority)
        self._index = 0

    @property
    def markers_seen(self) -> int:
        return self._index

    @property
    def protocol_state(self) -> ProtocolState:
        return self._state

    def emit(self, marker: Marker) -> None:
        self._state, _ = self._protocol.step(self._state, marker, self._index)
        self._validity.observe(marker)
        self._index += 1

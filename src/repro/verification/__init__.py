"""Verification layer: the executable stand-in for RefinedC (section 3).

The paper proves, foundationally in Rocq, that every trace Rössl can
emit satisfies the scheduler protocol and functional correctness
(Thm. 3.4), using separation-logic specifications on the marker
functions (section 3.1).  A Python library cannot produce foundational
proofs; this package provides the strongest executable analogs:

* :mod:`~repro.verification.specs` — the marker-function Hoare
  specifications as runtime-checked contracts over the ghost state
  (``current_trace``, ``currently_pending``);
* :mod:`~repro.verification.monitor` — an online monitor asserting the
  protocol and functional correctness at *every step* of an execution
  (the state-interpretation invariant of section 3.3);
* :mod:`~repro.verification.model_check` — bounded exhaustive
  exploration of the read nondeterminism: every possible sequence of
  read outcomes up to a depth is executed (on the MiniC implementation
  under the instrumented semantics, or on the reference model) and every
  resulting trace is checked for protocol conformance, functional
  correctness, and absence of undefined behaviour ("not stuck").
"""

from repro.verification.model_check import ExplorationReport, Violation, explore
from repro.verification.monitor import OnlineMonitor
from repro.verification.specs import MarkerSpecMonitor, SpecViolation

__all__ = [
    "ExplorationReport",
    "MarkerSpecMonitor",
    "OnlineMonitor",
    "SpecViolation",
    "Violation",
    "explore",
]

"""The five execution engines behind the registry.

Every engine runs the *same* scheduling loop (the client's policy over
its sockets) against an :class:`~repro.rossl.env.Environment` and a
:class:`~repro.rossl.runtime.MarkerSink`, and treats fuel exhaustion and
:class:`~repro.rossl.env.HorizonReached` as a clean end of observation —
the trace collected so far is a prefix of the infinite execution.
Verification exceptions (protocol, validity, spec, undefined behaviour)
always propagate, so monitors attached to the sink work identically
under every engine.

Construction cost differs deliberately: the Python model is free, the
interpreter pays parse+typecheck once, the VM engines additionally pay
compilation (and optimization for ``vm-opt``), and the codegen engine
pays Python source generation + ``compile()``.  Engines are therefore
built once and reused across runs — each :meth:`run` gets fresh
scheduler state, the compiled artifacts are shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro import obs
from repro.lang.errors import OutOfFuel
from repro.rossl.client import RosslClient
from repro.rossl.env import Environment, HorizonReached
from repro.rossl.runtime import MarkerSink, TraceRecorder
from repro.rossl.source import DEFAULT_MSG_CAP
from repro.traces.markers import Marker


@dataclass(frozen=True)
class EngineCapabilities:
    """What an engine can do beyond plain trace emission.

    * ``vm_timing`` — the engine exposes an executed-instruction counter
      that can serve as the clock of a timed run (the cost semantics);
      drivers with an ``attach(vm)`` hook get the VM before execution.
    * ``model_check`` — the engine is usable as the checked artifact in
      bounded exploration (deterministic replay of read-outcome scripts).
    """

    vm_timing: bool
    model_check: bool


@dataclass(frozen=True)
class RunStats:
    """What one engine run reports back.

    ``instructions`` is the executed-instruction count for VM engines
    and ``None`` for engines without a cost semantics.
    """

    instructions: int | None = None


@runtime_checkable
class SchedulerEngine(Protocol):
    """A way to execute a client's scheduler against env + sink."""

    name: str
    client: RosslClient
    capabilities: EngineCapabilities

    def run(
        self,
        env: Environment,
        sink: MarkerSink,
        fuel: int | None = None,
    ) -> RunStats: ...  # pragma: no cover - protocol


class _EngineBase:
    """Shared trace convenience for all engines."""

    def run_to_trace(
        self, env: Environment, fuel: int | None = None
    ) -> list[Marker]:
        recorder = TraceRecorder()
        self.run(env, recorder, fuel=fuel)
        return recorder.trace


class PythonModelEngine(_EngineBase):
    """The pure-Python reference model (the executable spec)."""

    name = "python"
    capabilities = EngineCapabilities(vm_timing=False, model_check=True)

    def __init__(self, client: RosslClient, msg_cap: int = DEFAULT_MSG_CAP) -> None:
        self.client = client
        obs.inc("engine.builds")

    def run(
        self, env: Environment, sink: MarkerSink, fuel: int | None = None
    ) -> RunStats:
        # A fresh model per run: the scheduler's ready queue and trace
        # state must not leak between runs.  ``fuel`` has no meaning for
        # the model — only the environment/sink can end the loop.
        self.client.model().run(env, sink)
        return RunStats()


def _attach_endpoints(machine: object, env: Environment, sink: MarkerSink) -> None:
    """Offer the executing machine to any env/sink with an ``attach`` hook.

    This is how the VM-timed drivers obtain the instruction clock and how
    the fault injectors (:mod:`repro.faults`) reach machine state (e.g.
    the heap) without the engines knowing about either.
    """
    attached: list[object] = []
    for endpoint in (env, sink):
        attach = getattr(endpoint, "attach", None)
        if attach is not None and not any(endpoint is a for a in attached):
            attach(machine)
            attached.append(endpoint)


class MiniCInterpEngine(_EngineBase):
    """The MiniC source under the instrumented definitional semantics."""

    name = "interp"
    capabilities = EngineCapabilities(vm_timing=False, model_check=True)
    default_fuel = 5_000_000

    def __init__(self, client: RosslClient, msg_cap: int = DEFAULT_MSG_CAP) -> None:
        from repro.rossl.source import build_rossl

        self.client = client
        with obs.span("engine.build", engine=self.name):
            self.typed = build_rossl(client, msg_cap)
        obs.inc("engine.builds")

    def run(
        self, env: Environment, sink: MarkerSink, fuel: int | None = None
    ) -> RunStats:
        from repro.lang.interp import Interpreter

        machine = Interpreter(
            self.typed, env, sink,
            fuel=self.default_fuel if fuel is None else fuel,
        )
        _attach_endpoints(machine, env, sink)
        try:
            machine.call("main", [])
        except (OutOfFuel, HorizonReached):
            return RunStats()
        raise AssertionError("fds_run returned — unreachable")  # pragma: no cover


class VmEngine(_EngineBase):
    """The compiled bytecode VM (cost semantics); optionally optimized.

    The compiled program is built once per engine and shared by every
    run — a fresh :class:`~repro.lang.vm.VM` per run carries the mutable
    state.  Before execution, any env/sink with an ``attach`` method
    receives the VM, which is how the VM-timed drivers obtain the
    executed-instruction clock (:mod:`repro.rossl.vmtiming`).
    """

    capabilities = EngineCapabilities(vm_timing=True, model_check=True)
    default_fuel = 50_000_000

    def __init__(
        self,
        client: RosslClient,
        msg_cap: int = DEFAULT_MSG_CAP,
        optimize: bool = False,
    ) -> None:
        from repro.lang.compile import compile_program
        from repro.rossl.source import build_rossl

        self.client = client
        self.name = "vm-opt" if optimize else "vm"
        with obs.span("engine.build", engine=self.name):
            compiled = compile_program(build_rossl(client, msg_cap))
            if optimize:
                from repro.lang.optimize import optimize_program

                compiled = optimize_program(compiled)
        obs.inc("engine.builds")
        self.compiled = compiled

    def run(
        self, env: Environment, sink: MarkerSink, fuel: int | None = None
    ) -> RunStats:
        from repro.lang.vm import VM

        vm = VM(
            self.compiled, env, sink,
            fuel=self.default_fuel if fuel is None else fuel,
        )
        attached: list[object] = []
        for endpoint in (env, sink):
            attach = getattr(endpoint, "attach", None)
            if attach is not None and not any(endpoint is a for a in attached):
                attach(vm)
                attached.append(endpoint)
        try:
            vm.call("main", [])
        except (OutOfFuel, HorizonReached):
            pass
        return RunStats(instructions=vm.executed)


class CodegenEngine(_EngineBase):
    """MiniC compiled to Python source (:mod:`repro.lang.codegen`).

    The top rung of the engine ladder: the typed AST is lowered to one
    Python function per MiniC function, with the VM's marker-trace and
    instruction-count semantics preserved exactly — so it supports
    VM-timed runs and model checking like the VM engines do, an order of
    magnitude faster.  Generated code is compiled once per engine and
    shared by every run; a fresh :class:`~repro.lang.codegen.CodegenMachine`
    per run carries the mutable state.
    """

    name = "codegen"
    capabilities = EngineCapabilities(vm_timing=True, model_check=True)
    default_fuel = 50_000_000

    def __init__(self, client: RosslClient, msg_cap: int = DEFAULT_MSG_CAP) -> None:
        from repro.lang.codegen import compile_to_python
        from repro.rossl.source import build_rossl

        self.client = client
        with obs.span("engine.build", engine=self.name):
            self.compiled = compile_to_python(build_rossl(client, msg_cap))
        obs.inc("engine.builds")

    def run(
        self, env: Environment, sink: MarkerSink, fuel: int | None = None
    ) -> RunStats:
        from repro.lang.codegen import CodegenMachine

        machine = CodegenMachine(
            self.compiled, env, sink,
            fuel=self.default_fuel if fuel is None else fuel,
        )
        _attach_endpoints(machine, env, sink)
        try:
            machine.call("main", [])
        except (OutOfFuel, HorizonReached):
            pass
        return RunStats(instructions=machine.executed)

"""Execution engines for Rössl deployments, behind one registry.

The reproduction can execute a deployment's scheduler five ways, each a
different point on the fidelity/throughput spectrum (experiment E17):

* ``"python"``  — the pure-Python reference model (fast, the spec);
* ``"interp"``  — the MiniC source under the instrumented definitional
  semantics (the verification semantics, Fig. 6);
* ``"vm"``      — the compiled bytecode VM (the cost semantics, one
  unit per executed instruction);
* ``"vm-opt"``  — the peephole-optimized VM build (same traces, fewer
  instructions per basic action);
* ``"codegen"`` — MiniC compiled to Python source (same traces and the
  ``vm`` engine's exact instruction counts, near-host speed).

All five are trace-equivalent on identical inputs (enforced by the
differential tests), so every layer that *drives* a scheduler — the
timed simulator, the adequacy campaigns, the bounded model checker, the
VM-timed WCET measurement, the CLI — selects one by name through
:func:`create_engine` instead of wiring interpreters and VMs up ad hoc.
Engines carry :class:`EngineCapabilities` so callers can check what a
backend supports (VM instruction timing, bounded model checking) before
committing to it.
"""

from repro.engine.engines import (
    CodegenEngine,
    EngineCapabilities,
    MiniCInterpEngine,
    PythonModelEngine,
    RunStats,
    SchedulerEngine,
    VmEngine,
)
from repro.engine.registry import (
    UnknownEngineError,
    as_engine,
    create_engine,
    engine_capabilities,
    engine_names,
    register_engine,
    resolve_engine_name,
)

__all__ = [
    "CodegenEngine",
    "EngineCapabilities",
    "MiniCInterpEngine",
    "PythonModelEngine",
    "RunStats",
    "SchedulerEngine",
    "UnknownEngineError",
    "VmEngine",
    "as_engine",
    "create_engine",
    "engine_capabilities",
    "engine_names",
    "register_engine",
    "resolve_engine_name",
]

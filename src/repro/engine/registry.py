"""The engine registry: names, aliases, capabilities, construction.

Canonical names are ``"python"``, ``"interp"``, ``"vm"``, ``"vm-opt"``,
``"codegen"``; ``"minic"`` is accepted as a historical alias for
``"interp"`` (the CLI
``--semantics minic`` spelling and the simulator's old ``implementation``
parameter).  :func:`register_engine` lets extensions (e.g. an
alternative policy backend) plug in without touching the consumers.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.engine.engines import (
    CodegenEngine,
    EngineCapabilities,
    MiniCInterpEngine,
    PythonModelEngine,
    SchedulerEngine,
    VmEngine,
)
from repro.rossl.client import RosslClient
from repro.rossl.source import DEFAULT_MSG_CAP

EngineFactory = Callable[[RosslClient, int], SchedulerEngine]


class UnknownEngineError(ValueError):
    """An engine name that no registered engine answers to."""


def _make_vm(client: RosslClient, msg_cap: int) -> VmEngine:
    return VmEngine(client, msg_cap, optimize=False)


def _make_vm_opt(client: RosslClient, msg_cap: int) -> VmEngine:
    return VmEngine(client, msg_cap, optimize=True)


_FACTORIES: dict[str, EngineFactory] = {
    "python": lambda client, msg_cap: PythonModelEngine(client, msg_cap),
    "interp": lambda client, msg_cap: MiniCInterpEngine(client, msg_cap),
    "vm": _make_vm,
    "vm-opt": _make_vm_opt,
    "codegen": lambda client, msg_cap: CodegenEngine(client, msg_cap),
}

_CAPABILITIES: dict[str, EngineCapabilities] = {
    "python": PythonModelEngine.capabilities,
    "interp": MiniCInterpEngine.capabilities,
    "vm": VmEngine.capabilities,
    "vm-opt": VmEngine.capabilities,
    "codegen": CodegenEngine.capabilities,
}

_ALIASES: dict[str, str] = {
    "minic": "interp",
    "reference": "python",
    "vm-optimized": "vm-opt",
    "native": "codegen",
}


def engine_names() -> tuple[str, ...]:
    """The canonical registered engine names, in registration order."""
    return tuple(_FACTORIES)


def engine_aliases() -> Mapping[str, str]:
    """Accepted alias → canonical name."""
    return dict(_ALIASES)


def resolve_engine_name(name: str) -> str:
    """Canonicalize ``name`` (applying aliases) or raise
    :class:`UnknownEngineError` naming the available engines."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _FACTORIES:
        available = ", ".join(sorted(_FACTORIES))
        raise UnknownEngineError(
            f"unknown engine {name!r}; available engines: {available}"
        )
    return canonical


def engine_capabilities(name: str) -> EngineCapabilities:
    """Capabilities of the engine named ``name``, without building it."""
    return _CAPABILITIES[resolve_engine_name(name)]


def create_engine(
    name: str, client: RosslClient, msg_cap: int = DEFAULT_MSG_CAP
) -> SchedulerEngine:
    """Build the engine named ``name`` for ``client``."""
    return _FACTORIES[resolve_engine_name(name)](client, msg_cap)


def as_engine(
    engine: str | SchedulerEngine,
    client: RosslClient,
    msg_cap: int = DEFAULT_MSG_CAP,
) -> SchedulerEngine:
    """Coerce a name or an already-built engine to an engine.

    A passed-in engine instance must belong to the same client — reusing
    a compiled program across deployments would silently run the wrong
    scheduler.
    """
    if isinstance(engine, str):
        return create_engine(engine, client, msg_cap)
    if engine.client is not client:
        raise ValueError(
            f"engine {engine.name!r} was built for a different client"
        )
    return engine


def register_engine(
    name: str,
    factory: EngineFactory,
    capabilities: EngineCapabilities,
    aliases: tuple[str, ...] = (),
) -> None:
    """Register a new engine (or override an existing one)."""
    _FACTORIES[name] = factory
    _CAPABILITIES[name] = capabilities
    for alias in aliases:
        _ALIASES[alias] = name

"""Cache-aware wrappers over the expensive result boundaries.

Each wrapper follows the same discipline:

* try to *fingerprint* the inputs — if they are unfingerprintable
  (fault-wrapped engine, ad-hoc curve), run cold; the cache is a pure
  optimization and never a requirement;
* on a hit, rebuild the result object from the stored payload; a payload
  that does not parse (schema drift, hand-edited file) is discarded and
  recomputed — wrong shape degrades to a miss, never to a crash;
* on a miss, compute, then store the payload.

Payloads carry only the parts a recomputation cannot rederive cheaply:
for an RTA result that is the per-task aRSA solutions (the busy-window
fixpoint search), while the jitter bound and the (lazy) supply bound
function are rebuilt from the inputs — they are cheap and hold
unpicklable structure.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.cache.fingerprint import UnfingerprintableError, analysis_key
from repro.cache.store import ResultStore
from repro.rossl.client import RosslClient
from repro.rta.arsa import ArsaResult
from repro.rta.curves import ArrivalCurve, memoized_curve, release_curve
from repro.rta.jitter import jitter_bound
from repro.rta.npfp import AnalysisResult, TaskBound, analyse
from repro.rta.sbf import make_sbf
from repro.timing.wcet import WcetModel


# -- rta.npfp.analyse --------------------------------------------------------


def analysis_payload(result: AnalysisResult) -> dict:
    """The cacheable portion of an analysis result: per-task aRSA data."""
    tasks: dict[str, Any] = {}
    for name, bound in result.bounds.items():
        if bound.arsa is None:
            tasks[name] = None
        else:
            arsa = bound.arsa
            tasks[name] = {
                "blocking": arsa.blocking,
                "busy_window": arsa.busy_window,
                "response_bound": arsa.response_bound,
                "offsets": [list(step) for step in arsa.offsets],
            }
    return {"tasks": tasks}


def analysis_from_payload(
    client: RosslClient, wcet: WcetModel, payload: Any
) -> AnalysisResult | None:
    """Rebuild an :class:`AnalysisResult`, or ``None`` if the payload is
    malformed (callers then recompute — a stale/garbled entry is a miss)."""
    tasks = client.tasks
    try:
        stored = payload["tasks"]
        if set(stored) != {task.name for task in tasks}:
            return None
        jitter = jitter_bound(wcet, client.num_sockets)
        release_curves: dict[str, ArrivalCurve] = {
            task.name: memoized_curve(
                release_curve(tasks.arrival_curve(task.name), jitter.bound)
            )
            for task in tasks
        }
        sbf = make_sbf(tasks.tasks, release_curves, wcet, client.num_sockets)
        bounds: dict[str, TaskBound] = {}
        for task in tasks:
            entry = stored[task.name]
            if entry is None:
                bounds[task.name] = TaskBound(task, None)
                continue
            arsa = ArsaResult(
                task=task,
                blocking=int(entry["blocking"]),
                busy_window=int(entry["busy_window"]),
                response_bound=int(entry["response_bound"]),
                offsets=tuple(
                    (int(a), int(s), int(r)) for a, s, r in entry["offsets"]
                ),
            )
            bounds[task.name] = TaskBound(task, arsa)
    except (KeyError, TypeError, ValueError):
        return None
    return AnalysisResult(
        tasks=tasks,
        wcet=wcet,
        num_sockets=client.num_sockets,
        jitter=jitter,
        sbf=sbf,
        bounds=bounds,
    )


def cached_analyse(
    client: RosslClient,
    wcet: WcetModel,
    horizon: int = 1_000_000,
    store: ResultStore | None = None,
    *,
    kernel: bool | None = None,
) -> AnalysisResult:
    """:func:`repro.rta.npfp.analyse` through the persistent cache.

    The cache key does not mention the kernel switch: both evaluation
    paths produce byte-identical results, so entries written with
    either are valid for both.
    """
    if store is None:
        return analyse(client, wcet, horizon, kernel=kernel)
    try:
        key = analysis_key(client, wcet, horizon)
    except UnfingerprintableError:
        return analyse(client, wcet, horizon, kernel=kernel)
    payload = store.get(key)
    if payload is not None:
        result = analysis_from_payload(client, wcet, payload)
        if result is not None:
            return result
    result = analyse(client, wcet, horizon, kernel=kernel)
    store.put(key, analysis_payload(result))
    return result


# -- campaign run outcomes ---------------------------------------------------


def outcome_payload(outcome) -> dict:
    """JSON form of a :class:`repro.analysis.adequacy.RunOutcome`."""
    return {
        "run_index": outcome.run_index,
        "jobs_checked": outcome.jobs_checked,
        "jobs_beyond_horizon": outcome.jobs_beyond_horizon,
        "observed_worst": [[name, worst] for name, worst in outcome.observed_worst],
        "violations": [
            [v.task, v.arrival, v.bound, v.completion]
            for v in outcome.violations
        ],
    }


def outcome_from_payload(payload: Any):
    """Rebuild a ``RunOutcome``, or ``None`` on a malformed payload."""
    from repro.analysis.adequacy import BoundViolation, RunOutcome

    try:
        return RunOutcome(
            run_index=int(payload["run_index"]),
            jobs_checked=int(payload["jobs_checked"]),
            jobs_beyond_horizon=int(payload["jobs_beyond_horizon"]),
            observed_worst=tuple(
                (str(name), int(worst))
                for name, worst in payload["observed_worst"]
            ),
            violations=tuple(
                BoundViolation(
                    task=str(task),
                    arrival=int(arrival),
                    bound=int(bound),
                    completion=None if completion is None else int(completion),
                )
                for task, arrival, bound, completion in payload["violations"]
            ),
        )
    except (KeyError, TypeError, ValueError):
        return None


# -- verification explorations -----------------------------------------------


def exploration_payload(report) -> dict:
    """JSON form of a :class:`~repro.verification.model_check.ExplorationReport`.

    Violation scripts and trace prefixes are dropped: the CLI reports
    kind and detail, and a cached *failing* exploration is rare enough
    that re-running it cold (to recover the trace) is the right answer.
    """
    return {
        "scripts_explored": report.scripts_explored,
        "markers_observed": report.markers_observed,
        "max_trace_length": report.max_trace_length,
        "violations": [[v.kind, v.detail] for v in report.violations],
    }


def exploration_from_payload(payload: Any):
    """Rebuild an ``ExplorationReport``, or ``None`` when malformed."""
    from repro.verification.model_check import ExplorationReport, Violation

    try:
        return ExplorationReport(
            scripts_explored=int(payload["scripts_explored"]),
            markers_observed=int(payload["markers_observed"]),
            max_trace_length=int(payload["max_trace_length"]),
            violations=[
                Violation(
                    script=(),
                    kind=str(kind),
                    detail=str(detail),
                    trace_prefix=(),
                )
                for kind, detail in payload["violations"]
            ],
        )
    except (KeyError, TypeError, ValueError):
        return None


def cached_explore(
    client: RosslClient,
    payloads: Sequence[Sequence[int]],
    max_reads: int,
    implementation: str,
    jobs: int,
    store: ResultStore | None,
):
    """Bounded model check through the persistent cache."""
    from repro.cache.fingerprint import exploration_key
    from repro.verification.model_check import explore

    if store is None:
        return explore(
            client, payloads, max_reads=max_reads,
            implementation=implementation, jobs=jobs,
        )
    try:
        key = exploration_key(client, payloads, max_reads, implementation)
    except UnfingerprintableError:
        return explore(
            client, payloads, max_reads=max_reads,
            implementation=implementation, jobs=jobs,
        )
    stored = store.get(key)
    if stored is not None:
        report = exploration_from_payload(stored)
        if report is not None:
            return report
    report = explore(
        client, payloads, max_reads=max_reads,
        implementation=implementation, jobs=jobs,
    )
    store.put(key, exploration_payload(report))
    return report

"""Persistent content-addressed result cache (see ``docs/caching.md``).

Splits into three layers:

* :mod:`repro.cache.fingerprint` — stable content hashes of analysis
  inputs (workload, engine + capability version, config, schema
  version); whatever cannot be hashed raises
  :class:`~repro.cache.fingerprint.UnfingerprintableError` and runs
  uncached — notably fault-wrapped engines, by construction.
* :mod:`repro.cache.store` — the on-disk JSONL store with atomic
  appends, corruption tolerance (garbage ⇒ miss, never a crash) and
  size-bounded LRU eviction.
* :mod:`repro.cache.cached` — wrappers over the expensive result
  boundaries (``rta.npfp.analyse``, campaign run outcomes, bounded
  model checks) that serialize to / rebuild from payloads.

The campaign runners (:mod:`repro.analysis.adequacy`) accept a store and
recompute only the runs the cache cannot answer — incremental campaigns.
"""

from repro.cache.cached import (
    analysis_from_payload,
    analysis_payload,
    cached_analyse,
    cached_explore,
    exploration_from_payload,
    exploration_payload,
    outcome_from_payload,
    outcome_payload,
)
from repro.cache.fingerprint import (
    ENGINE_CAPABILITY_VERSIONS,
    SCHEMA_VERSION,
    UnfingerprintableError,
    analysis_key,
    campaign_run_key,
    canonical_json,
    client_descriptor,
    curve_descriptor,
    engine_descriptor,
    exploration_key,
    fingerprint,
    wcet_descriptor,
)
from repro.cache.store import (
    DEFAULT_MAX_BYTES,
    ENV_CACHE_DIR,
    ENV_CACHE_MAX_BYTES,
    ResultStore,
    StoreStats,
    default_cache_dir,
    default_store,
)

__all__ = [
    "ENGINE_CAPABILITY_VERSIONS",
    "SCHEMA_VERSION",
    "DEFAULT_MAX_BYTES",
    "ENV_CACHE_DIR",
    "ENV_CACHE_MAX_BYTES",
    "ResultStore",
    "StoreStats",
    "UnfingerprintableError",
    "analysis_from_payload",
    "analysis_key",
    "analysis_payload",
    "cached_analyse",
    "cached_explore",
    "campaign_run_key",
    "canonical_json",
    "client_descriptor",
    "curve_descriptor",
    "default_cache_dir",
    "default_store",
    "engine_descriptor",
    "exploration_from_payload",
    "exploration_key",
    "exploration_payload",
    "fingerprint",
    "outcome_from_payload",
    "outcome_payload",
    "wcet_descriptor",
]

"""Persistent content-addressed result cache (see ``docs/caching.md``).

Splits into three layers:

* :mod:`repro.cache.fingerprint` — stable content hashes of analysis
  inputs (workload, engine + capability version, config, schema
  version); whatever cannot be hashed raises
  :class:`~repro.cache.fingerprint.UnfingerprintableError` and runs
  uncached — notably fault-wrapped engines, by construction.
* :mod:`repro.cache.store` — the on-disk JSONL store with atomic
  appends, corruption tolerance (garbage ⇒ miss, never a crash) and
  size-bounded LRU eviction.
* :mod:`repro.cache.cached` — wrappers over the expensive result
  boundaries (``rta.npfp.analyse``, campaign run outcomes, bounded
  model checks) that serialize to / rebuild from payloads.

The campaign runners (:mod:`repro.analysis.adequacy`) accept a store and
recompute only the runs the cache cannot answer — incremental campaigns.
"""

from repro.cache.cached import (
    analysis_from_payload,
    analysis_payload,
    cached_analyse,
    cached_explore,
    exploration_from_payload,
    exploration_payload,
    outcome_from_payload,
    outcome_payload,
)
from repro.cache.fingerprint import (
    ENGINE_CAPABILITY_VERSIONS,
    SCHEMA_VERSION,
    UnfingerprintableError,
    analysis_key,
    campaign_run_key,
    canonical_json,
    client_descriptor,
    curve_descriptor,
    engine_descriptor,
    exploration_key,
    fingerprint,
    wcet_descriptor,
)
from repro.cache.store import (
    DEFAULT_MAX_BYTES,
    ENV_CACHE_DIR,
    ENV_CACHE_MAX_BYTES,
    ResultStore,
    StoreStats,
    default_cache_dir,
    default_store,
)

def cache_stats_payload(store: ResultStore | None = None) -> dict:
    """The machine-readable cache statistics document.

    One schema, three consumers: ``repro cache stats --json``, the
    daemon's ``GET /cache/stats`` endpoint, and CI — so dashboards never
    have to reconcile two spellings of the same numbers.  Covers the
    persistent store plus every in-process cache layer (memo cache,
    curve token table, SBF pools, compiled step tables).
    """
    from repro.rta.curves import memo_cache_info, token_table_info
    from repro.rta.kernel import supply_pool_info, table_cache_info
    from repro.rta.sbf import sbf_pool_info

    if store is None:
        store = default_store()
    stats = store.stats()
    memo = memo_cache_info()
    tokens = token_table_info()
    legacy_pool = sbf_pool_info()
    kernel_pool = supply_pool_info()
    tables = table_cache_info()
    return {
        "store": {
            "path": str(stats.path),
            "entries": stats.entries,
            "bytes": stats.bytes,
            "max_bytes": stats.max_bytes,
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "corrupt": stats.corrupt,
        },
        "memo_cache": {
            "currsize": memo.currsize,
            "maxsize": memo.maxsize,
            "hits": memo.hits,
            "misses": memo.misses,
        },
        "token_table": {
            "size": tokens.size,
            "limit": tokens.limit,
            "epoch": tokens.epoch,
        },
        "sbf_pools": {
            "legacy": {"size": legacy_pool.size, "limit": legacy_pool.limit},
            "kernel": {"size": kernel_pool.size, "limit": kernel_pool.limit},
        },
        "step_tables": {"size": tables.size, "limit": tables.limit},
    }


__all__ = [
    "cache_stats_payload",
    "ENGINE_CAPABILITY_VERSIONS",
    "SCHEMA_VERSION",
    "DEFAULT_MAX_BYTES",
    "ENV_CACHE_DIR",
    "ENV_CACHE_MAX_BYTES",
    "ResultStore",
    "StoreStats",
    "UnfingerprintableError",
    "analysis_from_payload",
    "analysis_key",
    "analysis_payload",
    "cached_analyse",
    "cached_explore",
    "campaign_run_key",
    "canonical_json",
    "client_descriptor",
    "curve_descriptor",
    "default_cache_dir",
    "default_store",
    "engine_descriptor",
    "exploration_from_payload",
    "exploration_key",
    "exploration_payload",
    "fingerprint",
    "outcome_from_payload",
    "outcome_payload",
    "wcet_descriptor",
]

"""On-disk content-addressed result store (JSONL, append-only + compaction).

Layout: a directory holding ``entries.jsonl``; each line is one entry

    {"key": "<sha256 fingerprint>", "sha": "<sha256 of payload JSON>",
     "payload": ...}

Appends are single ``os.write`` calls on an ``O_APPEND`` descriptor, so
concurrent writers interleave whole lines on POSIX; compaction (LRU
eviction when the file exceeds the byte budget) rewrites to a temp file
in the same directory and ``os.replace``s it — readers always see either
the old or the new file, never a partial one.

Multi-process coordination: appenders take a *shared* ``flock`` on a
stable sidecar lock file (``.entries.lock``) and compaction takes it
*exclusive*, then absorbs any line appended between its last scan and
the lock acquisition before renaming into place — a concurrent append
can therefore never be dropped by a compaction (the torn-tail window).
The lock file, not the log itself, carries the lock so an appender can
never be left holding a descriptor to an unlinked pre-compaction inode.
:meth:`refresh` gives long-lived instances a cheap way to absorb other
processes' appends (tail read when the inode is unchanged, full reload
after a compaction), and :meth:`missing` / :meth:`peek` scan without
touching hit/miss counters or LRU recency — the claim scan the
distributed campaign fabric (:mod:`repro.dist`) is built on.

Corruption tolerance is absolute: a torn tail, a garbage line, a payload
whose checksum does not match — each is skipped (counted in
``stats().corrupt``) and simply reads as a miss.  I/O errors on write
degrade to "did not cache"; the store never raises out of :meth:`get` /
:meth:`put`.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro import obs

ENTRIES_NAME = "entries.jsonl"
LOCK_NAME = ".entries.lock"
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: How many trailing bytes of the scanned prefix are remembered to
#: detect a replaced log.  Inode numbers get recycled (unlink a log,
#: compact again, and the new temp file can receive the freed inode), so
#: the inode check alone is an ABA hazard; a tail-window probe catches
#: the swap because a rewrite virtually never reproduces the same bytes
#: at the same offset.
SCAN_TAIL_BYTES = 64

#: Environment overrides honoured by :func:`default_store`.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"


def _payload_sha(payload: Any) -> str:
    encoded = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _encode_entry(key: str, payload: Any) -> bytes:
    line = json.dumps(
        {"key": key, "sha": _payload_sha(payload), "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )
    return (line + "\n").encode("utf-8")


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time snapshot of one store's state and session counters."""

    path: str
    entries: int
    bytes: int
    max_bytes: int
    hits: int
    misses: int
    evictions: int
    corrupt: int


class ResultStore:
    """Size-bounded LRU key→payload store persisted as JSONL.

    Payloads must be JSON-serializable; keys are fingerprint hex digests
    (any string works).  All filesystem failures degrade gracefully: an
    unreadable file is an empty store, an unwritable one just stops
    persisting.
    """

    def __init__(self, path: Path | str, max_bytes: int = DEFAULT_MAX_BYTES):
        self.directory = Path(path)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        self._entries: OrderedDict[str, Any] | None = None  # key -> payload
        self._sizes: dict[str, int] = {}  # key -> encoded size of live entry
        self._file_bytes = 0
        self._scanned = 0  # log bytes already merged into _entries
        self._ino: int | None = None  # inode of the log those bytes came from
        self._scan_tail = b""  # last bytes of the scanned prefix (ABA probe)

    @property
    def entries_path(self) -> Path:
        return self.directory / ENTRIES_NAME

    # -- locking -------------------------------------------------------------

    @contextmanager
    def _locked(self, *, exclusive: bool) -> Iterator[bool]:
        """``flock`` the sidecar lock file; yields whether the lock held.

        The lock lives on a stable sidecar file, never on the log itself:
        compaction replaces the log's inode, and an appender blocked on
        the *old* inode's lock would wake up holding a descriptor to an
        unlinked file and write entries into oblivion.  Appenders take it
        shared, compaction exclusive.  Any failure (no ``fcntl``, an
        unwritable directory) degrades to unlocked single-process
        behaviour rather than raising.
        """
        fd = None
        locked = False
        if fcntl is not None:
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
                fd = os.open(
                    self.directory / LOCK_NAME,
                    os.O_RDWR | os.O_CREAT,
                    0o644,
                )
                fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
                locked = True
            except OSError:
                pass
        try:
            yield locked
        finally:
            if fd is not None:
                try:
                    os.close(fd)  # closing drops the flock
                except OSError:
                    pass

    # -- loading -------------------------------------------------------------

    def _merge_lines(self, blob: bytes, *, preserve_recency: bool = False) -> int:
        """Parse whole lines from ``blob`` into the entry map; returns
        how many valid entries were merged (duplicates included).

        ``preserve_recency`` is used when absorbing a tail we may have
        written ourselves: a line whose payload equals the in-memory
        value keeps its current LRU position (re-reading our own append
        must not demote keys this process touched since)."""
        assert self._entries is not None
        merged = 0
        for line in blob.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                key = record["key"]
                payload = record["payload"]
                if not isinstance(key, str) or record["sha"] != _payload_sha(payload):
                    raise ValueError("checksum mismatch")
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                self.corrupt += 1
                continue
            merged += 1
            if preserve_recency and key in self._entries and (
                self._entries[key] == payload
            ):
                self._sizes[key] = len(line) + 1
                continue
            # Later duplicates win and refresh recency (append-only log:
            # the newest line for a key is the current value).
            self._entries.pop(key, None)
            self._entries[key] = payload
            self._sizes[key] = len(line) + 1
        return merged

    def _load(self) -> OrderedDict[str, Any]:
        if self._entries is not None:
            return self._entries
        self._entries = OrderedDict()
        self._sizes = {}
        raw = b""
        ino: int | None = None
        try:
            fd = os.open(self.entries_path, os.O_RDONLY)
            try:
                ino = os.fstat(fd).st_ino
                chunks = []
                while True:
                    chunk = os.read(fd, 1 << 20)
                    if not chunk:
                        break
                    chunks.append(chunk)
                raw = b"".join(chunks)
            finally:
                os.close(fd)
        except OSError:
            pass
        self._ino = ino
        self._file_bytes = len(raw)
        self._scanned = len(raw)
        self._scan_tail = raw[-SCAN_TAIL_BYTES:]
        self._merge_lines(raw)
        return self._entries

    def _absorb_tail(self) -> int | None:
        """Merge whole lines appended past the scanned offset; returns
        how many entries were absorbed, or ``None`` when the log under
        the path is not the one we scanned (inode changed, file shrank,
        or the tail-window probe found different bytes — the recycled-
        inode case) and a full re-read is needed.  A trailing partial
        line is left unscanned — either an in-flight writer will
        complete it or compaction will drop it."""
        try:
            fd = os.open(self.entries_path, os.O_RDONLY)
        except OSError:
            return 0
        try:
            stt = os.fstat(fd)
            if (
                self._ino is None
                or stt.st_ino != self._ino
                or stt.st_size < self._scanned
            ):
                return None
            if self._scan_tail:
                probe = os.pread(
                    fd, len(self._scan_tail),
                    self._scanned - len(self._scan_tail),
                )
                if probe != self._scan_tail:
                    return None
            if stt.st_size == self._scanned:
                return 0
            os.lseek(fd, self._scanned, os.SEEK_SET)
            chunks = []
            while True:
                chunk = os.read(fd, 1 << 20)
                if not chunk:
                    break
                chunks.append(chunk)
            raw = b"".join(chunks)
        except OSError:
            return 0
        finally:
            os.close(fd)
        if raw.endswith(b"\n"):
            complete, advance = raw, len(raw)
        else:
            cut = raw.rfind(b"\n")
            if cut < 0:
                return 0
            complete, advance = raw[: cut + 1], cut + 1
        absorbed = self._merge_lines(complete, preserve_recency=True)
        self._scanned += advance
        self._scan_tail = (self._scan_tail + complete)[-SCAN_TAIL_BYTES:]
        self._file_bytes = max(self._file_bytes, self._scanned)
        return absorbed

    def _reload(self) -> int:
        """Re-read the whole log, preserving this instance's LRU order
        for keys whose payload is unchanged (a compaction by another
        process must not demote keys this process recently touched)."""
        raw = b""
        ino: int | None = None
        try:
            fd = os.open(self.entries_path, os.O_RDONLY)
            try:
                ino = os.fstat(fd).st_ino
                chunks = []
                while True:
                    chunk = os.read(fd, 1 << 20)
                    if not chunk:
                        break
                    chunks.append(chunk)
                raw = b"".join(chunks)
            finally:
                os.close(fd)
        except OSError:
            pass
        self._ino = ino
        self._file_bytes = len(raw)
        self._scanned = len(raw)
        self._scan_tail = raw[-SCAN_TAIL_BYTES:]
        return self._merge_lines(raw, preserve_recency=True)

    def refresh(self) -> int:
        """Absorb entries other processes appended since our last scan.

        Cheap when the log is still the one we scanned (an incremental
        tail read, guarded by an inode + tail-window check); falls back
        to a full re-read after a compaction replaced the file.  Returns
        how many entries were merged.  A store that was never loaded
        simply loads."""
        if self._entries is None:
            return len(self._load())
        try:
            os.stat(self.entries_path)
        except OSError:
            # The log vanished (cleared by another process): empty store.
            self._entries = OrderedDict()
            self._sizes = {}
            self._file_bytes = 0
            self._scanned = 0
            self._ino = None
            self._scan_tail = b""
            return 0
        absorbed = self._absorb_tail()
        if absorbed is None:
            # Compacted (or re-created) underneath us: full re-read.
            return self._reload()
        return absorbed

    # -- core API ------------------------------------------------------------

    def get(self, key: str) -> Any | None:
        """The payload stored under ``key``, or ``None`` (a miss)."""
        entries = self._load()
        if key in entries:
            entries.move_to_end(key)
            self.hits += 1
            obs.inc("cache.hits")
            return entries[key]
        self.misses += 1
        obs.inc("cache.misses")
        return None

    def peek(self, key: str) -> Any | None:
        """Like :meth:`get` but without touching hit/miss counters or
        LRU recency — the claim scan used by :mod:`repro.dist`."""
        return self._load().get(key)

    def missing(self, keys: Sequence[str], *, refresh: bool = True) -> list[str]:
        """The subset of ``keys`` with no stored payload, in order.

        Counter- and recency-neutral; by default re-reads other
        processes' appends first so a campaign driver's miss scan
        reflects the shared log, not a stale snapshot."""
        if refresh:
            self.refresh()
        entries = self._load()
        return [key for key in keys if key not in entries]

    def put(self, key: str, payload: Any) -> None:
        """Store ``payload`` under ``key`` (JSON-serializable only)."""
        entries = self._load()
        encoded = _encode_entry(key, payload)
        entries.pop(key, None)
        entries[key] = payload
        self._sizes[key] = len(encoded)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with self._locked(exclusive=False):
                # Open *after* taking the shared lock: if a compaction
                # replaced the log while we waited, the path now resolves
                # to the new inode and our append lands in it.
                # O_RDWR, not O_WRONLY: the torn-tail probe below preads
                # the last byte through this same descriptor.
                fd = os.open(
                    self.entries_path,
                    os.O_RDWR | os.O_CREAT | os.O_APPEND,
                    0o644,
                )
                try:
                    # Seal a torn tail left by a crashed writer (ours or
                    # anyone's) so our entry starts on a fresh line.  The
                    # check reads the actual file: a tear may have landed
                    # after our last scan.
                    stt = os.fstat(fd)
                    if stt.st_size > 0 and (
                        os.pread(fd, 1, stt.st_size - 1) != b"\n"
                    ):
                        encoded = b"\n" + encoded
                    os.write(fd, encoded)
                    if self._ino is None:
                        # Our append (or a racing writer's) created the
                        # log: remember its identity so later refreshes
                        # can tail-read instead of reloading from scratch.
                        self._ino = stt.st_ino
                finally:
                    os.close(fd)
            self._file_bytes += len(encoded)
        except OSError:
            return  # degrade: result stays usable in-process only
        # Deliberately do NOT advance _scanned past our own line: another
        # writer may have interleaved an append before ours, and re-parsing
        # our own (idempotent, later-duplicate-wins) line on the next
        # refresh is harmless while skipping theirs would lose it.
        if self._file_bytes > self.max_bytes:
            self._compact()
        if obs.enabled():
            obs.gauge("cache.bytes", self._file_bytes)

    def _compact(self, budget: int | None = None) -> None:
        """Rewrite live entries, evicting least-recently-used to fit."""
        entries = self._load()
        budget = self.max_bytes if budget is None else budget
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            return
        with self._locked(exclusive=True):
            # Absorb everything that landed between our last scan and the
            # exclusive lock: compaction must never drop a concurrent
            # writer's entry (the torn-tail window), and if another
            # process compacted underneath us the inode changed and only
            # a full reload sees its rewrite — refresh() handles both.
            self.refresh()
            entries = self._load()
            live_bytes = sum(self._sizes[key] for key in entries)
            while entries and live_bytes > budget:
                key, _ = entries.popitem(last=False)
                live_bytes -= self._sizes.pop(key)
                self.evictions += 1
                obs.inc("cache.evictions")
            try:
                tmp = self.entries_path.with_name(
                    f".{ENTRIES_NAME}.{os.getpid()}.tmp"
                )
                written = 0
                tail = b""
                with open(tmp, "wb") as handle:
                    for key, payload in entries.items():
                        line = _encode_entry(key, payload)
                        handle.write(line)
                        written += len(line)
                        tail = (tail + line)[-SCAN_TAIL_BYTES:]
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, self.entries_path)
                self._file_bytes = written
                self._scanned = written
                self._scan_tail = tail
                try:
                    self._ino = os.stat(self.entries_path).st_ino
                except OSError:
                    self._ino = None
            except OSError:
                pass

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        entries = self._load()
        dropped = len(entries)
        entries.clear()
        self._sizes.clear()
        try:
            self.entries_path.unlink(missing_ok=True)
        except OSError:
            pass
        self._file_bytes = 0
        self._scanned = 0
        self._ino = None
        self._scan_tail = b""
        return dropped

    def gc(self, max_bytes: int | None = None) -> int:
        """Compact the log down to ``max_bytes`` (default: the store's
        budget), evicting LRU entries as needed; returns evictions."""
        before = self.evictions
        self._compact(self.max_bytes if max_bytes is None else max_bytes)
        if obs.enabled():
            obs.gauge("cache.bytes", self._file_bytes)
        return self.evictions - before

    def stats(self) -> StoreStats:
        entries = self._load()
        return StoreStats(
            path=str(self.directory),
            entries=len(entries),
            bytes=self._file_bytes,
            max_bytes=self.max_bytes,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            corrupt=self.corrupt,
        )


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def default_store() -> ResultStore:
    """The store the CLI uses, honouring the environment overrides."""
    max_bytes = DEFAULT_MAX_BYTES
    raw = os.environ.get(ENV_CACHE_MAX_BYTES)
    if raw:
        try:
            max_bytes = int(raw)
        except ValueError:
            pass
    return ResultStore(default_cache_dir(), max_bytes=max_bytes)

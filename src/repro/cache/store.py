"""On-disk content-addressed result store (JSONL, append-only + compaction).

Layout: a directory holding ``entries.jsonl``; each line is one entry

    {"key": "<sha256 fingerprint>", "sha": "<sha256 of payload JSON>",
     "payload": ...}

Appends are single ``os.write`` calls on an ``O_APPEND`` descriptor, so
concurrent writers interleave whole lines on POSIX; compaction (LRU
eviction when the file exceeds the byte budget) rewrites to a temp file
in the same directory and ``os.replace``s it — readers always see either
the old or the new file, never a partial one.

Corruption tolerance is absolute: a torn tail, a garbage line, a payload
whose checksum does not match — each is skipped (counted in
``stats().corrupt``) and simply reads as a miss.  I/O errors on write
degrade to "did not cache"; the store never raises out of :meth:`get` /
:meth:`put`.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro import obs

ENTRIES_NAME = "entries.jsonl"
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Environment overrides honoured by :func:`default_store`.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"


def _payload_sha(payload: Any) -> str:
    encoded = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _encode_entry(key: str, payload: Any) -> bytes:
    line = json.dumps(
        {"key": key, "sha": _payload_sha(payload), "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )
    return (line + "\n").encode("utf-8")


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time snapshot of one store's state and session counters."""

    path: str
    entries: int
    bytes: int
    max_bytes: int
    hits: int
    misses: int
    evictions: int
    corrupt: int


class ResultStore:
    """Size-bounded LRU key→payload store persisted as JSONL.

    Payloads must be JSON-serializable; keys are fingerprint hex digests
    (any string works).  All filesystem failures degrade gracefully: an
    unreadable file is an empty store, an unwritable one just stops
    persisting.
    """

    def __init__(self, path: Path | str, max_bytes: int = DEFAULT_MAX_BYTES):
        self.directory = Path(path)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        self._entries: OrderedDict[str, Any] | None = None  # key -> payload
        self._sizes: dict[str, int] = {}  # key -> encoded size of live entry
        self._file_bytes = 0
        self._torn_tail = False

    @property
    def entries_path(self) -> Path:
        return self.directory / ENTRIES_NAME

    # -- loading -------------------------------------------------------------

    def _load(self) -> OrderedDict[str, Any]:
        if self._entries is not None:
            return self._entries
        entries: OrderedDict[str, Any] = OrderedDict()
        sizes: dict[str, int] = {}
        raw = b""
        try:
            raw = self.entries_path.read_bytes()
        except OSError:
            pass
        self._file_bytes = len(raw)
        self._torn_tail = bool(raw) and not raw.endswith(b"\n")
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                key = record["key"]
                payload = record["payload"]
                if not isinstance(key, str) or record["sha"] != _payload_sha(payload):
                    raise ValueError("checksum mismatch")
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                self.corrupt += 1
                continue
            # Later duplicates win and refresh recency (append-only log:
            # the newest line for a key is the current value).
            entries.pop(key, None)
            entries[key] = payload
            sizes[key] = len(line) + 1
        self._entries = entries
        self._sizes = sizes
        return entries

    # -- core API ------------------------------------------------------------

    def get(self, key: str) -> Any | None:
        """The payload stored under ``key``, or ``None`` (a miss)."""
        entries = self._load()
        if key in entries:
            entries.move_to_end(key)
            self.hits += 1
            obs.inc("cache.hits")
            return entries[key]
        self.misses += 1
        obs.inc("cache.misses")
        return None

    def put(self, key: str, payload: Any) -> None:
        """Store ``payload`` under ``key`` (JSON-serializable only)."""
        entries = self._load()
        encoded = _encode_entry(key, payload)
        entries.pop(key, None)
        entries[key] = payload
        self._sizes[key] = len(encoded)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                self.entries_path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                if self._torn_tail:
                    # Seal a torn tail left by a crashed writer so our
                    # entry starts on a fresh line.
                    encoded = b"\n" + encoded
                    self._torn_tail = False
                os.write(fd, encoded)
            finally:
                os.close(fd)
            self._file_bytes += len(encoded)
        except OSError:
            return  # degrade: result stays usable in-process only
        if self._file_bytes > self.max_bytes:
            self._compact()
        if obs.enabled():
            obs.gauge("cache.bytes", self._file_bytes)

    def _compact(self, budget: int | None = None) -> None:
        """Rewrite live entries, evicting least-recently-used to fit."""
        entries = self._load()
        budget = self.max_bytes if budget is None else budget
        live_bytes = sum(self._sizes[key] for key in entries)
        while entries and live_bytes > budget:
            key, _ = entries.popitem(last=False)
            live_bytes -= self._sizes.pop(key)
            self.evictions += 1
            obs.inc("cache.evictions")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.entries_path.with_name(
                f".{ENTRIES_NAME}.{os.getpid()}.tmp"
            )
            with open(tmp, "wb") as handle:
                for key, payload in entries.items():
                    handle.write(_encode_entry(key, payload))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.entries_path)
            self._file_bytes = live_bytes
            self._torn_tail = False
        except OSError:
            pass

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        entries = self._load()
        dropped = len(entries)
        entries.clear()
        self._sizes.clear()
        try:
            self.entries_path.unlink(missing_ok=True)
        except OSError:
            pass
        self._file_bytes = 0
        self._torn_tail = False
        return dropped

    def gc(self, max_bytes: int | None = None) -> int:
        """Compact the log down to ``max_bytes`` (default: the store's
        budget), evicting LRU entries as needed; returns evictions."""
        before = self.evictions
        self._compact(self.max_bytes if max_bytes is None else max_bytes)
        if obs.enabled():
            obs.gauge("cache.bytes", self._file_bytes)
        return self.evictions - before

    def stats(self) -> StoreStats:
        entries = self._load()
        return StoreStats(
            path=str(self.directory),
            entries=len(entries),
            bytes=self._file_bytes,
            max_bytes=self.max_bytes,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            corrupt=self.corrupt,
        )


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def default_store() -> ResultStore:
    """The store the CLI uses, honouring the environment overrides."""
    max_bytes = DEFAULT_MAX_BYTES
    raw = os.environ.get(ENV_CACHE_MAX_BYTES)
    if raw:
        try:
            max_bytes = int(raw)
        except ValueError:
            pass
    return ResultStore(default_cache_dir(), max_bytes=max_bytes)

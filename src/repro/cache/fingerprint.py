"""Content-addressed fingerprints of analysis/simulation inputs.

A fingerprint is the SHA-256 of a *canonical* JSON encoding of
everything a result depends on: the workload/task-set descriptor, the
engine id plus its capability version, the analysis configuration, and
the cache schema version.  Canonicalization makes the hash insensitive
to dict ordering and to equal-but-not-identical specs (two
``SporadicCurve(200)`` instances, a task list built in a different
order) while any *semantic* change — a WCET, a priority, a curve
parameter, the horizon, the engine — flips it.

What cannot be fingerprinted must not be cached:
:class:`UnfingerprintableError` is raised for ad-hoc curves (lambdas in
tests), unregistered engines, and — by construction — fault-wrapped
engines (:class:`repro.faults.inject.FaultyEngine` is not a registry
engine class and carries a non-registry name), so an injected defect
can never be masked by a cached clean result.  Callers treat the error
as "run cold"; the safety rail is that the faulty artifact can never be
*keyed*, hence never stored or retrieved.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Mapping, Sequence

from repro.engine import SchedulerEngine, resolve_engine_name
from repro.engine.engines import (
    CodegenEngine,
    MiniCInterpEngine,
    PythonModelEngine,
    VmEngine,
)
from repro.model.task import Task
from repro.rossl.client import RosslClient
from repro.rta.curves import (
    ArrivalCurve,
    LeakyBucketCurve,
    MemoCurve,
    ShiftedCurve,
    SporadicCurve,
    TableCurve,
)
from repro.timing.wcet import WcetModel

#: Bump when the *meaning* of any cached payload or key changes — old
#: entries then simply stop matching (a miss, never a wrong answer).
SCHEMA_VERSION = 1

#: Per-engine capability versions.  Bump an entry when that engine's
#: observable semantics change (a trace it emits differs for some
#: input); every cached result produced through it is then invalidated.
#: Engines registered by extensions are absent on purpose: the cache
#: does not know when their semantics change, so they are
#: unfingerprintable until listed here.
ENGINE_CAPABILITY_VERSIONS: dict[str, int] = {
    "python": 1,
    "interp": 1,
    "vm": 1,
    "vm-opt": 1,
    "codegen": 1,
}

#: The exact engine classes the registry builds for each canonical name.
#: An engine *instance* is fingerprintable only if its concrete type is
#: one of these — wrappers (fault-injected engines, ad-hoc test doubles)
#: fail the check no matter what ``name`` they advertise.
_PRISTINE_ENGINE_TYPES = (
    PythonModelEngine,
    MiniCInterpEngine,
    VmEngine,
    CodegenEngine,
)


class UnfingerprintableError(TypeError):
    """The object has no stable content fingerprint; run uncached."""


def _canonical(value: Any) -> Any:
    """Normalize ``value`` into a JSON-able form with a unique encoding."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise UnfingerprintableError("non-finite float in fingerprint input")
        return value
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise UnfingerprintableError(
                    f"mapping keys must be strings, got {type(key).__name__}"
                )
            out[key] = _canonical(item)
        return out
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    raise UnfingerprintableError(
        f"cannot fingerprint a {type(value).__name__}"
    )


def canonical_json(value: Any) -> str:
    """The canonical JSON encoding hashing is defined over."""
    return json.dumps(
        _canonical(value), sort_keys=True, separators=(",", ":"),
        ensure_ascii=True, allow_nan=False,
    )


def fingerprint(value: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


# -- domain descriptors ------------------------------------------------------


def curve_descriptor(curve: ArrivalCurve) -> dict:
    """A structural descriptor of a shipped curve type.

    Mirrors the spec-file curve format (:mod:`repro.config`) so a curve
    parsed from JSON and one constructed in code hash identically.
    """
    if isinstance(curve, MemoCurve):
        return curve_descriptor(curve.base)
    if isinstance(curve, SporadicCurve):
        return {"kind": "sporadic", "min_separation": curve.min_separation}
    if isinstance(curve, LeakyBucketCurve):
        return {
            "kind": "leaky-bucket",
            "burst": curve.burst,
            "rate_separation": curve.rate_separation,
        }
    if isinstance(curve, TableCurve):
        return {
            "kind": "table",
            "steps": [[window, count] for window, count in curve.steps],
            "tail_separation": curve.tail_separation,
        }
    if isinstance(curve, ShiftedCurve):
        return {
            "kind": "shifted",
            "shift": curve.shift,
            "base": curve_descriptor(curve.base),
        }
    raise UnfingerprintableError(
        f"curve type {type(curve).__name__} has no stable descriptor"
    )


def task_descriptor(task: Task, curve: ArrivalCurve | None) -> dict:
    return {
        "name": task.name,
        "priority": task.priority,
        "wcet": task.wcet,
        "type_tag": task.type_tag,
        "deadline": task.deadline,
        "curve": None if curve is None else curve_descriptor(curve),
    }


def client_descriptor(client: RosslClient) -> dict:
    """The full workload descriptor of a deployment's client.

    Task order is part of the descriptor on purpose: ``TaskSystem``
    iteration order feeds report row order, so two clients listing the
    same tasks in different orders produce different (byte-level)
    reports and must not share cache entries.
    """
    tasks = []
    for task in client.tasks:
        try:
            curve: ArrivalCurve | None = client.tasks.arrival_curve(task.name)
        except KeyError:
            curve = None
        tasks.append(task_descriptor(task, curve))
    return {
        "policy": client.policy,
        "sockets": list(client.sockets),
        "tasks": tasks,
    }


def wcet_descriptor(wcet: WcetModel) -> dict:
    return {
        "failed_read": wcet.failed_read,
        "success_read": wcet.success_read,
        "selection": wcet.selection,
        "dispatch": wcet.dispatch,
        "completion": wcet.completion,
        "idling": wcet.idling,
    }


def engine_descriptor(engine: str | SchedulerEngine) -> dict:
    """Engine id + capability version, or :class:`UnfingerprintableError`.

    Accepts a registry name (including aliases) or a built engine
    instance.  Instances are fingerprintable only when their concrete
    type is one of the pristine registry engine classes *and* their name
    resolves in the registry — a fault-wrapped engine
    (``"python+heap_corruption"``, a non-registry class) fails both
    tests, so faulty results are uncacheable by construction.
    """
    if isinstance(engine, str):
        try:
            name = resolve_engine_name(engine)
        except ValueError as exc:
            raise UnfingerprintableError(str(exc)) from exc
    else:
        if type(engine) not in _PRISTINE_ENGINE_TYPES:
            raise UnfingerprintableError(
                f"engine {getattr(engine, 'name', engine)!r} is not a "
                "pristine registry engine (wrapped or custom engines are "
                "unfingerprintable by construction)"
            )
        try:
            name = resolve_engine_name(engine.name)
        except ValueError as exc:
            raise UnfingerprintableError(str(exc)) from exc
    version = ENGINE_CAPABILITY_VERSIONS.get(name)
    if version is None:
        raise UnfingerprintableError(
            f"engine {name!r} has no declared capability version; "
            "extension engines are uncacheable until versioned"
        )
    return {"engine": name, "capability_version": version}


# -- cache keys --------------------------------------------------------------


def analysis_key(client: RosslClient, wcet: WcetModel, horizon: int) -> str:
    """Key of one :func:`repro.rta.npfp.analyse` result."""
    return fingerprint({
        "kind": "rta.analyse",
        "schema": SCHEMA_VERSION,
        "client": client_descriptor(client),
        "wcet": wcet_descriptor(wcet),
        "horizon": horizon,
    })


def campaign_run_key(
    client: RosslClient,
    wcet: WcetModel,
    engine: str | SchedulerEngine,
    *,
    horizon: int,
    runs: int,
    seed_root: int,
    intensity: float,
    adversarial_fraction: float,
    analysis_horizon: int,
    index: int,
) -> str:
    """Key of one adequacy-campaign run outcome.

    Everything :func:`repro.analysis.adequacy.adequacy_run` reads is in
    the key — including ``runs`` (it sets the adversarial cutoff) and
    ``analysis_horizon`` (it determines the bounds checked against).
    """
    return fingerprint({
        "kind": "campaign.run",
        "schema": SCHEMA_VERSION,
        "client": client_descriptor(client),
        "wcet": wcet_descriptor(wcet),
        "engine": engine_descriptor(engine),
        "horizon": horizon,
        "runs": runs,
        "seed_root": seed_root,
        "intensity": intensity,
        "adversarial_fraction": adversarial_fraction,
        "analysis_horizon": analysis_horizon,
        "index": index,
    })


def exploration_key(
    client: RosslClient,
    payloads: Sequence[Sequence[int]],
    max_reads: int,
    engine: str | SchedulerEngine,
) -> str:
    """Key of one bounded-model-check exploration report."""
    return fingerprint({
        "kind": "verify.explore",
        "schema": SCHEMA_VERSION,
        "client": client_descriptor(client),
        "payloads": [list(p) for p in payloads],
        "max_reads": max_reads,
        "engine": engine_descriptor(engine),
    })

"""Atomic lease files: advisory work claims over content-addressed keys.

A lease on key ``K`` is the file ``<dir>/<K>.lease`` holding a small
JSON document ``{"owner": ..., "acquired": <clock>, "ttl": <seconds>}``.
Claiming is atomic: the owner document is written to a unique temp file
and ``os.link``-ed to the lease path — ``EEXIST`` means someone else
holds the claim.  Releasing unlinks the file; a holder killed with
``kill -9`` simply leaves its lease behind, and once ``ttl`` seconds of
the broker's clock have passed the lease is *expired* and any other
worker may steal it (an atomic ``os.replace`` of its own document over
the stale one, verified by re-reading).

Leases are strictly advisory.  Correctness in the campaign fabric never
depends on mutual exclusion: outcomes are content-addressed and
idempotent (two workers computing the same key append byte-identical
payloads, and later duplicates win harmlessly in the store), so the
worst a lost lease race costs is one duplicated computation.  That is
also why the unavoidable steal/steal and release-after-steal TOCTOU
windows below are acceptable: both "winners" do the same work and write
the same bytes.

The clock is injectable (``clock=``) so tests — and the chaos harness in
``tests/dist_harness.py`` — can expire leases deterministically instead
of sleeping.

Counters (via :mod:`repro.obs`): ``dist.claims`` for successful
acquisitions, ``dist.lease_expiries`` for expired/abandoned leases
broken or stolen.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro import obs

LEASE_SUFFIX = ".lease"
DEFAULT_TTL = 30.0

_SAFE_KEY = re.compile(r"[A-Za-z0-9_.-]+")
_counter = itertools.count()


@dataclass(frozen=True)
class LeaseInfo:
    """One lease as read back from disk."""

    key: str
    owner: str
    acquired: float
    ttl: float


def owner_pid(owner: str) -> int | None:
    """The pid encoded in a fabric owner id (``"w<id>:<pid>"`` or
    ``"<label>:<pid>"``), or ``None`` for foreign formats."""
    _, _, tail = owner.rpartition(":")
    try:
        return int(tail)
    except ValueError:
        return None


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe; unknown (EPERM) counts as alive."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


class LeaseBroker:
    """Claims, releases, and steals leases for one owner identity."""

    def __init__(
        self,
        directory: Path | str,
        owner: str,
        *,
        ttl: float = DEFAULT_TTL,
        clock: Callable[[], float] = time.time,
    ):
        self.directory = Path(directory)
        self.owner = owner
        self.ttl = ttl
        self.clock = clock

    def _path(self, key: str) -> Path:
        if not _SAFE_KEY.fullmatch(key):
            # Keys are fingerprint hex digests in practice; anything else
            # gets a stable digest-shaped filename.
            import hashlib

            key = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.directory / f"{key}{LEASE_SUFFIX}"

    def _read(self, path: Path, key: str) -> LeaseInfo | None:
        try:
            record = json.loads(path.read_text("utf-8"))
            return LeaseInfo(
                key=key,
                owner=str(record["owner"]),
                acquired=float(record["acquired"]),
                ttl=float(record["ttl"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _document(self) -> tuple[bytes, float]:
        acquired = float(self.clock())
        doc = json.dumps(
            {"owner": self.owner, "acquired": acquired, "ttl": self.ttl},
            sort_keys=True,
        ).encode("utf-8")
        return doc, acquired

    def expired(self, info: LeaseInfo | None) -> bool:
        """An unreadable/unparseable lease counts as expired (a torn
        write from a dying process holds no claim)."""
        if info is None:
            return True
        return self.clock() >= info.acquired + info.ttl

    def holder(self, key: str) -> LeaseInfo | None:
        """The current lease on ``key`` as read from disk, or ``None``."""
        path = self._path(key)
        if not path.exists():
            return None
        return self._read(path, key)

    def acquire(self, key: str) -> bool:
        """Try to claim ``key``; steals an expired lease.  Returns
        whether this owner now (verifiably) holds the claim."""
        path = self._path(key)
        doc, acquired = self._document()
        tmp = self.directory / (
            f".{os.getpid()}.{next(_counter)}{LEASE_SUFFIX}.tmp"
        )
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(doc)
        except OSError:
            return False
        try:
            os.link(tmp, path)
        except FileExistsError:
            current = self._read(path, key)
            if current is not None and not self.expired(current):
                _unlink_quiet(tmp)
                return False
            # Expired (or torn) lease: steal by atomic replace, then
            # verify we won — concurrent stealers race, last one wins.
            try:
                os.replace(tmp, path)
            except OSError:
                _unlink_quiet(tmp)
                return False
            obs.inc("dist.lease_expiries")
            mine = self._read(path, key)
            won = (
                mine is not None
                and mine.owner == self.owner
                and mine.acquired == acquired
            )
            if won:
                obs.inc("dist.claims")
            return won
        except OSError:
            _unlink_quiet(tmp)
            return False
        _unlink_quiet(tmp)
        obs.inc("dist.claims")
        return True

    def release(self, key: str) -> None:
        """Drop this owner's lease on ``key`` (a no-op if someone stole
        it in the meantime)."""
        path = self._path(key)
        info = self._read(path, key)
        if info is not None and info.owner != self.owner:
            return
        _unlink_quiet(path)

    def break_lease(self, key: str) -> bool:
        """Forcibly remove whatever lease is on ``key`` (driver-side:
        the owner is known dead).  Returns whether one was removed."""
        path = self._path(key)
        if not path.exists():
            return False
        _unlink_quiet(path)
        obs.inc("dist.lease_expiries")
        return True

    def sweep(self, keys: Iterable[str] | None = None) -> int:
        """Remove expired leases (all in the directory, or just those of
        ``keys``); returns how many were removed."""
        removed = 0
        if keys is not None:
            paths = [self._path(key) for key in keys]
        else:
            try:
                paths = sorted(self.directory.glob(f"*{LEASE_SUFFIX}"))
            except OSError:
                return 0
        for path in paths:
            if not path.exists():
                continue
            info = self._read(path, path.name[: -len(LEASE_SUFFIX)])
            if self.expired(info):
                _unlink_quiet(path)
                obs.inc("dist.lease_expiries")
                removed += 1
        return removed

    def active(self) -> list[LeaseInfo]:
        """Unexpired leases currently on disk, sorted by key."""
        out = []
        try:
            paths = sorted(self.directory.glob(f"*{LEASE_SUFFIX}"))
        except OSError:
            return []
        for path in paths:
            info = self._read(path, path.name[: -len(LEASE_SUFFIX)])
            if info is not None and not self.expired(info):
                out.append(info)
        return out


def _unlink_quiet(path: Path) -> None:
    try:
        path.unlink(missing_ok=True)
    except OSError:
        pass

"""Work-stealing campaign fabric over the content-addressed store.

The unit of distribution is one adequacy run: its fingerprint key
(:func:`repro.cache.campaign_run_key`) names the work, the shared
:class:`~repro.cache.ResultStore` holds the answer, and a lease file
(:mod:`repro.dist.lease`) marks it in-flight.  Every worker runs the
same loop — *claim → compute → atomic JSONL append → release* — first
over its own round-robin shard of the missing indices, then in steal
sweeps over whatever is still missing anywhere.  A campaign is therefore
just "resume until no misses remain": workers are stateless, carry no
partial results, and can be ``kill -9``-ed at any point — the worst a
death costs is one abandoned lease (expired by TTL or broken by the
driver once the owner pid is dead) and one recomputation.

Determinism: the final report is *never* assembled from worker message
order.  The driver re-reads every outcome from the store and merges them
in run-index order (:func:`repro.analysis.adequacy.merge_outcomes`), and
each outcome is fully determined by ``seed_root + index`` — so the
report bytes are identical for any worker count, interleaving, kill
point, or resume schedule.  Duplicated work (a lease race, a steal of a
live-but-slow worker's claim) appends byte-identical payloads the store
dedupes harmlessly.

Failure taxonomy (driver side, per round):

- a missing index whose lease owner's pid is dead ⇒ a *crash charge*;
  past ``index_retries`` charges the index is quarantined and computed
  serially in the driver (the PR 4 idea: one suspect, own sandbox);
- a worker alive past ``round_timeout`` ⇒ a straggler, killed like a
  crasher (its leases expire or are broken the same way);
- anything still missing after ``max_rounds`` ⇒ a degraded report with
  ``reason="missing"`` :class:`~repro.analysis.parallel.ShardFailure`
  records — rerunning with the same store resumes exactly there.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro import obs
from repro.analysis.adequacy import RunOutcome, adequacy_run
from repro.analysis.parallel import (
    ShardFailure,
    fork_available,
    init_worker_obs,
    merge_worker_snapshots,
)
from repro.cache import outcome_from_payload, outcome_payload
from repro.cache.store import ResultStore
from repro.dist.chaos import ChaosMonkey, KillSpec, kill_spec_from_env
from repro.dist.lease import (
    DEFAULT_TTL,
    LeaseBroker,
    owner_pid,
    pid_alive,
)
from repro.engine import as_engine, resolve_engine_name

#: Lease files live beside the entry log, inside the store directory.
LEASES_DIRNAME = "leases"

#: Job kind the resident pool dispatches to :func:`execute_dist_shard`.
JOB_DIST_SHARD = "dist_shard"


@dataclass(frozen=True)
class FabricConfig:
    """How one distributed campaign runs.

    ``order_seed`` permutes each worker's visit order (the harness uses
    it to exercise interleavings); ``kill`` arms a seeded kill point in
    the workers (see :mod:`repro.dist.chaos`).  Neither affects report
    bytes — only which worker computes what, when.
    """

    workers: int = 2
    lease_ttl: float = DEFAULT_TTL
    steal: bool = True
    steal_sweeps: int = 4
    steal_backoff: float = 0.01
    max_rounds: int = 8
    index_retries: int = 1
    round_timeout: float | None = None
    order_seed: int | None = None
    kill: KillSpec | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("a fabric needs at least one worker")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")


def leases_dir(store: ResultStore | Path | str) -> Path:
    base = store.directory if isinstance(store, ResultStore) else Path(store)
    return base / LEASES_DIRNAME


def stored_outcome(store: ResultStore, key: str, index: int) -> RunOutcome | None:
    """The validated outcome for ``index`` under ``key``, else ``None``
    (counter-neutral: this is the fabric's claim scan)."""
    payload = store.peek(key)
    if payload is None:
        return None
    outcome = outcome_from_payload(payload)
    if outcome is None or outcome.run_index != index:
        return None
    return outcome


def _permuted(items: Sequence[int], order_seed: int | None, salt: int) -> list[int]:
    out = list(items)
    if order_seed is not None:
        random.Random(order_seed * 1_000_003 + salt).shuffle(out)
    return out


def _work_shard(
    worker_id: int,
    config: FabricConfig,
    setup: tuple,
    keys: Sequence[str],
    own: Sequence[int],
    everything: Sequence[int],
    store: ResultStore,
    broker: LeaseBroker,
    chaos: ChaosMonkey,
    engine,
) -> dict:
    """One worker's claim→compute→append→release loop (both execution
    modes run exactly this)."""
    (client, wcet, analysis, horizon, runs,
     seed_root, intensity, adversarial_fraction, _engine_name) = setup
    stats = {"claims": 0, "steals": 0, "computed": 0}
    own_set = set(own)

    def attempt(index: int, stolen: bool) -> None:
        key = keys[index]
        if store.peek(key) is not None:
            return
        chaos.observe("claim")
        if not broker.acquire(key):
            return
        stats["claims"] += 1
        if stolen:
            stats["steals"] += 1
            obs.inc("dist.steals")
        chaos.observe("compute")
        outcome = adequacy_run(
            client, wcet, analysis, horizon, runs, index,
            seed_root=seed_root, intensity=intensity,
            adversarial_fraction=adversarial_fraction, engine=engine,
        )
        chaos.observe("put")
        store.put(key, outcome_payload(outcome))
        stats["computed"] += 1
        chaos.observe("release")
        broker.release(key)

    for index in _permuted(own, config.order_seed, worker_id):
        attempt(index, stolen=False)
    if config.steal:
        for sweep in range(config.steal_sweeps):
            store.refresh()
            rest = [i for i in everything if store.peek(keys[i]) is None]
            if not rest:
                break
            for index in _permuted(
                rest, config.order_seed, worker_id + 1000 * (sweep + 1)
            ):
                attempt(index, stolen=index not in own_set)
            if config.steal_backoff > 0:
                time.sleep(config.steal_backoff)
    return stats


def _worker_owner(worker_id: int) -> str:
    return f"w{worker_id}:{os.getpid()}"


def _fabric_worker_main(
    worker_id: int,
    config: FabricConfig,
    setup: tuple,
    keys: Sequence[str],
    own: Sequence[int],
    everything: Sequence[int],
    store_dir: str,
    max_bytes: int,
    conn,
    obs_enabled: bool,
) -> None:
    """Entry point of one forked fabric worker."""
    init_worker_obs(obs_enabled)
    spec = config.kill if config.kill is not None else kill_spec_from_env()
    chaos = ChaosMonkey(spec, worker_id)
    store = ResultStore(store_dir, max_bytes=max_bytes)
    broker = LeaseBroker(
        leases_dir(store), _worker_owner(worker_id), ttl=config.lease_ttl
    )
    (client, *_rest, engine_name) = setup
    try:
        engine = as_engine(engine_name, client)
        stats = _work_shard(
            worker_id, config, setup, keys, own, everything,
            store, broker, chaos, engine,
        )
    except Exception:
        try:
            conn.close()
        finally:
            os._exit(1)
        return
    delta = obs.snapshot() if obs.enabled() else None
    try:
        conn.send(("done", stats, delta))
        conn.close()
    except (BrokenPipeError, OSError):
        pass


def _serial_round(setup: tuple, keys, remaining, store: ResultStore) -> None:
    """No fork, no pool: compute the missing runs in-process (the fabric
    still works, it just isn't parallel)."""
    (client, wcet, analysis, horizon, runs,
     seed_root, intensity, adversarial_fraction, engine_name) = setup
    engine = as_engine(engine_name, client)
    for index in remaining:
        outcome = adequacy_run(
            client, wcet, analysis, horizon, runs, index,
            seed_root=seed_root, intensity=intensity,
            adversarial_fraction=adversarial_fraction, engine=engine,
        )
        store.put(keys[index], outcome_payload(outcome))


def _fork_round(
    setup: tuple,
    keys: Sequence[str],
    remaining: Sequence[int],
    config: FabricConfig,
    store: ResultStore,
) -> None:
    """One round of forked workers over ``remaining``; joins them all."""
    if not fork_available():  # pragma: no cover - non-POSIX fallback
        _serial_round(setup, keys, remaining, store)
        return
    context = multiprocessing.get_context("fork")
    workers = max(1, min(config.workers, len(remaining)))
    procs = []
    for worker_id in range(workers):
        own = list(remaining)[worker_id::workers]
        parent_conn, child_conn = context.Pipe(duplex=False)
        proc = context.Process(
            target=_fabric_worker_main,
            args=(
                worker_id, config, setup, keys, own, list(remaining),
                str(store.directory), store.max_bytes, child_conn,
                obs.enabled(),
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        procs.append((proc, parent_conn))
    obs.inc("dist.workers_spawned", workers)
    deadline = (
        time.monotonic() + config.round_timeout
        if config.round_timeout is not None
        else None
    )
    for proc, conn in procs:
        budget = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        proc.join(budget)
        if proc.is_alive():
            # Straggler: kill it like any crasher; its leases expire or
            # get broken by dead-pid attribution.
            proc.kill()
            proc.join()
            obs.inc("dist.stragglers")
        if proc.exitcode not in (0, None):
            obs.inc("dist.worker_deaths")
        try:
            if conn.poll(0):
                message = conn.recv()
                if message and message[0] == "done":
                    merge_worker_snapshots([message[2]])
        except (EOFError, OSError):
            pass
        try:
            conn.close()
        except OSError:
            pass


def _pool_round(
    pool,
    setup: tuple,
    keys: Sequence[str],
    remaining: Sequence[int],
    config: FabricConfig,
    store: ResultStore,
) -> None:
    """One round on resident workers (PR 7 pool): each worker gets a
    shard plus the full missing list for its steal sweeps."""
    from concurrent.futures import ThreadPoolExecutor

    from repro.serve.pool import PoolError, PoolShutDown

    workers = max(1, min(config.workers, pool.workers, len(remaining)))
    shards = [
        (worker_id, list(remaining)[worker_id::workers])
        for worker_id in range(workers)
    ]

    def run(shard) -> None:
        worker_id, own = shard
        try:
            pool.submit(
                JOB_DIST_SHARD,
                (
                    setup, list(keys), own, list(remaining),
                    str(store.directory), store.max_bytes, config, worker_id,
                ),
                timeout=config.round_timeout,
            )
        except PoolShutDown:
            raise
        except PoolError:
            obs.inc("dist.worker_deaths")

    with ThreadPoolExecutor(max_workers=workers) as executor:
        list(executor.map(run, shards))


def execute_dist_shard(
    setup: tuple,
    keys: Sequence[str],
    own: Sequence[int],
    everything: Sequence[int],
    store_dir: str,
    max_bytes: int,
    config: FabricConfig,
    worker_id: int,
) -> dict:
    """One fabric shard on a resident worker (``JOB_DIST_SHARD``).

    Mirrors :func:`_fabric_worker_main` but draws the engine from the
    worker's warm cache, the whole point of resident execution."""
    from repro.serve.pool import _cached_engine

    (client, wcet, analysis, horizon, runs,
     seed_root, intensity, adversarial_fraction, engine_name) = setup
    engine = _cached_engine(engine_name, client)
    # The registry pins engines to their client by identity; the shard
    # arrived with a fresh unpickled copy, so run against the cached
    # engine's own client.
    client = engine.client
    setup = (client, wcet, analysis, horizon, runs,
             seed_root, intensity, adversarial_fraction, engine_name)
    spec = config.kill if config.kill is not None else kill_spec_from_env()
    chaos = ChaosMonkey(spec, worker_id)
    store = ResultStore(store_dir, max_bytes=max_bytes)
    broker = LeaseBroker(
        leases_dir(store), _worker_owner(worker_id), ttl=config.lease_ttl
    )
    return _work_shard(
        worker_id, config, setup, keys, own, everything,
        store, broker, chaos, engine,
    )


def run_fabric_campaign(
    client,
    wcet,
    analysis,
    horizon: int,
    runs: int,
    *,
    seed_root: int,
    intensity: float,
    adversarial_fraction: float,
    engine,
    store: ResultStore,
    keys: Sequence[str],
    indices: Sequence[int],
    config: FabricConfig,
    pool=None,
) -> tuple[list[RunOutcome], tuple[ShardFailure, ...]]:
    """Drive rounds of workers until no fingerprints are missing.

    Returns the outcomes of ``indices`` as re-read from the store (the
    only source of truth) plus degraded-report failures for whatever is
    still missing after the round budget.  ``pool`` switches execution
    to resident workers; otherwise each round forks fresh ones.
    """
    engine_name = resolve_engine_name(
        engine if isinstance(engine, str) else engine.name
    )
    setup = (client, wcet, analysis, horizon, runs,
             seed_root, intensity, adversarial_fraction, engine_name)
    driver = LeaseBroker(
        leases_dir(store), f"driver:{os.getpid()}", ttl=config.lease_ttl
    )
    crash_counts: dict[int, int] = {}
    failures: list[ShardFailure] = []
    rounds = 0
    backend = None
    with obs.span("campaign.fabric", runs=len(indices), workers=config.workers):
        while True:
            store.refresh()
            remaining = [
                i for i in indices if stored_outcome(store, keys[i], i) is None
            ]
            if not remaining:
                break
            quarantined = [
                i for i in remaining
                if crash_counts.get(i, 0) > config.index_retries
            ]
            if quarantined:
                # Repeat offenders run serially in the driver: if the
                # input itself kills workers, it gets one supervised
                # computation instead of burning rounds.
                if backend is None:
                    backend = as_engine(engine, client)
                for index in quarantined:
                    driver.break_lease(keys[index])
                    outcome = adequacy_run(
                        client, wcet, analysis, horizon, runs, index,
                        seed_root=seed_root, intensity=intensity,
                        adversarial_fraction=adversarial_fraction,
                        engine=backend,
                    )
                    store.put(keys[index], outcome_payload(outcome))
                    obs.inc("dist.quarantined")
                continue
            if rounds >= config.max_rounds:
                failures = [
                    ShardFailure(
                        chunk_index=index,
                        attempts=max(1, crash_counts.get(index, 0)),
                        reason="missing",
                        detail=(
                            "run not computed within the fabric round "
                            "budget; rerun with the same store to resume"
                        ),
                    )
                    for index in remaining
                ]
                obs.inc("parallel.shards_failed", len(failures))
                break
            rounds += 1
            obs.inc("dist.rounds")
            # Pre-round sweep: leases whose owner pid is dead (a killed
            # worker from a previous round or a previous *process*, the
            # resume case) must not stall the round until TTL expiry.
            for index in remaining:
                info = driver.holder(keys[index])
                if info is None:
                    continue
                pid = owner_pid(info.owner)
                if pid is None or not pid_alive(pid):
                    driver.break_lease(keys[index])
            if pool is not None:
                _pool_round(pool, setup, keys, remaining, config, store)
            else:
                _fork_round(setup, keys, remaining, config, store)
            # Attribution: a run still missing while a dead pid holds its
            # lease means the worker died mid-computation — charge it so
            # repeat offenders reach quarantine.
            store.refresh()
            for index in remaining:
                if stored_outcome(store, keys[index], index) is not None:
                    continue
                info = driver.holder(keys[index])
                if info is None:
                    continue
                pid = owner_pid(info.owner)
                if pid is None or not pid_alive(pid):
                    crash_counts[index] = crash_counts.get(index, 0) + 1
                    driver.break_lease(keys[index])
    outcomes = []
    for index in indices:
        outcome = stored_outcome(store, keys[index], index)
        if outcome is not None:
            outcomes.append(outcome)
    return outcomes, tuple(failures)

"""Deterministic chaos hooks for the campaign fabric.

A :class:`KillSpec` names one seeded kill point — *worker W dies (via
``SIGKILL``, exactly as ``kill -9`` would) at its N-th occurrence of
lifecycle event E* — and :class:`ChaosMonkey` fires it from inside the
worker loop.  The four events bracket every state transition of the
claim protocol, so a spec can kill a worker:

- ``claim``   — before it acquires a lease (no trace left),
- ``compute`` — holding a lease, before any work ran,
- ``put``     — holding a lease, work done, *before* the store append
                (the clean-crash-before-write point),
- ``release`` — after the append, lease left dangling.

Specs travel two ways: explicitly through ``FabricConfig.kill`` (the
test harness), or via the ``REPRO_DIST_KILL`` environment variable
(``"worker=1,event=put,n=3"``) so the CI job can kill a real CLI
worker without touching code.  Parsing is strict — a malformed spec is
an error, never a silently armed-or-not monkey.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass

EVENTS = ("claim", "compute", "put", "release")
ENV_KILL = "REPRO_DIST_KILL"


@dataclass(frozen=True)
class KillSpec:
    """Die at the ``occurrence``-th time ``worker`` reaches ``event``."""

    worker: int
    event: str
    occurrence: int = 1

    def __post_init__(self) -> None:
        if self.event not in EVENTS:
            raise ValueError(
                f"unknown kill event {self.event!r}; expected one of {EVENTS}"
            )
        if self.occurrence < 1:
            raise ValueError("kill occurrence is 1-based")

    @classmethod
    def parse(cls, text: str) -> "KillSpec":
        """Parse ``"worker=W,event=E,n=K"`` (``n`` optional, default 1)."""
        fields: dict[str, str] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"malformed kill spec field {part!r}")
            fields[name.strip()] = value.strip()
        unknown = set(fields) - {"worker", "event", "n"}
        if unknown:
            raise ValueError(f"unknown kill spec fields: {sorted(unknown)}")
        if "worker" not in fields or "event" not in fields:
            raise ValueError("kill spec needs worker= and event=")
        return cls(
            worker=int(fields["worker"]),
            event=fields["event"],
            occurrence=int(fields.get("n", "1")),
        )

    def format(self) -> str:
        return f"worker={self.worker},event={self.event},n={self.occurrence}"


def kill_spec_from_env() -> KillSpec | None:
    """The :data:`ENV_KILL` spec, if set."""
    raw = os.environ.get(ENV_KILL)
    if not raw:
        return None
    return KillSpec.parse(raw)


class ChaosMonkey:
    """Counts one worker's lifecycle events and fires its kill point."""

    def __init__(self, spec: KillSpec | None, worker_id: int):
        self.spec = spec
        self.worker_id = worker_id
        self.count = 0

    def observe(self, event: str) -> None:
        spec = self.spec
        if spec is None or spec.worker != self.worker_id or spec.event != event:
            return
        self.count += 1
        if self.count >= spec.occurrence:
            # The real thing: SIGKILL is uncatchable, no cleanup runs,
            # leases stay on disk, pipes just close.
            os.kill(os.getpid(), signal.SIGKILL)

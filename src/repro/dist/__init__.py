"""Distributed campaign fabric (see ``docs/distributed.md``).

Turns the content-addressed result store into a coordination substrate:
workers claim missing campaign fingerprints via atomic lease files,
compute them, append to the shared JSONL log, and release — so a
campaign is "resume until no misses remain" and survives ``kill -9`` of
any worker at any point, with reports byte-identical to a serial run.

* :mod:`repro.dist.lease` — advisory atomic lease files with TTL expiry
  and verified stealing.
* :mod:`repro.dist.chaos` — seeded kill-point injection
  (:class:`~repro.dist.chaos.KillSpec`), also armed via the
  ``REPRO_DIST_KILL`` environment variable.
* :mod:`repro.dist.fabric` — the work-stealing driver and worker loop;
  plugs into :func:`repro.analysis.adequacy.run_adequacy_campaign` as
  its ``fabric=`` argument and into the PR 7 resident pool for warm
  execution.
"""

from repro.dist.chaos import ENV_KILL, EVENTS, ChaosMonkey, KillSpec, kill_spec_from_env
from repro.dist.fabric import (
    JOB_DIST_SHARD,
    LEASES_DIRNAME,
    FabricConfig,
    execute_dist_shard,
    leases_dir,
    run_fabric_campaign,
    stored_outcome,
)
from repro.dist.lease import (
    DEFAULT_TTL,
    LeaseBroker,
    LeaseInfo,
    owner_pid,
    pid_alive,
)

__all__ = [
    "ENV_KILL",
    "EVENTS",
    "ChaosMonkey",
    "KillSpec",
    "kill_spec_from_env",
    "JOB_DIST_SHARD",
    "LEASES_DIRNAME",
    "FabricConfig",
    "execute_dist_shard",
    "leases_dir",
    "run_fabric_campaign",
    "stored_outcome",
    "DEFAULT_TTL",
    "LeaseBroker",
    "LeaseInfo",
    "owner_pid",
    "pid_alive",
]

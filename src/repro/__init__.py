"""repro — an executable reproduction of RefinedProsa (PLDI 2025).

RefinedProsa connects response-time analysis (Prosa/aRSA) with C
verification (RefinedC) for interrupt-free schedulers, using the Rössl
fixed-priority non-preemptive scheduler as its case study.  This library
rebuilds every system of that paper as executable Python:

* :mod:`repro.model` — jobs, tasks, messages (the abstract workload);
* :mod:`repro.traces` — marker functions, basic actions, the scheduler
  protocol STS (Fig. 5), and functional-correctness checking (Def. 3.2);
* :mod:`repro.lang` — MiniC, a C-subset front end plus an instrumented
  operational semantics emitting marker traces (the Caesium analog of
  Fig. 6);
* :mod:`repro.rossl` — the Rössl scheduler, both as MiniC source run
  under that semantics and as a trace-equivalent Python reference model;
* :mod:`repro.timing` — timed traces, WCET assumptions, and consistency
  with arrival sequences (Def. 2.1);
* :mod:`repro.schedule` — the look-ahead conversion from timed traces to
  schedules of processor states, with the paper's validity constraints;
* :mod:`repro.rta` — arrival/release curves, release jitter, supply
  bound functions, and the aRSA-style NPFP response-time analysis
  (Thm. 4.2, Def. 4.3) with baselines and exact small-case exploration;
* :mod:`repro.sim` — discrete-event simulation producing timed traces;
* :mod:`repro.verification` — runtime spec monitors and a bounded model
  checker standing in for the RefinedC adequacy theorem (Thm. 3.4);
* :mod:`repro.analysis` — the end-to-end timing-correctness pipeline
  (Thm. 5.1) and the experiment harnesses of EXPERIMENTS.md.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

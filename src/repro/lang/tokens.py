"""Token definitions for the MiniC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    # literals / identifiers
    INT_LIT = "int-literal"
    IDENT = "identifier"
    # keywords
    KW_INT = "int"
    KW_VOID = "void"
    KW_STRUCT = "struct"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_SIZEOF = "sizeof"
    KW_NULL = "NULL"
    # punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    ARROW = "->"
    # operators
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    BANG = "!"
    EQ = "=="
    NEQ = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"
    # end of input
    EOF = "<eof>"


KEYWORDS: dict[str, TokenKind] = {
    "int": TokenKind.KW_INT,
    "void": TokenKind.KW_VOID,
    "struct": TokenKind.KW_STRUCT,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "sizeof": TokenKind.KW_SIZEOF,
    "NULL": TokenKind.KW_NULL,
}


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.line}:{self.col}"

"""Static worst-case cost analysis for MiniC (a miniature aiT/OTAWA).

The paper treats WCETs of basic actions as parameters "to be determined
experimentally or by static analysis" (§2.2) and cites industrial WCET
tools.  This module is the reproduction's static-analysis half: it
computes an upper bound on the **VM instruction count** (the cost
semantics of :mod:`repro.lang.vm`) of calling a function, given bounds
on every loop's iteration count.

The analysis mirrors the compiler's code shapes exactly — each AST form
costs what its compiled bytecode executes on its longest path — so the
soundness statement is concrete and testable:

    for every execution in which each loop iterates at most its bound,
    ``vm.executed`` for the call is ≤ ``function_cost(...)``.

Loops are identified per function in source (pre-)order; ``loop_bounds``
maps function names to their per-loop iteration bounds.  Recursive
functions are rejected (their cost is unbounded without further
annotation), matching the paper's observation that basic actions contain
no unbounded control flow.
"""

from __future__ import annotations

from repro.lang.builtins import BUILTIN_ARITY
from repro.lang.syntax import (
    AssignStmt,
    Binary,
    Block,
    BreakStmt,
    Call,
    ContinueStmt,
    DeclStmt,
    Expr,
    ExprStmt,
    IfStmt,
    Index,
    IntLit,
    Member,
    NullLit,
    ReturnStmt,
    SizeofType,
    Stmt,
    TArray,
    TVoid,
    Unary,
    Var,
    WhileStmt,
)
from repro.lang.typecheck import BUILTINS, TypedProgram

#: Bounds on loop iteration counts: function name → bounds, one per
#: ``while`` in source order.
LoopBounds = dict[str, list[int]]


class CostError(Exception):
    """The cost of a function cannot be bounded (recursion, or a loop
    without a bound)."""


class CostAnalyzer:
    """Computes worst-case VM instruction counts per function call."""

    def __init__(self, typed: TypedProgram, loop_bounds: LoopBounds | None = None) -> None:
        self.typed = typed
        self.loop_bounds: LoopBounds = dict(loop_bounds or {})
        self._cache: dict[str, int] = {}

    # -- public API ----------------------------------------------------------

    def function_cost(self, name: str) -> int:
        """Worst-case instructions executed *inside* a call of ``name``
        (excluding the caller's ``call`` instruction itself)."""
        return self._function_cost(name, stack=())

    def call_cost(self, name: str) -> int:
        """Worst-case cost of the call as the caller pays it: the
        ``call`` instruction plus the callee body."""
        return 1 + self.function_cost(name)

    # -- functions ----------------------------------------------------------

    def _function_cost(self, name: str, stack: tuple[str, ...]) -> int:
        if name in self._cache:
            return self._cache[name]
        if name in stack:
            raise CostError(
                f"recursion through {name!r} ({' -> '.join(stack + (name,))})"
            )
        func = self.typed.functions.get(name)
        if func is None:
            raise CostError(f"unknown function {name!r}")
        bounds = iter(self.loop_bounds.get(name, []))
        body = self._stmt_cost(func.body, name, stack + (name,), bounds)
        # Implicit trailing `ret` for void functions (a non-void function
        # reaching its `fell_off` is UB, not a cost to bound).
        total = body + (1 if isinstance(func.ret, TVoid) else 0)
        self._cache[name] = total
        return total

    # -- statements ----------------------------------------------------------

    def _stmt_cost(self, stmt: Stmt, fn: str, stack, bounds) -> int:
        if isinstance(stmt, Block):
            return sum(self._stmt_cost(s, fn, stack, bounds) for s in stmt.stmts)
        if isinstance(stmt, DeclStmt):
            if stmt.init is None:
                return 0
            # local; init; store
            return 1 + self._expr_cost(stmt.init, fn, stack) + 1
        if isinstance(stmt, AssignStmt):
            return (
                self._addr_cost(stmt.lhs, fn, stack)
                + self._expr_cost(stmt.rhs, fn, stack)
                + 1
            )
        if isinstance(stmt, ExprStmt):
            cost = self._expr_cost(stmt.expr, fn, stack)
            if isinstance(stmt.expr, Call) and self._call_returns(stmt.expr):
                cost += 1  # discarded result: pop
            return cost
        if isinstance(stmt, IfStmt):
            cond = self._expr_cost(stmt.cond, fn, stack) + 1  # jz
            then = self._stmt_cost(stmt.then, fn, stack, bounds)
            if stmt.els is None:
                return cond + then
            els = self._stmt_cost(stmt.els, fn, stack, bounds)
            return cond + max(then + 1, els)  # +1: jmp over else
        if isinstance(stmt, WhileStmt):
            try:
                bound = next(bounds)
            except StopIteration:
                raise CostError(
                    f"{fn}: missing loop bound for while at {stmt.pos}"
                ) from None
            if bound < 0:
                raise CostError(f"{fn}: negative loop bound {bound}")
            cond = self._expr_cost(stmt.cond, fn, stack) + 1  # jz
            body = self._stmt_cost(stmt.body, fn, stack, bounds)
            # bound iterations of (cond; body; jmp-back) + the failing check.
            return bound * (cond + body + 1) + cond
        if isinstance(stmt, ReturnStmt):
            if stmt.value is None:
                return 1
            return self._expr_cost(stmt.value, fn, stack) + 1
        if isinstance(stmt, (BreakStmt, ContinueStmt)):
            return 1
        raise AssertionError(f"unhandled statement {stmt!r}")  # pragma: no cover

    # -- expressions ----------------------------------------------------------

    def _call_returns(self, call: Call) -> bool:
        if call.name in BUILTIN_ARITY:
            return not isinstance(BUILTINS[call.name][1], TVoid)
        return not isinstance(self.typed.functions[call.name].ret, TVoid)

    def _expr_cost(self, expr: Expr, fn: str, stack) -> int:
        if isinstance(expr, (IntLit, NullLit, SizeofType)):
            return 1
        if isinstance(expr, Var):
            if isinstance(self.typed.type_of(expr), TArray):
                return 1  # decay: address only
            return 2  # local; load
        if isinstance(expr, Unary):
            if expr.op == "&":
                return self._addr_cost(expr.operand, fn, stack)
            if expr.op == "*":
                return self._expr_cost(expr.operand, fn, stack) + 1
            return self._expr_cost(expr.operand, fn, stack) + 1
        if isinstance(expr, Binary):
            lhs = self._expr_cost(expr.lhs, fn, stack)
            rhs = self._expr_cost(expr.rhs, fn, stack)
            if expr.op in ("&&", "||"):
                # lhs; j; rhs; j; push; jmp; push — longest path.
                return lhs + rhs + 4
            return lhs + rhs + 1
        if isinstance(expr, Call):
            args = sum(self._expr_cost(a, fn, stack) for a in expr.args)
            if expr.name in BUILTIN_ARITY:
                return args + 1  # callb (builtin work is not VM instructions)
            return args + 1 + self._function_cost(expr.name, stack)
        if isinstance(expr, (Member, Index)):
            cost = self._addr_cost(expr, fn, stack)
            if not isinstance(self.typed.type_of(expr), TArray):
                cost += 1  # load
            return cost
        raise AssertionError(f"unhandled expression {expr!r}")  # pragma: no cover

    def _addr_cost(self, expr: Expr, fn: str, stack) -> int:
        if isinstance(expr, Var):
            return 1
        if isinstance(expr, Unary) and expr.op == "*":
            return self._expr_cost(expr.operand, fn, stack)
        if isinstance(expr, Member):
            obj_type = self.typed.type_of(expr.obj)
            if expr.arrow:
                base = self._expr_cost(expr.obj, fn, stack) + 1  # null_check
                struct_name = obj_type.target.name  # type: ignore[union-attr]
            else:
                base = self._addr_cost(expr.obj, fn, stack)
                struct_name = obj_type.name  # type: ignore[union-attr]
            offset = self.typed.layouts[struct_name].offsets[expr.fieldname]
            return base + (1 if offset else 0)
        if isinstance(expr, Index):
            base_type = self.typed.type_of(expr.base)
            if isinstance(base_type, TArray):
                base = self._addr_cost(expr.base, fn, stack)
            else:
                base = self._expr_cost(expr.base, fn, stack)
            return base + self._expr_cost(expr.index, fn, stack) + 1
        raise AssertionError(f"not an lvalue: {expr!r}")  # pragma: no cover


def function_cost(
    typed: TypedProgram, name: str, loop_bounds: LoopBounds | None = None
) -> int:
    """Convenience one-shot wrapper around :class:`CostAnalyzer`."""
    return CostAnalyzer(typed, loop_bounds).function_cost(name)

"""Pretty printer for MiniC.

Produces parseable source: ``parse_program(pretty(program))`` yields a
structurally equal AST (positions excepted) — enforced by round-trip
property tests.  Used for diagnostics, source transformations (the
mutation experiments), and dumping generated client code.
"""

from __future__ import annotations

from repro.lang.syntax import (
    AssignStmt,
    Binary,
    Block,
    BreakStmt,
    Call,
    ContinueStmt,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FuncDef,
    IfStmt,
    Index,
    IntLit,
    Member,
    NullLit,
    Program,
    ReturnStmt,
    SizeofType,
    Stmt,
    StructDef,
    TArray,
    TInt,
    TPtr,
    TStruct,
    TVoid,
    Unary,
    Var,
    WhileStmt,
)

# Mirrors the parser's precedence table; used to parenthesize minimally.
_PRECEDENCE = {
    "||": 1, "&&": 2, "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5, "*": 6, "/": 6, "%": 6,
}
_UNARY_PRECEDENCE = 7


def pretty_type(ctype: CType) -> str:
    if isinstance(ctype, TInt):
        return "int"
    if isinstance(ctype, TVoid):
        return "void"
    if isinstance(ctype, TStruct):
        return f"struct {ctype.name}"
    if isinstance(ctype, TPtr):
        return f"{pretty_type(ctype.target)} *"
    if isinstance(ctype, TArray):  # printed at the declarator, not here
        raise ValueError("array types are printed at their declarator")
    raise AssertionError(f"unhandled type {ctype!r}")  # pragma: no cover


def _declarator(ctype: CType, name: str) -> str:
    if isinstance(ctype, TArray):
        return f"{pretty_type(ctype.elem)} {name}[{ctype.size}]"
    return f"{pretty_type(ctype)} {name}"


def pretty_expr(expr: Expr, parent_precedence: int = 0) -> str:
    text, precedence = _expr(expr)
    if precedence < parent_precedence:
        return f"({text})"
    return text


def _expr(expr: Expr) -> tuple[str, int]:
    if isinstance(expr, IntLit):
        return str(expr.value), 9
    if isinstance(expr, NullLit):
        return "NULL", 9
    if isinstance(expr, SizeofType):
        inner = pretty_type(expr.ctype).rstrip()
        return f"sizeof({inner})", 9
    if isinstance(expr, Call):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"{expr.name}({args})", 8
    if isinstance(expr, Member):
        base = pretty_expr(expr.obj, 8)
        op = "->" if expr.arrow else "."
        return f"{base}{op}{expr.fieldname}", 8
    if isinstance(expr, Index):
        base = pretty_expr(expr.base, 8)
        return f"{base}[{pretty_expr(expr.index)}]", 8
    if isinstance(expr, Var):
        return expr.name, 9
    if isinstance(expr, Unary):
        operand = pretty_expr(expr.operand, _UNARY_PRECEDENCE)
        # Avoid `--x` and `& &x` lexing hazards.
        spacer = " " if (
            isinstance(expr.operand, Unary) and expr.operand.op == expr.op
            and expr.op in ("-", "&")
        ) else ""
        return f"{expr.op}{spacer}{operand}", _UNARY_PRECEDENCE
    if isinstance(expr, Binary):
        precedence = _PRECEDENCE[expr.op]
        lhs = pretty_expr(expr.lhs, precedence)
        rhs = pretty_expr(expr.rhs, precedence + 1)  # left-assoc
        return f"{lhs} {expr.op} {rhs}", precedence
    raise AssertionError(f"unhandled expression {expr!r}")  # pragma: no cover


def _stmt(stmt: Stmt, indent: int) -> list[str]:
    pad = "    " * indent
    if isinstance(stmt, Block):
        lines = [f"{pad}{{"]
        for inner in stmt.stmts:
            lines.extend(_stmt(inner, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, DeclStmt):
        decl = _declarator(stmt.ctype, stmt.name)
        if stmt.init is not None:
            return [f"{pad}{decl} = {pretty_expr(stmt.init)};"]
        return [f"{pad}{decl};"]
    if isinstance(stmt, AssignStmt):
        return [f"{pad}{pretty_expr(stmt.lhs)} = {pretty_expr(stmt.rhs)};"]
    if isinstance(stmt, ExprStmt):
        return [f"{pad}{pretty_expr(stmt.expr)};"]
    if isinstance(stmt, IfStmt):
        lines = [f"{pad}if ({pretty_expr(stmt.cond)})"]
        lines.extend(_stmt(stmt.then, indent))
        if stmt.els is not None:
            lines.append(f"{pad}else")
            lines.extend(_stmt(stmt.els, indent))
        return lines
    if isinstance(stmt, WhileStmt):
        lines = [f"{pad}while ({pretty_expr(stmt.cond)})"]
        lines.extend(_stmt(stmt.body, indent))
        return lines
    if isinstance(stmt, ReturnStmt):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {pretty_expr(stmt.value)};"]
    if isinstance(stmt, BreakStmt):
        return [f"{pad}break;"]
    if isinstance(stmt, ContinueStmt):
        return [f"{pad}continue;"]
    raise AssertionError(f"unhandled statement {stmt!r}")  # pragma: no cover


def pretty_struct(struct: StructDef) -> str:
    lines = [f"struct {struct.name} {{"]
    for fname, ftype in struct.fields:
        lines.append(f"    {_declarator(ftype, fname)};")
    lines.append("};")
    return "\n".join(lines)


def pretty_function(func: FuncDef) -> str:
    params = ", ".join(_declarator(p.ctype, p.name) for p in func.params)
    header = f"{pretty_type(func.ret)} {func.name}({params})"
    body = "\n".join(_stmt(func.body, 0))
    return f"{header}\n{body}"


def pretty(program: Program) -> str:
    """Render a whole program as parseable MiniC source."""
    parts = [pretty_struct(s) for s in program.structs]
    parts.extend(pretty_function(f) for f in program.functions)
    return "\n\n".join(parts) + "\n"

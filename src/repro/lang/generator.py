"""Random well-typed MiniC program generation (a Csmith in miniature).

Generates closed, terminating, UB-free programs for differential
testing of the language toolchain: the definitional interpreter, the
bytecode VM, the pretty-printer round trip, and the static cost
analysis are all checked against each other on thousands of generated
programs (``tests/test_fuzz_lang.py``).

Generated programs are correct by construction:

* every variable is initialized at declaration;
* loops have the canonical bounded shape ``int i = 0; while (i < N)
  { …; i = i + 1; }`` with constant ``N`` — terminating, and the bound
  is recorded for the cost analysis;
* division/modulo denominators have the shape ``e*e + 1`` (strictly
  positive);
* array indices have the shape ``((e % n) + n) % n`` (always in range,
  under C's truncating ``%``);
* calls go only to previously generated functions — no recursion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.lang.cost import LoopBounds


@dataclass
class GeneratedProgram:
    """Source text plus the loop bounds the generator built in."""

    source: str
    loop_bounds: LoopBounds
    entry: str = "main"


@dataclass
class _Scope:
    ints: list[str] = field(default_factory=list)
    arrays: list[tuple[str, int]] = field(default_factory=list)  # (name, size)


class _Generator:
    def __init__(self, rng: random.Random, max_depth: int = 3) -> None:
        self.rng = rng
        self.max_depth = max_depth
        self.functions: list[tuple[str, int]] = []  # (name, arity)
        self.loop_bounds: LoopBounds = {}
        self._fresh = 0
        # Call sites are budgeted per function: unbounded call nesting
        # inside loops makes generated runtimes explode combinatorially.
        self._call_budget = 0

    def fresh(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    # -- expressions --------------------------------------------------------

    def int_expr(self, scope: _Scope, depth: int) -> str:
        rng = self.rng
        if depth <= 0:
            choices = ["lit"]
            if scope.ints:
                choices += ["var"] * 3
            kind = rng.choice(choices)
            if kind == "lit":
                return str(rng.randint(-20, 20))
            return rng.choice(scope.ints)
        kinds = ["lit", "binop", "binop", "cmp", "logic", "neg", "not"]
        if scope.ints:
            kinds += ["var", "var", "addr_deref"]
        if scope.arrays:
            kinds += ["array_read"]
        if self.functions and self._call_budget > 0:
            kinds += ["call"]
        kind = rng.choice(kinds)
        if kind == "lit":
            return str(rng.randint(-20, 20))
        if kind == "var":
            return rng.choice(scope.ints)
        if kind == "binop":
            op = rng.choice(["+", "-", "*", "/", "%"])
            lhs = self.int_expr(scope, depth - 1)
            rhs = self.int_expr(scope, depth - 1)
            if op in ("/", "%"):
                # strictly positive denominator
                return f"({lhs} {op} ({rhs} * {rhs} + 1))"
            return f"({lhs} {op} {rhs})"
        if kind == "cmp":
            op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
            return f"({self.int_expr(scope, depth - 1)} {op} {self.int_expr(scope, depth - 1)})"
        if kind == "logic":
            op = rng.choice(["&&", "||"])
            return f"({self.int_expr(scope, depth - 1)} {op} {self.int_expr(scope, depth - 1)})"
        if kind == "neg":
            return f"(-{self.int_expr(scope, depth - 1)})"
        if kind == "not":
            return f"(!{self.int_expr(scope, depth - 1)})"
        if kind == "addr_deref":
            return f"(*(&{self.rng.choice(scope.ints)}))"
        if kind == "array_read":
            name, size = rng.choice(scope.arrays)
            index = self.int_expr(scope, depth - 1)
            return f"{name}[(({index} % {size}) + {size}) % {size}]"
        if kind == "call":
            self._call_budget -= 1
            name, arity = rng.choice(self.functions)
            args = ", ".join(self.int_expr(scope, depth - 1) for _ in range(arity))
            return f"{name}({args})"
        raise AssertionError(kind)  # pragma: no cover

    # -- statements ----------------------------------------------------------

    def statements(
        self, scope: _Scope, fn: str, budget: int, indent: str, allow_loops: bool
    ) -> list[str]:
        rng = self.rng
        lines: list[str] = []
        while budget > 0:
            budget -= 1
            kinds = ["decl", "assign", "if"]
            if scope.arrays:
                kinds += ["array_write"]
            if allow_loops:
                kinds += ["while"]
            if rng.random() < 0.15:
                kinds += ["decl_array"]
            kind = rng.choice(kinds)
            if kind == "decl":
                name = self.fresh("v")
                lines.append(f"{indent}int {name} = {self.int_expr(scope, 2)};")
                scope.ints.append(name)
            elif kind == "decl_array":
                name = self.fresh("arr")
                size = rng.randint(2, 5)
                lines.append(f"{indent}int {name}[{size}];")
                for i in range(size):
                    lines.append(f"{indent}{name}[{i}] = {rng.randint(-9, 9)};")
                scope.arrays.append((name, size))
            elif kind == "assign" and scope.ints:
                target = rng.choice(scope.ints)
                lines.append(f"{indent}{target} = {self.int_expr(scope, 2)};")
            elif kind == "array_write":
                name, size = rng.choice(scope.arrays)
                index = self.int_expr(scope, 1)
                lines.append(
                    f"{indent}{name}[(({index} % {size}) + {size}) % {size}]"
                    f" = {self.int_expr(scope, 2)};"
                )
            elif kind == "if":
                cond = self.int_expr(scope, 2)
                inner = _Scope(list(scope.ints), list(scope.arrays))
                then = self.statements(inner, fn, rng.randint(1, 2), indent + "    ",
                                       allow_loops)
                lines.append(f"{indent}if ({cond}) {{")
                lines.extend(then)
                if rng.random() < 0.5:
                    inner2 = _Scope(list(scope.ints), list(scope.arrays))
                    els = self.statements(inner2, fn, rng.randint(1, 2),
                                          indent + "    ", allow_loops)
                    lines.append(f"{indent}}} else {{")
                    lines.extend(els)
                lines.append(f"{indent}}}")
            elif kind == "while":
                bound = rng.randint(1, 6)
                counter = self.fresh("i")
                self.loop_bounds.setdefault(fn, []).append(bound)
                # The counter is deliberately NOT exposed to the body
                # scope: a body assignment like `i = 0` would break both
                # termination and the recorded iteration bound.
                inner = _Scope(list(scope.ints), list(scope.arrays))
                # Loops may nest, but only one level down to keep cost
                # bounds crisp (inner bounds are appended in source order,
                # which matches the analyzer's traversal).
                body = self.statements(inner, fn, rng.randint(1, 2),
                                       indent + "    ", allow_loops=False)
                lines.append(f"{indent}int {counter} = 0;")
                lines.append(f"{indent}while ({counter} < {bound}) {{")
                lines.extend(body)
                lines.append(f"{indent}    {counter} = {counter} + 1;")
                lines.append(f"{indent}}}")
        return lines

    # -- functions ----------------------------------------------------------

    def function(self, name: str, arity: int, size: int) -> str:
        self._call_budget = 3
        scope = _Scope(ints=[f"p{i}" for i in range(arity)])
        params = ", ".join(f"int p{i}" for i in range(arity))
        body = self.statements(scope, name, size, "    ", allow_loops=True)
        result = self.int_expr(scope, 2)
        lines = [f"int {name}({params}) {{"]
        lines.extend(body)
        lines.append(f"    return {result};")
        lines.append("}")
        return "\n".join(lines)

    def program(self, helpers: int, body_size: int) -> GeneratedProgram:
        parts = []
        for index in range(helpers):
            name = f"f{index}"
            arity = self.rng.randint(0, 3)
            parts.append(self.function(name, arity, self.rng.randint(1, body_size)))
            self.functions.append((name, arity))
        parts.append(self.function("main", 0, body_size))
        return GeneratedProgram(
            source="\n\n".join(parts) + "\n",
            loop_bounds=self.loop_bounds,
        )


def generate_program(
    seed: int, helpers: int = 2, body_size: int = 4
) -> GeneratedProgram:
    """Generate one random well-typed, terminating, UB-free program."""
    rng = random.Random(seed)
    return _Generator(rng).program(helpers, body_size)

"""Runtime values and memory locations for the MiniC semantics.

Memory is word-addressed and block-structured (CompCert/Caesium style):
a location is a ``(block, offset)`` pair; distinct allocations live in
distinct blocks, so out-of-bounds offsets are detected rather than
silently reaching a neighbouring object.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class VInt:
    """An integer value (mathematical integer; MiniC has no overflow —
    Rössl's arithmetic stays tiny, and Caesium likewise separates
    integer-range side conditions from the core semantics)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class VPtr:
    """A pointer: block id plus word offset.  ``NULL`` is block 0."""

    block: int
    offset: int

    @property
    def is_null(self) -> bool:
        return self.block == 0

    def moved(self, delta: int) -> "VPtr":
        return VPtr(self.block, self.offset + delta)

    def __str__(self) -> str:
        if self.is_null:
            return "NULL"
        return f"&b{self.block}+{self.offset}"


#: The null pointer (block 0 is never allocated).
NULL = VPtr(0, 0)


class Undef:
    """The poison value stored in uninitialized cells; loading it is UB."""

    _instance: "Undef | None" = None

    def __new__(cls) -> "Undef":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undef"


UNDEF = Undef()

Value = VInt | VPtr
Cell = Value | Undef

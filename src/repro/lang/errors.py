"""MiniC error hierarchy.

``UndefinedBehavior`` is the important one: the adequacy theorem
(Thm. 3.4) asserts executions are never *stuck*, and in this
reproduction "stuck" means the interpreter raises
:class:`UndefinedBehavior` (out-of-bounds access, use-after-free, null
dereference, read of an uninitialized cell, division by zero, …).  The
bounded model checker asserts no explored execution raises it.
"""

from __future__ import annotations


class MiniCError(Exception):
    """Base class for all MiniC front-end and runtime errors."""


class LexError(MiniCError):
    """Lexical error, with source line/column."""

    def __init__(self, line: int, col: int, message: str) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class ParseError(MiniCError):
    """Syntax error, with source line/column."""

    def __init__(self, line: int, col: int, message: str) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class TypeError_(MiniCError):
    """Static type error (named with a trailing underscore to avoid
    shadowing the builtin)."""


class UndefinedBehavior(MiniCError):
    """The program performed an operation with undefined behaviour."""


class OutOfFuel(MiniCError):
    """The fuel bound was exhausted before the program finished.

    Not an error in the program: Rössl's ``fds_run`` never returns, so
    drivers bound execution with fuel and treat this as reaching the
    observation horizon (the trace so far is an execution prefix).
    """

"""Static type checking and struct layout for MiniC.

The checker validates the program and produces a :class:`TypedProgram`:
the AST plus (a) word-level struct layouts and (b) a side table mapping
every expression node to its type.  The interpreter consumes this table
to resolve member offsets, array decay, and pointer arithmetic without
re-inferring types at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.errors import TypeError_
from repro.lang.syntax import (
    AssignStmt,
    Binary,
    Block,
    BreakStmt,
    Call,
    ContinueStmt,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FuncDef,
    IfStmt,
    Index,
    IntLit,
    Member,
    NullLit,
    Program,
    ReturnStmt,
    SizeofType,
    Stmt,
    StructDef,
    TArray,
    TInt,
    TPtr,
    TStruct,
    TVoid,
    Unary,
    Var,
    WhileStmt,
)


@dataclass(frozen=True, slots=True)
class TAnyPtr:
    """Internal type of ``NULL`` and ``malloc``: compatible with any
    pointer type.  Never written in source."""

    def __str__(self) -> str:
        return "nullptr_t"


@dataclass(frozen=True)
class Layout:
    """Word-level layout of a struct: total size plus per-field offsets."""

    size: int
    offsets: dict[str, int]
    field_types: dict[str, CType]


#: Builtin signatures: name → (param types, return type).  ``malloc`` is
#: special-cased for its polymorphic return.  The marker builtins mirror
#: the paper's ghost calls (Fig. 2 / Fig. 6); ``read`` is the
#: axiomatized system call.
BUILTINS: dict[str, tuple[tuple[CType, ...], CType]] = {
    "malloc": ((TInt(),), TAnyPtr()),  # return type refined at use site
    "free": ((TAnyPtr(),), TVoid()),
    "read": ((TInt(), TPtr(TInt()), TInt()), TInt()),
    "read_start": ((), TVoid()),
    "selection_start": ((), TVoid()),
    "idling_start": ((), TVoid()),
    "dispatch_start": ((TPtr(TInt()), TInt()), TVoid()),
    "execution_start": ((TPtr(TInt()), TInt()), TVoid()),
    "completion_start": ((TPtr(TInt()), TInt()), TVoid()),
}


@dataclass
class TypedProgram:
    """A type-checked program with layouts and an expression-type table."""

    program: Program
    layouts: dict[str, Layout]
    expr_types: dict[int, CType | TAnyPtr]
    functions: dict[str, FuncDef] = field(default_factory=dict)

    def type_of(self, expr: Expr) -> CType | TAnyPtr:
        return self.expr_types[id(expr)]

    def sizeof(self, ctype: CType) -> int:
        return _sizeof(ctype, self.layouts)


def _sizeof(ctype: CType, layouts: dict[str, Layout]) -> int:
    if isinstance(ctype, (TInt, TPtr)):
        return 1
    if isinstance(ctype, TStruct):
        if ctype.name not in layouts:
            raise TypeError_(f"unknown struct {ctype.name!r}")
        return layouts[ctype.name].size
    if isinstance(ctype, TArray):
        return ctype.size * _sizeof(ctype.elem, layouts)
    raise TypeError_(f"type {ctype} has no size")


def _compatible(expected: CType | TAnyPtr, actual: CType | TAnyPtr) -> bool:
    """Assignment/argument compatibility, including array decay and NULL."""
    if isinstance(expected, TAnyPtr):
        return isinstance(actual, (TPtr, TAnyPtr, TArray))
    if isinstance(actual, TAnyPtr):
        return isinstance(expected, TPtr)
    if isinstance(expected, TPtr) and isinstance(actual, TArray):
        return expected.target == actual.elem  # array-to-pointer decay
    return expected == actual


class _FunctionChecker:
    def __init__(self, typed: TypedProgram, func: FuncDef) -> None:
        self.typed = typed
        self.func = func
        self.scopes: list[dict[str, CType]] = [{}]
        for param in func.params:
            self._check_wellformed(param.ctype, allow_void=False)
            if param.name in self.scopes[0]:
                raise TypeError_(f"{func.name}: duplicate parameter {param.name!r}")
            if isinstance(param.ctype, TArray):
                raise TypeError_(f"{func.name}: array parameters are not supported")
            self.scopes[0][param.name] = param.ctype

    # -- helpers -----------------------------------------------------------

    def _check_wellformed(self, ctype: CType, allow_void: bool) -> None:
        if isinstance(ctype, TVoid):
            if not allow_void:
                raise TypeError_(f"{self.func.name}: void is only a return type")
            return
        if isinstance(ctype, TPtr):
            if isinstance(ctype.target, TVoid):
                raise TypeError_(f"{self.func.name}: void* is not supported")
            self._check_wellformed(ctype.target, allow_void=False)
            return
        if isinstance(ctype, TStruct):
            if ctype.name not in self.typed.layouts:
                raise TypeError_(f"{self.func.name}: unknown struct {ctype.name!r}")
            return
        if isinstance(ctype, TArray):
            self._check_wellformed(ctype.elem, allow_void=False)
            if ctype.size <= 0:
                raise TypeError_(f"{self.func.name}: array size must be positive")
            return

    def _lookup(self, name: str, pos) -> CType:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise TypeError_(f"{self.func.name} at {pos}: undeclared variable {name!r}")

    def _declare(self, name: str, ctype: CType, pos) -> None:
        if name in self.scopes[-1]:
            raise TypeError_(f"{self.func.name} at {pos}: redeclaration of {name!r}")
        self.scopes[-1][name] = ctype

    def _record(self, expr: Expr, ctype: CType | TAnyPtr) -> CType | TAnyPtr:
        self.typed.expr_types[id(expr)] = ctype
        return ctype

    def _is_lvalue(self, expr: Expr) -> bool:
        if isinstance(expr, Var):
            return True
        if isinstance(expr, Member):
            return expr.arrow or self._is_lvalue(expr.obj)
        if isinstance(expr, Index):
            return True
        if isinstance(expr, Unary) and expr.op == "*":
            return True
        return False

    def _truthy(self, ctype: CType | TAnyPtr, pos) -> None:
        if not isinstance(ctype, (TInt, TPtr, TAnyPtr)):
            raise TypeError_(
                f"{self.func.name} at {pos}: condition must be int or pointer, got {ctype}"
            )

    # -- expressions ---------------------------------------------------------

    def check_expr(self, expr: Expr) -> CType | TAnyPtr:
        if isinstance(expr, IntLit):
            return self._record(expr, TInt())
        if isinstance(expr, NullLit):
            return self._record(expr, TAnyPtr())
        if isinstance(expr, SizeofType):
            self._check_wellformed(expr.ctype, allow_void=False)
            _sizeof(expr.ctype, self.typed.layouts)  # must be sized
            return self._record(expr, TInt())
        if isinstance(expr, Var):
            return self._record(expr, self._lookup(expr.name, expr.pos))
        if isinstance(expr, Unary):
            return self._check_unary(expr)
        if isinstance(expr, Binary):
            return self._check_binary(expr)
        if isinstance(expr, Call):
            return self._check_call(expr)
        if isinstance(expr, Member):
            return self._check_member(expr)
        if isinstance(expr, Index):
            return self._check_index(expr)
        raise AssertionError(f"unhandled expression {expr!r}")  # pragma: no cover

    def _check_unary(self, expr: Unary) -> CType | TAnyPtr:
        inner = self.check_expr(expr.operand)
        where = f"{self.func.name} at {expr.pos}"
        if expr.op == "-":
            if not isinstance(inner, TInt):
                raise TypeError_(f"{where}: unary - needs int, got {inner}")
            return self._record(expr, TInt())
        if expr.op == "!":
            self._truthy(inner, expr.pos)
            return self._record(expr, TInt())
        if expr.op == "*":
            if not isinstance(inner, TPtr):
                raise TypeError_(f"{where}: cannot dereference {inner}")
            return self._record(expr, inner.target)
        if expr.op == "&":
            if not self._is_lvalue(expr.operand):
                raise TypeError_(f"{where}: & needs an lvalue")
            if isinstance(inner, TAnyPtr):  # pragma: no cover - defensive
                raise TypeError_(f"{where}: cannot take address of NULL")
            return self._record(expr, TPtr(inner))
        raise AssertionError(f"unhandled unary op {expr.op!r}")  # pragma: no cover

    def _check_binary(self, expr: Binary) -> CType | TAnyPtr:
        lhs = self.check_expr(expr.lhs)
        rhs = self.check_expr(expr.rhs)
        where = f"{self.func.name} at {expr.pos}"
        op = expr.op
        if op in ("&&", "||"):
            self._truthy(lhs, expr.pos)
            self._truthy(rhs, expr.pos)
            return self._record(expr, TInt())
        if op in ("==", "!="):
            pointerish = (TPtr, TAnyPtr, TArray)
            if isinstance(lhs, TInt) and isinstance(rhs, TInt):
                return self._record(expr, TInt())
            if isinstance(lhs, pointerish) and isinstance(rhs, pointerish):
                return self._record(expr, TInt())
            raise TypeError_(f"{where}: cannot compare {lhs} with {rhs}")
        if op in ("<", "<=", ">", ">="):
            if isinstance(lhs, TInt) and isinstance(rhs, TInt):
                return self._record(expr, TInt())
            raise TypeError_(f"{where}: ordering needs ints, got {lhs} and {rhs}")
        if op in ("+", "-"):
            if isinstance(lhs, TInt) and isinstance(rhs, TInt):
                return self._record(expr, TInt())
            # pointer arithmetic: ptr ± int (and array decay)
            base = lhs
            if isinstance(base, TArray):
                base = TPtr(base.elem)
            if isinstance(base, TPtr) and isinstance(rhs, TInt):
                return self._record(expr, base)
            raise TypeError_(f"{where}: bad operands for {op}: {lhs}, {rhs}")
        if op in ("*", "/", "%"):
            if isinstance(lhs, TInt) and isinstance(rhs, TInt):
                return self._record(expr, TInt())
            raise TypeError_(f"{where}: arithmetic needs ints, got {lhs} and {rhs}")
        raise AssertionError(f"unhandled binary op {op!r}")  # pragma: no cover

    def _check_call(self, expr: Call) -> CType | TAnyPtr:
        where = f"{self.func.name} at {expr.pos}"
        if expr.name in BUILTINS:
            param_types, ret = BUILTINS[expr.name]
        elif expr.name in self.typed.functions:
            callee = self.typed.functions[expr.name]
            param_types = tuple(p.ctype for p in callee.params)
            ret = callee.ret
        else:
            raise TypeError_(f"{where}: call to undefined function {expr.name!r}")
        if len(expr.args) != len(param_types):
            raise TypeError_(
                f"{where}: {expr.name} expects {len(param_types)} args, got {len(expr.args)}"
            )
        for i, (arg, expected) in enumerate(zip(expr.args, param_types)):
            actual = self.check_expr(arg)
            if not _compatible(expected, actual):
                raise TypeError_(
                    f"{where}: argument {i + 1} of {expr.name}: expected "
                    f"{expected}, got {actual}"
                )
        return self._record(expr, ret)

    def _check_member(self, expr: Member) -> CType | TAnyPtr:
        obj = self.check_expr(expr.obj)
        where = f"{self.func.name} at {expr.pos}"
        if expr.arrow:
            if not (isinstance(obj, TPtr) and isinstance(obj.target, TStruct)):
                raise TypeError_(f"{where}: -> needs struct pointer, got {obj}")
            struct_type = obj.target
        else:
            if not isinstance(obj, TStruct):
                raise TypeError_(f"{where}: . needs a struct, got {obj}")
            if not self._is_lvalue(expr.obj):
                raise TypeError_(f"{where}: member access needs an lvalue base")
            struct_type = obj
        layout = self.typed.layouts[struct_type.name]
        if expr.fieldname not in layout.field_types:
            raise TypeError_(
                f"{where}: struct {struct_type.name} has no field {expr.fieldname!r}"
            )
        return self._record(expr, layout.field_types[expr.fieldname])

    def _check_index(self, expr: Index) -> CType | TAnyPtr:
        base = self.check_expr(expr.base)
        index = self.check_expr(expr.index)
        where = f"{self.func.name} at {expr.pos}"
        if not isinstance(index, TInt):
            raise TypeError_(f"{where}: array index must be int, got {index}")
        if isinstance(base, TArray):
            return self._record(expr, base.elem)
        if isinstance(base, TPtr):
            return self._record(expr, base.target)
        raise TypeError_(f"{where}: cannot index into {base}")

    # -- statements ----------------------------------------------------------

    def check_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            self.scopes.append({})
            for inner in stmt.stmts:
                self.check_stmt(inner)
            self.scopes.pop()
            return
        if isinstance(stmt, DeclStmt):
            self._check_wellformed(stmt.ctype, allow_void=False)
            _sizeof(stmt.ctype, self.typed.layouts)
            if stmt.init is not None:
                if isinstance(stmt.ctype, (TArray, TStruct)):
                    raise TypeError_(
                        f"{self.func.name} at {stmt.pos}: aggregate initializers "
                        "are not supported"
                    )
                actual = self.check_expr(stmt.init)
                if not _compatible(stmt.ctype, actual):
                    raise TypeError_(
                        f"{self.func.name} at {stmt.pos}: cannot initialize "
                        f"{stmt.ctype} with {actual}"
                    )
            self._declare(stmt.name, stmt.ctype, stmt.pos)
            return
        if isinstance(stmt, AssignStmt):
            if not self._is_lvalue(stmt.lhs):
                raise TypeError_(
                    f"{self.func.name} at {stmt.pos}: assignment target is not an lvalue"
                )
            lhs = self.check_expr(stmt.lhs)
            rhs = self.check_expr(stmt.rhs)
            if isinstance(lhs, (TArray, TStruct)):
                raise TypeError_(
                    f"{self.func.name} at {stmt.pos}: aggregate assignment is "
                    "not supported"
                )
            if not _compatible(lhs, rhs):
                raise TypeError_(
                    f"{self.func.name} at {stmt.pos}: cannot assign {rhs} to {lhs}"
                )
            return
        if isinstance(stmt, ExprStmt):
            self.check_expr(stmt.expr)
            return
        if isinstance(stmt, IfStmt):
            self._truthy(self.check_expr(stmt.cond), stmt.pos)
            self.check_stmt(stmt.then)
            if stmt.els is not None:
                self.check_stmt(stmt.els)
            return
        if isinstance(stmt, WhileStmt):
            self._truthy(self.check_expr(stmt.cond), stmt.pos)
            self.check_stmt(stmt.body)
            return
        if isinstance(stmt, ReturnStmt):
            if stmt.value is None:
                if not isinstance(self.func.ret, TVoid):
                    raise TypeError_(
                        f"{self.func.name} at {stmt.pos}: missing return value"
                    )
                return
            if isinstance(self.func.ret, TVoid):
                raise TypeError_(
                    f"{self.func.name} at {stmt.pos}: void function returns a value"
                )
            actual = self.check_expr(stmt.value)
            if not _compatible(self.func.ret, actual):
                raise TypeError_(
                    f"{self.func.name} at {stmt.pos}: returning {actual}, "
                    f"declared {self.func.ret}"
                )
            return
        if isinstance(stmt, (BreakStmt, ContinueStmt)):
            return
        raise AssertionError(f"unhandled statement {stmt!r}")  # pragma: no cover


def _build_layouts(structs: tuple[StructDef, ...]) -> dict[str, Layout]:
    defined = {s.name for s in structs}
    if len(defined) != len(structs):
        raise TypeError_("duplicate struct definitions")
    layouts: dict[str, Layout] = {}

    def build(struct: StructDef, building: tuple[str, ...]) -> Layout:
        if struct.name in layouts:
            return layouts[struct.name]
        if struct.name in building:
            raise TypeError_(
                f"struct {struct.name} recursively contains itself by value"
            )
        offsets: dict[str, int] = {}
        field_types: dict[str, CType] = {}
        offset = 0
        for fname, ftype in struct.fields:
            if fname in offsets:
                raise TypeError_(f"struct {struct.name}: duplicate field {fname!r}")
            if isinstance(ftype, TVoid):
                raise TypeError_(f"struct {struct.name}: void field {fname!r}")
            size = _field_size(ftype, struct.name, building)
            offsets[fname] = offset
            field_types[fname] = ftype
            offset += size
        layout = Layout(size=offset, offsets=offsets, field_types=field_types)
        layouts[struct.name] = layout
        return layout

    def _field_size(ftype: CType, owner: str, building: tuple[str, ...]) -> int:
        if isinstance(ftype, (TInt, TPtr)):
            if isinstance(ftype, TPtr):
                _check_ptr_target(ftype.target, owner)
            return 1
        if isinstance(ftype, TStruct):
            if ftype.name not in defined:
                raise TypeError_(f"struct {owner}: unknown struct {ftype.name!r}")
            inner = next(s for s in structs if s.name == ftype.name)
            return build(inner, building + (owner,)).size
        if isinstance(ftype, TArray):
            if ftype.size <= 0:
                raise TypeError_(f"struct {owner}: array size must be positive")
            return ftype.size * _field_size(ftype.elem, owner, building)
        raise TypeError_(f"struct {owner}: bad field type {ftype}")

    def _check_ptr_target(target: CType, owner: str) -> None:
        if isinstance(target, TStruct) and target.name not in defined:
            raise TypeError_(f"struct {owner}: pointer to unknown struct {target.name!r}")
        if isinstance(target, TPtr):
            _check_ptr_target(target.target, owner)

    for struct in structs:
        build(struct, ())
    return layouts


def typecheck(program: Program) -> TypedProgram:
    """Check ``program``; returns the typed program or raises
    :class:`~repro.lang.errors.TypeError_`."""
    layouts = _build_layouts(program.structs)
    functions: dict[str, FuncDef] = {}
    for func in program.functions:
        if func.name in functions:
            raise TypeError_(f"duplicate function {func.name!r}")
        if func.name in BUILTINS:
            raise TypeError_(f"function {func.name!r} shadows a builtin")
        functions[func.name] = func
    typed = TypedProgram(program, layouts, {}, functions)
    for func in program.functions:
        if isinstance(func.ret, (TArray, TStruct)):
            raise TypeError_(f"{func.name}: aggregate return types are not supported")
        checker = _FunctionChecker(typed, func)
        checker.check_stmt(func.body)
    return typed

"""The instrumented builtins, shared by the interpreter and the VM.

These implement the effectful rules of Fig. 6 — the axiomatized ``read``
system call (READ-STEP-SUCCESS / READ-STEP-FAILURE) and the ghost marker
calls (TRACE-STEP-*) — over a heap, an environment, a marker sink, and
the trace state ``σ_trace``.  Keeping them in one place guarantees the
tree-walking interpreter (:mod:`repro.lang.interp`) and the bytecode VM
(:mod:`repro.lang.vm`) have *identical* observable behaviour, which the
differential tests then confirm end to end.
"""

from __future__ import annotations

from repro.lang.errors import UndefinedBehavior
from repro.lang.heap import Heap
from repro.lang.values import Value, VInt, VPtr
from repro.model.job import Job
from repro.rossl.env import Environment
from repro.traces.markers import (
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
)
from repro.traces.trace_state import TraceState

#: Builtins with their VM arity (also used by the compiler).
BUILTIN_ARITY = {
    "malloc": 1,
    "free": 1,
    "read": 3,
    "read_start": 0,
    "selection_start": 0,
    "idling_start": 0,
    "dispatch_start": 2,
    "execution_start": 2,
    "completion_start": 2,
}


class TraceRuntime:
    """Shared effectful state: heap + σ_trace + environment + sink."""

    def __init__(self, heap: Heap, env: Environment, sink) -> None:
        self.heap = heap
        self.env = env
        self.sink = sink
        self.trace_state = TraceState()
        self.current_job: Job | None = None

    def call(self, name: str, args: list[Value]) -> Value | None:
        handler = getattr(self, f"builtin_{name}", None)
        if handler is None:  # pragma: no cover - typechecker prevents this
            raise UndefinedBehavior(f"call to unknown builtin {name!r}")
        return handler(args)

    # -- memory -------------------------------------------------------------

    def builtin_malloc(self, args: list[Value]) -> Value:
        (size,) = args
        assert isinstance(size, VInt)
        return self.heap.alloc(size.value, kind="malloc")

    def builtin_free(self, args: list[Value]) -> None:
        (ptr,) = args
        if not isinstance(ptr, VPtr):  # pragma: no cover - typechecked
            raise UndefinedBehavior("free of non-pointer")
        self.heap.free(ptr)
        return None

    # -- the read system call (Fig. 6) ---------------------------------------

    def builtin_read(self, args: list[Value]) -> Value:
        sock, buf, maxlen = args
        if (
            not isinstance(sock, VInt)
            or not isinstance(buf, VPtr)
            or not isinstance(maxlen, VInt)
        ):  # pragma: no cover - typechecked
            raise UndefinedBehavior("read: bad arguments")
        data = self.env.read(sock.value)
        if data is None:
            self.sink.emit(MReadE(sock.value, None))
            return VInt(-1)
        if len(data) > maxlen.value:
            raise UndefinedBehavior(
                f"read: message of {len(data)} words exceeds buffer of "
                f"{maxlen.value}"
            )
        for i, word in enumerate(data):
            self.heap.store(buf.moved(i), VInt(word))
        job = self.trace_state.record_read(tuple(data))
        self.sink.emit(MReadE(sock.value, job))
        return VInt(len(data))

    # -- ghost marker calls (TRACE-STEP rules) --------------------------------

    def _load_payload(self, ptr: Value, length: Value, what: str) -> tuple[int, ...]:
        if not isinstance(ptr, VPtr) or not isinstance(length, VInt):
            raise UndefinedBehavior(f"{what}: bad arguments")  # pragma: no cover
        if length.value < 0:
            raise UndefinedBehavior(f"{what}: negative length {length.value}")
        words = []
        for i in range(length.value):
            cell = self.heap.load(ptr.moved(i))
            if not isinstance(cell, VInt):
                raise UndefinedBehavior(f"{what}: payload word {i} is not an integer")
            words.append(cell.value)
        return tuple(words)

    def builtin_read_start(self, args: list[Value]) -> None:
        self.sink.emit(MReadS())
        return None

    def builtin_selection_start(self, args: list[Value]) -> None:
        self.sink.emit(MSelection())
        return None

    def builtin_idling_start(self, args: list[Value]) -> None:
        self.sink.emit(MIdling())
        return None

    def builtin_dispatch_start(self, args: list[Value]) -> None:
        data = self._load_payload(args[0], args[1], "dispatch_start")
        try:
            job = self.trace_state.resolve_dispatch(data)
        except RuntimeError as exc:
            raise UndefinedBehavior(str(exc)) from exc
        self.current_job = job
        self.sink.emit(MDispatch(job))
        return None

    def builtin_execution_start(self, args: list[Value]) -> None:
        data = self._load_payload(args[0], args[1], "execution_start")
        job = self.current_job
        if job is None or job.data != data:
            raise UndefinedBehavior(
                f"execution_start for payload {data} does not match the "
                f"dispatched job {job}"
            )
        self.sink.emit(MExecution(job))
        return None

    def builtin_completion_start(self, args: list[Value]) -> None:
        data = self._load_payload(args[0], args[1], "completion_start")
        job = self.current_job
        if job is None or job.data != data:
            raise UndefinedBehavior(
                f"completion_start for payload {data} does not match the "
                f"dispatched job {job}"
            )
        self.current_job = None
        self.sink.emit(MCompletion(job))
        return None

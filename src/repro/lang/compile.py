"""A bytecode compiler for MiniC.

Lowers a type-checked program to a stack-machine bytecode executed by
:mod:`repro.lang.vm`.  This is the reproduction's nod to the paper's
related-work discussion (§6): RefinedProsa reasons about C source under
RefinedC's semantics, and the authors conjecture the approach extends to
*compiled* code.  Here the conjecture is testable: the VM is a second,
lower-level semantics, differentially checked to emit the same marker
traces as the definitional interpreter, and its *instruction counter* is
a concrete cost semantics against which WCETs can be measured and
statically bounded (:mod:`repro.lang.cost`).

Lowering notes:

* every local variable (including block-scoped ones) gets its own heap
  block, allocated at function entry and killed at return — function-
  scoped lifetimes, as a C compiler's stack frame would give (the
  interpreter's stricter block-scoped lifetimes catch more dangling-
  pointer UB; Rössl exercises neither);
* member offsets, array scales, and array-decay decisions are resolved
  at compile time from the typechecker's expression-type table;
* ``&&``/``||`` compile to short-circuit jumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.lang.builtins import BUILTIN_ARITY
from repro.lang.syntax import (
    AssignStmt,
    Binary,
    Block,
    BreakStmt,
    Call,
    ContinueStmt,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FuncDef,
    IfStmt,
    Index,
    IntLit,
    Member,
    NullLit,
    ReturnStmt,
    SizeofType,
    Stmt,
    TArray,
    TPtr,
    TStruct,
    TVoid,
    Unary,
    Var,
    WhileStmt,
)
from repro.lang.typecheck import BUILTINS, TypedProgram


@dataclass(slots=True)
class Instr:
    """One bytecode instruction: opcode plus up to two operands."""

    op: str
    a: Any = None
    b: Any = None

    def __str__(self) -> str:
        parts = [self.op]
        if self.a is not None:
            parts.append(str(self.a))
        if self.b is not None:
            parts.append(str(self.b))
        return " ".join(parts)


@dataclass
class CompiledFunction:
    """Bytecode for one function."""

    name: str
    params: int
    #: size (in words) of each local slot; parameters occupy the first
    #: ``params`` slots.
    slot_sizes: list[int]
    code: list[Instr]
    returns_value: bool
    #: (start_pc, end_pc) of each while loop, in source order — the
    #: handles the static cost analysis attaches loop bounds to.
    loops: list[tuple[int, int]] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [f"func {self.name}/{self.params} slots={self.slot_sizes}"]
        lines += [f"  {pc:4d}: {instr}" for pc, instr in enumerate(self.code)]
        return "\n".join(lines)


@dataclass
class CompiledProgram:
    typed: TypedProgram
    functions: dict[str, CompiledFunction]

    def __str__(self) -> str:
        return "\n\n".join(str(f) for f in self.functions.values())


class _FunctionCompiler:
    def __init__(self, typed: TypedProgram, func: FuncDef) -> None:
        self.typed = typed
        self.func = func
        self.code: list[Instr] = []
        self.slot_sizes: list[int] = []
        self.scopes: list[dict[str, int]] = [{}]
        self.loop_stack: list[tuple[list[int], list[int]]] = []  # (breaks, continues)
        self.loops: list[tuple[int, int]] = []

    # -- emission helpers ----------------------------------------------------

    def emit(self, op: str, a: Any = None, b: Any = None) -> int:
        self.code.append(Instr(op, a, b))
        return len(self.code) - 1

    def here(self) -> int:
        return len(self.code)

    def patch(self, index: int, target: int) -> None:
        self.code[index].a = target

    # -- slots -----------------------------------------------------------------

    def new_slot(self, name: str, ctype: CType) -> int:
        slot = len(self.slot_sizes)
        self.slot_sizes.append(self.typed.sizeof(ctype))
        self.scopes[-1][name] = slot
        return slot

    def slot_of(self, name: str) -> int:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise AssertionError(f"unresolved variable {name!r}")  # pragma: no cover

    # -- expressions ------------------------------------------------------------

    def compile_expr(self, expr: Expr, keep_result: bool = True) -> None:
        """Compile ``expr``, leaving its value on the stack (unless the
        expression is a void call and ``keep_result`` is False)."""
        if isinstance(expr, IntLit):
            self.emit("push", expr.value)
            return
        if isinstance(expr, NullLit):
            self.emit("push_null")
            return
        if isinstance(expr, SizeofType):
            self.emit("push", self.typed.sizeof(expr.ctype))
            return
        if isinstance(expr, Var):
            static = self.typed.type_of(expr)
            self.emit("local", self.slot_of(expr.name))
            if not isinstance(static, TArray):
                self.emit("load")
            return
        if isinstance(expr, Unary):
            self._compile_unary(expr)
            return
        if isinstance(expr, Binary):
            self._compile_binary(expr)
            return
        if isinstance(expr, Call):
            self._compile_call(expr, keep_result)
            return
        if isinstance(expr, (Member, Index)):
            self.compile_addr(expr)
            if not isinstance(self.typed.type_of(expr), TArray):
                self.emit("load")
            return
        raise AssertionError(f"unhandled expression {expr!r}")  # pragma: no cover

    def _compile_unary(self, expr: Unary) -> None:
        if expr.op == "&":
            self.compile_addr(expr.operand)
            return
        if expr.op == "*":
            self.compile_expr(expr.operand)
            self.emit("load")
            return
        self.compile_expr(expr.operand)
        self.emit("neg" if expr.op == "-" else "not")

    def _compile_binary(self, expr: Binary) -> None:
        op = expr.op
        if op in ("&&", "||"):
            # Short-circuit: the result is a 0/1 integer.
            self.compile_expr(expr.lhs)
            short = self.emit("jz" if op == "&&" else "jnz", None)
            self.compile_expr(expr.rhs)
            second = self.emit("jz" if op == "&&" else "jnz", None)
            self.emit("push", 1 if op == "&&" else 0)
            done = self.emit("jmp", None)
            target = self.here()
            self.patch(short, target)
            self.patch(second, target)
            self.emit("push", 0 if op == "&&" else 1)
            self.patch(done, self.here())
            return
        self.compile_expr(expr.lhs)
        self.compile_expr(expr.rhs)
        static = self.typed.type_of(expr)
        if op in ("+", "-") and isinstance(static, TPtr):
            # pointer ± int, scaled by the pointee size
            self.emit("ptr_add", self.typed.sizeof(static.target),
                      1 if op == "+" else -1)
            return
        table = {
            "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
            "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
            "==": "eq", "!=": "ne",
        }
        self.emit(table[op])

    def _compile_call(self, expr: Call, keep_result: bool) -> None:
        for arg in expr.args:
            self.compile_expr(arg)
        if expr.name in BUILTIN_ARITY:
            returns = not isinstance(BUILTINS[expr.name][1], TVoid)
            self.emit("callb", expr.name, len(expr.args))
        else:
            callee = self.typed.functions[expr.name]
            returns = not isinstance(callee.ret, TVoid)
            self.emit("call", expr.name, len(expr.args))
        if returns and not keep_result:
            self.emit("pop")

    def compile_addr(self, expr: Expr) -> None:
        """Compile ``expr`` as an lvalue: leaves its address on the stack."""
        if isinstance(expr, Var):
            self.emit("local", self.slot_of(expr.name))
            return
        if isinstance(expr, Unary) and expr.op == "*":
            self.compile_expr(expr.operand)
            return
        if isinstance(expr, Member):
            obj_type = self.typed.type_of(expr.obj)
            if expr.arrow:
                self.compile_expr(expr.obj)
                assert isinstance(obj_type, TPtr) and isinstance(obj_type.target, TStruct)
                struct_name = obj_type.target.name
                self.emit("null_check")
            else:
                self.compile_addr(expr.obj)
                assert isinstance(obj_type, TStruct)
                struct_name = obj_type.name
            offset = self.typed.layouts[struct_name].offsets[expr.fieldname]
            if offset:
                self.emit("offset", offset)
            return
        if isinstance(expr, Index):
            base_type = self.typed.type_of(expr.base)
            if isinstance(base_type, TArray):
                self.compile_addr(expr.base)
                self.compile_expr(expr.index)
                self.emit("index", self.typed.sizeof(base_type.elem),
                          base_type.size)
            else:
                assert isinstance(base_type, TPtr)
                self.compile_expr(expr.base)
                self.compile_expr(expr.index)
                self.emit("index", self.typed.sizeof(base_type.target), None)
            return
        raise AssertionError(f"not an lvalue: {expr!r}")  # pragma: no cover

    # -- statements ----------------------------------------------------------------

    def compile_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            self.scopes.append({})
            for inner in stmt.stmts:
                self.compile_stmt(inner)
            self.scopes.pop()
            return
        if isinstance(stmt, DeclStmt):
            slot = self.new_slot(stmt.name, stmt.ctype)
            if stmt.init is not None:
                self.emit("local", slot)
                self.compile_expr(stmt.init)
                self.emit("store")
            return
        if isinstance(stmt, AssignStmt):
            self.compile_addr(stmt.lhs)
            self.compile_expr(stmt.rhs)
            self.emit("store")
            return
        if isinstance(stmt, ExprStmt):
            self.compile_expr(stmt.expr, keep_result=False)
            return
        if isinstance(stmt, IfStmt):
            self.compile_expr(stmt.cond)
            to_else = self.emit("jz", None)
            self.compile_stmt(stmt.then)
            if stmt.els is None:
                self.patch(to_else, self.here())
            else:
                to_end = self.emit("jmp", None)
                self.patch(to_else, self.here())
                self.compile_stmt(stmt.els)
                self.patch(to_end, self.here())
            return
        if isinstance(stmt, WhileStmt):
            start = self.here()
            self.compile_expr(stmt.cond)
            exit_jump = self.emit("jz", None)
            breaks: list[int] = []
            continues: list[int] = []
            self.loop_stack.append((breaks, continues))
            self.compile_stmt(stmt.body)
            self.loop_stack.pop()
            for index in continues:
                self.patch(index, self.here())
            self.emit("jmp", start)
            end = self.here()
            self.patch(exit_jump, end)
            for index in breaks:
                self.patch(index, end)
            self.loops.append((start, end))
            return
        if isinstance(stmt, ReturnStmt):
            if stmt.value is None:
                self.emit("ret")
            else:
                self.compile_expr(stmt.value)
                self.emit("retv")
            return
        if isinstance(stmt, BreakStmt):
            if not self.loop_stack:  # pragma: no cover - parser allows, C doesn't
                raise AssertionError("break outside a loop")
            self.loop_stack[-1][0].append(self.emit("jmp", None))
            return
        if isinstance(stmt, ContinueStmt):
            if not self.loop_stack:  # pragma: no cover
                raise AssertionError("continue outside a loop")
            self.loop_stack[-1][1].append(self.emit("jmp", None))
            return
        raise AssertionError(f"unhandled statement {stmt!r}")  # pragma: no cover

    def compile(self) -> CompiledFunction:
        for param in self.func.params:
            self.new_slot(param.name, param.ctype)
        self.compile_stmt(self.func.body)
        if isinstance(self.func.ret, TVoid):
            self.emit("ret")
        else:
            self.emit("fell_off", self.func.name)
        return CompiledFunction(
            name=self.func.name,
            params=len(self.func.params),
            slot_sizes=self.slot_sizes,
            code=self.code,
            returns_value=not isinstance(self.func.ret, TVoid),
            loops=self.loops,
        )


def compile_program(typed: TypedProgram) -> CompiledProgram:
    """Compile every function of a type-checked program."""
    functions = {
        name: _FunctionCompiler(typed, func).compile()
        for name, func in typed.functions.items()
    }
    return CompiledProgram(typed, functions)

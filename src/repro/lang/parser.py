"""Recursive-descent parser for MiniC.

Grammar (informal)::

    program   := (structdef | funcdef)*
    structdef := "struct" IDENT "{" (type IDENT ("[" INT "]")? ";")* "}" ";"
    funcdef   := type IDENT "(" params? ")" block
    block     := "{" stmt* "}"
    stmt      := decl | assign | exprstmt | if | while | return
               | break | continue | block
    decl      := type IDENT ("[" INT "]")? ("=" expr)? ";"
    assign    := expr "=" expr ";"
    expr      := precedence-climbing over || && == != < <= > >= + - * / %
                 with unary - ! * & and postfix call/index/member

Types are ``int``, ``void`` (returns only), ``struct N``, with any
number of ``*``.
"""

from __future__ import annotations

from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.syntax import (
    AssignStmt,
    Binary,
    Block,
    BreakStmt,
    Call,
    ContinueStmt,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FuncDef,
    IfStmt,
    Index,
    IntLit,
    Member,
    NullLit,
    Param,
    Pos,
    Program,
    ReturnStmt,
    SizeofType,
    Stmt,
    StructDef,
    TArray,
    TInt,
    TPtr,
    TStruct,
    TVoid,
    Unary,
    Var,
    WhileStmt,
)
from repro.lang.tokens import Token, TokenKind as K

# Binary operator precedence (higher binds tighter).
_BINOP_PRECEDENCE: dict[K, tuple[str, int]] = {
    K.OR: ("||", 1),
    K.AND: ("&&", 2),
    K.EQ: ("==", 3),
    K.NEQ: ("!=", 3),
    K.LT: ("<", 4),
    K.LE: ("<=", 4),
    K.GT: (">", 4),
    K.GE: (">=", 4),
    K.PLUS: ("+", 5),
    K.MINUS: ("-", 5),
    K.STAR: ("*", 6),
    K.SLASH: ("/", 6),
    K.PERCENT: ("%", 6),
}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: K) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not K.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: K) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                token.line, token.col, f"expected {kind.value!r}, got {token.text!r}"
            )
        return self._advance()

    def _pos_of(self, token: Token) -> Pos:
        return Pos(token.line, token.col)

    # -- types ------------------------------------------------------------

    def _at_type_start(self) -> bool:
        return self._peek().kind in (K.KW_INT, K.KW_VOID, K.KW_STRUCT)

    def _parse_type(self) -> CType:
        token = self._peek()
        base: CType
        if token.kind is K.KW_INT:
            self._advance()
            base = TInt()
        elif token.kind is K.KW_VOID:
            self._advance()
            base = TVoid()
        elif token.kind is K.KW_STRUCT:
            self._advance()
            name = self._expect(K.IDENT)
            base = TStruct(name.text)
        else:
            raise ParseError(token.line, token.col, f"expected a type, got {token.text!r}")
        while self._at(K.STAR):
            self._advance()
            base = TPtr(base)
        return base

    # -- top level ----------------------------------------------------------

    def parse_program(self) -> Program:
        structs: list[StructDef] = []
        functions: list[FuncDef] = []
        while not self._at(K.EOF):
            if self._at(K.KW_STRUCT) and self._peek(2).kind is K.LBRACE:
                structs.append(self._parse_struct())
            else:
                functions.append(self._parse_function())
        return Program(tuple(structs), tuple(functions))

    def _parse_struct(self) -> StructDef:
        start = self._expect(K.KW_STRUCT)
        name = self._expect(K.IDENT)
        self._expect(K.LBRACE)
        fields: list[tuple[str, CType]] = []
        while not self._at(K.RBRACE):
            ftype = self._parse_type()
            fname = self._expect(K.IDENT)
            if self._at(K.LBRACKET):
                self._advance()
                size = self._expect(K.INT_LIT)
                self._expect(K.RBRACKET)
                ftype = TArray(ftype, int(size.text))
            self._expect(K.SEMI)
            fields.append((fname.text, ftype))
        self._expect(K.RBRACE)
        self._expect(K.SEMI)
        return StructDef(name.text, tuple(fields), self._pos_of(start))

    def _parse_function(self) -> FuncDef:
        start = self._peek()
        ret = self._parse_type()
        name = self._expect(K.IDENT)
        self._expect(K.LPAREN)
        params: list[Param] = []
        if not self._at(K.RPAREN):
            while True:
                ptype = self._parse_type()
                pname = self._expect(K.IDENT)
                params.append(Param(pname.text, ptype))
                if self._at(K.COMMA):
                    self._advance()
                    continue
                break
        self._expect(K.RPAREN)
        body = self._parse_block()
        return FuncDef(name.text, ret, tuple(params), body, self._pos_of(start))

    # -- statements ---------------------------------------------------------

    def _parse_block(self) -> Block:
        start = self._expect(K.LBRACE)
        stmts: list[Stmt] = []
        while not self._at(K.RBRACE):
            stmts.append(self._parse_stmt())
        self._expect(K.RBRACE)
        return Block(tuple(stmts), self._pos_of(start))

    def _parse_stmt(self) -> Stmt:
        token = self._peek()
        if token.kind is K.LBRACE:
            return self._parse_block()
        if self._at_type_start():
            return self._parse_decl()
        if token.kind is K.KW_IF:
            return self._parse_if()
        if token.kind is K.KW_WHILE:
            return self._parse_while()
        if token.kind is K.KW_RETURN:
            self._advance()
            value = None if self._at(K.SEMI) else self._parse_expr()
            self._expect(K.SEMI)
            return ReturnStmt(value, self._pos_of(token))
        if token.kind is K.KW_BREAK:
            self._advance()
            self._expect(K.SEMI)
            return BreakStmt(self._pos_of(token))
        if token.kind is K.KW_CONTINUE:
            self._advance()
            self._expect(K.SEMI)
            return ContinueStmt(self._pos_of(token))
        expr = self._parse_expr()
        if self._at(K.ASSIGN):
            self._advance()
            rhs = self._parse_expr()
            self._expect(K.SEMI)
            return AssignStmt(expr, rhs, self._pos_of(token))
        self._expect(K.SEMI)
        return ExprStmt(expr, self._pos_of(token))

    def _parse_decl(self) -> DeclStmt:
        start = self._peek()
        ctype = self._parse_type()
        name = self._expect(K.IDENT)
        if self._at(K.LBRACKET):
            self._advance()
            size = self._expect(K.INT_LIT)
            self._expect(K.RBRACKET)
            ctype = TArray(ctype, int(size.text))
        init: Expr | None = None
        if self._at(K.ASSIGN):
            self._advance()
            init = self._parse_expr()
        self._expect(K.SEMI)
        return DeclStmt(name.text, ctype, init, self._pos_of(start))

    def _parse_if(self) -> IfStmt:
        start = self._expect(K.KW_IF)
        self._expect(K.LPAREN)
        cond = self._parse_expr()
        self._expect(K.RPAREN)
        then = self._parse_block()
        els: Block | None = None
        if self._at(K.KW_ELSE):
            self._advance()
            if self._at(K.KW_IF):
                # else-if chain: wrap the nested if in a block.
                nested = self._parse_if()
                els = Block((nested,), nested.pos)
            else:
                els = self._parse_block()
        return IfStmt(cond, then, els, self._pos_of(start))

    def _parse_while(self) -> WhileStmt:
        start = self._expect(K.KW_WHILE)
        self._expect(K.LPAREN)
        cond = self._parse_expr()
        self._expect(K.RPAREN)
        body = self._parse_block()
        return WhileStmt(cond, body, self._pos_of(start))

    # -- expressions ----------------------------------------------------------

    def _parse_expr(self, min_precedence: int = 1) -> Expr:
        lhs = self._parse_unary()
        while True:
            entry = _BINOP_PRECEDENCE.get(self._peek().kind)
            if entry is None:
                return lhs
            op, precedence = entry
            if precedence < min_precedence:
                return lhs
            token = self._advance()
            rhs = self._parse_expr(precedence + 1)
            lhs = Binary(op, lhs, rhs, self._pos_of(token))

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.kind in (K.MINUS, K.BANG, K.STAR, K.AMP):
            self._advance()
            operand = self._parse_unary()
            op = {K.MINUS: "-", K.BANG: "!", K.STAR: "*", K.AMP: "&"}[token.kind]
            return Unary(op, operand, self._pos_of(token))
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind is K.LBRACKET:
                self._advance()
                index = self._parse_expr()
                self._expect(K.RBRACKET)
                expr = Index(expr, index, self._pos_of(token))
            elif token.kind is K.DOT:
                self._advance()
                name = self._expect(K.IDENT)
                expr = Member(expr, name.text, False, self._pos_of(token))
            elif token.kind is K.ARROW:
                self._advance()
                name = self._expect(K.IDENT)
                expr = Member(expr, name.text, True, self._pos_of(token))
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind is K.INT_LIT:
            self._advance()
            return IntLit(int(token.text), self._pos_of(token))
        if token.kind is K.KW_NULL:
            self._advance()
            return NullLit(self._pos_of(token))
        if token.kind is K.KW_SIZEOF:
            self._advance()
            self._expect(K.LPAREN)
            ctype = self._parse_type()
            self._expect(K.RPAREN)
            return SizeofType(ctype, self._pos_of(token))
        if token.kind is K.IDENT:
            self._advance()
            if self._at(K.LPAREN):
                self._advance()
                args: list[Expr] = []
                if not self._at(K.RPAREN):
                    while True:
                        args.append(self._parse_expr())
                        if self._at(K.COMMA):
                            self._advance()
                            continue
                        break
                self._expect(K.RPAREN)
                return Call(token.text, tuple(args), self._pos_of(token))
            return Var(token.text, self._pos_of(token))
        if token.kind is K.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(K.RPAREN)
            return expr
        raise ParseError(token.line, token.col, f"unexpected token {token.text!r}")


def parse_program(source: str) -> Program:
    """Parse MiniC source into a :class:`~repro.lang.syntax.Program`."""
    return _Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> Expr:
    """Parse a single expression (testing helper)."""
    parser = _Parser(tokenize(source))
    expr = parser._parse_expr()
    parser._expect(K.EOF)
    return expr

"""Peephole optimization of MiniC bytecode.

A small, semantics-preserving optimizer over the stack bytecode:

* **constant folding** — ``push a; push b; add`` → ``push (a+b)`` (with
  the VM's exact C-style truncating division; folds that would divide by
  zero are left for the VM to flag as UB at runtime);
* **unary folding** — ``push a; neg/not`` → ``push …``;
* **constant branches** — ``push c; jz L`` → ``jmp L`` or nothing;
* **push/pop annihilation**;
* **jump threading** — jumps to unconditional jumps retarget to the
  final destination;
* **jump-to-next elimination**.

All rewrites are basic-block-safe: a pattern is only folded when none of
its interior instructions is a jump target.  The interesting property,
checked by the fuzz suite: optimization preserves results and marker
traces, only ever *reduces* the executed-instruction count, and
therefore never invalidates a static WCET bound computed for the
unoptimized code — the cost analysis stays sound across optimization,
the way a WCET obtained at one optimization level stays sound for a
faster build.
"""

from __future__ import annotations

from repro.lang.compile import CompiledFunction, CompiledProgram, Instr

#: binary opcodes we can fold, with their Python evaluators.
_JUMPS = ("jmp", "jz", "jnz")


def _fold_binary(op: str, a: int, b: int) -> int | None:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op in ("div", "mod"):
        if b == 0:
            return None  # leave the UB for the VM to detect
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        return quotient if op == "div" else a - quotient * b
    if op == "lt":
        return int(a < b)
    if op == "le":
        return int(a <= b)
    if op == "gt":
        return int(a > b)
    if op == "ge":
        return int(a >= b)
    if op == "eq":
        return int(a == b)
    if op == "ne":
        return int(a != b)
    return None


def _jump_targets(code: list[Instr]) -> set[int]:
    return {ins.a for ins in code if ins.op in _JUMPS}


def _peephole_pass(code: list[Instr]) -> tuple[list[Instr], bool]:
    """One folding pass; returns (new code, changed?)."""
    targets = _jump_targets(code)
    new_code: list[Instr] = []
    mapping: dict[int, int] = {}
    changed = False
    i = 0
    n = len(code)
    while i < n:
        mapping[i] = len(new_code)
        ins = code[i]
        # push a; push b; <binop>
        if (
            ins.op == "push"
            and i + 2 < n
            and code[i + 1].op == "push"
            and i + 1 not in targets
            and i + 2 not in targets
        ):
            folded = _fold_binary(code[i + 2].op, ins.a, code[i + 1].a)
            if folded is not None:
                mapping[i + 1] = len(new_code)
                mapping[i + 2] = len(new_code)
                new_code.append(Instr("push", folded))
                i += 3
                changed = True
                continue
        # push a; neg|not
        if (
            ins.op == "push"
            and i + 1 < n
            and code[i + 1].op in ("neg", "not")
            and i + 1 not in targets
        ):
            value = -ins.a if code[i + 1].op == "neg" else int(ins.a == 0)
            mapping[i + 1] = len(new_code)
            new_code.append(Instr("push", value))
            i += 2
            changed = True
            continue
        # push c; jz|jnz L  →  jmp L / (nothing)
        if (
            ins.op == "push"
            and i + 1 < n
            and code[i + 1].op in ("jz", "jnz")
            and i + 1 not in targets
        ):
            taken = (ins.a == 0) == (code[i + 1].op == "jz")
            mapping[i + 1] = len(new_code)
            if taken:
                new_code.append(Instr("jmp", code[i + 1].a))
            # not taken: both instructions vanish
            i += 2
            changed = True
            continue
        # push; pop
        if (
            ins.op == "push"
            and i + 1 < n
            and code[i + 1].op == "pop"
            and i + 1 not in targets
        ):
            mapping[i + 1] = len(new_code)
            i += 2
            changed = True
            continue
        new_code.append(Instr(ins.op, ins.a, ins.b))
        i += 1
    mapping[n] = len(new_code)
    for ins in new_code:
        if ins.op in _JUMPS:
            ins.a = mapping[ins.a]
    return new_code, changed


def _thread_jumps(code: list[Instr]) -> bool:
    """Retarget jumps that land on unconditional jumps.  In place."""
    changed = False
    for ins in code:
        if ins.op not in _JUMPS:
            continue
        seen = set()
        target = ins.a
        while (
            target < len(code)
            and code[target].op == "jmp"
            and target not in seen
        ):
            seen.add(target)
            target = code[target].a
        if target != ins.a:
            ins.a = target
            changed = True
    return changed


def _drop_jumps_to_next(code: list[Instr]) -> tuple[list[Instr], bool]:
    targets = _jump_targets(code)
    new_code: list[Instr] = []
    mapping: dict[int, int] = {}
    changed = False
    for i, ins in enumerate(code):
        mapping[i] = len(new_code)
        if ins.op == "jmp" and ins.a == i + 1:
            changed = True
            continue
        new_code.append(Instr(ins.op, ins.a, ins.b))
    mapping[len(code)] = len(new_code)
    for ins in new_code:
        if ins.op in _JUMPS:
            ins.a = mapping[ins.a]
    return new_code, changed


def optimize_function(func: CompiledFunction, max_passes: int = 8) -> CompiledFunction:
    """Optimize one function's code to a fixpoint (bounded)."""
    code = [Instr(i.op, i.a, i.b) for i in func.code]
    for _ in range(max_passes):
        code, changed_fold = _peephole_pass(code)
        changed_thread = _thread_jumps(code)
        code, changed_next = _drop_jumps_to_next(code)
        if not (changed_fold or changed_thread or changed_next):
            break
    # Loop regions are invalidated by index shuffling; the optimizer is
    # for execution, not for the (AST-level) cost analysis, so drop them.
    return CompiledFunction(
        name=func.name,
        params=func.params,
        slot_sizes=list(func.slot_sizes),
        code=code,
        returns_value=func.returns_value,
        loops=[],
    )


def optimize_program(program: CompiledProgram) -> CompiledProgram:
    """Optimize every function of a compiled program."""
    return CompiledProgram(
        typed=program.typed,
        functions={
            name: optimize_function(func)
            for name, func in program.functions.items()
        },
    )

"""Differential execution of one MiniC program across all semantics.

The toolchain carries three executable semantics for the same program —
the definitional interpreter (:mod:`repro.lang.interp`), the bytecode VM
(:mod:`repro.lang.vm`), and the compiled-to-Python backend
(:mod:`repro.lang.codegen`).  On UB-free programs they agree to the
marker; the differential tests enforce exactly that.  But the semantics
deliberately differ on one axis: **local lifetimes**.

The interpreter is the verification semantics and follows the C
standard: a block's locals die when the block exits (``_Frame.pop_scope``
kills each local's heap block), so a pointer that escapes its block is
*dangling* and any later dereference is undefined behaviour.  The VM —
and codegen, which mirrors the VM's storage model instruction for
instruction — allocates every slot at function entry and kills it only
at return: locals get *function-scoped* lifetimes, so the same escaped
pointer still targets live storage and the dereference quietly yields
the stale value.

A plain "results differ" report on such a program sends the reader
hunting for a compiler bug that is not there.  This module classifies
the disagreement: when the interpreter alone stops with a
dangling-pointer UB while the VM and codegen agree with each other, the
verdict is ``"lifetime-divergence"`` — the program left the UB-free
fragment both semantics coincide on, and the *stricter* (interpreter)
answer is the authoritative one.  Any other disagreement stays a hard
``"divergence"``: those are toolchain bugs.

The committed witness is ``tests/lang_corpus/dangling_block_local.c``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.codegen import CodegenMachine, compiled_for
from repro.lang.compile import compile_program
from repro.lang.errors import OutOfFuel, UndefinedBehavior
from repro.lang.interp import run_program
from repro.lang.typecheck import TypedProgram
from repro.lang.values import Value
from repro.lang.vm import VM
from repro.rossl.env import ScriptedEnvironment
from repro.rossl.runtime import TraceRecorder
from repro.traces.markers import Marker

#: The engines a lang-level differential run covers, in the order they
#: appear in every verdict.
LANG_ENGINES = ("interp", "vm", "codegen")

DEFAULT_FUEL = 2_000_000


@dataclass(frozen=True)
class EngineOutcome:
    """What one semantics did with the program.

    ``kind`` is ``"value"`` (ran to completion, ``value``/``executed``
    filled in), ``"ub"`` (stopped with undefined behaviour, ``detail``
    holds the message), or ``"fuel"`` (instruction budget exhausted).
    """

    engine: str
    kind: str
    value: Value | None = None
    trace: tuple[Marker, ...] = ()
    executed: int | None = None
    detail: str = ""

    @property
    def dangling(self) -> bool:
        """Whether this outcome is a dangling-pointer UB — the signature
        of the interpreter's block-scoped lifetime model."""
        return self.kind == "ub" and "dangling pointer" in self.detail

    def agrees_with(self, other: "EngineOutcome") -> bool:
        """Same observable behaviour: result kind, value, and trace."""
        return (
            self.kind == other.kind
            and self.value == other.value
            and self.trace == other.trace
            and self.detail == other.detail
        )


@dataclass(frozen=True)
class DifferentialVerdict:
    """The classified outcome of one differential run.

    ``kind`` is one of:

    * ``"agree"`` — all engines produced the same observable behaviour;
    * ``"lifetime-divergence"`` — the interpreter alone stopped with a
      dangling-pointer UB while the VM and codegen agree with each
      other: the program observes the lifetime-model gap, not a bug;
    * ``"divergence"`` — any other disagreement (a toolchain bug).
    """

    kind: str
    outcomes: tuple[EngineOutcome, ...]
    detail: str

    @property
    def agreed(self) -> bool:
        return self.kind == "agree"

    def outcome(self, engine: str) -> EngineOutcome:
        for out in self.outcomes:
            if out.engine == engine:
                return out
        raise KeyError(engine)


def run_one(
    typed: TypedProgram,
    engine: str,
    script: list | None = None,
    fuel: int = DEFAULT_FUEL,
) -> EngineOutcome:
    """Run ``typed`` under one lang-level semantics, capturing the outcome."""
    env = ScriptedEnvironment(list(script) if script else [])
    sink = TraceRecorder()
    executed: int | None = None
    try:
        if engine == "interp":
            value = run_program(typed, env, sink, fuel=fuel)
        elif engine == "vm":
            vm = VM(compile_program(typed), env, sink, fuel=fuel)
            value = vm.call("main", [])
            executed = vm.executed
        elif engine == "codegen":
            machine = CodegenMachine(compiled_for(typed), env, sink, fuel=fuel)
            value = machine.call("main", [])
            executed = machine.executed
        else:
            raise ValueError(
                f"unknown lang engine {engine!r}; expected one of "
                f"{', '.join(LANG_ENGINES)}"
            )
    except UndefinedBehavior as exc:
        return EngineOutcome(
            engine=engine, kind="ub", trace=tuple(sink.trace), detail=str(exc)
        )
    except OutOfFuel:
        return EngineOutcome(
            engine=engine, kind="fuel", trace=tuple(sink.trace)
        )
    return EngineOutcome(
        engine=engine, kind="value", value=value, trace=tuple(sink.trace),
        executed=executed,
    )


def classify(outcomes: tuple[EngineOutcome, ...]) -> DifferentialVerdict:
    """Classify a set of per-engine outcomes (see
    :class:`DifferentialVerdict` for the vocabulary)."""
    first = outcomes[0]
    if all(out.agrees_with(first) for out in outcomes[1:]):
        return DifferentialVerdict(
            kind="agree", outcomes=outcomes,
            detail=f"all {len(outcomes)} engines agree ({first.kind})",
        )
    by_engine = {out.engine: out for out in outcomes}
    interp = by_engine.get("interp")
    rest = [out for out in outcomes if out.engine != "interp"]
    if (
        interp is not None
        and interp.dangling
        and rest
        and all(out.agrees_with(rest[0]) for out in rest[1:])
        and not rest[0].dangling
    ):
        return DifferentialVerdict(
            kind="lifetime-divergence", outcomes=outcomes,
            detail=(
                "block-scoped vs function-scoped local lifetimes: the "
                f"interpreter stopped with UB ({interp.detail!r}) while "
                f"{'/'.join(o.engine for o in rest)} agree on a "
                f"{rest[0].kind} outcome — the program dereferences a "
                "pointer that outlived its block"
            ),
        )
    disagreeing = ", ".join(
        f"{out.engine}={out.kind}" for out in outcomes
    )
    return DifferentialVerdict(
        kind="divergence", outcomes=outcomes,
        detail=f"engines disagree ({disagreeing}); this is a toolchain bug",
    )


def differential_check(
    typed: TypedProgram,
    script: list | None = None,
    fuel: int = DEFAULT_FUEL,
    engines: tuple[str, ...] = LANG_ENGINES,
) -> DifferentialVerdict:
    """Run ``typed`` under every lang-level semantics and classify."""
    return classify(
        tuple(run_one(typed, engine, script, fuel) for engine in engines)
    )

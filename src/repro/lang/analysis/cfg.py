"""Basic-block control-flow graphs for MiniC functions.

Lowers the structured AST (``if``/``while``/``break``/``continue``/
``return``) into an explicit CFG:

* each :class:`BasicBlock` holds straight-line statements plus an
  optional branch condition evaluated after them;
* a virtual **exit block** (always the last index) collects every
  return and fall-off-the-end edge, with ``fallthrough_preds``
  distinguishing the latter (the missing-return check keys on it);
* constant branch conditions are folded — ``while (1)`` has no false
  edge, so the scheduler's divergent ``fds_run`` loop yields exactly
  the reachability the paper describes (nothing after it);
* statements sequenced after a terminator land in **detached** blocks
  (no predecessors), which is what the unreachable-code check reports.

Loops are recorded in source (pre-)order — the same order
:mod:`repro.lang.cost` consumes per-function loop bounds in — so the
static loop-bound pass can hand its inferred bounds straight to the
cost analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.pretty import pretty_expr
from repro.lang.syntax import (
    AssignStmt,
    Block,
    BreakStmt,
    ContinueStmt,
    DeclStmt,
    Expr,
    ExprStmt,
    FuncDef,
    IfStmt,
    IntLit,
    Pos,
    ReturnStmt,
    Stmt,
    WhileStmt,
)

#: Statements that live inside a basic block (everything non-branching).
LinearStmt = DeclStmt | AssignStmt | ExprStmt | ReturnStmt | BreakStmt | ContinueStmt


@dataclass
class BasicBlock:
    index: int
    kind: str = "plain"  # "entry" | "plain" | "loop-head" | "exit"
    stmts: list[LinearStmt] = field(default_factory=list)
    #: Branch condition evaluated after ``stmts`` (``None``: unconditional).
    cond: Expr | None = None
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    @property
    def terminated(self) -> bool:
        return bool(self.stmts) and isinstance(
            self.stmts[-1], (ReturnStmt, BreakStmt, ContinueStmt)
        )


@dataclass
class LoopInfo:
    """One source ``while`` loop: head/exit blocks and its back edges."""

    stmt: WhileStmt
    head: int
    exit_block: int
    latches: list[int] = field(default_factory=list)
    #: Source pre-order index within the function (cost.py's loop order).
    order: int = 0

    @property
    def pos(self) -> Pos:
        return self.stmt.pos


@dataclass
class CFG:
    function: FuncDef
    blocks: list[BasicBlock]
    entry: int
    exit: int
    loops: list[LoopInfo]
    #: Blocks whose control falls into the exit without a ``return``.
    fallthrough_preds: list[int]

    def block(self, index: int) -> BasicBlock:
        return self.blocks[index]

    def reachable(self) -> set[int]:
        """Block indices reachable from the entry."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            stack.extend(self.blocks[index].succs)
        return seen


class _Builder:
    def __init__(self, func: FuncDef) -> None:
        self.func = func
        self.blocks: list[BasicBlock] = []
        self.loops: list[LoopInfo] = []
        self.fallthrough_preds: list[int] = []
        #: (head, exit_block, info) for the enclosing loops.
        self._loop_stack: list[LoopInfo] = []

    def new_block(self, kind: str = "plain") -> int:
        block = BasicBlock(index=len(self.blocks), kind=kind)
        self.blocks.append(block)
        return block.index

    def edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
        if src not in self.blocks[dst].preds:
            self.blocks[dst].preds.append(src)

    def build(self) -> CFG:
        entry = self.new_block("entry")
        last = self._seq(self.func.body.stmts, entry)
        exit_index = self.new_block("exit")
        if last is not None:
            self.edge(last, exit_index)
            self.fallthrough_preds.append(last)
        # Route every `return` block into the exit.
        for block in self.blocks:
            if block.stmts and isinstance(block.stmts[-1], ReturnStmt):
                self.edge(block.index, exit_index)
        return CFG(
            function=self.func,
            blocks=self.blocks,
            entry=entry,
            exit=exit_index,
            loops=self.loops,
            fallthrough_preds=self.fallthrough_preds,
        )

    # -- statement lowering --------------------------------------------------

    def _seq(self, stmts: tuple[Stmt, ...], current: int | None) -> int | None:
        for stmt in stmts:
            if current is None:
                # Control already left: everything from here is dead code
                # in a predecessor-less block.
                current = self.new_block()
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: Stmt, current: int) -> int | None:
        if isinstance(stmt, Block):
            return self._seq(stmt.stmts, current)
        if isinstance(stmt, (DeclStmt, AssignStmt, ExprStmt)):
            self.blocks[current].stmts.append(stmt)
            return current
        if isinstance(stmt, ReturnStmt):
            self.blocks[current].stmts.append(stmt)
            return None  # edge to exit added in build()
        if isinstance(stmt, BreakStmt):
            self.blocks[current].stmts.append(stmt)
            if self._loop_stack:
                self.edge(current, self._loop_stack[-1].exit_block)
            return None
        if isinstance(stmt, ContinueStmt):
            self.blocks[current].stmts.append(stmt)
            if self._loop_stack:
                self.edge(current, self._loop_stack[-1].head)
                self._loop_stack[-1].latches.append(current)
            return None
        if isinstance(stmt, IfStmt):
            return self._if(stmt, current)
        if isinstance(stmt, WhileStmt):
            return self._while(stmt, current)
        raise AssertionError(f"unhandled statement {stmt!r}")  # pragma: no cover

    def _if(self, stmt: IfStmt, current: int) -> int | None:
        self.blocks[current].cond = stmt.cond
        folded = _const_truth(stmt.cond)
        then_entry = self.new_block()
        if folded is not False:
            self.edge(current, then_entry)
        then_end = self._seq(stmt.then.stmts, then_entry)

        els_entry: int | None = None
        els_end: int | None = None
        if stmt.els is not None:
            els_entry = self.new_block()
            if folded is not True:
                self.edge(current, els_entry)
            els_end = self._seq(stmt.els.stmts, els_entry)

        if then_end is None and stmt.els is not None and els_end is None:
            return None  # both arms terminated
        join = self.new_block()
        if then_end is not None:
            self.edge(then_end, join)
        if stmt.els is None:
            if folded is not True:
                self.edge(current, join)  # false edge skips the then-arm
        elif els_end is not None:
            self.edge(els_end, join)
        return join

    def _while(self, stmt: WhileStmt, current: int) -> int | None:
        head = self.new_block("loop-head")
        self.blocks[head].cond = stmt.cond
        self.edge(current, head)
        info = LoopInfo(
            stmt=stmt, head=head, exit_block=-1, order=len(self.loops)
        )
        self.loops.append(info)

        folded = _const_truth(stmt.cond)
        body_entry = self.new_block()
        exit_block = self.new_block()
        info.exit_block = exit_block
        if folded is not False:
            self.edge(head, body_entry)
        if folded is not True:
            self.edge(head, exit_block)

        self._loop_stack.append(info)
        body_end = self._seq(stmt.body.stmts, body_entry)
        self._loop_stack.pop()
        if body_end is not None:
            self.edge(body_end, head)
            info.latches.append(body_end)
        # A `while (1)` with no break leaves the exit block detached;
        # that is correct — code after it is unreachable.
        return exit_block if self.blocks[exit_block].preds or folded is not True else None


def _const_truth(expr: Expr) -> bool | None:
    """Truth value of a constant condition, or ``None`` if not constant."""
    if isinstance(expr, IntLit):
        return expr.value != 0
    return None


def build_cfg(func: FuncDef) -> CFG:
    """Lower ``func`` to a basic-block CFG."""
    return _Builder(func).build()


# --------------------------------------------------------------------------
# Rendering (golden tests, debugging)
# --------------------------------------------------------------------------


def _stmt_text(stmt: LinearStmt) -> str:
    if isinstance(stmt, DeclStmt):
        if stmt.init is None:
            return f"decl {stmt.name}"
        return f"decl {stmt.name} = {pretty_expr(stmt.init)}"
    if isinstance(stmt, AssignStmt):
        return f"{pretty_expr(stmt.lhs)} = {pretty_expr(stmt.rhs)}"
    if isinstance(stmt, ExprStmt):
        return pretty_expr(stmt.expr)
    if isinstance(stmt, ReturnStmt):
        if stmt.value is None:
            return "return"
        return f"return {pretty_expr(stmt.value)}"
    if isinstance(stmt, BreakStmt):
        return "break"
    if isinstance(stmt, ContinueStmt):
        return "continue"
    raise AssertionError(f"unhandled statement {stmt!r}")  # pragma: no cover


def describe(cfg: CFG) -> str:
    """Deterministic text rendering of the CFG (used by golden tests)."""
    lines = [f"fn {cfg.function.name}:"]
    for block in cfg.blocks:
        label = f"B{block.index}"
        if block.kind != "plain":
            label += f"({block.kind})"
        body = "; ".join(_stmt_text(s) for s in block.stmts) or "-"
        succs = ", ".join(f"B{s}" for s in block.succs) or "-"
        line = f"  {label}: {body}"
        if block.cond is not None:
            line += f" | branch {pretty_expr(block.cond)}"
        line += f" -> {succs}"
        lines.append(line)
    if cfg.loops:
        loops = "; ".join(
            f"loop#{info.order}@{info.pos} head=B{info.head} "
            f"latches={[f'B{i}' for i in sorted(info.latches)]}"
            for info in cfg.loops
        )
        lines.append(f"  loops: {loops}")
    return "\n".join(lines)

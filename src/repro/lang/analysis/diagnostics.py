"""Structured diagnostics for the MiniC static-analysis pass.

Every check emits :class:`Diagnostic` records — severity, source span,
a stable check id from :data:`CHECKS`, a message, and an optional fix
hint — collected into a :class:`DiagnosticReport`.  The CLI renders
them (text or JSON) and maps them to exit codes; `--Werror` promotes
warnings to errors at the report level, never inside the checks.

The id scheme groups checks by family:

* ``FE0xx`` — front-end failures (lex/parse/type), produced when the
  analyzer is asked to lint a file that does not even build;
* ``MD0xx`` — marker discipline (the Fig. 6 trace protocol);
* ``UC``/``MR``/``DA`` — classic CFG/dataflow checks;
* ``LB``/``CF`` — static loop-bound and cost facts feeding the WCET
  story (docs/lang-analysis.md has the full catalog).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

from repro.lang.syntax import Pos


class Severity(Enum):
    """Diagnostic severity; the ordering is used for sorting and exit codes."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: Stable check catalog: id → (default severity, one-line description).
CHECKS: dict[str, tuple[Severity, str]] = {
    "FE001": (Severity.ERROR, "lexical error"),
    "FE002": (Severity.ERROR, "syntax error"),
    "FE003": (Severity.ERROR, "type error"),
    "MD001": (Severity.ERROR, "marker emitted inside an open marker region"),
    "MD002": (Severity.ERROR, "marker region left open (or open only on some paths) at function exit"),
    "MD003": (Severity.ERROR, "region-closing call without a matching open region"),
    "MD004": (Severity.ERROR, "marker region state not loop-invariant (trace index drifts across iterations)"),
    "UC001": (Severity.WARNING, "unreachable code"),
    "MR001": (Severity.ERROR, "control may reach the end of a non-void function without returning"),
    "DA001": (Severity.WARNING, "variable may be read before initialization"),
    "LB001": (Severity.INFO, "loop bound inferred statically"),
    "LB002": (Severity.WARNING, "loop iteration count cannot be bounded statically"),
    "LB003": (Severity.INFO, "intentionally non-terminating loop (constant-true condition)"),
    "CF001": (Severity.INFO, "static worst-case cost bound computed"),
    "CF002": (Severity.WARNING, "function cost unbounded (recursion)"),
}


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding: where, what, how bad, and how to fix it."""

    check_id: str
    severity: Severity
    message: str
    pos: Pos | None
    function: str | None = None
    hint: str | None = None

    def format(self, source_name: str = "<minic>") -> str:
        where = f"{source_name}:{self.pos}" if self.pos else source_name
        scope = f" [{self.function}]" if self.function else ""
        text = f"{where}: {self.severity.value}: {self.check_id}: {self.message}{scope}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        return {
            "check_id": self.check_id,
            "severity": self.severity.value,
            "message": self.message,
            "line": self.pos.line if self.pos else None,
            "col": self.pos.col if self.pos else None,
            "function": self.function,
            "hint": self.hint,
        }


def make_diagnostic(
    check_id: str,
    message: str,
    pos: Pos | None,
    function: str | None = None,
    hint: str | None = None,
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a diagnostic, defaulting the severity from the catalog."""
    if check_id not in CHECKS:
        raise KeyError(f"unknown check id {check_id!r}")
    return Diagnostic(
        check_id=check_id,
        severity=severity or CHECKS[check_id][0],
        message=message,
        pos=pos,
        function=function,
        hint=hint,
    )


@dataclass
class DiagnosticReport:
    """All diagnostics for one translation unit, in a stable order."""

    source_name: str = "<minic>"
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: list[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def sorted(self) -> list[Diagnostic]:
        """Source order first, then severity, then check id — stable for
        goldens and CI output."""
        return sorted(
            self.diagnostics,
            key=lambda d: (
                d.pos.line if d.pos else 0,
                d.pos.col if d.pos else 0,
                d.severity.rank,
                d.check_id,
                d.message,
            ),
        )

    def by_check(self, check_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.check_id == check_id]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def exit_code(self, werror: bool = False) -> int:
        """0 clean, 1 if any error (or any warning under ``--Werror``)."""
        if self.errors:
            return 1
        if werror and self.warnings:
            return 1
        return 0

    def format(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [
            d.format(self.source_name)
            for d in self.sorted()
            if d.severity.rank <= min_severity.rank
        ]
        counts = (
            f"{self.source_name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.diagnostics) - len(self.errors) - len(self.warnings)} note(s)"
        )
        return "\n".join(lines + [counts])

    def to_json(self) -> str:
        return json.dumps(
            {
                "source": self.source_name,
                "ok": self.ok,
                "diagnostics": [d.to_dict() for d in self.sorted()],
            },
            indent=2,
        )

"""repro.lang.analysis — static analysis over typed MiniC programs.

A post-typecheck pipeline phase: lowers each function to a basic-block
CFG (:mod:`~repro.lang.analysis.cfg`), runs classic forward/backward
dataflow (:mod:`~repro.lang.analysis.dataflow`), and layers the
paper-specific checks on top (:mod:`~repro.lang.analysis.checks`) —
marker discipline per Fig. 6, unreachable code, missing returns,
definite assignment, and static loop-bound/cost facts that feed the
WCET story.  Results are structured
:class:`~repro.lang.analysis.diagnostics.Diagnostic` records; the CLI
front door is ``python -m repro lint`` (docs/lang-analysis.md).
"""

from repro.lang.analysis.cfg import CFG, BasicBlock, LoopInfo, build_cfg, describe
from repro.lang.analysis.checks import (
    analyze_client,
    analyze_program,
    analyze_source,
    bound_warnings,
    infer_loop_bounds,
)
from repro.lang.analysis.dataflow import (
    definite_assignment,
    liveness,
    reaching_definitions,
)
from repro.lang.analysis.diagnostics import (
    CHECKS,
    Diagnostic,
    DiagnosticReport,
    Severity,
    make_diagnostic,
)

__all__ = [
    "CFG",
    "CHECKS",
    "BasicBlock",
    "Diagnostic",
    "DiagnosticReport",
    "LoopInfo",
    "Severity",
    "analyze_client",
    "analyze_program",
    "analyze_source",
    "bound_warnings",
    "build_cfg",
    "definite_assignment",
    "describe",
    "infer_loop_bounds",
    "liveness",
    "make_diagnostic",
    "reaching_definitions",
]

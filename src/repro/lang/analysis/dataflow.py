"""Classic dataflow analyses over the MiniC CFG.

A small generic worklist solver plus three instantiations:

* **reaching definitions** (forward, may) — which assignments can reach
  each block;
* **liveness** (backward, may) — which variables are live into/out of
  each block;
* **definite assignment** (forward, must) — which scalar locals are
  certainly initialized; the residue powers the ``DA001``
  use-before-initialization check.

All three work on variable *names*: MiniC scoping is lexical and the
type checker has already resolved shadowing, so a declaration without an
initializer simply kills the name (the inner variable starts
uninitialized even if an outer one was set).  Aggregates (structs,
arrays) and address-taken variables are treated conservatively as
always-initialized storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.lang.analysis.cfg import CFG, BasicBlock, LinearStmt
from repro.lang.syntax import (
    AssignStmt,
    Binary,
    Call,
    DeclStmt,
    Expr,
    ExprStmt,
    Index,
    IntLit,
    Member,
    NullLit,
    Pos,
    ReturnStmt,
    SizeofType,
    TInt,
    TPtr,
    Unary,
    Var,
)

# --------------------------------------------------------------------------
# Syntax-directed def/use extraction
# --------------------------------------------------------------------------


def expr_reads(expr: Expr) -> Iterator[Var]:
    """Variables *read* by ``expr``, in evaluation order.

    ``&x`` does not read ``x`` (it only takes its address), so its
    direct operand is skipped; everything below a deref or index is a
    genuine read.
    """
    if isinstance(expr, (IntLit, NullLit, SizeofType)):
        return
    if isinstance(expr, Var):
        yield expr
        return
    if isinstance(expr, Unary):
        if expr.op == "&" and isinstance(expr.operand, Var):
            return
        yield from expr_reads(expr.operand)
        return
    if isinstance(expr, Binary):
        yield from expr_reads(expr.lhs)
        yield from expr_reads(expr.rhs)
        return
    if isinstance(expr, Call):
        for arg in expr.args:
            yield from expr_reads(arg)
        return
    if isinstance(expr, Member):
        yield from expr_reads(expr.obj)
        return
    if isinstance(expr, Index):
        yield from expr_reads(expr.base)
        yield from expr_reads(expr.index)
        return
    raise AssertionError(f"unhandled expression {expr!r}")  # pragma: no cover


def expr_address_taken(expr: Expr) -> Iterator[str]:
    """Names whose address is taken anywhere inside ``expr``."""
    if isinstance(expr, Unary):
        if expr.op == "&" and isinstance(expr.operand, Var):
            yield expr.operand.name
        yield from expr_address_taken(expr.operand)
    elif isinstance(expr, Binary):
        yield from expr_address_taken(expr.lhs)
        yield from expr_address_taken(expr.rhs)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from expr_address_taken(arg)
    elif isinstance(expr, Member):
        yield from expr_address_taken(expr.obj)
    elif isinstance(expr, Index):
        yield from expr_address_taken(expr.base)
        yield from expr_address_taken(expr.index)


def stmt_exprs(stmt: LinearStmt) -> Iterator[Expr]:
    """The expressions a linear statement evaluates, in order."""
    if isinstance(stmt, DeclStmt):
        if stmt.init is not None:
            yield stmt.init
    elif isinstance(stmt, AssignStmt):
        # rhs first is how both semantics evaluate; for def/use sets the
        # order only matters for `x = x + 1`, where the read precedes
        # the write either way.
        yield stmt.rhs
        if not isinstance(stmt.lhs, Var):
            yield stmt.lhs  # lvalue path reads (e.g. `*p`, `a[i]`)
    elif isinstance(stmt, ExprStmt):
        yield stmt.expr
    elif isinstance(stmt, ReturnStmt):
        if stmt.value is not None:
            yield stmt.value


def stmt_def(stmt: LinearStmt) -> str | None:
    """The variable name a statement directly assigns, if any."""
    if isinstance(stmt, DeclStmt) and stmt.init is not None:
        return stmt.name
    if isinstance(stmt, AssignStmt) and isinstance(stmt.lhs, Var):
        return stmt.lhs.name
    return None


# --------------------------------------------------------------------------
# Generic worklist solver
# --------------------------------------------------------------------------


def solve(
    cfg: CFG,
    *,
    forward: bool,
    init: Callable[[BasicBlock], frozenset],
    boundary: frozenset,
    merge: Callable[[list[frozenset]], frozenset],
    transfer: Callable[[BasicBlock, frozenset], frozenset],
) -> tuple[dict[int, frozenset], dict[int, frozenset]]:
    """Iterate ``transfer`` to a fixpoint; returns (in_sets, out_sets).

    ``boundary`` seeds the entry (forward) or exit (backward) block;
    ``init`` gives every other block's starting out-set (bottom).
    """
    preds = {b.index: b.preds for b in cfg.blocks}
    succs = {b.index: b.succs for b in cfg.blocks}
    inputs, outputs = (preds, succs) if forward else (succs, preds)
    start = cfg.entry if forward else cfg.exit

    in_sets: dict[int, frozenset] = {}
    out_sets: dict[int, frozenset] = {b.index: init(b) for b in cfg.blocks}
    work = [b.index for b in cfg.blocks]
    while work:
        index = work.pop(0)
        block = cfg.blocks[index]
        if index == start:
            in_value = boundary
        else:
            incoming = [out_sets[p] for p in inputs[index]]
            in_value = merge(incoming) if incoming else boundary
        in_sets[index] = in_value
        out_value = transfer(block, in_value)
        if out_value != out_sets[index]:
            out_sets[index] = out_value
            for nxt in outputs[index]:
                if nxt not in work:
                    work.append(nxt)
    return in_sets, out_sets


def _union(sets: list[frozenset]) -> frozenset:
    result: frozenset = frozenset()
    for s in sets:
        result |= s
    return result


def _intersection(sets: list[frozenset]) -> frozenset:
    result = sets[0]
    for s in sets[1:]:
        result &= s
    return result


# --------------------------------------------------------------------------
# Reaching definitions
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Definition:
    """One definition site: variable name + position (``None``: a
    parameter's implicit definition at function entry)."""

    name: str
    pos: Pos | None

    def __repr__(self) -> str:  # compact for golden/debug output
        return f"{self.name}@{self.pos or 'entry'}"


def reaching_definitions(cfg: CFG) -> tuple[dict[int, frozenset], dict[int, frozenset]]:
    """Forward may-analysis: definitions reaching each block boundary."""
    param_defs = frozenset(
        Definition(p.name, None) for p in cfg.function.params
    )

    def transfer(block: BasicBlock, value: frozenset) -> frozenset:
        live = set(value)
        for stmt in block.stmts:
            name = stmt_def(stmt)
            if isinstance(stmt, DeclStmt) and stmt.init is None:
                name = None  # declaration alone defines nothing
            if name is not None:
                live = {d for d in live if d.name != name}
                live.add(Definition(name, stmt.pos))
        return frozenset(live)

    return solve(
        cfg,
        forward=True,
        init=lambda b: frozenset(),
        boundary=param_defs,
        merge=_union,
        transfer=transfer,
    )


# --------------------------------------------------------------------------
# Liveness
# --------------------------------------------------------------------------


def liveness(cfg: CFG) -> tuple[dict[int, frozenset], dict[int, frozenset]]:
    """Backward may-analysis over variable names.

    Returns ``(live_out, live_in)`` per block — the solver's (in, out)
    in backward orientation.
    """

    def transfer(block: BasicBlock, live_after: frozenset) -> frozenset:
        live = set(live_after)
        if block.cond is not None:
            live |= {v.name for v in expr_reads(block.cond)}
            live |= set(expr_address_taken(block.cond))
        for stmt in reversed(block.stmts):
            name = stmt_def(stmt)
            if name is not None:
                live.discard(name)
            for expr in stmt_exprs(stmt):
                live |= {v.name for v in expr_reads(expr)}
                # Address-taken names stay live: writes may flow indirectly.
                live |= set(expr_address_taken(expr))
        return frozenset(live)

    return solve(
        cfg,
        forward=False,
        init=lambda b: frozenset(),
        boundary=frozenset(),
        merge=_union,
        transfer=transfer,
    )


# --------------------------------------------------------------------------
# Definite assignment
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class UseBeforeInit:
    """A read of ``name`` at ``pos`` not dominated by an assignment."""

    name: str
    pos: Pos


def definite_assignment(cfg: CFG, tracked: set[str]) -> list[UseBeforeInit]:
    """Forward must-analysis; reports reads of ``tracked`` scalar names
    possibly performed before any assignment."""
    everything = frozenset(tracked) | {p.name for p in cfg.function.params}

    def flow_stmt(stmt: LinearStmt, assigned: set[str]) -> None:
        for expr in stmt_exprs(stmt):
            for name in expr_address_taken(expr):
                assigned.add(name)  # conservative: &x may initialize x
        name = stmt_def(stmt)
        if isinstance(stmt, DeclStmt):
            if stmt.init is not None:
                assigned.add(stmt.name)
            elif isinstance(stmt.ctype, (TInt, TPtr)):
                assigned.discard(stmt.name)  # fresh, uninitialized scalar
            else:
                assigned.add(stmt.name)  # aggregates are storage, not values
        elif name is not None:
            assigned.add(name)

    def transfer(block: BasicBlock, value: frozenset) -> frozenset:
        assigned = set(value)
        for stmt in block.stmts:
            flow_stmt(stmt, assigned)
        if block.cond is not None:
            for name in expr_address_taken(block.cond):
                assigned.add(name)
        return frozenset(assigned)

    in_sets, _ = solve(
        cfg,
        forward=True,
        init=lambda b: everything,  # top: must-analysis starts optimistic
        boundary=frozenset(p.name for p in cfg.function.params),
        merge=_intersection,
        transfer=transfer,
    )

    # Reporting pass: walk each reachable block with its fixpoint in-set.
    found: list[UseBeforeInit] = []
    seen: set[tuple[str, int, int]] = set()
    for index in sorted(cfg.reachable()):
        block = cfg.blocks[index]
        assigned = set(in_sets.get(index, frozenset()))
        exprs = [(s, list(stmt_exprs(s))) for s in block.stmts]
        for stmt, stmt_expr_list in exprs:
            for expr in stmt_expr_list:
                for var in expr_reads(expr):
                    if var.name in tracked and var.name not in assigned:
                        key = (var.name, var.pos.line, var.pos.col)
                        if key not in seen:
                            seen.add(key)
                            found.append(UseBeforeInit(var.name, var.pos))
            flow_stmt(stmt, assigned)
        if block.cond is not None:
            for var in expr_reads(block.cond):
                if var.name in tracked and var.name not in assigned:
                    key = (var.name, var.pos.line, var.pos.col)
                    if key not in seen:
                        seen.add(key)
                        found.append(UseBeforeInit(var.name, var.pos))
    return found

"""The MiniC static checks: marker discipline, CFG hygiene, loop bounds.

Runs post-typecheck over the CFGs of :mod:`repro.lang.analysis.cfg` and
reports structured :class:`~repro.lang.analysis.diagnostics.Diagnostic`
records.  Four check families:

**Marker discipline (MD0xx).**  The paper's Fig. 6 protocol, statically:
``read_start()`` opens a read region that only the ``read()`` system
call closes; ``dispatch_start(j)`` opens a dispatch region closed by
``execution_start(j)``, which opens the execution region closed by
``completion_start(j)``; ``selection_start``/``idling_start`` may only
fire with no region open.  The checker runs a forward dataflow over the
abstract *phase* of the trace state along every CFG path, with
interprocedural summaries (a callee maps entry phases to exit phases) so
helpers like ``npfp_dispatch`` — which closes a region its caller opened
— are checked in the contexts they are actually called from.  Because
every marker call appends exactly one event at ``σ_trace.idx``,
trace-index monotonicity reduces to the phase being loop-invariant:
a loop whose back edge carries a different phase than its entry would
drift one unclosed region per iteration (MD004).

**CFG hygiene.**  Unreachable statements (UC001) and non-void functions
whose exit is reachable without a ``return`` (MR001, runtime UB).

**Definite assignment (DA001).**  A must-dataflow pass flagging scalar
locals possibly read before initialization — the static face of the
interpreter's ``UndefinedBehavior`` on uninitialized reads.

**Loop bounds and cost (LB/CF).**  Infers iteration bounds for
canonical counting loops, flags statically unboundable loops (LB002 —
their WCET contribution is unknowable without annotations, the facts
``wcet --backlog`` supplies), and feeds the inferred bounds to
:mod:`repro.lang.cost` to publish per-function worst-case VM
instruction bounds (CF001).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.lang.analysis.cfg import CFG, build_cfg
from repro.lang.analysis.dataflow import definite_assignment, expr_address_taken
from repro.lang.analysis.diagnostics import DiagnosticReport, make_diagnostic
from repro.lang.cost import CostAnalyzer, CostError
from repro.lang.errors import LexError, ParseError, TypeError_
from repro.lang.syntax import (
    AssignStmt,
    Binary,
    Block,
    Call,
    DeclStmt,
    Expr,
    ExprStmt,
    FuncDef,
    IfStmt,
    Index,
    IntLit,
    Member,
    NullLit,
    Pos,
    ReturnStmt,
    SizeofType,
    Stmt,
    TInt,
    TPtr,
    TVoid,
    Unary,
    Var,
    WhileStmt,
)
from repro.lang.typecheck import TypedProgram, typecheck

# --------------------------------------------------------------------------
# The marker phase automaton (Fig. 6)
# --------------------------------------------------------------------------

#: Abstract trace-state phases: which marker region is currently open.
PHASE_NONE = "none"
PHASE_READ = "read"
PHASE_DISPATCH = "dispatch"
PHASE_EXEC = "execution"
ALL_PHASES = (PHASE_NONE, PHASE_READ, PHASE_DISPATCH, PHASE_EXEC)

#: Marker builtins and the read system call participate in the protocol.
MARKER_CALLS = frozenset(
    {
        "read_start",
        "read",
        "selection_start",
        "idling_start",
        "dispatch_start",
        "execution_start",
        "completion_start",
    }
)


def _marker_step(name: str, phase: str) -> tuple[str, str | None, str | None]:
    """One automaton step: ``(next_phase, check_id, message)``.

    ``check_id`` is ``None`` when the transition is legal; on a
    violation the next phase is a deterministic recovery state so one
    mistake does not cascade into a diagnostic per downstream marker.
    """
    if name == "read_start":
        if phase == PHASE_NONE:
            return PHASE_READ, None, None
        return PHASE_READ, "MD001", (
            f"read_start() emitted while a {phase} region is open"
        )
    if name == "read":
        if phase == PHASE_READ:
            return PHASE_NONE, None, None
        return PHASE_NONE, "MD003", (
            "read() system call without a preceding read_start()"
            if phase == PHASE_NONE
            else f"read() inside an open {phase} region"
        )
    if name in ("selection_start", "idling_start"):
        if phase == PHASE_NONE:
            return PHASE_NONE, None, None
        return phase, "MD001", (
            f"{name}() emitted while a {phase} region is open"
        )
    if name == "dispatch_start":
        if phase == PHASE_NONE:
            return PHASE_DISPATCH, None, None
        return PHASE_DISPATCH, "MD001", (
            f"dispatch_start() emitted while a {phase} region is open"
        )
    if name == "execution_start":
        if phase == PHASE_DISPATCH:
            return PHASE_EXEC, None, None
        return PHASE_EXEC, "MD003", (
            "execution_start() without an open dispatch region"
            f" (phase: {phase})"
        )
    if name == "completion_start":
        if phase == PHASE_EXEC:
            return PHASE_NONE, None, None
        return PHASE_NONE, "MD003", (
            "completion_start() without an open execution region"
            f" (phase: {phase})"
        )
    raise AssertionError(f"not a marker call: {name!r}")  # pragma: no cover


_HINTS = {
    "MD001": "close the open region (read() / execution_start / "
    "completion_start) before emitting another marker",
    "MD002": "emit the closing marker on every path out of the function",
    "MD003": "open the region first (read_start / dispatch_start / "
    "execution_start) or drop the stray closer",
    "MD004": "close every region you open inside the loop body",
}


class _MarkerAnalysis:
    """Interprocedural phase dataflow with function summaries."""

    def __init__(self, typed: TypedProgram, cfgs: dict[str, CFG]) -> None:
        self.typed = typed
        self.cfgs = cfgs
        #: fn → entry phase → frozenset of exit phases (∅: diverges).
        self.summaries: dict[str, dict[str, frozenset]] = {
            name: {} for name in cfgs
        }
        self.contexts: dict[str, set[str]] = {name: set() for name in cfgs}
        self._report: DiagnosticReport | None = None
        self._collect_contexts = False
        self._seen: set[tuple] = set()

    # -- expression/phase flow ----------------------------------------------

    def _flow_call(self, call: Call, phases: frozenset, fn: str) -> frozenset:
        if call.name in MARKER_CALLS:
            out = set()
            for phase in sorted(phases):
                nxt, check_id, message = _marker_step(call.name, phase)
                out.add(nxt)
                if check_id and self._report is not None:
                    self._emit(check_id, message, call.pos, fn)
            return frozenset(out)
        if call.name in self.summaries:  # user-defined function
            if self._collect_contexts:
                self.contexts[call.name] |= set(phases)
            summary = self.summaries[call.name]
            out = set()
            for phase in phases:
                out |= summary.get(phase, frozenset())
            return frozenset(out)
        return phases  # malloc/free and friends: no marker effect

    def _flow_expr(self, expr: Expr, phases: frozenset, fn: str) -> frozenset:
        if isinstance(expr, (IntLit, NullLit, SizeofType, Var)):
            return phases
        if isinstance(expr, Unary):
            return self._flow_expr(expr.operand, phases, fn)
        if isinstance(expr, Binary):
            after_lhs = self._flow_expr(expr.lhs, phases, fn)
            after_rhs = self._flow_expr(expr.rhs, after_lhs, fn)
            if expr.op in ("&&", "||"):
                return after_lhs | after_rhs  # rhs may be skipped
            return after_rhs
        if isinstance(expr, Call):
            for arg in expr.args:
                phases = self._flow_expr(arg, phases, fn)
            return self._flow_call(expr, phases, fn)
        if isinstance(expr, Member):
            return self._flow_expr(expr.obj, phases, fn)
        if isinstance(expr, Index):
            phases = self._flow_expr(expr.base, phases, fn)
            return self._flow_expr(expr.index, phases, fn)
        raise AssertionError(f"unhandled expression {expr!r}")  # pragma: no cover

    def _flow_stmt(self, stmt, phases: frozenset, fn: str) -> frozenset:
        if isinstance(stmt, DeclStmt):
            if stmt.init is not None:
                phases = self._flow_expr(stmt.init, phases, fn)
            return phases
        if isinstance(stmt, AssignStmt):
            phases = self._flow_expr(stmt.rhs, phases, fn)
            if not isinstance(stmt.lhs, Var):
                phases = self._flow_expr(stmt.lhs, phases, fn)
            return phases
        if isinstance(stmt, ExprStmt):
            return self._flow_expr(stmt.expr, phases, fn)
        if isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                phases = self._flow_expr(stmt.value, phases, fn)
            return phases
        return phases  # break/continue

    def _flow_block(self, block, phases: frozenset, fn: str) -> frozenset:
        for stmt in block.stmts:
            phases = self._flow_stmt(stmt, phases, fn)
        if block.cond is not None:
            phases = self._flow_expr(block.cond, phases, fn)
        return phases

    # -- per-function dataflow ----------------------------------------------

    def _solve(self, fn: str, entry_phases: frozenset) -> dict[int, frozenset]:
        """Fixpoint of the phase sets flowing *into* each block."""
        cfg = self.cfgs[fn]
        in_sets: dict[int, frozenset] = {
            b.index: frozenset() for b in cfg.blocks
        }
        in_sets[cfg.entry] = entry_phases
        out_sets: dict[int, frozenset] = {
            b.index: frozenset() for b in cfg.blocks
        }
        work = [b.index for b in cfg.blocks]
        while work:
            index = work.pop(0)
            block = cfg.blocks[index]
            if index == cfg.entry:
                in_value = entry_phases
            else:
                in_value = frozenset()
                for pred in block.preds:
                    in_value |= out_sets[pred]
            in_sets[index] = in_value
            out_value = self._flow_block(block, in_value, fn)
            if out_value != out_sets[index]:
                out_sets[index] = out_value
                for nxt in block.succs:
                    if nxt not in work:
                        work.append(nxt)
        self._last_out = out_sets
        return in_sets

    def _exit_phases(self, fn: str, in_sets: dict[int, frozenset]) -> frozenset:
        return in_sets[self.cfgs[fn].exit]

    # -- the three fixpoints -------------------------------------------------

    def compute_summaries(self) -> None:
        changed = True
        while changed:
            changed = False
            for fn in self.cfgs:
                for phase in ALL_PHASES:
                    in_sets = self._solve(fn, frozenset({phase}))
                    exit_set = self._exit_phases(fn, in_sets)
                    if self.summaries[fn].get(phase) != exit_set:
                        self.summaries[fn][phase] = exit_set
                        changed = True

    def compute_contexts(self, roots: set[str]) -> None:
        for root in roots:
            self.contexts[root].add(PHASE_NONE)
        self._collect_contexts = True
        changed = True
        while changed:
            before = {fn: set(ctx) for fn, ctx in self.contexts.items()}
            for fn in self.cfgs:
                if self.contexts[fn]:
                    self._solve(fn, frozenset(self.contexts[fn]))
            changed = before != self.contexts
        self._collect_contexts = False

    def _emit(self, check_id: str, message: str, pos: Pos | None, fn: str) -> None:
        key = (check_id, fn, pos.line if pos else 0, pos.col if pos else 0, message)
        if key in self._seen or self._report is None:
            return
        self._seen.add(key)
        self._report.add(
            make_diagnostic(check_id, message, pos, fn, hint=_HINTS.get(check_id))
        )

    def report_into(self, report: DiagnosticReport, roots: set[str]) -> None:
        """The final pass: re-run each reachable context and emit."""
        self._report = report
        for fn, cfg in self.cfgs.items():
            entry = frozenset(self.contexts[fn])
            if not entry:
                continue  # only ever called from dead code
            in_sets = self._solve(fn, entry)
            out_sets = self._last_out
            # Re-walk reachable blocks with reporting on.
            for index in sorted(cfg.reachable()):
                self._flow_block(cfg.blocks[index], in_sets[index], fn)
            # MD002: exit-phase consistency.
            exit_set = self._exit_phases(fn, in_sets)
            open_at_exit = sorted(p for p in exit_set if p != PHASE_NONE)
            if len(exit_set) > 1:
                self._emit(
                    "MD002",
                    f"function may exit with inconsistent marker state: "
                    f"{sorted(exit_set)} (a region is closed on some paths "
                    "but not others)",
                    cfg.function.pos,
                    fn,
                )
            elif fn in roots and open_at_exit:
                self._emit(
                    "MD002",
                    f"{open_at_exit[0]} region still open when {fn}() "
                    "returns and no caller can close it",
                    cfg.function.pos,
                    fn,
                )
            # MD004: loop-invariant phase (trace-index monotonicity).
            for loop in cfg.loops:
                head = cfg.blocks[loop.head]
                entry_flow: frozenset = frozenset()
                for pred in head.preds:
                    if pred in loop.latches:
                        continue
                    entry_flow |= out_sets[pred]
                if loop.head == cfg.entry:
                    entry_flow |= frozenset(self.contexts[fn])
                back_flow: frozenset = frozenset()
                for latch in loop.latches:
                    back_flow |= out_sets[latch]
                drift = back_flow - entry_flow
                if drift:
                    self._emit(
                        "MD004",
                        "marker region state is not loop-invariant: "
                        f"iterations re-enter the loop with {sorted(drift)} "
                        f"open but it starts with {sorted(entry_flow)}",
                        loop.pos,
                        fn,
                    )
        self._report = None


# --------------------------------------------------------------------------
# Loop-bound inference
# --------------------------------------------------------------------------


@dataclass
class LoopFact:
    """What the bound pass concluded about one source loop."""

    function: str
    pos: Pos
    order: int
    bound: int | None  # None: not statically boundable
    divergent: bool = False  # constant-true condition


def _loops_in(stmt: Stmt) -> list[WhileStmt]:
    """All ``while`` loops under ``stmt`` in source pre-order (the order
    :mod:`repro.lang.cost` consumes bounds in)."""
    found: list[WhileStmt] = []
    if isinstance(stmt, Block):
        for inner in stmt.stmts:
            found.extend(_loops_in(inner))
    elif isinstance(stmt, IfStmt):
        found.extend(_loops_in(stmt.then))
        if stmt.els is not None:
            found.extend(_loops_in(stmt.els))
    elif isinstance(stmt, WhileStmt):
        found.append(stmt)
        found.extend(_loops_in(stmt.body))
    return found


def _assignments_to(stmt: Stmt, name: str) -> list[AssignStmt]:
    found: list[AssignStmt] = []
    if isinstance(stmt, Block):
        for inner in stmt.stmts:
            found.extend(_assignments_to(inner, name))
    elif isinstance(stmt, IfStmt):
        found.extend(_assignments_to(stmt.then, name))
        if stmt.els is not None:
            found.extend(_assignments_to(stmt.els, name))
    elif isinstance(stmt, WhileStmt):
        found.extend(_assignments_to(stmt.body, name))
    elif isinstance(stmt, AssignStmt):
        if isinstance(stmt.lhs, Var) and stmt.lhs.name == name:
            found.append(stmt)
    return found


def _address_taken_in(stmt: Stmt, name: str) -> bool:
    if isinstance(stmt, Block):
        return any(_address_taken_in(s, name) for s in stmt.stmts)
    if isinstance(stmt, IfStmt):
        if _address_taken_in(stmt.then, name):
            return True
        return stmt.els is not None and _address_taken_in(stmt.els, name)
    if isinstance(stmt, WhileStmt):
        return _address_taken_in(stmt.body, name)
    exprs: list[Expr] = []
    if isinstance(stmt, DeclStmt) and stmt.init is not None:
        exprs = [stmt.init]
    elif isinstance(stmt, AssignStmt):
        exprs = [stmt.lhs, stmt.rhs]
    elif isinstance(stmt, ExprStmt):
        exprs = [stmt.expr]
    elif isinstance(stmt, ReturnStmt) and stmt.value is not None:
        exprs = [stmt.value]
    return any(name in expr_address_taken(e) for e in exprs)


def _step_of(assign: AssignStmt, name: str) -> int | None:
    """``i = i + c`` (or ``i = c + i``) with constant ``c > 0`` → c."""
    rhs = assign.rhs
    if not (isinstance(rhs, Binary) and rhs.op == "+"):
        return None
    lhs, rhs_term = rhs.lhs, rhs.rhs
    if isinstance(lhs, Var) and lhs.name == name and isinstance(rhs_term, IntLit):
        step = rhs_term.value
    elif isinstance(rhs_term, Var) and rhs_term.name == name and isinstance(lhs, IntLit):
        step = lhs.value
    else:
        return None
    return step if step > 0 else None


def _initial_value(cfg: CFG, loop, name: str) -> int | None:
    """Constant initial value of ``name`` on entry to the loop head, found
    as the last definition in the (unique) non-latch predecessor block."""
    head = cfg.blocks[loop.head]
    preheaders = [p for p in head.preds if p not in loop.latches]
    if len(preheaders) != 1:
        return None
    for stmt in reversed(cfg.blocks[preheaders[0]].stmts):
        if isinstance(stmt, DeclStmt) and stmt.name == name:
            if isinstance(stmt.init, IntLit):
                return stmt.init.value
            return None
        if isinstance(stmt, AssignStmt) and isinstance(stmt.lhs, Var) \
                and stmt.lhs.name == name:
            if isinstance(stmt.rhs, IntLit):
                return stmt.rhs.value
            return None
    return None


def infer_loop_bounds(func: FuncDef, cfg: CFG) -> list[LoopFact]:
    """Bound every loop of ``func`` that matches the canonical counting
    shape ``i = c0; while (i < N) { …; i = i + step; }``."""
    facts: list[LoopFact] = []
    for loop in cfg.loops:
        stmt = loop.stmt
        fact = LoopFact(func.name, stmt.pos, loop.order, bound=None)
        facts.append(fact)
        cond = stmt.cond
        if isinstance(cond, IntLit):
            if cond.value != 0:
                fact.divergent = True
            else:
                fact.bound = 0  # while (0): never runs
            continue
        if not (
            isinstance(cond, Binary)
            and cond.op in ("<", "<=")
            and isinstance(cond.lhs, Var)
            and isinstance(cond.rhs, IntLit)
        ):
            continue
        name, limit = cond.lhs.name, cond.rhs.value
        writes = _assignments_to(stmt.body, name)
        if len(writes) != 1 or _address_taken_in(stmt.body, name):
            continue
        step = _step_of(writes[0], name)
        if step is None:
            continue
        start = _initial_value(cfg, loop, name)
        if start is None:
            continue
        span = limit - start + (1 if cond.op == "<=" else 0)
        fact.bound = max(0, -(-span // step))  # ceil division
    return facts


# --------------------------------------------------------------------------
# The analyzer entry points
# --------------------------------------------------------------------------


def _call_names(stmt: Stmt) -> set[str]:
    names: set[str] = set()

    def walk_expr(expr: Expr) -> None:
        if isinstance(expr, Call):
            names.add(expr.name)
            for arg in expr.args:
                walk_expr(arg)
        elif isinstance(expr, Unary):
            walk_expr(expr.operand)
        elif isinstance(expr, Binary):
            walk_expr(expr.lhs)
            walk_expr(expr.rhs)
        elif isinstance(expr, Member):
            walk_expr(expr.obj)
        elif isinstance(expr, Index):
            walk_expr(expr.base)
            walk_expr(expr.index)

    def walk_stmt(s: Stmt) -> None:
        if isinstance(s, Block):
            for inner in s.stmts:
                walk_stmt(inner)
        elif isinstance(s, IfStmt):
            walk_expr(s.cond)
            walk_stmt(s.then)
            if s.els is not None:
                walk_stmt(s.els)
        elif isinstance(s, WhileStmt):
            walk_expr(s.cond)
            walk_stmt(s.body)
        elif isinstance(s, DeclStmt) and s.init is not None:
            walk_expr(s.init)
        elif isinstance(s, AssignStmt):
            walk_expr(s.lhs)
            walk_expr(s.rhs)
        elif isinstance(s, ExprStmt):
            walk_expr(s.expr)
        elif isinstance(s, ReturnStmt) and s.value is not None:
            walk_expr(s.value)

    walk_stmt(stmt)
    return names


def analyze_program(
    typed: TypedProgram, source_name: str = "<minic>"
) -> DiagnosticReport:
    """Run every static check over a typed program."""
    report = DiagnosticReport(source_name=source_name)
    with obs.span("lint.analyze", file=source_name):
        cfgs = {f.name: build_cfg(f) for f in typed.program.functions}

        # Call graph roots: functions nobody calls, plus main.
        called: set[str] = set()
        for func in typed.program.functions:
            called |= _call_names(func.body) & set(cfgs)
        roots = {name for name in cfgs if name not in called}
        if "main" in cfgs:
            roots.add("main")

        # Marker discipline (MD001-MD004).
        markers = _MarkerAnalysis(typed, cfgs)
        markers.compute_summaries()
        markers.compute_contexts(roots)
        markers.report_into(report, roots)

        # Per-function CFG and dataflow checks.
        all_bounds: dict[str, list[int]] = {}
        unbounded: dict[str, bool] = {}
        for func in typed.program.functions:
            cfg = cfgs[func.name]
            _check_unreachable(cfg, report)
            _check_missing_return(cfg, report)
            _check_definite_assignment(cfg, report)
            facts = infer_loop_bounds(func, cfg)
            bounds: list[int] = []
            for fact in facts:
                if fact.divergent:
                    report.add(make_diagnostic(
                        "LB003",
                        "constant-true loop never terminates (scheduler-"
                        "style); excluded from WCET bounding",
                        fact.pos,
                        func.name,
                    ))
                elif fact.bound is None:
                    report.add(make_diagnostic(
                        "LB002",
                        "loop iteration count cannot be bounded statically; "
                        "its WCET contribution is unknown",
                        fact.pos,
                        func.name,
                        hint="rewrite as a counting loop with a constant "
                        "limit, or supply bounds externally (repro wcet "
                        "--backlog)",
                    ))
                else:
                    report.add(make_diagnostic(
                        "LB001",
                        f"loop bound inferred: at most {fact.bound} "
                        "iteration(s)",
                        fact.pos,
                        func.name,
                    ))
                    bounds.append(fact.bound)
            if len(bounds) == len(facts):
                all_bounds[func.name] = bounds
            else:
                unbounded[func.name] = True

        # Cost facts for fully bounded functions (CF001/CF002).
        analyzer = CostAnalyzer(typed, all_bounds)
        for func in typed.program.functions:
            if func.name in unbounded:
                continue
            try:
                cost = analyzer.function_cost(func.name)
            except CostError as exc:
                if "recursion" in str(exc):
                    report.add(make_diagnostic(
                        "CF002",
                        f"cost unbounded: {exc}",
                        func.pos,
                        func.name,
                        hint="MiniC cost analysis rejects recursion; "
                        "restructure into bounded loops",
                    ))
                continue  # a callee's loop is unbounded: LB002 already said so
            report.add(make_diagnostic(
                "CF001",
                f"static worst-case cost: {cost} VM instruction(s)",
                func.pos,
                func.name,
            ))

    for diag in report.diagnostics:
        obs.inc(f"lint.check.{diag.check_id}")
    obs.inc("lint.diagnostics", len(report.diagnostics))
    obs.inc("lint.files")
    return report


def _check_unreachable(cfg: CFG, report: DiagnosticReport) -> None:
    reachable = cfg.reachable()
    for block in cfg.blocks:
        if block.index in reachable or block.kind == "exit":
            continue
        if block.preds:
            continue  # interior of a dead region: one report per region
        pos: Pos | None = None
        if block.stmts:
            pos = block.stmts[0].pos
        elif block.cond is not None:
            pos = getattr(block.cond, "pos", None)
        if pos is None:
            continue  # empty structural block: nothing to report
        report.add(make_diagnostic(
            "UC001",
            "unreachable code (control cannot arrive here)",
            pos,
            cfg.function.name,
            hint="remove it, or fix the branch/return that cuts it off",
        ))


def _check_missing_return(cfg: CFG, report: DiagnosticReport) -> None:
    func = cfg.function
    if isinstance(func.ret, TVoid):
        return
    reachable = cfg.reachable()
    falling = [b for b in cfg.fallthrough_preds if b in reachable]
    if falling:
        report.add(make_diagnostic(
            "MR001",
            f"control may reach the end of {func.name}() without a return "
            f"(declared {func.ret})",
            func.pos,
            func.name,
            hint="add a return on the falling-off path (running off the "
            "end is undefined behaviour at runtime)",
        ))


def _check_definite_assignment(cfg: CFG, report: DiagnosticReport) -> None:
    tracked: set[str] = set()
    for block in cfg.blocks:
        for stmt in block.stmts:
            if (
                isinstance(stmt, DeclStmt)
                and stmt.init is None
                and isinstance(stmt.ctype, (TInt, TPtr))
            ):
                tracked.add(stmt.name)
    if not tracked:
        return
    for use in definite_assignment(cfg, tracked):
        report.add(make_diagnostic(
            "DA001",
            f"{use.name!r} may be read before initialization",
            use.pos,
            cfg.function.name,
            hint=f"initialize {use.name!r} at its declaration",
        ))


def analyze_source(source: str, source_name: str = "<minic>") -> DiagnosticReport:
    """Front end + checks; front-end failures become FE diagnostics."""
    report = DiagnosticReport(source_name=source_name)
    from repro.lang.parser import parse_program

    try:
        program = parse_program(source)
    except LexError as exc:
        report.add(make_diagnostic(
            "FE001", str(exc), Pos(exc.line, exc.col)
        ))
        return report
    except ParseError as exc:
        report.add(make_diagnostic(
            "FE002", str(exc), Pos(exc.line, exc.col)
        ))
        return report
    try:
        typed = typecheck(program)
    except TypeError_ as exc:
        report.add(make_diagnostic("FE003", str(exc), None))
        return report
    checked = analyze_program(typed, source_name)
    report.extend(checked.diagnostics)
    return report


def analyze_client(client, source_name: str = "<rossl>") -> DiagnosticReport:
    """Lint the generated Rössl translation unit for a deployment."""
    from repro.rossl.source import rossl_source

    return analyze_source(rossl_source(client), source_name)


def bound_warnings(report: DiagnosticReport) -> tuple[str, ...]:
    """The loop-bound/cost warnings, formatted for adequacy reports."""
    lines = []
    for diag in report.sorted():
        if diag.check_id in ("LB002", "CF002"):
            where = f"{diag.function or '?'} at {diag.pos}" if diag.pos else (
                diag.function or "?"
            )
            lines.append(f"[{diag.check_id}] {where}: {diag.message}")
    return tuple(lines)

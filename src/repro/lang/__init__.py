"""MiniC: a C subset with an instrumented operational semantics.

MiniC is this reproduction's analog of Caesium, the deep embedding of C
that RefinedC reasons about (paper section 3.2).  It provides:

* a real front end — :mod:`~repro.lang.lexer`, :mod:`~repro.lang.parser`
  — for a C subset sufficient to express the Rössl scheduler (structs,
  pointers, linked lists, loops, functions, ``malloc``/``free``);
* a static :mod:`~repro.lang.typecheck` pass with struct layouts;
* an operational semantics (:mod:`~repro.lang.semantics`) over an
  explicit block-based heap with undefined-behaviour detection, extended
  exactly as in the paper's Fig. 6 with a trace state ``σ_trace = (idx,
  id_map)`` and two effectful expression forms:

  - ``ReadE`` — the axiomatized non-blocking datagram ``read`` system
    call, emitting ``M_ReadE`` events and assigning fresh job ids;
  - ``TraceE`` — ghost marker calls (``read_start``, ``selection_start``,
    ``dispatch_start``, …) emitting the remaining marker events.

The semantics is a definitional interpreter (big-step, fuel-bounded for
the infinite scheduler loop) rather than Caesium's small-step relation;
the observable object — the emitted marker trace — is the same, and the
differential tests check it against the pure-Python Rössl model.
"""

from repro.lang.errors import (
    LexError,
    MiniCError,
    OutOfFuel,
    ParseError,
    TypeError_,
    UndefinedBehavior,
)
from repro.lang.interp import Interpreter, run_program
from repro.lang.parser import parse_program

__all__ = [
    "Interpreter",
    "LexError",
    "MiniCError",
    "OutOfFuel",
    "ParseError",
    "TypeError_",
    "UndefinedBehavior",
    "parse_program",
    "run_program",
]

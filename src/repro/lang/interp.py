"""The instrumented MiniC semantics (the Caesium analog, paper Fig. 6).

A definitional interpreter over the block-structured heap of
:mod:`repro.lang.heap`, extended with the paper's trace machinery:

* state is ``σ = (σ_heap, σ_trace)`` where ``σ_trace = (idx, id_map)``
  (shared with the Python Rössl model via
  :class:`repro.traces.trace_state.TraceState`);
* the ``read`` builtin implements READ-STEP-SUCCESS / READ-STEP-FAILURE:
  it consults an :class:`~repro.rossl.env.Environment` (the source of
  read nondeterminism), writes the message into the buffer, assigns a
  fresh job id, and emits ``M_ReadE``;
* the ghost marker builtins implement the TRACE-STEP rules, emitting the
  remaining marker events; ``dispatch_start`` resolves the dispatched
  payload to a job through ``id_map`` (TRACE-STEP-DISPATCH).

"Stuck" executions — undefined behaviour — raise
:class:`~repro.lang.errors.UndefinedBehavior`; Rössl's verified property
(Thm. 3.4 analog) is that no execution raises it and every emitted trace
satisfies the scheduler protocol and functional correctness.

The interpreter is *fuel-bounded*: Rössl's ``fds_run`` never returns, so
drivers give finite fuel (``OutOfFuel`` marks the observation horizon)
or stop it with :class:`~repro.rossl.env.HorizonReached` from the sink
or environment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import OutOfFuel, UndefinedBehavior
from repro.lang.heap import Heap
from repro.lang.syntax import (
    AssignStmt,
    Binary,
    Block,
    BreakStmt,
    Call,
    ContinueStmt,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    IfStmt,
    Index,
    IntLit,
    Member,
    NullLit,
    ReturnStmt,
    SizeofType,
    Stmt,
    TArray,
    TPtr,
    TStruct,
    TVoid,
    Unary,
    Var,
    WhileStmt,
)
from repro.lang.typecheck import TypedProgram
from repro.lang.values import NULL, Value, VInt, VPtr
from repro.lang.builtins import TraceRuntime
from repro.rossl.env import Environment
from repro.rossl.runtime import MarkerSink


class _Return(Exception):
    def __init__(self, value: Value | None) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


@dataclass
class _Local:
    loc: VPtr
    ctype: CType


class _Frame:
    """One function activation: a stack of block scopes of locals."""

    def __init__(self) -> None:
        self.scopes: list[dict[str, _Local]] = [{}]

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self, heap: Heap) -> None:
        for local in self.scopes.pop().values():
            heap.kill(local.loc)

    def declare(self, name: str, local: _Local) -> None:
        self.scopes[-1][name] = local

    def lookup(self, name: str) -> _Local:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise UndefinedBehavior(f"use of undeclared variable {name!r}")  # pragma: no cover


class Interpreter:
    """Executes a type-checked MiniC program with trace instrumentation.

    Args:
        typed: output of :func:`repro.lang.typecheck.typecheck`.
        env: answers ``read`` calls (socket nondeterminism).
        sink: receives the emitted marker events.
        fuel: statement-execution budget; exhausting it raises
            :class:`~repro.lang.errors.OutOfFuel`.
    """

    def __init__(
        self,
        typed: TypedProgram,
        env: Environment,
        sink: MarkerSink,
        fuel: int = 1_000_000,
    ) -> None:
        self.typed = typed
        self.env = env
        self.sink = sink
        self.fuel = fuel
        self.heap = Heap()
        self.runtime = TraceRuntime(self.heap, env, sink)

    # -- fuel --------------------------------------------------------------

    def _burn(self) -> None:
        if self.fuel <= 0:
            raise OutOfFuel("fuel exhausted")
        self.fuel -= 1

    # -- function calls ------------------------------------------------------

    def call(self, name: str, args: list[Value]) -> Value | None:
        """Call a defined function with already-evaluated arguments."""
        func = self.typed.functions.get(name)
        if func is None:
            raise UndefinedBehavior(f"call to undefined function {name!r}")
        if len(args) != len(func.params):
            raise UndefinedBehavior(
                f"{name}: expected {len(func.params)} arguments, got {len(args)}"
            )
        frame = _Frame()
        for param, arg in zip(func.params, args):
            size = self.typed.sizeof(param.ctype)
            loc = self.heap.alloc(size, kind="local")
            self.heap.store(loc, arg)
            frame.declare(param.name, _Local(loc, param.ctype))
        try:
            self._exec_block(frame, func.body, new_scope=False)
        except _Return as ret:
            frame.pop_scope(self.heap)
            return ret.value
        frame.pop_scope(self.heap)
        if not isinstance(func.ret, TVoid):
            raise UndefinedBehavior(f"{name}: fell off the end of a non-void function")
        return None

    # -- statements ----------------------------------------------------------

    def _exec_block(self, frame: _Frame, block: Block, new_scope: bool = True) -> None:
        if new_scope:
            frame.push_scope()
        try:
            for stmt in block.stmts:
                self._exec_stmt(frame, stmt)
        finally:
            if new_scope:
                frame.pop_scope(self.heap)

    def _exec_stmt(self, frame: _Frame, stmt: Stmt) -> None:
        self._burn()
        if isinstance(stmt, Block):
            self._exec_block(frame, stmt)
            return
        if isinstance(stmt, DeclStmt):
            size = self.typed.sizeof(stmt.ctype)
            loc = self.heap.alloc(size, kind="local")
            if stmt.init is not None:
                self.heap.store(loc, self._eval(frame, stmt.init))
            frame.declare(stmt.name, _Local(loc, stmt.ctype))
            return
        if isinstance(stmt, AssignStmt):
            target = self._eval_lvalue(frame, stmt.lhs)
            value = self._eval(frame, stmt.rhs)
            self.heap.store(target, value)
            return
        if isinstance(stmt, ExprStmt):
            self._eval(frame, stmt.expr, allow_void=True)
            return
        if isinstance(stmt, IfStmt):
            if self._truthy(self._eval(frame, stmt.cond)):
                self._exec_block(frame, stmt.then)
            elif stmt.els is not None:
                self._exec_block(frame, stmt.els)
            return
        if isinstance(stmt, WhileStmt):
            while True:
                self._burn()
                if not self._truthy(self._eval(frame, stmt.cond)):
                    return
                try:
                    self._exec_block(frame, stmt.body)
                except _Break:
                    return
                except _Continue:
                    continue
        if isinstance(stmt, ReturnStmt):
            value = None if stmt.value is None else self._eval(frame, stmt.value)
            raise _Return(value)
        if isinstance(stmt, BreakStmt):
            raise _Break()
        if isinstance(stmt, ContinueStmt):
            raise _Continue()
        raise AssertionError(f"unhandled statement {stmt!r}")  # pragma: no cover

    # -- expressions ----------------------------------------------------------

    def _truthy(self, value: Value) -> bool:
        if isinstance(value, VInt):
            return value.value != 0
        return not value.is_null

    def _eval(self, frame: _Frame, expr: Expr, allow_void: bool = False) -> Value:
        result = self._eval_raw(frame, expr, allow_void)
        return result  # type: ignore[return-value]

    def _eval_raw(self, frame: _Frame, expr: Expr, allow_void: bool) -> Value | None:
        if isinstance(expr, IntLit):
            return VInt(expr.value)
        if isinstance(expr, NullLit):
            return NULL
        if isinstance(expr, SizeofType):
            return VInt(self.typed.sizeof(expr.ctype))
        if isinstance(expr, Var):
            local = frame.lookup(expr.name)
            if isinstance(local.ctype, TArray):
                return local.loc  # array-to-pointer decay
            return self.heap.load(local.loc)
        if isinstance(expr, Unary):
            return self._eval_unary(frame, expr)
        if isinstance(expr, Binary):
            return self._eval_binary(frame, expr)
        if isinstance(expr, Call):
            result = self._eval_call(frame, expr)
            if result is None and not allow_void:
                raise UndefinedBehavior(
                    f"using void result of {expr.name} as a value"
                )  # pragma: no cover - typechecker prevents this
            return result
        if isinstance(expr, (Member, Index)):
            loc = self._eval_lvalue(frame, expr)
            if isinstance(self.typed.type_of(expr), TArray):
                return loc  # decay
            return self.heap.load(loc)
        raise AssertionError(f"unhandled expression {expr!r}")  # pragma: no cover

    def _eval_unary(self, frame: _Frame, expr: Unary) -> Value:
        if expr.op == "&":
            return self._eval_lvalue(frame, expr.operand)
        if expr.op == "*":
            ptr = self._eval(frame, expr.operand)
            if not isinstance(ptr, VPtr):  # pragma: no cover - typechecked
                raise UndefinedBehavior("dereference of non-pointer")
            return self.heap.load(ptr)
        value = self._eval(frame, expr.operand)
        if expr.op == "-":
            if not isinstance(value, VInt):  # pragma: no cover - typechecked
                raise UndefinedBehavior("unary minus on non-integer")
            return VInt(-value.value)
        if expr.op == "!":
            return VInt(0 if self._truthy(value) else 1)
        raise AssertionError(f"unhandled unary {expr.op!r}")  # pragma: no cover

    def _eval_binary(self, frame: _Frame, expr: Binary) -> Value:
        op = expr.op
        if op == "&&":
            if not self._truthy(self._eval(frame, expr.lhs)):
                return VInt(0)
            return VInt(1 if self._truthy(self._eval(frame, expr.rhs)) else 0)
        if op == "||":
            if self._truthy(self._eval(frame, expr.lhs)):
                return VInt(1)
            return VInt(1 if self._truthy(self._eval(frame, expr.rhs)) else 0)
        lhs = self._eval(frame, expr.lhs)
        rhs = self._eval(frame, expr.rhs)
        if op in ("==", "!="):
            equal = lhs == rhs
            return VInt(int(equal if op == "==" else not equal))
        if isinstance(lhs, VPtr) and op in ("+", "-") and isinstance(rhs, VInt):
            # pointer arithmetic, scaled by the pointee size
            static = self.typed.type_of(expr)
            assert isinstance(static, TPtr)
            scale = self.typed.sizeof(static.target)
            delta = rhs.value * scale
            return lhs.moved(delta if op == "+" else -delta)
        if not (isinstance(lhs, VInt) and isinstance(rhs, VInt)):
            raise UndefinedBehavior(
                f"bad operands for {op}: {lhs}, {rhs}"
            )  # pragma: no cover - typechecked
        a, b = lhs.value, rhs.value
        if op == "+":
            return VInt(a + b)
        if op == "-":
            return VInt(a - b)
        if op == "*":
            return VInt(a * b)
        if op in ("/", "%"):
            if b == 0:
                raise UndefinedBehavior("division by zero")
            quotient = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                quotient = -quotient
            if op == "/":
                return VInt(quotient)
            return VInt(a - quotient * b)
        if op == "<":
            return VInt(int(a < b))
        if op == "<=":
            return VInt(int(a <= b))
        if op == ">":
            return VInt(int(a > b))
        if op == ">=":
            return VInt(int(a >= b))
        raise AssertionError(f"unhandled binary {op!r}")  # pragma: no cover

    def _eval_lvalue(self, frame: _Frame, expr: Expr) -> VPtr:
        if isinstance(expr, Var):
            return frame.lookup(expr.name).loc
        if isinstance(expr, Unary) and expr.op == "*":
            ptr = self._eval(frame, expr.operand)
            if not isinstance(ptr, VPtr):  # pragma: no cover - typechecked
                raise UndefinedBehavior("dereference of non-pointer")
            return ptr
        if isinstance(expr, Member):
            if expr.arrow:
                base = self._eval(frame, expr.obj)
                if not isinstance(base, VPtr):  # pragma: no cover - typechecked
                    raise UndefinedBehavior("-> on non-pointer")
                if base.is_null:
                    raise UndefinedBehavior("-> through NULL pointer")
                obj_type = self.typed.type_of(expr.obj)
                assert isinstance(obj_type, TPtr) and isinstance(obj_type.target, TStruct)
                struct_name = obj_type.target.name
            else:
                base = self._eval_lvalue(frame, expr.obj)
                obj_type = self.typed.type_of(expr.obj)
                assert isinstance(obj_type, TStruct)
                struct_name = obj_type.name
            layout = self.typed.layouts[struct_name]
            return base.moved(layout.offsets[expr.fieldname])
        if isinstance(expr, Index):
            base_type = self.typed.type_of(expr.base)
            index = self._eval(frame, expr.index)
            if not isinstance(index, VInt):  # pragma: no cover - typechecked
                raise UndefinedBehavior("non-integer array index")
            if isinstance(base_type, TArray):
                base = self._eval_lvalue(frame, expr.base)
                if not 0 <= index.value < base_type.size:
                    raise UndefinedBehavior(
                        f"array index {index.value} out of bounds [0,{base_type.size})"
                    )
                scale = self.typed.sizeof(base_type.elem)
            else:
                assert isinstance(base_type, TPtr)
                ptr = self._eval(frame, expr.base)
                if not isinstance(ptr, VPtr):  # pragma: no cover - typechecked
                    raise UndefinedBehavior("indexing a non-pointer")
                base = ptr
                scale = self.typed.sizeof(base_type.target)
            return base.moved(index.value * scale)
        raise UndefinedBehavior(f"expression is not an lvalue: {expr!r}")

    # -- calls and builtins ---------------------------------------------------

    def _eval_call(self, frame: _Frame, expr: Call) -> Value | None:
        args = [self._eval(frame, arg) for arg in expr.args]
        name = expr.name
        if name in self.typed.functions:
            return self.call(name, args)
        return self.runtime.call(name, args)

    @property
    def trace_state(self):
        """The semantics' trace state (held by the shared runtime)."""
        return self.runtime.trace_state


def run_program(
    typed: TypedProgram,
    env: Environment,
    sink: MarkerSink,
    entry: str = "main",
    fuel: int = 1_000_000,
    args: list[Value] | None = None,
) -> Value | None:
    """Run ``entry`` to completion (or until fuel/horizon).

    Propagates :class:`~repro.lang.errors.OutOfFuel`; callers that treat
    fuel exhaustion as the observation horizon should catch it.  The
    sink/environment may raise
    :class:`~repro.rossl.env.HorizonReached`, which also propagates.
    """
    return Interpreter(typed, env, sink, fuel=fuel).call(entry, args or [])

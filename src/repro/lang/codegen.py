"""Native-speed MiniC backend: compile the typed AST to Python source.

The last rung of the engine ladder (python/interp/vm/vm-opt →
**codegen**): a visitor over the type-checked AST emits one Python
function per MiniC function, ``compile()``s the generated module once,
and executes at near-host speed.  The paper's §6 conjecture — that the
source-level verification story survives compilation — is tested here at
a second compilation level: the generated code must be observationally
identical to the VM, and the differential sweep checks that it is.

Two invariants make the generated code a drop-in engine:

* **Marker traces are identical** to the interpreter and the VM: the
  generated code calls the same :class:`~repro.lang.builtins.TraceRuntime`
  over the same block-structured :class:`~repro.lang.heap.Heap`, with the
  same evaluation order, the same UB checks (messages included), and the
  VM's function-scoped local lifetimes.

* **The cost semantics is the VM's, exactly.**  Every generated function
  advances ``m.executed`` by the number of bytecode instructions the
  *unoptimized* VM would have executed on the same path — computed
  statically per AST node from the compiler's lowering shapes, with
  path-dependent counts for ``&&``/``||``, ``if``/``else``, ``break``
  and ``continue``.  At every builtin call the counter is up to date, so
  VM-timed drivers (``attach``/``clock``) read byte-identical timestamps,
  and the static bounds of :mod:`repro.lang.cost` still dominate.

Escape analysis keeps hot scalars out of the heap: a local of type
``int`` or pointer whose address is never taken (and which cannot read
itself uninitialized) becomes a plain Python variable; arrays, structs,
and address-taken scalars get real heap blocks, allocated at function
entry and killed at return — the VM's lifetime model.

Known (and deliberate) fuel-exactness corner: the VM checks the budget
before *every* instruction, the generated code at loop heads, call
sites, and function exit.  Straight-line segments between checks contain
no observable events, so traces and ``executed`` totals agree; only the
exception *type* can differ in the one-instruction window where the
budget expires immediately before an undefined operation.  (The same
"typechecked, so unreachable" assumptions the VM makes — e.g. integer
arithmetic never sees a pointer — hold here too.)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import obs
from repro.lang.builtins import BUILTIN_ARITY, TraceRuntime
from repro.lang.errors import OutOfFuel, UndefinedBehavior
from repro.lang.heap import Heap
from repro.lang.syntax import (
    AssignStmt,
    Binary,
    Block,
    BreakStmt,
    Call,
    ContinueStmt,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FuncDef,
    IfStmt,
    Index,
    IntLit,
    Member,
    NullLit,
    ReturnStmt,
    SizeofType,
    Stmt,
    TArray,
    TInt,
    TPtr,
    TStruct,
    TVoid,
    Unary,
    Var,
    WhileStmt,
)
from repro.lang.typecheck import BUILTINS, TypedProgram
from repro.lang.values import NULL, Value, VInt, VPtr
from repro.rossl.env import Environment
from repro.rossl.runtime import MarkerSink

#: Version of the codegen lowering; bumped whenever generated code could
#: change observable behaviour (mirrored by the engine capability version
#: in :mod:`repro.cache.fingerprint`).
CODEGEN_VERSION = 1


# -- runtime helpers injected into the generated module ----------------------


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise UndefinedBehavior("division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        raise UndefinedBehavior("division by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return a - quotient * b


def _nc(ptr: VPtr) -> VPtr:
    """The VM's ``null_check``: ``->`` through NULL is UB."""
    if ptr.block == 0:
        raise UndefinedBehavior("-> through NULL pointer")
    return ptr


def _ix(ptr: VPtr, index: int, scale: int, bound: int) -> VPtr:
    """The VM's bounds-checked ``index`` instruction."""
    if 0 <= index < bound:
        return ptr.moved(index * scale)
    raise UndefinedBehavior(f"array index {index} out of bounds [0,{bound})")


_HELPER_GLOBALS = {
    "VInt": VInt,
    "VPtr": VPtr,
    "NULL": NULL,
    "UndefinedBehavior": UndefinedBehavior,
    "OutOfFuel": OutOfFuel,
    "_c_div": _c_div,
    "_c_mod": _c_mod,
    "_nc": _nc,
    "_ix": _ix,
}


# -- escape analysis ---------------------------------------------------------


@dataclass
class _SlotInfo:
    """One local-variable slot, mirroring the bytecode compiler's slots."""

    name: str
    ctype: CType
    is_param: bool
    has_init: bool
    address_taken: bool = False
    self_ref_init: bool = False

    @property
    def promoted(self) -> bool:
        """True if this slot lives as a plain Python variable."""
        return (
            isinstance(self.ctype, (TInt, TPtr))
            and not self.address_taken
            and (self.is_param or self.has_init)
            and not self.self_ref_init
        )


class _FunctionAnalyzer:
    """Slot assignment + escape analysis, with the compiler's exact scope
    discipline so every ``Var`` node resolves to the same slot."""

    def __init__(self, typed: TypedProgram, func: FuncDef) -> None:
        self.typed = typed
        self.func = func
        self.slots: list[_SlotInfo] = []
        self.scopes: list[dict[str, int]] = [{}]
        self.var_slot: dict[int, int] = {}
        self.decl_slot: dict[int, int] = {}
        self.builtins_used: set[str] = set()
        self._pending_decl: int | None = None

    def analyze(self) -> "_FunctionAnalyzer":
        for param in self.func.params:
            self._new_slot(param.name, param.ctype, is_param=True, has_init=True)
        self._stmt(self.func.body)
        return self

    def _new_slot(
        self, name: str, ctype: CType, is_param: bool, has_init: bool
    ) -> int:
        slot = len(self.slots)
        self.slots.append(_SlotInfo(name, ctype, is_param, has_init))
        self.scopes[-1][name] = slot
        return slot

    def _slot_of(self, name: str) -> int:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise AssertionError(f"unresolved variable {name!r}")  # pragma: no cover

    def _stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            self.scopes.append({})
            for inner in stmt.stmts:
                self._stmt(inner)
            self.scopes.pop()
        elif isinstance(stmt, DeclStmt):
            slot = self._new_slot(
                stmt.name, stmt.ctype, is_param=False, has_init=stmt.init is not None
            )
            self.decl_slot[id(stmt)] = slot
            if stmt.init is not None:
                previous = self._pending_decl
                self._pending_decl = slot
                self._expr(stmt.init)
                self._pending_decl = previous
        elif isinstance(stmt, AssignStmt):
            self._expr(stmt.lhs)
            self._expr(stmt.rhs)
        elif isinstance(stmt, ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, IfStmt):
            self._expr(stmt.cond)
            self._stmt(stmt.then)
            if stmt.els is not None:
                self._stmt(stmt.els)
        elif isinstance(stmt, WhileStmt):
            self._expr(stmt.cond)
            self._stmt(stmt.body)
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                self._expr(stmt.value)
        elif isinstance(stmt, (BreakStmt, ContinueStmt)):
            pass
        else:  # pragma: no cover - parser emits only known statements
            raise AssertionError(f"unhandled statement {stmt!r}")

    def _expr(self, expr: Expr) -> None:
        if isinstance(expr, Var):
            slot = self._slot_of(expr.name)
            self.var_slot[id(expr)] = slot
            if slot == self._pending_decl:
                # ``int x = x + 1;`` — the initializer reads the slot it
                # initializes; keep it heap-backed so the uninitialized
                # load raises the VM's UB instead of a NameError.
                self.slots[slot].self_ref_init = True
        elif isinstance(expr, Unary):
            self._expr(expr.operand)
            if expr.op == "&":
                root = self._addr_root(expr.operand)
                if root is not None:
                    self.slots[self.var_slot[id(root)]].address_taken = True
        elif isinstance(expr, Binary):
            self._expr(expr.lhs)
            self._expr(expr.rhs)
        elif isinstance(expr, Call):
            if expr.name in BUILTIN_ARITY:
                self.builtins_used.add(expr.name)
            for arg in expr.args:
                self._expr(arg)
        elif isinstance(expr, Member):
            self._expr(expr.obj)
        elif isinstance(expr, Index):
            self._expr(expr.base)
            self._expr(expr.index)
        elif isinstance(expr, (IntLit, NullLit, SizeofType)):
            pass
        else:  # pragma: no cover - parser emits only known expressions
            raise AssertionError(f"unhandled expression {expr!r}")

    def _addr_root(self, expr: Expr) -> Var | None:
        """The local whose *storage* a ``&`` lvalue chain addresses, if any."""
        while True:
            if isinstance(expr, Var):
                return expr
            if isinstance(expr, Member) and not expr.arrow:
                expr = expr.obj
                continue
            if isinstance(expr, Index) and isinstance(
                self.typed.type_of(expr.base), TArray
            ):
                expr = expr.base
                continue
            # ``&*p``, ``&p->f``, ``&p[i]`` address whatever ``p`` points
            # to, not ``p``'s own slot.
            return None


# -- code emission -----------------------------------------------------------

_ATOM = re.compile(r"^(?:[A-Za-z_][A-Za-z0-9_]*|-?\d+)$")

_OUT_OF_FUEL = "instruction budget exhausted in {name}"


class _FunctionEmitter:
    """Emits one Python function with the VM's exact instruction counts.

    ``pending`` is the compile-time count of VM instructions executed
    since the last emitted ``m.executed += N``; it is flushed before
    every effect boundary (builtin/user call, loop head, return) and at
    every control-flow join, so the counter is exact whenever anything
    can observe it.
    """

    def __init__(
        self, typed: TypedProgram, func: FuncDef, analysis: _FunctionAnalyzer
    ) -> None:
        self.typed = typed
        self.func = func
        self.an = analysis
        self.lines: list[str] = []
        self.indent = 1
        self.pending = 0
        self.tmp = 0

    # -- low-level emission --------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def flush(self) -> None:
        if self.pending:
            self.emit(f"m.executed += {self.pending}")
            self.pending = 0

    def _emit_fuel_raise(self) -> None:
        self.emit("if m.executed >= m.fuel:")
        self.emit("    m.executed = m.fuel")
        message = _OUT_OF_FUEL.format(name=self.func.name)
        self.emit(f"    raise OutOfFuel({message!r})")

    def flush_boundary(self) -> None:
        """Flush and check the budget at an instruction boundary (the VM
        checks ``executed >= fuel`` before the next instruction)."""
        self.flush()
        self._emit_fuel_raise()

    def flush_call_site(self) -> None:
        """Flush (pending includes the call instruction itself) and raise
        if the call instruction was not affordable."""
        self.flush()
        self.emit("if m.executed > m.fuel:")
        self.emit("    m.executed = m.fuel")
        message = _OUT_OF_FUEL.format(name=self.func.name)
        self.emit(f"    raise OutOfFuel({message!r})")

    def new_tmp(self) -> str:
        self.tmp += 1
        return f"t{self.tmp}"

    def materialize(self, value: str) -> str:
        if _ATOM.match(value):
            return value
        name = self.new_tmp()
        self.emit(f"{name} = {value}")
        return name

    # -- naming / typing helpers ---------------------------------------------

    def slot_name(self, slot: int) -> str:
        info = self.an.slots[slot]
        prefix = "v" if info.promoted else "s"
        return f"{prefix}{slot}_{info.name}"

    def type_of(self, expr: Expr):
        return self.typed.type_of(expr)

    def truthy(self, value: str, expr: Expr) -> str:
        if isinstance(self.type_of(expr), TInt):
            return f"({value}) != 0"
        return f"({value}).block != 0"

    def box(self, value: str, expr: Expr) -> str:
        """Box a raw value for a heap cell / builtin argument."""
        if isinstance(self.type_of(expr), TInt):
            return f"VInt({value})"
        return value

    def _forces_stmts(self, expr: Expr) -> bool:
        """Does compiling ``expr`` emit statements (calls, short-circuit)?"""
        if isinstance(expr, Call):
            return True
        if isinstance(expr, Binary):
            if expr.op in ("&&", "||"):
                return True
            return self._forces_stmts(expr.lhs) or self._forces_stmts(expr.rhs)
        if isinstance(expr, Unary):
            return self._forces_stmts(expr.operand)
        if isinstance(expr, Member):
            return self._forces_stmts(expr.obj)
        if isinstance(expr, Index):
            return self._forces_stmts(expr.base) or self._forces_stmts(expr.index)
        return False

    # -- expressions ---------------------------------------------------------

    def expr(self, e: Expr) -> str:
        if isinstance(e, IntLit):
            self.pending += 1  # push
            return repr(e.value)
        if isinstance(e, NullLit):
            self.pending += 1  # push_null
            return "NULL"
        if isinstance(e, SizeofType):
            self.pending += 1  # push
            return str(self.typed.sizeof(e.ctype))
        if isinstance(e, Var):
            slot = self.an.var_slot[id(e)]
            info = self.an.slots[slot]
            if isinstance(self.type_of(e), TArray):
                self.pending += 1  # local (arrays decay: no load)
                return self.slot_name(slot)
            self.pending += 2  # local + load
            if info.promoted:
                return self.slot_name(slot)
            if isinstance(info.ctype, TInt):
                return f"H.load({self.slot_name(slot)}).value"
            return f"H.load({self.slot_name(slot)})"
        if isinstance(e, Unary):
            return self._unary(e)
        if isinstance(e, Binary):
            return self._binary(e)
        if isinstance(e, Call):
            result = self._call(e, keep_result=True)
            assert result is not None
            return result
        if isinstance(e, (Member, Index)):
            address = self.addr(e)
            if isinstance(self.type_of(e), TArray):
                return address
            self.pending += 1  # load
            if isinstance(self.type_of(e), TInt):
                return f"H.load({address}).value"
            return f"H.load({address})"
        raise AssertionError(f"unhandled expression {e!r}")  # pragma: no cover

    def _unary(self, e: Unary) -> str:
        if e.op == "&":
            return self.addr(e.operand)
        if e.op == "*":
            inner = self.expr(e.operand)
            self.pending += 1  # load
            if isinstance(self.type_of(e), TInt):
                return f"H.load({inner}).value"
            return f"H.load({inner})"
        inner = self.expr(e.operand)
        self.pending += 1  # neg / not
        if e.op == "-":
            return f"(-({inner}))"
        return f"(0 if {self.truthy(inner, e.operand)} else 1)"

    def _binary(self, e: Binary) -> str:
        if e.op in ("&&", "||"):
            return self._short_circuit(e)
        lhs = self.expr(e.lhs)
        if self._forces_stmts(e.rhs):
            lhs = self.materialize(lhs)
        rhs = self.expr(e.rhs)
        self.pending += 1  # the one arithmetic/compare/ptr_add instruction
        static = self.type_of(e)
        if e.op in ("+", "-") and isinstance(static, TPtr):
            scale = self.typed.sizeof(static.target)
            factor = scale if e.op == "+" else -scale
            return f"({lhs}).moved({factor} * ({rhs}))"
        if e.op in ("+", "-", "*"):
            return f"(({lhs}) {e.op} ({rhs}))"
        if e.op == "/":
            return f"_c_div({lhs}, {rhs})"
        if e.op == "%":
            return f"_c_mod({lhs}, {rhs})"
        if e.op in ("<", "<=", ">", ">=", "==", "!="):
            return f"(1 if ({lhs}) {e.op} ({rhs}) else 0)"
        raise AssertionError(f"unhandled operator {e.op!r}")  # pragma: no cover

    def _short_circuit(self, e: Binary) -> str:
        # Path costs match the VM's short-circuit jump lowering exactly:
        # && short = lhs+2, full-false = lhs+rhs+3, full-true = lhs+rhs+4
        # (|| symmetric with the results flipped).
        result = self.new_tmp()
        lhs = self.expr(e.lhs)
        self.pending += 1  # the first jz/jnz, executed on both paths
        self.flush()
        short_value = 0 if e.op == "&&" else 1
        enter_rhs = (
            self.truthy(lhs, e.lhs)
            if e.op == "&&"
            else f"not ({self.truthy(lhs, e.lhs)})"
        )
        self.emit(f"if {enter_rhs}:")
        self.indent += 1
        rhs = self.expr(e.rhs)
        self.pending += 1  # the second jz/jnz, on both rhs sub-paths
        self.flush()
        full_true = (
            self.truthy(rhs, e.rhs)
            if e.op == "&&"
            else f"not ({self.truthy(rhs, e.rhs)})"
        )
        self.emit(f"if {full_true}:")
        self.emit(f"    {result} = {1 - short_value}")
        self.emit("    m.executed += 2")  # push result + jmp over the target
        self.emit("else:")
        self.emit(f"    {result} = {short_value}")
        self.emit("    m.executed += 1")  # push at the short-circuit target
        self.indent -= 1
        self.emit("else:")
        self.emit(f"    {result} = {short_value}")
        self.emit("    m.executed += 1")  # push at the short-circuit target
        return result

    def _call(self, e: Call, keep_result: bool) -> str | None:
        values = []
        for arg in e.args:
            values.append(self.materialize(self.expr(arg)))
        self.pending += 1  # callb / call
        self.flush_call_site()
        if e.name in BUILTIN_ARITY:
            returns = not isinstance(BUILTINS[e.name][1], TVoid)
            boxed = ", ".join(
                self.box(value, arg) for value, arg in zip(values, e.args)
            )
            invoke = f"B_{e.name}([{boxed}])"
            if returns and isinstance(BUILTINS[e.name][1], TInt):
                invoke += ".value"
        else:
            returns = not isinstance(self.typed.functions[e.name].ret, TVoid)
            invoke = ", ".join(["m"] + values)
            invoke = f"F_{e.name}({invoke})"
        if not returns:
            self.emit(invoke)
            return None
        result = self.new_tmp()
        self.emit(f"{result} = {invoke}")
        if not keep_result:
            self.pending += 1  # pop of the discarded result
            return None
        return result

    def addr(self, e: Expr) -> str:
        """The lvalue address of ``e`` as a ``VPtr`` expression."""
        if isinstance(e, Var):
            slot = self.an.var_slot[id(e)]
            assert not self.an.slots[slot].promoted, "address of promoted slot"
            self.pending += 1  # local
            return self.slot_name(slot)
        if isinstance(e, Unary) and e.op == "*":
            return self.expr(e.operand)
        if isinstance(e, Member):
            obj_type = self.type_of(e.obj)
            if e.arrow:
                assert isinstance(obj_type, TPtr) and isinstance(
                    obj_type.target, TStruct
                )
                obj = self.expr(e.obj)
                self.pending += 1  # null_check
                struct_name = obj_type.target.name
                base = f"_nc({obj})"
            else:
                assert isinstance(obj_type, TStruct)
                struct_name = obj_type.name
                base = self.addr(e.obj)
            offset = self.typed.layouts[struct_name].offsets[e.fieldname]
            if offset:
                self.pending += 1  # offset
                return f"({base}).moved({offset})"
            return base
        if isinstance(e, Index):
            base_type = self.type_of(e.base)
            if isinstance(base_type, TArray):
                base = self.addr(e.base)
                if self._forces_stmts(e.index):
                    base = self.materialize(base)
                index = self.expr(e.index)
                self.pending += 1  # bounds-checked index
                scale = self.typed.sizeof(base_type.elem)
                return f"_ix({base}, {index}, {scale}, {base_type.size})"
            assert isinstance(base_type, TPtr)
            base = self.expr(e.base)
            if self._forces_stmts(e.index):
                base = self.materialize(base)
            index = self.expr(e.index)
            self.pending += 1  # unchecked index (pointer base)
            scale = self.typed.sizeof(base_type.target)
            return f"({base}).moved(({index}) * {scale})"
        raise AssertionError(f"not an lvalue: {e!r}")  # pragma: no cover

    # -- statements ----------------------------------------------------------

    def stmt(self, s: Stmt) -> None:
        if isinstance(s, Block):
            for inner in s.stmts:
                self.stmt(inner)
        elif isinstance(s, DeclStmt):
            if s.init is None:
                return  # slot exists; zero instructions
            slot = self.an.decl_slot[id(s)]
            info = self.an.slots[slot]
            self.pending += 1  # local
            value = self.expr(s.init)
            self.pending += 1  # store
            if info.promoted:
                self.emit(f"{self.slot_name(slot)} = {value}")
            else:
                boxed = self.box(value, s.init)
                self.emit(f"H.store({self.slot_name(slot)}, {boxed})")
        elif isinstance(s, AssignStmt):
            if isinstance(s.lhs, Var):
                slot = self.an.var_slot[id(s.lhs)]
                if self.an.slots[slot].promoted:
                    self.pending += 1  # local
                    value = self.expr(s.rhs)
                    self.pending += 1  # store
                    self.emit(f"{self.slot_name(slot)} = {value}")
                    return
            address = self.addr(s.lhs)
            if self._forces_stmts(s.rhs):
                address = self.materialize(address)
            value = self.expr(s.rhs)
            self.pending += 1  # store
            self.emit(f"H.store({address}, {self.box(value, s.rhs)})")
        elif isinstance(s, ExprStmt):
            if isinstance(s.expr, Call):
                self._call(s.expr, keep_result=False)
            else:
                value = self.expr(s.expr)
                if not _ATOM.match(value):
                    self.emit(value)  # evaluate for effects (loads can raise)
        elif isinstance(s, IfStmt):
            cond = self.expr(s.cond)
            self.pending += 1  # jz
            self.flush()
            self.emit(f"if {self.truthy(cond, s.cond)}:")
            self.indent += 1
            mark = len(self.lines)
            self.stmt(s.then)
            if s.els is not None:
                self.pending += 1  # jmp over the else branch
            self.flush()
            if len(self.lines) == mark:
                self.emit("pass")
            self.indent -= 1
            if s.els is not None:
                self.emit("else:")
                self.indent += 1
                mark = len(self.lines)
                self.stmt(s.els)
                self.flush()
                if len(self.lines) == mark:
                    self.emit("pass")
                self.indent -= 1
        elif isinstance(s, WhileStmt):
            self.flush()
            self.emit("while True:")
            self.indent += 1
            cond = self.expr(s.cond)
            self.pending += 1  # jz
            self.flush_boundary()
            self.emit(f"if not ({self.truthy(cond, s.cond)}):")
            self.emit("    break")
            self.stmt(s.body)
            self.pending += 1  # the back jmp
            self.flush()
            self.indent -= 1
        elif isinstance(s, ReturnStmt):
            if s.value is None:
                self.pending += 1  # ret
                self.flush()
                self._emit_kills()
                self.emit("return None")
            else:
                value = self.expr(s.value)
                self.pending += 1  # retv
                value = self.materialize(value)
                self.flush()
                self._emit_kills()
                self.emit(f"return {value}")
        elif isinstance(s, BreakStmt):
            self.pending += 1  # jmp to the loop end
            self.flush()
            self.emit("break")
        elif isinstance(s, ContinueStmt):
            self.pending += 2  # own jmp + the loop's shared back jmp
            self.flush()
            self.emit("continue")
        else:  # pragma: no cover - parser emits only known statements
            raise AssertionError(f"unhandled statement {s!r}")

    def _emit_kills(self) -> None:
        """The VM's ``_leave``: kill every heap-backed slot, in slot order
        (promoted slots never had blocks)."""
        for slot, info in enumerate(self.an.slots):
            if not info.promoted:
                self.emit(f"H.kill({self.slot_name(slot)})")

    # -- whole function ------------------------------------------------------

    def emit_function(self) -> str:
        params: list[str] = []
        for slot, _param in enumerate(self.func.params):
            info = self.an.slots[slot]
            params.append(self.slot_name(slot) if info.promoted else f"a{slot}")
        header = ", ".join(["m"] + params)
        self.lines.append(f"def F_{self.func.name}({header}):")
        self.emit("H = m.heap")
        for name in sorted(self.an.builtins_used):
            self.emit(f"B_{name} = m.runtime.builtin_{name}")
        # The VM's _enter: allocate every heap-backed slot up front, then
        # store the arguments.
        for slot, info in enumerate(self.an.slots):
            if not info.promoted:
                size = self.typed.sizeof(info.ctype)
                self.emit(f"{self.slot_name(slot)} = H.alloc({size}, kind='local')")
        for slot, _param in enumerate(self.func.params):
            info = self.an.slots[slot]
            if not info.promoted:
                boxed = f"VInt(a{slot})" if isinstance(info.ctype, TInt) else f"a{slot}"
                self.emit(f"H.store({self.slot_name(slot)}, {boxed})")
        self.stmt(self.func.body)
        if isinstance(self.func.ret, TVoid):
            self.pending += 1  # the implicit ret
            self.flush()
            self._emit_kills()
            self.emit("return None")
        else:
            # The fell_off instruction: budget boundary first, then UB
            # (the VM does not kill the frame's blocks on this path).
            self.flush()
            self._emit_fuel_raise()
            self.emit("m.executed += 1")
            message = f"{self.func.name}: fell off the end of a non-void function"
            self.emit(f"raise UndefinedBehavior({message!r})")
        return "\n".join(self.lines)


# -- program-level compilation ----------------------------------------------


@dataclass(frozen=True)
class _Entry:
    """Callable + calling convention for one generated function."""

    fn: Callable[..., Any]
    param_kinds: tuple[str, ...]  # "int" | "ptr"
    ret_kind: str  # "int" | "ptr" | "void"


@dataclass
class CodegenProgram:
    """A MiniC program compiled to Python functions."""

    typed: TypedProgram
    source: str
    entries: dict[str, _Entry] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.source


def generate_source(typed: TypedProgram) -> str:
    """The generated Python module source for ``typed`` (for inspection)."""
    chunks = []
    for func in typed.functions.values():
        analysis = _FunctionAnalyzer(typed, func).analyze()
        chunks.append(_FunctionEmitter(typed, func, analysis).emit_function())
    return "\n\n\n".join(chunks) + "\n"


def _ret_kind(ctype: CType) -> str:
    if isinstance(ctype, TVoid):
        return "void"
    if isinstance(ctype, TInt):
        return "int"
    return "ptr"


def compile_to_python(typed: TypedProgram) -> CodegenProgram:
    """Compile every function of a type-checked program to Python."""
    with obs.span("codegen.compile"):
        source = generate_source(typed)
        namespace = dict(_HELPER_GLOBALS)
        exec(compile(source, "<minic-codegen>", "exec"), namespace)
        program = CodegenProgram(typed=typed, source=source)
        for name, func in typed.functions.items():
            program.entries[name] = _Entry(
                fn=namespace[f"F_{name}"],
                param_kinds=tuple(
                    "int" if isinstance(p.ctype, TInt) else "ptr"
                    for p in func.params
                ),
                ret_kind=_ret_kind(func.ret),
            )
    obs.inc("codegen.compiles")
    return program


#: compile_to_python memo: one compiled module per TypedProgram identity
#: (the strong reference keeps ids from being reused).
_MEMO: dict[int, tuple[TypedProgram, CodegenProgram]] = {}


def compiled_for(typed: TypedProgram) -> CodegenProgram:
    """The cached compiled module for ``typed`` (compiled on first use)."""
    cached = _MEMO.get(id(typed))
    if cached is not None and cached[0] is typed:
        return cached[1]
    program = compile_to_python(typed)
    _MEMO[id(typed)] = (typed, program)
    return program


# -- execution ---------------------------------------------------------------


class CodegenMachine:
    """Executes a compiled-to-Python program; duck-compatible with the VM
    where it matters (``executed``/``fuel`` for the timed drivers,
    ``heap``/``runtime`` for the fault injectors)."""

    def __init__(
        self,
        program: CodegenProgram,
        env: Environment,
        sink: MarkerSink,
        fuel: int = 10_000_000,
    ) -> None:
        self.program = program
        self.fuel = fuel
        self.heap = Heap()
        self.runtime = TraceRuntime(self.heap, env, sink)
        #: executed-instruction counter: the VM's cost semantics, exactly.
        self.executed = 0

    def call(self, name: str, args: list[Value]) -> Value | None:
        """Run ``name`` to completion; returns its value (None for void)."""
        entry = self.program.entries.get(name)
        if entry is None:  # pragma: no cover - typechecked
            raise UndefinedBehavior(f"call to undefined function {name!r}")
        if len(args) != len(entry.param_kinds):
            raise UndefinedBehavior(
                f"{name}: expected {len(entry.param_kinds)} arguments, "
                f"got {len(args)}"
            )
        raw = [
            arg.value if isinstance(arg, VInt) else arg for arg in args
        ]
        start_executed = self.executed
        try:
            result = entry.fn(self, *raw)
            if self.executed > self.fuel:
                # The VM would have stopped at the budget boundary; the
                # generated code only checks at loop heads and call sites,
                # so a terminating tail can overshoot — clamp and raise.
                self.executed = self.fuel
                raise OutOfFuel(_OUT_OF_FUEL.format(name=name))
            if entry.ret_kind == "void":
                return None
            if entry.ret_kind == "int":
                return VInt(result)
            return result
        finally:
            if obs.enabled():
                obs.inc("codegen.calls")
                obs.inc("codegen.instructions", self.executed - start_executed)


def run_codegen(
    typed: TypedProgram,
    env: Environment,
    sink: MarkerSink,
    entry: str = "main",
    fuel: int = 10_000_000,
    args: list[Value] | None = None,
) -> Value | None:
    """Compile-and-run convenience mirroring :func:`repro.lang.interp.run_program`."""
    machine = CodegenMachine(compiled_for(typed), env, sink, fuel=fuel)
    return machine.call(entry, args or [])

"""A stack-machine VM for compiled MiniC, with a cost semantics.

Executes the bytecode of :mod:`repro.lang.compile` over the same
block-structured heap and instrumented builtins as the definitional
interpreter — the observable marker trace is identical by construction
(and checked by differential tests).

The VM maintains an **instruction counter** (:attr:`VM.executed`): every
executed instruction costs exactly one unit.  This is the concrete cost
semantics used by the static WCET analysis (:mod:`repro.lang.cost`) and
the VM-timed simulations — the reproduction's answer to "where do WCETs
come from" (paper section 2.3: measurement or static analysis).

Divergence from the interpreter, by design: locals have function-scoped
lifetimes (as compiled stack frames do), so a pointer to an inner-block
local that escapes its block — but not its function — is not flagged
here.  Rössl contains no such pattern; both semantics agree on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.lang.builtins import TraceRuntime
from repro.lang.compile import CompiledFunction, CompiledProgram, Instr
from repro.lang.errors import OutOfFuel, UndefinedBehavior
from repro.lang.heap import Heap
from repro.lang.values import NULL, Value, VInt, VPtr
from repro.rossl.env import Environment
from repro.rossl.runtime import MarkerSink


@dataclass
class _Frame:
    func: CompiledFunction
    pc: int = 0
    locals: list[VPtr] = field(default_factory=list)
    stack: list[Value] = field(default_factory=list)


def _truthy(value: Value) -> bool:
    if isinstance(value, VInt):
        return value.value != 0
    return not value.is_null


class VM:
    """Executes compiled MiniC with trace instrumentation and costs."""

    def __init__(
        self,
        program: CompiledProgram,
        env: Environment,
        sink: MarkerSink,
        fuel: int = 10_000_000,
    ) -> None:
        self.program = program
        self.fuel = fuel
        self.heap = Heap()
        self.runtime = TraceRuntime(self.heap, env, sink)
        #: executed-instruction counter: the cost semantics.
        self.executed = 0

    # -- frames ------------------------------------------------------------

    def _enter(self, name: str, args: list[Value]) -> _Frame:
        func = self.program.functions.get(name)
        if func is None:  # pragma: no cover - typechecked
            raise UndefinedBehavior(f"call to undefined function {name!r}")
        if len(args) != func.params:
            raise UndefinedBehavior(
                f"{name}: expected {func.params} arguments, got {len(args)}"
            )
        frame = _Frame(func)
        for size in func.slot_sizes:
            frame.locals.append(self.heap.alloc(size, kind="local"))
        for slot, arg in enumerate(args):
            self.heap.store(frame.locals[slot], arg)
        return frame

    def _leave(self, frame: _Frame) -> None:
        for block in frame.locals:
            self.heap.kill(block)

    # -- execution ------------------------------------------------------------

    def call(self, name: str, args: list[Value]) -> Value | None:
        """Run ``name`` to completion; returns its value (None for void)."""
        start_executed = self.executed
        try:
            return self._dispatch(name, args)
        finally:
            # Observational only: the dispatch loop itself stays
            # untouched, the per-call totals are recorded on the way out
            # (including abnormal exits — fuel exhaustion, horizon).
            if obs.enabled():
                obs.inc("vm.calls")
                obs.inc("vm.instructions", self.executed - start_executed)

    def _dispatch(self, name: str, args: list[Value]) -> Value | None:
        call_stack: list[_Frame] = [self._enter(name, args)]
        return_value: Value | None = None
        while call_stack:
            frame = call_stack[-1]
            code = frame.func.code
            instr = code[frame.pc]
            if self.executed >= self.fuel:
                raise OutOfFuel(f"instruction budget exhausted in {frame.func.name}")
            self.executed += 1
            frame.pc += 1
            op = instr.op
            stack = frame.stack

            if op == "push":
                stack.append(VInt(instr.a))
            elif op == "push_null":
                stack.append(NULL)
            elif op == "local":
                stack.append(frame.locals[instr.a])
            elif op == "load":
                ptr = stack.pop()
                if not isinstance(ptr, VPtr):  # pragma: no cover - typechecked
                    raise UndefinedBehavior("load from non-pointer")
                stack.append(self.heap.load(ptr))
            elif op == "store":
                value = stack.pop()
                ptr = stack.pop()
                if not isinstance(ptr, VPtr):  # pragma: no cover - typechecked
                    raise UndefinedBehavior("store to non-pointer")
                self.heap.store(ptr, value)
            elif op == "offset":
                ptr = stack.pop()
                assert isinstance(ptr, VPtr)
                stack.append(ptr.moved(instr.a))
            elif op == "null_check":
                ptr = stack[-1]
                if isinstance(ptr, VPtr) and ptr.is_null:
                    raise UndefinedBehavior("-> through NULL pointer")
            elif op == "index":
                index = stack.pop()
                ptr = stack.pop()
                assert isinstance(index, VInt) and isinstance(ptr, VPtr)
                if instr.b is not None and not 0 <= index.value < instr.b:
                    raise UndefinedBehavior(
                        f"array index {index.value} out of bounds [0,{instr.b})"
                    )
                stack.append(ptr.moved(index.value * instr.a))
            elif op == "ptr_add":
                delta = stack.pop()
                ptr = stack.pop()
                assert isinstance(delta, VInt) and isinstance(ptr, VPtr)
                stack.append(ptr.moved(instr.b * delta.value * instr.a))
            elif op == "neg":
                value = stack.pop()
                assert isinstance(value, VInt)
                stack.append(VInt(-value.value))
            elif op == "not":
                stack.append(VInt(0 if _truthy(stack.pop()) else 1))
            elif op in ("eq", "ne"):
                rhs = stack.pop()
                lhs = stack.pop()
                equal = lhs == rhs
                stack.append(VInt(int(equal if op == "eq" else not equal)))
            elif op in ("add", "sub", "mul", "div", "mod", "lt", "le", "gt", "ge"):
                rhs = stack.pop()
                lhs = stack.pop()
                if not (isinstance(lhs, VInt) and isinstance(rhs, VInt)):
                    raise UndefinedBehavior(  # pragma: no cover - typechecked
                        f"bad operands for {op}"
                    )
                stack.append(_arith(op, lhs.value, rhs.value))
            elif op == "jmp":
                frame.pc = instr.a
            elif op == "jz":
                if not _truthy(stack.pop()):
                    frame.pc = instr.a
            elif op == "jnz":
                if _truthy(stack.pop()):
                    frame.pc = instr.a
            elif op == "callb":
                args_list = stack[len(stack) - instr.b :] if instr.b else []
                del stack[len(stack) - instr.b :]
                result = self.runtime.call(instr.a, list(args_list))
                if result is not None:
                    stack.append(result)
            elif op == "call":
                args_list = list(stack[len(stack) - instr.b :]) if instr.b else []
                del stack[len(stack) - instr.b :]
                call_stack.append(self._enter(instr.a, args_list))
            elif op == "ret":
                self._leave(frame)
                call_stack.pop()
                # void: nothing pushed on the caller's stack
            elif op == "retv":
                result = stack.pop()
                self._leave(frame)
                call_stack.pop()
                if call_stack:
                    call_stack[-1].stack.append(result)
                else:
                    return_value = result
            elif op == "fell_off":
                raise UndefinedBehavior(
                    f"{instr.a}: fell off the end of a non-void function"
                )
            elif op == "pop":
                stack.pop()
            else:  # pragma: no cover - compiler emits only known ops
                raise AssertionError(f"unknown opcode {op!r}")
        return return_value


def _arith(op: str, a: int, b: int) -> VInt:
    if op == "add":
        return VInt(a + b)
    if op == "sub":
        return VInt(a - b)
    if op == "mul":
        return VInt(a * b)
    if op in ("div", "mod"):
        if b == 0:
            raise UndefinedBehavior("division by zero")
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        if op == "div":
            return VInt(quotient)
        return VInt(a - quotient * b)
    if op == "lt":
        return VInt(int(a < b))
    if op == "le":
        return VInt(int(a <= b))
    if op == "gt":
        return VInt(int(a > b))
    return VInt(int(a >= b))


def run_compiled(
    program: CompiledProgram,
    env: Environment,
    sink: MarkerSink,
    entry: str = "main",
    fuel: int = 10_000_000,
    args: list[Value] | None = None,
) -> Value | None:
    """Compile-and-run convenience mirroring :func:`repro.lang.interp.run_program`."""
    return VM(program, env, sink, fuel=fuel).call(entry, args or [])

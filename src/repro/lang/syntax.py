"""Abstract syntax and types for MiniC.

The subset covers what Rössl needs: ``int``, pointers, named structs
(with inline ``int`` arrays), functions, ``while``/``if``/``return``,
and side-effecting calls.  There are no casts, no globals, and no
function pointers — callbacks are modelled by the ghost marker calls, as
in the paper's instrumented semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


# --------------------------------------------------------------------------
# Types
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TInt:
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True, slots=True)
class TVoid:
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True, slots=True)
class TPtr:
    target: "CType"

    def __str__(self) -> str:
        return f"{self.target}*"


@dataclass(frozen=True, slots=True)
class TStruct:
    name: str

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True, slots=True)
class TArray:
    elem: "CType"
    size: int

    def __str__(self) -> str:
        return f"{self.elem}[{self.size}]"


CType = Union[TInt, TVoid, TPtr, TStruct, TArray]


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Pos:
    """Source position, carried on every AST node for diagnostics."""

    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


@dataclass(frozen=True, slots=True)
class IntLit:
    value: int
    pos: Pos


@dataclass(frozen=True, slots=True)
class NullLit:
    pos: Pos


@dataclass(frozen=True, slots=True)
class Var:
    name: str
    pos: Pos


@dataclass(frozen=True, slots=True)
class Unary:
    """Unary operation; ``op`` ∈ {``-``, ``!``, ``*``, ``&``}."""

    op: str
    operand: "Expr"
    pos: Pos


@dataclass(frozen=True, slots=True)
class Binary:
    """Binary operation; arithmetic, comparison, or short-circuit logic."""

    op: str
    lhs: "Expr"
    rhs: "Expr"
    pos: Pos


@dataclass(frozen=True, slots=True)
class Call:
    name: str
    args: tuple["Expr", ...]
    pos: Pos


@dataclass(frozen=True, slots=True)
class Member:
    """``obj.field`` (``arrow=False``) or ``obj->field`` (``arrow=True``)."""

    obj: "Expr"
    fieldname: str
    arrow: bool
    pos: Pos


@dataclass(frozen=True, slots=True)
class Index:
    base: "Expr"
    index: "Expr"
    pos: Pos


@dataclass(frozen=True, slots=True)
class SizeofType:
    ctype: CType
    pos: Pos


Expr = Union[IntLit, NullLit, Var, Unary, Binary, Call, Member, Index, SizeofType]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Block:
    stmts: tuple["Stmt", ...]
    pos: Pos


@dataclass(frozen=True, slots=True)
class DeclStmt:
    """``Type name;`` / ``Type name = init;`` / ``Type name[N];``"""

    name: str
    ctype: CType
    init: Expr | None
    pos: Pos


@dataclass(frozen=True, slots=True)
class AssignStmt:
    lhs: Expr
    rhs: Expr
    pos: Pos


@dataclass(frozen=True, slots=True)
class ExprStmt:
    expr: Expr
    pos: Pos


@dataclass(frozen=True, slots=True)
class IfStmt:
    cond: Expr
    then: Block
    els: Block | None
    pos: Pos


@dataclass(frozen=True, slots=True)
class WhileStmt:
    cond: Expr
    body: Block
    pos: Pos


@dataclass(frozen=True, slots=True)
class ReturnStmt:
    value: Expr | None
    pos: Pos


@dataclass(frozen=True, slots=True)
class BreakStmt:
    pos: Pos


@dataclass(frozen=True, slots=True)
class ContinueStmt:
    pos: Pos


Stmt = Union[
    Block,
    DeclStmt,
    AssignStmt,
    ExprStmt,
    IfStmt,
    WhileStmt,
    ReturnStmt,
    BreakStmt,
    ContinueStmt,
]


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class StructDef:
    name: str
    fields: tuple[tuple[str, CType], ...]
    pos: Pos


@dataclass(frozen=True, slots=True)
class Param:
    name: str
    ctype: CType


@dataclass(frozen=True, slots=True)
class FuncDef:
    name: str
    ret: CType
    params: tuple[Param, ...]
    body: Block
    pos: Pos


def ast_equal(a: object, b: object) -> bool:
    """Structural AST equality, ignoring source positions.

    Used by the pretty-printer round-trip tests: reparsing printed
    source yields different ``Pos`` values but must otherwise agree.
    """
    if isinstance(a, Pos) and isinstance(b, Pos):
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(ast_equal(x, y) for x, y in zip(a, b))
    if hasattr(a, "__dataclass_fields__"):
        return all(
            ast_equal(getattr(a, f), getattr(b, f))
            for f in a.__dataclass_fields__
        )
    return a == b


@dataclass(frozen=True, slots=True)
class Program:
    structs: tuple[StructDef, ...] = field(default=())
    functions: tuple[FuncDef, ...] = field(default=())

    def struct(self, name: str) -> StructDef:
        for s in self.structs:
            if s.name == name:
                return s
        raise KeyError(f"no struct {name!r}")

    def function(self, name: str) -> FuncDef:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function {name!r}")

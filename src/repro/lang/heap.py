"""The block-structured heap ``σ_heap`` with undefined-behaviour checks.

Every access is validated: loads/stores to dead blocks (use-after-free,
escaped locals), out-of-bounds offsets, loads of uninitialized cells,
and invalid ``free`` calls all raise
:class:`~repro.lang.errors.UndefinedBehavior` — the interpreter-level
meaning of "stuck" in the adequacy theorem (Thm. 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.errors import UndefinedBehavior
from repro.lang.values import NULL, UNDEF, Cell, Undef, Value, VPtr


@dataclass
class _Block:
    cells: list[Cell]
    alive: bool = True
    #: "malloc" blocks may be freed; "local" blocks die at scope exit.
    kind: str = "malloc"


@dataclass
class Heap:
    """Word-addressed, block-structured memory."""

    _blocks: dict[int, _Block] = field(default_factory=dict)
    _next_block: int = 1  # block 0 is NULL

    def alloc(self, size: int, kind: str = "malloc") -> VPtr:
        """Allocate a fresh block of ``size`` uninitialized words."""
        if size <= 0:
            raise UndefinedBehavior(f"allocation of non-positive size {size}")
        block_id = self._next_block
        self._next_block += 1
        self._blocks[block_id] = _Block(cells=[UNDEF] * size, kind=kind)
        return VPtr(block_id, 0)

    def free(self, ptr: VPtr) -> None:
        """Release a ``malloc`` block; pointer must be its start."""
        if ptr.is_null:
            return  # free(NULL) is a no-op, as in C
        block = self._blocks.get(ptr.block)
        if block is None or not block.alive:
            raise UndefinedBehavior(f"free of invalid or already-freed pointer {ptr}")
        if block.kind != "malloc":
            raise UndefinedBehavior(f"free of non-heap pointer {ptr}")
        if ptr.offset != 0:
            raise UndefinedBehavior(f"free of interior pointer {ptr}")
        block.alive = False

    def kill(self, ptr: VPtr) -> None:
        """End the lifetime of a local block (scope exit)."""
        block = self._blocks.get(ptr.block)
        if block is None or not block.alive:  # pragma: no cover - internal
            raise UndefinedBehavior(f"kill of invalid block {ptr}")
        block.alive = False

    def _checked_block(self, ptr: VPtr, what: str) -> _Block:
        if ptr.is_null:
            raise UndefinedBehavior(f"{what} through NULL pointer")
        block = self._blocks.get(ptr.block)
        if block is None:
            raise UndefinedBehavior(f"{what} through wild pointer {ptr}")
        if not block.alive:
            raise UndefinedBehavior(f"{what} through dangling pointer {ptr}")
        if not 0 <= ptr.offset < len(block.cells):
            raise UndefinedBehavior(
                f"{what} out of bounds: offset {ptr.offset} in block of "
                f"size {len(block.cells)}"
            )
        return block

    def load(self, ptr: VPtr) -> Value:
        """Read one word; UB on invalid pointers or uninitialized cells."""
        block = self._checked_block(ptr, "load")
        cell = block.cells[ptr.offset]
        if isinstance(cell, Undef):
            raise UndefinedBehavior(f"load of uninitialized cell at {ptr}")
        return cell

    def store(self, ptr: VPtr, value: Value) -> None:
        """Write one word; UB on invalid pointers."""
        block = self._checked_block(ptr, "store")
        block.cells[ptr.offset] = value

    def valid(self, ptr: VPtr) -> bool:
        """Whether ``ptr`` may be dereferenced right now."""
        if ptr.is_null:
            return False
        block = self._blocks.get(ptr.block)
        return (
            block is not None and block.alive and 0 <= ptr.offset < len(block.cells)
        )

    def poison(self) -> int:
        """Fault injection: clobber every initialized cell of every live
        ``malloc`` block back to ``Undef``.

        Models random memory corruption of the scheduler's dynamic state
        (the pending queue, message buffers).  Any later :meth:`load` of
        a poisoned cell raises :class:`UndefinedBehavior` — i.e. the
        corruption is *detectable* exactly because the semantics treats
        indeterminate reads as stuck (Thm. 3.4).  Returns the number of
        cells poisoned.  Used by :mod:`repro.faults`; never called on
        healthy runs.
        """
        count = 0
        for block in self._blocks.values():
            if not block.alive or block.kind != "malloc":
                continue
            for offset, cell in enumerate(block.cells):
                if not isinstance(cell, Undef):
                    block.cells[offset] = UNDEF
                    count += 1
        return count

    @property
    def live_blocks(self) -> int:
        """Number of live blocks (for leak checks in tests)."""
        return sum(1 for b in self._blocks.values() if b.alive)

    def live_malloc_blocks(self) -> int:
        """Number of live ``malloc`` blocks (leak detection)."""
        return sum(1 for b in self._blocks.values() if b.alive and b.kind == "malloc")

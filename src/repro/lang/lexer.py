"""Hand-written lexer for the MiniC subset.

Supports decimal integer literals, identifiers/keywords, the operator
and punctuation set of :mod:`repro.lang.tokens`, line comments ``//``
and block comments ``/* ... */``.
"""

from __future__ import annotations

from repro.lang.errors import LexError
from repro.lang.tokens import KEYWORDS, Token, TokenKind

# Longest-match first for multi-character operators.
_MULTI_CHAR_OPS: list[tuple[str, TokenKind]] = [
    ("->", TokenKind.ARROW),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NEQ),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AND),
    ("||", TokenKind.OR),
]

_SINGLE_CHAR_OPS: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "&": TokenKind.AMP,
    "!": TokenKind.BANG,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal pos, line, col
        for _ in range(count):
            if source[pos] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            pos += 1

    while pos < n:
        ch = source[pos]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", pos):
            while pos < n and source[pos] != "\n":
                advance(1)
            continue
        if source.startswith("/*", pos):
            start_line, start_col = line, col
            advance(2)
            while pos < n and not source.startswith("*/", pos):
                advance(1)
            if pos >= n:
                raise LexError(start_line, start_col, "unterminated block comment")
            advance(2)
            continue
        if ch.isdigit():
            start_line, start_col = line, col
            start = pos
            while pos < n and source[pos].isdigit():
                advance(1)
            if pos < n and (source[pos].isalpha() or source[pos] == "_"):
                raise LexError(line, col, f"bad character {source[pos]!r} in number")
            tokens.append(Token(TokenKind.INT_LIT, source[start:pos], start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, col
            start = pos
            while pos < n and (source[pos].isalnum() or source[pos] == "_"):
                advance(1)
            text = source[start:pos]
            kind = KEYWORDS.get(text, TokenKind.IDENT)
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        matched = False
        for op_text, kind in _MULTI_CHAR_OPS:
            if source.startswith(op_text, pos):
                tokens.append(Token(kind, op_text, line, col))
                advance(len(op_text))
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_CHAR_OPS:
            tokens.append(Token(_SINGLE_CHAR_OPS[ch], ch, line, col))
            advance(1)
            continue
        raise LexError(line, col, f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens

"""Timing layer: timestamps, WCET assumptions, arrival sequences.

This package implements Step 2 of RefinedProsa (paper section 2.3):
marker traces are enriched with *timestamps* (one per marker, strictly
increasing, in arbitrary integer time units), jobs arrive according to
an *arrival sequence*, and three families of assumptions tie them
together:

* every basic action finishes within its WCET
  (:class:`~repro.timing.wcet.WcetModel`);
* the timed trace is *consistent* with the arrival sequence (Def. 2.1):
  jobs are read only after they arrive, and a failed read means nothing
  unread had arrived;
* job arrivals respect the tasks' arrival curves (Eq. 2, checked in
  :mod:`repro.rta.curves`).

All three are decidable predicates here, checked on every simulated run.
"""

from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.timed_trace import (
    ConsistencyError,
    TimedTrace,
    check_consistency,
)
from repro.timing.wcet import WcetError, WcetModel, check_wcet_respected

__all__ = [
    "Arrival",
    "ArrivalSequence",
    "ConsistencyError",
    "TimedTrace",
    "WcetError",
    "WcetModel",
    "check_consistency",
    "check_wcet_respected",
]

"""WCET assumptions on basic actions (paper sections 2.3 and 5).

WCETs are *parameters* of the verification: the paper assumes them to be
obtained from measurement or static analysis and requires (Thm. 5.1)

* ``WcetSel``, ``WcetDisp``, ``WcetCompl``, ``WcetIdling`` strictly
  positive, and
* ``1 < WcetFR`` and ``1 < WcetSR`` — a read spans *two* marker
  intervals (``M_ReadS`` and ``M_ReadE``), each at least one time unit.

:func:`check_wcet_respected` is the decidable form of the paper's WCET
assumption on a timed trace (the ``M_Dispatch`` instance is shown in
section 2.3); the derived per-processor-state bounds (``PB``, ``SB``,
``DB``, ``CB``, ``IB``, ``RB``) feed the jitter bound (Def. 4.3) and the
supply bound function (section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.task import TaskSystem
from repro.traces.markers import (
    MCompletion,
    MDispatch,
    MExecution,
    MIdling,
    MReadE,
    MReadS,
    MSelection,
)
from repro.timing.timed_trace import TimedTrace


class WcetError(Exception):
    """A basic action in a timed trace exceeded its WCET."""

    def __init__(self, index: int, what: str, duration: int, bound: int) -> None:
        super().__init__(
            f"at marker {index}: {what} took {duration} > WCET {bound}"
        )
        self.index = index
        self.what = what
        self.duration = duration
        self.bound = bound


@dataclass(frozen=True, slots=True)
class WcetModel:
    """Worst-case execution times of Rössl's basic actions.

    All values are in the trace's (arbitrary) integer time units.
    Callback WCETs ``C_i`` live on the tasks themselves.
    """

    failed_read: int
    success_read: int
    selection: int
    dispatch: int
    completion: int
    idling: int

    def __post_init__(self) -> None:
        if self.failed_read <= 1:
            raise ValueError(f"WcetFR must exceed 1, got {self.failed_read}")
        if self.success_read <= 1:
            raise ValueError(f"WcetSR must exceed 1, got {self.success_read}")
        for name in ("selection", "dispatch", "completion", "idling"):
            if getattr(self, name) <= 0:
                raise ValueError(f"Wcet {name} must be positive")

    # -- derived per-processor-state bounds --------------------------------
    #
    # A polling phase consists of full passes over the n sockets, ending
    # with an all-fail pass.  Between a success and the next success at
    # most 2(n-1) reads fail (tail of one pass + head of the next); before
    # the final selection at most 2n-1 reads fail (tail of the last
    # successful pass + the full all-fail pass).  These are slightly more
    # conservative than the paper's informal "at most as many failed reads
    # as there are sockets" (see DESIGN.md, deliberate deviations).

    def read_ovh_bound(self, num_sockets: int) -> int:
        """RB: longest ReadOvh(j) instance — failed reads attributed to a
        successful read, plus the successful read itself."""
        return 2 * (num_sockets - 1) * self.failed_read + self.success_read

    def polling_bound(self, num_sockets: int) -> int:
        """PB: longest PollingOvh(j) instance — the failed reads between
        the last successful read and the selection."""
        return (2 * num_sockets - 1) * self.failed_read

    @property
    def selection_bound(self) -> int:
        """SB: longest SelectionOvh(j) instance."""
        return self.selection

    @property
    def dispatch_bound(self) -> int:
        """DB: longest DispatchOvh(j) instance."""
        return self.dispatch

    @property
    def completion_bound(self) -> int:
        """CB: longest CompletionOvh(j) instance."""
        return self.completion

    def idle_instance_bound(self, num_sockets: int) -> int:
        """IB: longest *scheduler-caused* Idle stretch after an arrival —
        one all-fail polling pass, the failed selection, and the idling
        action (an idling iteration of the loop)."""
        return num_sockets * self.failed_read + self.selection + self.idling

    def overhead_per_job(self, num_sockets: int) -> int:
        """Total overhead attributable to one executed job: its ReadOvh,
        PollingOvh, SelectionOvh, DispatchOvh and CompletionOvh."""
        return (
            self.read_ovh_bound(num_sockets)
            + self.polling_bound(num_sockets)
            + self.selection
            + self.dispatch
            + self.completion
        )


def check_wcet_respected(
    timed: TimedTrace, tasks: TaskSystem, wcet: WcetModel
) -> None:
    """Check every complete basic action against its WCET.

    Raises :class:`WcetError` at the first violation.  Actions cut by the
    observation horizon (their closing marker has not happened yet) are
    in flight and not checked.
    """
    trace, ts = timed.trace, timed.ts
    n = len(trace)
    for i, marker in enumerate(trace):
        if isinstance(marker, MReadS):
            # The read action spans [ts[i], ts[i+2]): syscall + result
            # post-processing.  Complete only if marker i+2 exists.
            if i + 2 >= n:
                continue
            end_marker = trace[i + 1]
            assert isinstance(end_marker, MReadE), "protocol guarantees ReadE"
            duration = ts[i + 2] - ts[i]
            bound = wcet.failed_read if end_marker.job is None else wcet.success_read
            what = "failed read" if end_marker.job is None else "successful read"
            if duration > bound:
                raise WcetError(i, what, duration, bound)
            continue
        if i + 1 >= n:
            continue  # in flight at the horizon
        duration = ts[i + 1] - ts[i]
        if isinstance(marker, MSelection):
            if duration > wcet.selection:
                raise WcetError(i, "selection", duration, wcet.selection)
        elif isinstance(marker, MDispatch):
            if duration > wcet.dispatch:
                raise WcetError(i, "dispatch", duration, wcet.dispatch)
        elif isinstance(marker, MExecution):
            bound = tasks.msg_to_task(marker.job.data).wcet
            if duration > bound:
                raise WcetError(i, f"execution of {marker.job}", duration, bound)
        elif isinstance(marker, MCompletion):
            if duration > wcet.completion:
                raise WcetError(i, "completion", duration, wcet.completion)
        elif isinstance(marker, MIdling):
            if duration > wcet.idling:
                raise WcetError(i, "idling", duration, wcet.idling)


def wcet_respected(timed: TimedTrace, tasks: TaskSystem, wcet: WcetModel) -> bool:
    """Boolean form of :func:`check_wcet_respected`."""
    try:
        check_wcet_respected(timed, tasks, wcet)
    except WcetError:
        return False
    return True

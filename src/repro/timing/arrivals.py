"""Arrival sequences: the workload of one run.

The paper models arrivals as ``arr : sock → 𝕋 → list Job``.  Since job
*ids* are assigned by the semantics at read time, an arrival here is a
message payload on a socket at a time instant; the consistency check
(Def. 2.1) matches read jobs to arrivals FIFO per socket, which is
exactly the behaviour of the axiomatized datagram sockets.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.model.message import MsgData
from repro.model.task import TaskSystem
from repro.traces.markers import SocketId


@dataclass(frozen=True, slots=True)
class Arrival:
    """One message arrival: payload ``data`` on ``sock`` at ``time``."""

    time: int
    sock: SocketId
    data: MsgData

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"arrival time must be non-negative, got {self.time}")
        if not self.data:
            raise ValueError("arrivals must carry a non-empty payload")


class ArrivalSequence:
    """An immutable, time-sorted collection of arrivals.

    Sorting is stable: same-instant arrivals on one socket keep their
    construction order (they are enqueued in that order).
    """

    def __init__(self, arrivals: Iterable[Arrival]) -> None:
        self._arrivals: tuple[Arrival, ...] = tuple(
            sorted(arrivals, key=lambda a: a.time)
        )
        self._times = [a.time for a in self._arrivals]

    def __iter__(self) -> Iterator[Arrival]:
        return iter(self._arrivals)

    def __len__(self) -> int:
        return len(self._arrivals)

    @property
    def arrivals(self) -> tuple[Arrival, ...]:
        return self._arrivals

    def on_socket(self, sock: SocketId) -> tuple[Arrival, ...]:
        """Arrivals on ``sock``, in time order (the socket's FIFO order)."""
        return tuple(a for a in self._arrivals if a.sock == sock)

    def before(self, time: int) -> tuple[Arrival, ...]:
        """Arrivals strictly before ``time``."""
        return self._arrivals[: bisect_left(self._times, time)]

    def in_window(self, start: int, end: int) -> tuple[Arrival, ...]:
        """Arrivals in the half-open window ``[start, end)``."""
        lo = bisect_left(self._times, start)
        hi = bisect_left(self._times, end)
        return self._arrivals[lo:hi]

    def of_task(self, tasks: TaskSystem, name: str) -> tuple[Arrival, ...]:
        """Arrivals whose payload resolves to task ``name``."""
        return tuple(
            a for a in self._arrivals if tasks.msg_to_task(a.data).name == name
        )

    def count_in_window(self, tasks: TaskSystem, name: str, start: int, end: int) -> int:
        """Number of task-``name`` arrivals in ``[start, end)``."""
        return sum(
            1
            for a in self.in_window(start, end)
            if tasks.msg_to_task(a.data).name == name
        )

    @property
    def last_time(self) -> int:
        """Time of the latest arrival (0 when empty)."""
        return self._arrivals[-1].time if self._arrivals else 0

    def restricted_to(self, sockets: Iterable[SocketId]) -> "ArrivalSequence":
        """The sub-sequence on the given sockets."""
        socks = set(sockets)
        return ArrivalSequence(a for a in self._arrivals if a.sock in socks)

"""Timed traces ``(tr, ts)`` and consistency with arrivals (Def. 2.1).

A timed trace pairs each marker with the instant it was emitted.
Timestamps are strictly increasing naturals; the trace additionally
carries the observation *horizon* ``t_hrzn`` (Thm. 5.1) — the time up to
which the scheduler is known to have run — which closes the last
marker's interval.

Consistency (Def. 2.1) is checked in operational FIFO form, matching the
axiomatized datagram sockets: replaying the per-socket queues, every
successful read must pop the queue head (which arrived strictly before
the read's timestamp) and every failed read must find the queue empty of
arrivals strictly before its timestamp.  This implies both clauses of
the paper's set-based definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.traces.markers import Marker, MCompletion, MReadE, Trace
from repro.model.job import Job
from repro.timing.arrivals import Arrival, ArrivalSequence


class ConsistencyError(Exception):
    """A timed trace is inconsistent with an arrival sequence."""

    def __init__(self, index: int, message: str) -> None:
        super().__init__(f"at marker {index}: {message}")
        self.index = index


@dataclass(frozen=True)
class TimedTrace:
    """A marker trace with per-marker timestamps and a horizon.

    Invariants (checked at construction): ``len(ts) == len(trace)``,
    timestamps strictly increasing and non-negative, and
    ``horizon > ts[-1]`` (each marker interval lasts at least one unit).
    """

    trace: tuple[Marker, ...]
    ts: tuple[int, ...]
    horizon: int

    def __post_init__(self) -> None:
        if len(self.trace) != len(self.ts):
            raise ValueError(
                f"{len(self.trace)} markers but {len(self.ts)} timestamps"
            )
        if self.ts:
            if self.ts[0] < 0:
                raise ValueError("timestamps must be non-negative")
            for i in range(1, len(self.ts)):
                if self.ts[i] <= self.ts[i - 1]:
                    raise ValueError(
                        f"timestamps must be strictly increasing: "
                        f"ts[{i - 1}]={self.ts[i - 1]} >= ts[{i}]={self.ts[i]}"
                    )
            if self.horizon <= self.ts[-1]:
                raise ValueError(
                    f"horizon {self.horizon} must exceed the last timestamp "
                    f"{self.ts[-1]}"
                )
        elif self.horizon < 0:
            raise ValueError("horizon must be non-negative")

    @staticmethod
    def make(trace: Trace, ts: Sequence[int], horizon: int) -> "TimedTrace":
        return TimedTrace(tuple(trace), tuple(ts), horizon)

    def __len__(self) -> int:
        return len(self.trace)

    def interval(self, index: int) -> tuple[int, int]:
        """The half-open time interval of marker ``index``'s work."""
        start = self.ts[index]
        end = self.ts[index + 1] if index + 1 < len(self.ts) else self.horizon
        return start, end

    @property
    def start_time(self) -> int:
        """Time of the first marker (0 for the empty trace)."""
        return self.ts[0] if self.ts else 0

    def completion_time(self, job: Job) -> int | None:
        """The timestamp of ``M_Completion job``, or ``None`` if the job
        has not completed within this trace (Thm. 5.1's ``ts[k]``)."""
        for marker, stamp in zip(self.trace, self.ts):
            if isinstance(marker, MCompletion) and marker.job == job:
                return stamp
        return None

    def completions(self) -> dict[Job, int]:
        """All completion times, keyed by job."""
        return {
            marker.job: stamp
            for marker, stamp in zip(self.trace, self.ts)
            if isinstance(marker, MCompletion)
        }


def check_consistency(timed: TimedTrace, arrivals: ArrivalSequence) -> None:
    """Def. 2.1: the timed trace is consistent with the arrival sequence.

    Raises :class:`ConsistencyError` at the first violating read.
    """
    pending: dict[int, list[Arrival]] = {}
    consumed: dict[int, int] = {}
    for index, (marker, stamp) in enumerate(zip(timed.trace, timed.ts)):
        if not isinstance(marker, MReadE):
            continue
        sock = marker.sock
        if sock not in pending:
            pending[sock] = list(arrivals.on_socket(sock))
            consumed[sock] = 0
        queue = pending[sock]
        position = consumed[sock]
        available = position < len(queue) and queue[position].time < stamp
        if marker.job is None:
            if available:
                raise ConsistencyError(
                    index,
                    f"failed read on socket {sock} at {stamp}, but "
                    f"{queue[position].data} arrived at {queue[position].time}",
                )
        else:
            if not available:
                raise ConsistencyError(
                    index,
                    f"read of {marker.job} on socket {sock} at {stamp} with "
                    "no matching arrival before it",
                )
            head = queue[position]
            if head.data != marker.job.data:
                raise ConsistencyError(
                    index,
                    f"read of {marker.job} on socket {sock} does not match "
                    f"the queue head {head.data} (arrived {head.time})",
                )
            consumed[sock] = position + 1


def consistent(timed: TimedTrace, arrivals: ArrivalSequence) -> bool:
    """Boolean form of :func:`check_consistency`."""
    try:
        check_consistency(timed, arrivals)
    except ConsistencyError:
        return False
    return True


def job_arrival_times(
    timed: TimedTrace, arrivals: ArrivalSequence, check: bool = True
) -> dict[Job, int]:
    """Map each read job to the arrival time of the message it consumed.

    Uses the same FIFO replay as :func:`check_consistency` (which must
    hold); this is the witness for the existential in Def. 2.1 and the
    ``t_arr`` against which response times are measured (Thm. 5.1).

    ``check=False`` skips the consistency precondition and maps each
    successful read to the next unconsumed arrival on its socket (jobs
    beyond the queue are dropped).  Checkers downstream of consistency
    (e.g. :mod:`repro.rta.compliance`) use this to keep reporting *their*
    property on traces whose consistency is already known to be broken —
    without it, every timing fault would collapse into a
    :class:`ConsistencyError`.
    """
    if check:
        check_consistency(timed, arrivals)
    result: dict[Job, int] = {}
    position: dict[int, int] = {}
    queues: dict[int, tuple[Arrival, ...]] = {}
    for marker in timed.trace:
        if isinstance(marker, MReadE) and marker.job is not None:
            sock = marker.sock
            if sock not in queues:
                queues[sock] = arrivals.on_socket(sock)
                position[sock] = 0
            if position[sock] < len(queues[sock]):
                result[marker.job] = queues[sock][position[sock]].time
            position[sock] += 1
    return result

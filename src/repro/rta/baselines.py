"""Baseline analyses for comparison experiments.

``ideal_npfp_bound`` is the classic *overhead-oblivious* NPFP
response-time analysis: same busy-window recurrence, but on an ideal
unit-speed processor (``SBF(Δ) = Δ``), with the raw arrival curves and
no release jitter.  This is the analysis one would (incorrectly) apply
to Rössl while ignoring its scheduling overheads — experiment E10 shows
simulated response times *exceed* this baseline while staying below the
overhead-aware bound, reproducing the paper's motivation for explicit
overhead accounting.

``utilization`` supports quick sanity checks and ablation sweeps.
"""

from __future__ import annotations

from repro.model.task import TaskSystem
from repro.rossl.client import RosslClient
from repro.rta.arsa import solve_response_time
from repro.rta.sbf import IdealSupply


def ideal_npfp_bound(
    client: RosslClient, task_name: str, horizon: int = 1_000_000
) -> int | None:
    """Overhead-oblivious NPFP response-time bound for one task."""
    tasks = client.tasks
    if not tasks.has_curves:
        raise ValueError("every task needs an arrival curve for the analysis")
    curves = {task.name: tasks.arrival_curve(task.name) for task in tasks}
    result = solve_response_time(
        tasks.by_name(task_name), tasks.tasks, curves, IdealSupply(), horizon
    )
    return None if result is None else result.response_bound


def utilization(tasks: TaskSystem, window: int = 100_000) -> float:
    """Long-run processor demand of the workload: the sum over tasks of
    ``α_i(W)·C_i / W`` for a large window ``W`` (approaches the true
    utilization as ``W`` grows)."""
    if window <= 0:
        raise ValueError("window must be positive")
    demand = sum(
        tasks.arrival_curve(task.name)(window) * task.wcet for task in tasks
    )
    return demand / window

"""Arrival curves ``α_i`` and release curves ``β_i`` (paper section 4).

An arrival curve upper-bounds how many jobs of a task may arrive in any
half-open window: ``|{j : t ≤ a_j < t+Δ}| ≤ α(Δ)`` (Eq. 2).  Curves are
monotone staircase functions with ``α(0) = 0``.

The *release curve* (section 4.3) accounts for release jitter:
``β(Δ) = 0`` if ``Δ = 0`` else ``α(Δ + J)`` — jitter may compress
releases closer together than arrivals, and ``β`` bounds the release
sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import ceil
from typing import Callable, Protocol, Sequence, runtime_checkable


@runtime_checkable
class ArrivalCurve(Protocol):
    """A monotone staircase bound on arrivals per window length."""

    def __call__(self, delta: int) -> int:
        """Maximum number of arrivals in any window of length ``delta``."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True, slots=True)
class SporadicCurve:
    """Sporadic arrivals with minimum inter-arrival separation ``T``:
    ``α(Δ) = ⌈Δ/T⌉``.  (A periodic task with period ``T`` is the dense
    instance of this bound.)"""

    min_separation: int

    def __post_init__(self) -> None:
        if self.min_separation <= 0:
            raise ValueError("minimum separation must be positive")

    def __call__(self, delta: int) -> int:
        if delta <= 0:
            return 0
        return ceil(delta / self.min_separation)


@dataclass(frozen=True, slots=True)
class LeakyBucketCurve:
    """Token-bucket arrivals: a burst of up to ``burst`` jobs plus one
    job per ``rate_separation`` thereafter: ``α(Δ) = b + ⌊(Δ-1)/T⌋``
    for ``Δ > 0``."""

    burst: int
    rate_separation: int

    def __post_init__(self) -> None:
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        if self.rate_separation <= 0:
            raise ValueError("rate separation must be positive")

    def __call__(self, delta: int) -> int:
        if delta <= 0:
            return 0
        return self.burst + (delta - 1) // self.rate_separation


@dataclass(frozen=True)
class TableCurve:
    """An explicit staircase: ``steps[k] = (window, count)`` means the
    curve jumps to ``count`` at window length ``window``; beyond the
    table it continues with ``tail_separation`` between extra jobs."""

    steps: tuple[tuple[int, int], ...]
    tail_separation: int

    def __post_init__(self) -> None:
        previous_window, previous_count = 0, 0
        for window, count in self.steps:
            if window <= previous_window or count < previous_count:
                raise ValueError("table steps must be strictly increasing")
            previous_window, previous_count = window, count
        if self.tail_separation <= 0:
            raise ValueError("tail separation must be positive")

    def __call__(self, delta: int) -> int:
        if delta <= 0:
            return 0
        result = 0
        last_window = 0
        for window, count in self.steps:
            if delta >= window:
                result = count
                last_window = window
            else:
                return result
        return result + (delta - last_window) // self.tail_separation


@dataclass(frozen=True, slots=True)
class ShiftedCurve:
    """``β(Δ) = base(Δ + shift)`` for ``Δ > 0`` — the release curve."""

    base: ArrivalCurve
    shift: int

    def __call__(self, delta: int) -> int:
        if delta <= 0:
            return 0
        return self.base(delta + self.shift)


def release_curve(alpha: ArrivalCurve, max_jitter: int) -> ArrivalCurve:
    """The release curve ``β`` for arrival curve ``α`` and jitter bound
    ``J`` (section 4.3): ``β(Δ) = α(Δ + J)`` for ``Δ > 0``."""
    if max_jitter < 0:
        raise ValueError("jitter bound must be non-negative")
    return ShiftedCurve(alpha, max_jitter)


# -- memoized evaluation ---------------------------------------------------
#
# The RTA hot paths (busy-window iteration, SBF extension, ablation
# sweeps) evaluate the same staircase steps thousands of times.  All
# shipped curves are frozen dataclasses, i.e. hashable pure functions of
# their descriptors, so step evaluations can be shared process-wide.

@lru_cache(maxsize=1 << 18)
def _memoized_value(curve: ArrivalCurve, delta: int) -> int:
    return curve.base(delta) if isinstance(curve, MemoCurve) else curve(delta)


@dataclass(frozen=True, slots=True)
class MemoCurve:
    """A curve whose evaluations go through the shared step cache.

    Equality and hashing are structural (the wrapped descriptor), so two
    analyses of the same deployment share cache entries — the
    "deployment fingerprint" keying of the memoization layer.
    """

    base: ArrivalCurve

    def __call__(self, delta: int) -> int:
        return _memoized_value(self, delta)


def memo_cache_info():
    """Hit/miss statistics of the shared step cache.

    Returns the ``functools`` ``CacheInfo`` of the process-wide
    :class:`MemoCurve` evaluation cache — the observability layer
    records deltas of this around each analysis
    (:func:`repro.rta.npfp.analyse`), exposing the cache as the
    ``rta.memo_curve.hits`` / ``rta.memo_curve.misses`` counters.
    """
    return _memoized_value.cache_info()


def memoized_curve(curve: ArrivalCurve) -> ArrivalCurve:
    """Wrap ``curve`` in the shared evaluation cache when possible.

    Unhashable curves (ad-hoc lambdas in tests) are returned unwrapped —
    memoization is an optimization, never a requirement.
    """
    if isinstance(curve, MemoCurve):
        return curve
    try:
        hash(curve)
    except TypeError:
        return curve
    return MemoCurve(curve)


class CurveViolation(Exception):
    """An arrival sequence exceeds its arrival curve."""


def check_curve_respected(times: Sequence[int], alpha: ArrivalCurve) -> None:
    """Check Eq. 2 for the given (sorted or unsorted) arrival times.

    Uses the pairwise criterion: for sorted times ``a_1 ≤ … ≤ a_m``,
    Eq. 2 holds iff ``j - i + 1 ≤ α(a_j - a_i + 1)`` for all ``i ≤ j``.
    Raises :class:`CurveViolation` on failure.
    """
    sorted_times = sorted(times)
    m = len(sorted_times)
    for i in range(m):
        for j in range(i, m):
            window = sorted_times[j] - sorted_times[i] + 1
            count = j - i + 1
            if count > alpha(window):
                raise CurveViolation(
                    f"{count} arrivals within a window of {window} "
                    f"(allowed {alpha(window)})"
                )


def respects_curve(times: Sequence[int], alpha: ArrivalCurve) -> bool:
    """Boolean form of :func:`check_curve_respected`."""
    try:
        check_curve_respected(times, alpha)
    except CurveViolation:
        return False
    return True


def check_staircase(alpha: ArrivalCurve, horizon: int) -> None:
    """Sanity-check curve axioms on a prefix: ``α(0) = 0`` and
    monotonicity up to ``horizon`` (used by property tests)."""
    if alpha(0) != 0:
        raise ValueError("arrival curves must satisfy α(0) = 0")
    previous = 0
    for delta in range(1, horizon + 1):
        value = alpha(delta)
        if value < previous:
            raise ValueError(f"arrival curve decreases at Δ={delta}")
        previous = value

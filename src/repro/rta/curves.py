"""Arrival curves ``α_i`` and release curves ``β_i`` (paper section 4).

An arrival curve upper-bounds how many jobs of a task may arrive in any
half-open window: ``|{j : t ≤ a_j < t+Δ}| ≤ α(Δ)`` (Eq. 2).  Curves are
monotone staircase functions with ``α(0) = 0``.

The *release curve* (section 4.3) accounts for release jitter:
``β(Δ) = 0`` if ``Δ = 0`` else ``α(Δ + J)`` — jitter may compress
releases closer together than arrivals, and ``β`` bounds the release
sequence.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import islice
from math import ceil
from typing import Callable, Iterator, NamedTuple, Protocol, Sequence, runtime_checkable


@runtime_checkable
class ArrivalCurve(Protocol):
    """A monotone staircase bound on arrivals per window length."""

    def __call__(self, delta: int) -> int:
        """Maximum number of arrivals in any window of length ``delta``."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True, slots=True)
class SporadicCurve:
    """Sporadic arrivals with minimum inter-arrival separation ``T``:
    ``α(Δ) = ⌈Δ/T⌉``.  (A periodic task with period ``T`` is the dense
    instance of this bound.)"""

    min_separation: int

    def __post_init__(self) -> None:
        if self.min_separation <= 0:
            raise ValueError("minimum separation must be positive")

    def __call__(self, delta: int) -> int:
        if delta <= 0:
            return 0
        return ceil(delta / self.min_separation)


@dataclass(frozen=True, slots=True)
class LeakyBucketCurve:
    """Token-bucket arrivals: a burst of up to ``burst`` jobs plus one
    job per ``rate_separation`` thereafter: ``α(Δ) = b + ⌊(Δ-1)/T⌋``
    for ``Δ > 0``."""

    burst: int
    rate_separation: int

    def __post_init__(self) -> None:
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        if self.rate_separation <= 0:
            raise ValueError("rate separation must be positive")

    def __call__(self, delta: int) -> int:
        if delta <= 0:
            return 0
        return self.burst + (delta - 1) // self.rate_separation


@dataclass(frozen=True, slots=True)
class TableCurve:
    """An explicit staircase: ``steps[k] = (window, count)`` means the
    curve jumps to ``count`` at window length ``window``; beyond the
    table it continues with ``tail_separation`` between extra jobs.

    Steps must be strictly increasing in *both* coordinates: a step
    that repeats the previous count is not a jump (it would make the
    table ambiguous about where the staircase actually steps)."""

    steps: tuple[tuple[int, int], ...]
    tail_separation: int

    def __post_init__(self) -> None:
        previous_window, previous_count = 0, 0
        for window, count in self.steps:
            if window <= previous_window or count <= previous_count:
                raise ValueError("table steps must be strictly increasing")
            previous_window, previous_count = window, count
        if self.tail_separation <= 0:
            raise ValueError("tail separation must be positive")

    def __call__(self, delta: int) -> int:
        if delta <= 0:
            return 0
        result = 0
        last_window = 0
        for window, count in self.steps:
            if delta < window:
                break
            result = count
            last_window = window
        else:
            return result + (delta - last_window) // self.tail_separation
        return result


@dataclass(frozen=True, slots=True)
class ShiftedCurve:
    """``β(Δ) = base(Δ + shift)`` for ``Δ > 0`` — the release curve."""

    base: ArrivalCurve
    shift: int

    def __call__(self, delta: int) -> int:
        if delta <= 0:
            return 0
        return self.base(delta + self.shift)


def release_curve(alpha: ArrivalCurve, max_jitter: int) -> ArrivalCurve:
    """The release curve ``β`` for arrival curve ``α`` and jitter bound
    ``J`` (section 4.3): ``β(Δ) = α(Δ + J)`` for ``Δ > 0``."""
    if max_jitter < 0:
        raise ValueError("jitter bound must be non-negative")
    return ShiftedCurve(alpha, max_jitter)


# -- memoized evaluation ---------------------------------------------------
#
# The RTA hot paths (busy-window iteration, SBF extension, ablation
# sweeps) evaluate the same staircase steps thousands of times — and a
# diverging busy window (an unschedulable deployment) evaluates
# *millions* of distinct steps, so the per-evaluation overhead of this
# layer is what bounds the analysis's worst case.  All shipped curves
# are frozen dataclasses, i.e. hashable pure functions of their
# descriptors, so step evaluations can be shared process-wide.
#
# The cache is an explicit dict (not ``functools.lru_cache``) for two
# reasons: it can be reset at campaign/benchmark boundaries
# (:func:`memo_cache_clear`), and hits/misses can be attributed to the
# *current* analysis via :func:`memo_accounting` without double-counting
# when analyses nest.  To keep evaluations at C-dict speed, the hot path
# avoids structural hashing entirely: each distinct curve descriptor is
# assigned a small integer token once, the cache key is ``token | delta``
# (both ints), and accounting never touches the hot path — brackets
# snapshot the process totals and settle at exit.

_MEMO_MAXSIZE = 1 << 18
_MEMO_CACHE: dict[int, int] = {}
#: Process-wide [hits, misses] totals.  Updated under the GIL without a
#: lock; per-analysis attribution comes from the bracket snapshots below.
_MEMO_TOTALS = [0, 0]
_MEMO_ACCOUNTS = threading.local()
#: Curve descriptor → pre-shifted token.  Keyed structurally (frozen
#: dataclass equality), so equal-but-distinct descriptors share cache
#: entries.  Bounded: a long-lived process (the future ``repro serve``)
#: sweeping ad-hoc deployments would otherwise grow the table without
#: limit.  When full, both the token table and the memo cache are
#: dropped and the *epoch* advances; live :class:`MemoCurve` instances
#: notice the epoch change and re-fetch their token (token numbers are
#: reused across epochs, so stale tokens must never touch the cache).
_CURVE_TOKENS: dict[ArrivalCurve, int] = {}
_TOKEN_LIMIT = 4096
_TOKEN_EPOCH = [0]
_TOKEN_SHIFT = 60
#: Windows at or beyond 2**60 are evaluated uncached — they would
#: alias other tokens' keys, and no finite analysis reaches them.
_DELTA_LIMIT = 1 << _TOKEN_SHIFT


def _curve_token(curve: ArrivalCurve) -> int:
    token = _CURVE_TOKENS.get(curve)
    if token is None:
        if len(_CURVE_TOKENS) >= _TOKEN_LIMIT:
            _CURVE_TOKENS.clear()
            _MEMO_CACHE.clear()
            _TOKEN_EPOCH[0] += 1
        token = _CURVE_TOKENS.setdefault(
            curve, len(_CURVE_TOKENS) << _TOKEN_SHIFT
        )
    return token


class TokenTableInfo(NamedTuple):
    """Occupancy of the curve-token table (``repro cache stats``)."""

    size: int
    limit: int
    epoch: int


def token_table_info() -> TokenTableInfo:
    """Occupancy and epoch of the bounded curve-token table."""
    return TokenTableInfo(len(_CURVE_TOKENS), _TOKEN_LIMIT, _TOKEN_EPOCH[0])


class MemoCacheInfo(NamedTuple):
    """Shape-compatible with ``functools``' ``CacheInfo``."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


@dataclass
class MemoAccount:
    """Hits/misses of the shared step cache attributed to one bracket.

    The counts are only valid after the bracket exits (they are settled
    from totals snapshots in the ``finally`` clause).
    """

    hits: int = 0
    misses: int = 0


@contextmanager
def memo_accounting() -> Iterator[MemoAccount]:
    """Attribute step-cache hits/misses to the enclosed computation.

    Each bracket snapshots the process totals on entry and settles on
    exit: its counts are the totals delta minus whatever brackets nested
    *inside* it consumed, so every evaluation is credited to exactly one
    account — the innermost bracket open around it — and the
    per-analysis counters sum to the process totals instead of
    double-counting when analyses nest (baseline comparisons) or run
    back to back.  Brackets stack per thread; attribution is exact for
    the single-threaded analyses this repo runs (cross-process
    parallelism never shares the cache).
    """
    stack = getattr(_MEMO_ACCOUNTS, "stack", None)
    if stack is None:
        stack = _MEMO_ACCOUNTS.stack = []
    account = MemoAccount()
    # [start_hits, start_misses, child_hits, child_misses]
    frame = [_MEMO_TOTALS[0], _MEMO_TOTALS[1], 0, 0]
    stack.append((account, frame))
    try:
        yield account
    finally:
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] is account:
                del stack[index]
                break
        # max(0, ...) guards a memo_cache_clear() inside the bracket
        # (it zeroes the totals, making the raw delta meaningless).
        raw_hits = max(0, _MEMO_TOTALS[0] - frame[0])
        raw_misses = max(0, _MEMO_TOTALS[1] - frame[1])
        account.hits = max(0, raw_hits - frame[2])
        account.misses = max(0, raw_misses - frame[3])
        if stack:
            parent = stack[-1][1]
            parent[2] += raw_hits
            parent[3] += raw_misses


@dataclass(frozen=True, slots=True)
class MemoCurve:
    """A curve whose evaluations go through the shared step cache.

    Equality and hashing are structural (the wrapped descriptor), so two
    analyses of the same deployment share cache entries — the
    "deployment fingerprint" keying of the memoization layer.
    """

    base: ArrivalCurve
    _token: int = field(default=-1, init=False, compare=False, repr=False)
    _token_epoch: int = field(default=-1, init=False, compare=False, repr=False)

    def __call__(self, delta: int) -> int:
        if delta <= 0:
            return 0  # every staircase satisfies α(Δ) = 0 for Δ ≤ 0
        if delta >= _DELTA_LIMIT:
            return self.base(delta)
        token = self._token
        if token < 0 or self._token_epoch != _TOKEN_EPOCH[0]:
            # First use, or the token table was recycled since: tokens
            # are reused across epochs, so fetch afresh (and read the
            # epoch *after* fetching — the fetch itself may advance it).
            token = _curve_token(self.base)
            object.__setattr__(self, "_token", token)
            object.__setattr__(self, "_token_epoch", _TOKEN_EPOCH[0])
        key = token | delta
        cache = _MEMO_CACHE
        value = cache.get(key)
        if value is None:
            value = self.base(delta)
            if len(cache) >= _MEMO_MAXSIZE:
                # Bulk-evict the oldest half (insertion order) in one
                # sweep.  One-at-a-time eviction of the front key is
                # quadratic on CPython — each ``next(iter(cache))``
                # re-walks the tombstones earlier deletions left.
                for stale in list(islice(cache, _MEMO_MAXSIZE >> 1)):
                    del cache[stale]
            cache[key] = value
            _MEMO_TOTALS[1] += 1
        else:
            _MEMO_TOTALS[0] += 1
        return value


def memo_cache_info() -> MemoCacheInfo:
    """Hit/miss statistics of the shared step cache.

    Process-wide totals of the :class:`MemoCurve` evaluation cache; the
    observability layer exposes per-analysis attributions (via
    :func:`memo_accounting` in :func:`repro.rta.npfp.analyse`) as the
    ``rta.memo_curve.hits`` / ``rta.memo_curve.misses`` counters.
    """
    return MemoCacheInfo(
        hits=_MEMO_TOTALS[0],
        misses=_MEMO_TOTALS[1],
        maxsize=_MEMO_MAXSIZE,
        currsize=len(_MEMO_CACHE),
    )


def memo_cache_clear() -> None:
    """Reset the shared step cache (entries and hit/miss totals).

    Campaign and benchmark boundaries call this so warm-cache state left
    by earlier in-process work cannot make timing measurements
    order-dependent; results never change (memoization is transparent).
    A :func:`memo_accounting` bracket open across a clear settles to at
    most the evaluations it saw after the clear.
    """
    _MEMO_CACHE.clear()
    _MEMO_TOTALS[0] = 0
    _MEMO_TOTALS[1] = 0


def memoized_curve(curve: ArrivalCurve) -> ArrivalCurve:
    """Wrap ``curve`` in the shared evaluation cache when possible.

    Unhashable curves (ad-hoc lambdas in tests) are returned unwrapped —
    memoization is an optimization, never a requirement.
    """
    if isinstance(curve, MemoCurve):
        return curve
    try:
        hash(curve)
    except TypeError:
        return curve
    return MemoCurve(curve)


class CurveViolation(Exception):
    """An arrival sequence exceeds its arrival curve."""


def check_curve_respected(times: Sequence[int], alpha: ArrivalCurve) -> None:
    """Check Eq. 2 for the given (sorted or unsorted) arrival times.

    Uses the pairwise criterion: for sorted times ``a_1 ≤ … ≤ a_m``,
    Eq. 2 holds iff ``j - i + 1 ≤ α(a_j - a_i + 1)`` for all ``i ≤ j``.
    Raises :class:`CurveViolation` on failure.
    """
    sorted_times = sorted(times)
    m = len(sorted_times)
    for i in range(m):
        for j in range(i, m):
            window = sorted_times[j] - sorted_times[i] + 1
            count = j - i + 1
            if count > alpha(window):
                raise CurveViolation(
                    f"{count} arrivals within a window of {window} "
                    f"(allowed {alpha(window)})"
                )


def respects_curve(times: Sequence[int], alpha: ArrivalCurve) -> bool:
    """Boolean form of :func:`check_curve_respected`."""
    try:
        check_curve_respected(times, alpha)
    except CurveViolation:
        return False
    return True


def check_staircase(alpha: ArrivalCurve, horizon: int) -> None:
    """Sanity-check curve axioms on a prefix: ``α(0) = 0`` and
    monotonicity up to ``horizon`` (used by property tests)."""
    if alpha(0) != 0:
        raise ValueError("arrival curves must satisfy α(0) = 0")
    previous = 0
    for delta in range(1, horizon + 1):
        value = alpha(delta)
        if value < previous:
            raise ValueError(f"arrival curve decreases at Δ={delta}")
        previous = value

"""The overhead-aware response-time analysis for Rössl (Thm. 4.2).

Top-level composition of section 4: given a client (tasks with arrival
curves, sockets) and the WCET model,

1. compute the jitter bound ``J`` (Def. 4.3);
2. shift arrival curves into release curves ``β_k(Δ) = α_k(Δ + J)``;
3. build the supply bound function from the release curves (section 4.4);
4. run the aRSA busy-window analysis per task, yielding ``R_i`` w.r.t.
   the release sequence;
5. report ``R_i + J`` — a response-time bound w.r.t. the *arrival*
   sequence (Thm. 4.2) — which Thm. 5.1 transfers to the timed trace of
   the C implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.model.task import Task, TaskSystem
from repro.rossl.client import RosslClient
from repro.rta import kernel as step_kernel
from repro.rta.arsa import ArsaResult, solve_response_time
from repro.rta.curves import (
    ArrivalCurve,
    memo_accounting,
    memoized_curve,
    release_curve,
)
from repro.rta.jitter import JitterBounds, jitter_bound
from repro.rta.kernel import KernelSupply
from repro.rta.sbf import SupplyBoundFunction, make_sbf
from repro.timing.wcet import WcetModel


@dataclass(frozen=True)
class TaskBound:
    """Analysis outcome for one task."""

    task: Task
    arsa: ArsaResult | None  # None: unschedulable / unbounded

    @property
    def schedulable(self) -> bool:
        return self.arsa is not None

    def release_bound(self) -> int:
        """``R_i`` w.r.t. the release sequence."""
        if self.arsa is None:
            raise ValueError(f"task {self.task.name} has no response-time bound")
        return self.arsa.response_bound


@dataclass(frozen=True)
class AnalysisResult:
    """The full analysis of one deployment."""

    tasks: TaskSystem
    wcet: WcetModel
    num_sockets: int
    jitter: JitterBounds
    sbf: SupplyBoundFunction | KernelSupply
    bounds: dict[str, TaskBound]

    @property
    def schedulable(self) -> bool:
        return all(b.schedulable for b in self.bounds.values())

    def response_time_bound(self, task_name: str) -> int:
        """``R_i + J_i``: the bound w.r.t. the arrival sequence (Thm. 4.2)."""
        return self.bounds[task_name].release_bound() + self.jitter.bound

    def rows(self) -> list[tuple[str, int, int, int | None, int | None]]:
        """Report rows: (task, C, priority, R_release, R_total)."""
        out = []
        for task in self.tasks:
            bound = self.bounds[task.name]
            if bound.schedulable:
                release = bound.release_bound()
                total = release + self.jitter.bound
            else:
                release = total = None
            out.append((task.name, task.wcet, task.priority, release, total))
        return out


def analyse(
    client: RosslClient,
    wcet: WcetModel,
    horizon: int = 1_000_000,
    *,
    kernel: bool | None = None,
) -> AnalysisResult:
    """Run the overhead-aware RTA for a deployment.

    Every task of the client must carry an arrival curve.  ``horizon``
    bounds the busy-window search; tasks whose busy window does not
    close within it are reported unschedulable.

    ``kernel`` selects the evaluation strategy: ``True`` forces the
    step-table kernel (:mod:`repro.rta.kernel`), ``False`` the legacy
    call-per-step path, ``None`` the process default.  Both paths
    produce byte-identical results; curves the kernel cannot compile
    (ad-hoc callables) fall back to the legacy path automatically.
    """
    tasks = client.tasks
    if not tasks.has_curves:
        raise ValueError("every task needs an arrival curve for the analysis")
    use_kernel = step_kernel.kernel_enabled(kernel)
    # Per-analysis step-cache accounting: the account sees exactly this
    # analysis's evaluations (thread-local, innermost-bracket), so
    # nested or interleaved analyses in one process never double-count
    # the rta.memo_curve.* counters.  (The kernel path never touches the
    # memo cache; its account settles to zero.)
    with obs.span(
        "rta.analyse", tasks=len(tasks.tasks), horizon=horizon
    ), memo_accounting() as memo_account:
        jitter = jitter_bound(wcet, client.num_sockets)
        # Memoized release curves: busy-window iteration, SBF extension,
        # and repeat analyses of the same deployment share step
        # evaluations.
        release_curves: dict[str, ArrivalCurve] = {
            task.name: memoized_curve(
                release_curve(tasks.arrival_curve(task.name), jitter.bound)
            )
            for task in tasks
        }
        tables = (
            step_kernel.compile_release_tables(tasks.tasks, release_curves)
            if use_kernel
            else None
        )
        if tables is not None:
            sbf: SupplyBoundFunction | KernelSupply = step_kernel.shared_supply(
                tuple(tables[task.name] for task in tasks),
                wcet,
                client.num_sockets,
            )
            bounds = {
                task.name: TaskBound(
                    task,
                    step_kernel.solve_response_time(
                        task, tasks.tasks, tables, sbf, horizon
                    ),
                )
                for task in tasks
            }
        else:
            sbf = make_sbf(tasks.tasks, release_curves, wcet, client.num_sockets)
            bounds = {
                task.name: TaskBound(
                    task,
                    solve_response_time(
                        task, tasks.tasks, release_curves, sbf, horizon
                    ),
                )
                for task in tasks
            }
    if obs.enabled():
        obs.inc("rta.analyses")
        if tables is not None:
            obs.inc("rta.kernel.analyses")
        obs.inc("rta.memo_curve.hits", memo_account.hits)
        obs.inc("rta.memo_curve.misses", memo_account.misses)
        obs.gauge("rta.sbf.extended_to", sbf.extended_to)
    return AnalysisResult(
        tasks=tasks,
        wcet=wcet,
        num_sockets=client.num_sockets,
        jitter=jitter,
        sbf=sbf,
        bounds=bounds,
    )


def analyse_batch(
    deployments,
    horizon: int = 1_000_000,
    *,
    kernel: bool | None = None,
) -> list[AnalysisResult]:
    """Analyse many deployments, amortizing kernel state across cells.

    ``deployments`` yields ``(client, wcet)`` pairs or objects with
    ``client``/``wcet`` attributes (:class:`repro.config.Deployment`).
    Within the batch, compiled step tables and pooled supplies are
    pinned (:func:`repro.rta.kernel.batch_scope`), so a sweep wider
    than the steady-state pool limit still shares every table and every
    materialized SBF segment across all its cells.
    """
    pairs = [
        (item.client, item.wcet) if hasattr(item, "client") else tuple(item)
        for item in deployments
    ]
    with obs.span("rta.analyse_batch", cells=len(pairs)), step_kernel.batch_scope():
        return [
            analyse(client, wcet, horizon, kernel=kernel)
            for client, wcet in pairs
        ]


def response_time_bound(
    client: RosslClient,
    wcet: WcetModel,
    task_name: str,
    horizon: int = 1_000_000,
) -> int | None:
    """Convenience: ``R_i + J_i`` for one task, or ``None``."""
    result = analyse(client, wcet, horizon)
    bound = result.bounds[task_name]
    if not bound.schedulable:
        return None
    return result.response_time_bound(task_name)

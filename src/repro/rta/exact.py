"""Brute-force worst-case exploration for tiny task systems.

For small horizons and task sets, enumerate *every* arrival pattern
consistent with the arrival curves (arrival times per task, on one
socket), simulate each under adversarial (always-WCET) timing, and take
the maximum observed response time per task.

The result is a *lower bound* on the true worst case (the duration
policy is fixed to WCET; some pathologies need sub-WCET timing), which
is exactly what the soundness property test needs: the analytic bound of
:func:`repro.rta.npfp.analyse` must dominate every observed response
time, in particular these exhaustively-found ones.
"""

from __future__ import annotations

from itertools import combinations_with_replacement, product
from typing import Iterator, Sequence

from repro.rossl.client import RosslClient
from repro.rta.curves import respects_curve
from repro.sim.simulator import WcetDurations, simulate
from repro.timing.arrivals import Arrival, ArrivalSequence
from repro.timing.wcet import WcetModel


def _conformant_patterns(
    alpha, horizon: int, max_jobs: int
) -> Iterator[tuple[int, ...]]:
    """All multisets of ≤ ``max_jobs`` arrival times in ``[0, horizon)``
    that respect ``alpha`` (including the empty pattern)."""
    yield ()
    for count in range(1, max_jobs + 1):
        for times in combinations_with_replacement(range(horizon), count):
            if respects_curve(times, alpha):
                yield times


def enumerate_arrival_sequences(
    client: RosslClient, horizon: int, max_jobs_per_task: int = 3
) -> Iterator[ArrivalSequence]:
    """Every curve-conformant arrival sequence on the client's first
    socket with at most ``max_jobs_per_task`` jobs per task."""
    tasks = list(client.tasks)
    sock = client.sockets[0]
    per_task_patterns = [
        list(
            _conformant_patterns(
                client.tasks.arrival_curve(task.name), horizon, max_jobs_per_task
            )
        )
        for task in tasks
    ]
    for combo in product(*per_task_patterns):
        arrivals = []
        serial = 0
        for task, times in zip(tasks, combo):
            for t in times:
                arrivals.append(Arrival(t, sock, (task.type_tag, serial)))
                serial += 1
        yield ArrivalSequence(arrivals)


def exact_worst_responses(
    client: RosslClient,
    wcet: WcetModel,
    arrival_horizon: int,
    max_jobs_per_task: int = 3,
    sim_horizon: int | None = None,
) -> dict[str, int]:
    """Exhaustive worst observed response time per task (0 if no job of
    the task ever ran).

    ``sim_horizon`` defaults to a value large enough for every enumerated
    job to complete under WCET timing.
    """
    tasks = list(client.tasks)
    if sim_horizon is None:
        total_jobs = max_jobs_per_task * len(tasks)
        per_job = max(t.wcet for t in tasks) + wcet.overhead_per_job(
            client.num_sockets
        )
        sim_horizon = arrival_horizon + (total_jobs + 2) * per_job + 100
    worst: dict[str, int] = {task.name: 0 for task in tasks}
    for arrivals in enumerate_arrival_sequences(
        client, arrival_horizon, max_jobs_per_task
    ):
        result = simulate(client, arrivals, wcet, sim_horizon, WcetDurations())
        for job, (_, _, response) in result.response_times().items():
            name = client.tasks.msg_to_task(job.data).name
            worst[name] = max(worst[name], response)
        # Every enumerated job must have completed within the horizon.
        read = {
            m.job
            for m in result.timed_trace.trace
            if type(m).__name__ == "MReadE" and m.job is not None
        }
        done = set(result.timed_trace.completions())
        if read - done:
            raise RuntimeError(
                "simulation horizon too short for exhaustive exploration"
            )
    return worst


def count_sequences(
    client: RosslClient, horizon: int, max_jobs_per_task: int = 3
) -> int:
    """Number of sequences the exhaustive explorer would visit."""
    return sum(1 for _ in enumerate_arrival_sequences(client, horizon, max_jobs_per_task))

"""The aRSA-style busy-window analysis for NPFP under restricted supply.

This is the core response-time recurrence (paper section 4.2): given

* a task set with WCETs ``C_k`` and priorities ``P_k``,
* per-task *release* curves ``β_k`` (arrival curves shifted by the
  jitter bound, section 4.3),
* a supply bound function ``SBF`` (section 4.4),

it computes, for a task ``τ_i``, a response-time bound *with respect to
the release sequence*.  The steps, following the busy-window principle
for non-preemptive fixed-priority scheduling:

1. **Blocking**: a lower-priority job that just started cannot be
   preempted: ``B_i = max(0, max_{P_k < P_i} C_k − 1)``.
2. **Busy-window length** ``L``: the least ``L > 0`` with
   ``B_i + Σ_{P_k ≥ P_i} β_k(L)·C_k ≤ SBF(L)`` — beyond ``L`` the busy
   window must have ended.
3. **Per-offset start time**: for a job released ``A`` after the busy
   window starts, the least ``s`` with
   ``SBF(s+1) ≥ B_i + (β_i(A+1) − 1)·C_i + Σ_{k ≠ i, P_k ≥ P_i}
   β_k(s+1)·C_k + 1`` — by ``s`` all blocking, earlier same-task jobs,
   and all higher-or-equal-priority releases up to ``s`` (conservatively
   including same-instant releases) have been served, and one unit of
   supply starts our job.
4. **Completion**: non-preemptive execution is overhead-free in Rössl
   (the ``Executes`` state is pure supply), so the job completes by
   ``s + C_i``; the response is ``s + C_i − A``, maximized over the
   offsets ``A`` at which ``β_i`` steps.

Returns ``None`` (unschedulable / no bound) when the busy window does
not close within ``horizon``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

from repro import obs
from repro.model.task import Task
from repro.rta.curves import ArrivalCurve


class Supply(Protocol):
    """What the solver needs from a supply bound function."""

    def __call__(self, delta: int) -> int: ...  # pragma: no cover

    def inverse(self, demand: int, ceiling: int) -> int | None: ...  # pragma: no cover


@dataclass(frozen=True)
class ArsaResult:
    """Outcome of the analysis of one task (w.r.t. the release sequence)."""

    task: Task
    blocking: int
    busy_window: int
    response_bound: int
    #: per-offset detail: (offset A, start bound s, response s + C - A)
    offsets: tuple[tuple[int, int, int], ...]


def blocking_bound(task: Task, tasks: Sequence[Task]) -> int:
    """``B_i``: longest non-preemptive lower-priority blocking."""
    lower = [t.wcet for t in tasks if t.priority < task.priority]
    return max(0, max(lower, default=0) - 1)


def _hep_tasks(task: Task, tasks: Sequence[Task]) -> list[Task]:
    return [t for t in tasks if t.name != task.name and t.priority >= task.priority]


def busy_window_bound(
    task: Task,
    tasks: Sequence[Task],
    release_curves: Mapping[str, ArrivalCurve],
    sbf: Supply,
    horizon: int,
) -> int | None:
    """Step 2: the least ``L > 0`` closing the busy window, or ``None``."""
    own_and_hep = [t for t in tasks if t.priority >= task.priority]
    blocking = blocking_bound(task, tasks)
    length = 1
    iterations = 0
    try:
        while length <= horizon:
            iterations += 1
            demand = blocking + sum(
                release_curves[t.name](length) * t.wcet for t in own_and_hep
            )
            if demand <= sbf(length):
                return length
            # Jump: supply must reach at least `demand`.
            nxt = sbf.inverse(demand, horizon)
            if nxt is None:
                return None
            length = max(nxt, length + 1)
        return None
    finally:
        obs.inc("rta.arsa.busy_window_iterations", iterations)


def _offsets_to_check(beta_i: ArrivalCurve, busy_window: int) -> list[int]:
    """Offsets where ``β_i(A+1)`` steps (a release at offset A is only
    possible there or later at equal count; the response is maximized at
    the earliest offset of each count)."""
    offsets = []
    previous = 0
    for a in range(busy_window):
        count = beta_i(a + 1)
        if count > previous:
            offsets.append(a)
            previous = count
    return offsets


def start_time_bound(
    task: Task,
    tasks: Sequence[Task],
    release_curves: Mapping[str, ArrivalCurve],
    sbf: Supply,
    offset: int,
    horizon: int,
) -> int | None:
    """Step 3: least ``s`` at which the offset-``A`` job can start."""
    blocking = blocking_bound(task, tasks)
    hep = _hep_tasks(task, tasks)
    beta_i = release_curves[task.name]
    prior_own = (beta_i(offset + 1) - 1) * task.wcet
    s = 0
    iterations = 0
    try:
        while s <= horizon:
            iterations += 1
            demand = (
                blocking
                + prior_own
                + sum(release_curves[t.name](s + 1) * t.wcet for t in hep)
                + 1
            )
            needed = sbf.inverse(demand, horizon + 1)
            if needed is None:
                return None
            candidate = max(needed - 1, 0)
            if candidate <= s:
                return s if sbf(s + 1) >= demand else None
            s = candidate
        return None
    finally:
        obs.inc("rta.arsa.start_time_iterations", iterations)


def solve_response_time(
    task: Task,
    tasks: Sequence[Task],
    release_curves: Mapping[str, ArrivalCurve],
    sbf: Supply,
    horizon: int = 1_000_000,
) -> ArsaResult | None:
    """Steps 2–4: the response-time bound w.r.t. the release sequence.

    ``None`` means the analysis could not bound the response time within
    ``horizon`` (overload).
    """
    obs.inc("rta.arsa.tasks_solved")
    window = busy_window_bound(task, tasks, release_curves, sbf, horizon)
    if window is None:
        return None
    per_offset: list[tuple[int, int, int]] = []
    worst = 0
    for offset in _offsets_to_check(release_curves[task.name], window):
        start = start_time_bound(task, tasks, release_curves, sbf, offset, horizon)
        if start is None:
            return None
        response = start + task.wcet - offset
        per_offset.append((offset, start, response))
        worst = max(worst, response)
    if not per_offset:
        # The release curve admits no job at all; the bound is trivially
        # its own WCET (it can never be released).
        worst = task.wcet
    return ArsaResult(
        task=task,
        blocking=blocking_bound(task, tasks),
        busy_window=window,
        response_bound=worst,
        offsets=tuple(per_offset),
    )

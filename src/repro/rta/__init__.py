"""Response-time analysis: the Prosa/aRSA side of RefinedProsa.

Implements paper section 4: arrival curves and release curves
(:mod:`~repro.rta.curves`), the release-jitter bounds of Def. 4.3
(:mod:`~repro.rta.jitter`), the supply bound function of section 4.4
(:mod:`~repro.rta.sbf`), the busy-window fixed-point solver for NPFP
under restricted supply (:mod:`~repro.rta.arsa`), the composed
overhead-aware bound ``R_i + J_i`` of Thm. 4.2
(:mod:`~repro.rta.npfp`), an overhead-oblivious baseline
(:mod:`~repro.rta.baselines`), and a brute-force exact explorer for
tiny systems (:mod:`~repro.rta.exact`).
"""

from repro.rta.arsa import ArsaResult, busy_window_bound, solve_response_time
from repro.rta.baselines import ideal_npfp_bound
from repro.rta.curves import (
    ArrivalCurve,
    LeakyBucketCurve,
    SporadicCurve,
    TableCurve,
    check_curve_respected,
    release_curve,
)
from repro.rta.jitter import JitterBounds, jitter_bound
from repro.rta.npfp import AnalysisResult, analyse, response_time_bound
from repro.rta.sbf import SupplyBoundFunction, blackout_bound, make_sbf

__all__ = [
    "AnalysisResult",
    "ArrivalCurve",
    "ArsaResult",
    "JitterBounds",
    "LeakyBucketCurve",
    "SporadicCurve",
    "SupplyBoundFunction",
    "TableCurve",
    "analyse",
    "blackout_bound",
    "busy_window_bound",
    "check_curve_respected",
    "ideal_npfp_bound",
    "jitter_bound",
    "make_sbf",
    "release_curve",
    "response_time_bound",
    "solve_response_time",
]

"""Priority compliance and work conservation, checked via jitter (§4.3).

The paper's key modelling lemma: Rössl's schedules violate aRSA's
priority-policy compliance and work conservation only within a window of
at most ``J = 1 + max(PB + SB + DB, IB)`` after a job's arrival — so
delaying each *release* by at most ``J`` repairs both properties.

This module makes the lemma decidable on concrete runs.  For each job
``j`` the *violation window* is the set of instants ``t`` with
``arrival(j) ≤ t < read(j)`` at which the schedule does something it
could not do if ``j`` were visible:

* it **dispatches a strictly lower-priority job** (priority compliance
  broken — Fig. 7a), or
* it **idles** (work conservation broken — Fig. 7b).

(Executing or finishing an already-dispatched job is fine: the policy is
non-preemptive.)  The *needed jitter* of ``j`` is then
``last violating instant + 1 − arrival(j)``; the lemma states it never
exceeds ``J``, making the jitter-shifted release sequence compliant.

``check_jitter_compliance`` computes every job's needed jitter and
verifies the lemma; campaigns assert it across random workloads for both
policies (the checker is parametric in the priority function, so EDF
reuses it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.job import Job
from repro.schedule.conversion import FiniteSchedule
from repro.schedule.states import DispatchOvh, Idle
from repro.timing.arrivals import ArrivalSequence
from repro.timing.timed_trace import TimedTrace, job_arrival_times
from repro.traces.markers import MDispatch, MReadE
from repro.traces.validity import PriorityFn


class ComplianceError(Exception):
    """A job's needed release jitter exceeds the bound ``J``."""

    def __init__(self, job: Job, needed: int, bound: int) -> None:
        super().__init__(
            f"job {job} needs release jitter {needed} > bound {bound}"
        )
        self.job = job
        self.needed = needed
        self.bound = bound


@dataclass(frozen=True)
class ComplianceReport:
    """Per-job needed jitters and the worst case observed."""

    needed_jitter: dict[Job, int]
    bound: int

    @property
    def worst(self) -> int:
        return max(self.needed_jitter.values(), default=0)

    @property
    def ok(self) -> bool:
        return self.worst <= self.bound


def _read_times(timed: TimedTrace) -> dict[Job, int]:
    return {
        marker.job: stamp
        for marker, stamp in zip(timed.trace, timed.ts)
        if isinstance(marker, MReadE) and marker.job is not None
    }


def _dispatch_times(timed: TimedTrace) -> list[tuple[int, Job]]:
    return [
        (stamp, marker.job)
        for marker, stamp in zip(timed.trace, timed.ts)
        if isinstance(marker, MDispatch)
    ]


def needed_jitters(
    timed: TimedTrace,
    arrivals: ArrivalSequence,
    schedule: FiniteSchedule,
    priority: PriorityFn,
    strict: bool = True,
) -> dict[Job, int]:
    """The minimal release delay per job that removes all violations.

    0 means the job was never overlooked; the paper's lemma bounds every
    value by ``J`` (Def. 4.3).  ``strict=False`` drops the consistency
    precondition on the arrival mapping (see
    :func:`~repro.timing.timed_trace.job_arrival_times`), so compliance
    can still be judged on traces with injected timing faults.
    """
    arrival_of = job_arrival_times(timed, arrivals, check=strict)
    read_of = _read_times(timed)
    dispatches = _dispatch_times(timed)
    idle_segments = [s for s in schedule if isinstance(s.state, Idle)]

    result: dict[Job, int] = {}
    for job, arrived in arrival_of.items():
        read = read_of[job]
        last_violation: int | None = None
        my_priority = priority(job.data)
        # (a) dispatch decisions that overlooked this (unread) job and
        # picked something of strictly lower priority.
        for stamp, other in dispatches:
            if arrived <= stamp < read and priority(other.data) < my_priority:
                last_violation = max(last_violation or 0, stamp)
        # (b) idle instants while this job had arrived but was unread.
        for segment in idle_segments:
            lo = max(segment.start, arrived)
            hi = min(segment.end, read)
            if lo < hi:
                last_violation = max(last_violation or 0, hi - 1)
        if last_violation is None:
            result[job] = 0
        else:
            result[job] = last_violation + 1 - arrived
    return result


def check_jitter_compliance(
    timed: TimedTrace,
    arrivals: ArrivalSequence,
    schedule: FiniteSchedule,
    priority: PriorityFn,
    jitter_bound: int,
    strict: bool = True,
) -> ComplianceReport:
    """Verify the §4.3 lemma on one run; raises :class:`ComplianceError`
    with the worst offender if any needed jitter exceeds the bound."""
    needed = needed_jitters(timed, arrivals, schedule, priority, strict=strict)
    report = ComplianceReport(needed_jitter=needed, bound=jitter_bound)
    if not report.ok:
        worst_job = max(needed, key=needed.__getitem__)
        raise ComplianceError(worst_job, needed[worst_job], jitter_bound)
    return report

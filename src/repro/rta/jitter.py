"""Release jitter bounds (paper section 4.3, Def. 4.3).

Rössl briefly violates two properties aRSA requires — priority-policy
compliance (a job arriving between polling and selection is invisible to
the scheduling decision) and work conservation (a job arriving while the
scheduler idles waits for the next polling pass).  Both are repaired by
*release jitter*: the analysis pretends each job is released up to
``J_i`` after its arrival, where

    ``J_i ≜ 1 + max(PB + SB + DB, IB)``  (Def. 4.3)

— the worst case of (a) arriving just after the polling phase concluded
(the job is overlooked for the concluding polling overhead, the
selection, and the dispatch of the chosen job) and (b) arriving just
after the idle-phase polling pass (the job waits out one idling loop
iteration).  The ``+1`` accounts for the arrival instant itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timing.wcet import WcetModel


@dataclass(frozen=True, slots=True)
class JitterBounds:
    """The per-state bounds feeding Def. 4.3, plus the jitter itself.

    In this instantiation the jitter bound is task-independent (the
    paper's ``J_i`` depends only on the WCETs and socket count), but the
    API keeps the per-task shape for extensions.
    """

    polling: int    # PB: longest PollingOvh instance
    selection: int  # SB
    dispatch: int   # DB
    idle: int       # IB: longest scheduler-caused idle after an arrival

    @property
    def bound(self) -> int:
        """``J = 1 + max(PB + SB + DB, IB)`` (Def. 4.3)."""
        return 1 + max(self.polling + self.selection + self.dispatch, self.idle)


def jitter_bound(wcet: WcetModel, num_sockets: int) -> JitterBounds:
    """Compute the jitter bounds for a deployment."""
    if num_sockets <= 0:
        raise ValueError("num_sockets must be positive")
    return JitterBounds(
        polling=wcet.polling_bound(num_sockets),
        selection=wcet.selection_bound,
        dispatch=wcet.dispatch_bound,
        idle=wcet.idle_instance_bound(num_sockets),
    )

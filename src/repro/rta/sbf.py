"""The supply bound function (paper section 4.4).

Overheads are modelled as *blackout* — time without supply.  The
blackout in a window of length ``Δ`` (measured from the start of a busy
window) is bounded by attributing every overhead state to a job and
bounding the number of contributing jobs by the release curves:

* ``TRB(Δ)`` bounds ``ReadOvh`` blackout: each contributing job costs at
  most ``RB``;
* ``NRB(Δ)`` bounds ``PollingOvh``/``SelectionOvh``/``DispatchOvh``/
  ``CompletionOvh`` blackout: each contributing job costs at most
  ``PB + SB + DB + CB``.

Each task contributes at most ``β_k(Δ) + 1`` jobs: its releases inside
the window plus one carried-in job whose overhead straddles the window
start (DESIGN.md, deliberate deviations — the paper's appendix carries
the precise accounting; ours is conservative).

Then (section 4.4)::

    SBF(Δ) ≜ max_{0 ≤ δ ≤ Δ} (δ − BlackoutBound(δ))⁺

— the ``max`` makes SBF monotone as aRSA requires.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping, NamedTuple, Sequence

from repro import obs
from repro.model.task import Task
from repro.rta.curves import ArrivalCurve
from repro.timing.wcet import WcetModel


def read_blackout_bound(
    delta: int,
    release_curves: Sequence[ArrivalCurve],
    wcet: WcetModel,
    num_sockets: int,
    carry_in: int = 1,
) -> int:
    """``TRB(Δ)``: blackout from ReadOvh states in a window of length Δ."""
    if delta <= 0:
        return 0
    per_job = wcet.read_ovh_bound(num_sockets)
    return sum((beta(delta) + carry_in) * per_job for beta in release_curves)


def non_read_blackout_bound(
    delta: int,
    release_curves: Sequence[ArrivalCurve],
    wcet: WcetModel,
    num_sockets: int,
    carry_in: int = 1,
) -> int:
    """``NRB(Δ)``: blackout from the dispatch-cycle overhead states."""
    if delta <= 0:
        return 0
    per_job = (
        wcet.polling_bound(num_sockets)
        + wcet.selection_bound
        + wcet.dispatch_bound
        + wcet.completion_bound
    )
    return sum((beta(delta) + carry_in) * per_job for beta in release_curves)


def blackout_bound(
    delta: int,
    release_curves: Sequence[ArrivalCurve],
    wcet: WcetModel,
    num_sockets: int,
    carry_in: int = 1,
) -> int:
    """``BlackoutBound(Δ) ≜ NRB(Δ) + TRB(Δ)``.

    ``carry_in`` is the per-task allowance for an overhead burst
    straddling the window start (DESIGN.md §3); the default 1 is the
    sound choice, 0 is exposed for the E7 ablation that measures what
    the allowance costs.
    """
    return read_blackout_bound(
        delta, release_curves, wcet, num_sockets, carry_in
    ) + non_read_blackout_bound(delta, release_curves, wcet, num_sockets, carry_in)


class SupplyBoundFunction:
    """``SBF(Δ) = max_{δ≤Δ}(δ − BlackoutBound(δ))⁺``, memoized.

    Values are computed incrementally (the running max makes each new
    ``Δ`` O(1)); :meth:`inverse` finds the least ``Δ`` with
    ``SBF(Δ) ≥ demand``, the primitive the fixed-point solver iterates.
    """

    def __init__(
        self,
        release_curves: Sequence[ArrivalCurve],
        wcet: WcetModel,
        num_sockets: int,
        carry_in: int = 1,
    ) -> None:
        self._curves = tuple(release_curves)
        self._wcet = wcet
        self._num_sockets = num_sockets
        self._carry_in = carry_in
        self._values: list[int] = [0]  # SBF(0) = 0

    def _extend_to(self, delta: int) -> None:
        while len(self._values) <= delta:
            d = len(self._values)
            slack = d - blackout_bound(
                d, self._curves, self._wcet, self._num_sockets, self._carry_in
            )
            self._values.append(max(self._values[-1], slack, 0))

    @property
    def extended_to(self) -> int:
        """The largest ``Δ`` whose value is memoized so far."""
        return len(self._values) - 1

    def __call__(self, delta: int) -> int:
        if delta < 0:
            raise ValueError("window length must be non-negative")
        self._extend_to(delta)
        return self._values[delta]

    def inverse(self, demand: int, ceiling: int) -> int | None:
        """Least ``Δ ≤ ceiling`` with ``SBF(Δ) ≥ demand``; ``None`` if the
        demand is not met within the ceiling.

        Extends the memo lazily — only far enough to reach ``demand`` —
        so huge search horizons cost nothing unless actually needed.
        """
        if demand <= 0:
            return 0
        while self._values[-1] < demand and len(self._values) - 1 < ceiling:
            self._extend_to(len(self._values))
        hi = min(ceiling, len(self._values) - 1)
        if self._values[hi] < demand:
            return None
        lo = 0
        while lo < hi:  # binary search on the monotone memo
            mid = (lo + hi) // 2
            if self._values[mid] >= demand:
                hi = mid
            else:
                lo = mid + 1
        return lo


class IdealSupply:
    """The unit-supply processor: ``SBF(Δ) = Δ`` (no overheads).

    Used by the overhead-oblivious baseline analysis.
    """

    def __call__(self, delta: int) -> int:
        if delta < 0:
            raise ValueError("window length must be non-negative")
        return delta

    def inverse(self, demand: int, ceiling: int) -> int | None:
        if demand <= 0:
            return 0
        return demand if demand <= ceiling else None


# -- SBF prefix sharing ----------------------------------------------------
#
# An SBF's values depend only on its deployment fingerprint (release
# curves, WCET model, socket count, carry-in allowance).  Repeated
# analyses of the same deployment — busy-window iterations inside one
# analysis already share an instance, but campaigns re-analysing per
# run and ablation sweeps re-analysing per parameter point do not —
# reuse the instance, and with it every Δ already extended.

_SBF_POOL: OrderedDict[tuple, SupplyBoundFunction] = OrderedDict()
_SBF_POOL_LIMIT = 64


class SbfPoolInfo(NamedTuple):
    """Occupancy of the SBF prefix pool (``repro cache stats``)."""

    size: int
    limit: int


def sbf_pool_info() -> SbfPoolInfo:
    """Occupancy of the bounded legacy-SBF pool."""
    return SbfPoolInfo(len(_SBF_POOL), _SBF_POOL_LIMIT)


def shared_sbf(
    release_curves: Sequence[ArrivalCurve],
    wcet: WcetModel,
    num_sockets: int,
    carry_in: int = 1,
) -> SupplyBoundFunction:
    """The pooled SBF for this deployment fingerprint.

    Unhashable curves get a private instance; the pool keeps the most
    recently used fingerprints (bounded, LRU-evicted).
    """
    curves = tuple(release_curves)
    key = (curves, wcet, num_sockets, carry_in)
    try:
        cached = _SBF_POOL.get(key)
    except TypeError:
        obs.inc("rta.sbf.pool_misses")
        return SupplyBoundFunction(curves, wcet, num_sockets, carry_in)
    if cached is None:
        obs.inc("rta.sbf.pool_misses")
        cached = SupplyBoundFunction(curves, wcet, num_sockets, carry_in)
        _SBF_POOL[key] = cached
        if len(_SBF_POOL) > _SBF_POOL_LIMIT:
            _SBF_POOL.popitem(last=False)
    else:
        obs.inc("rta.sbf.pool_hits")
        _SBF_POOL.move_to_end(key)
    return cached


def make_sbf(
    tasks: Sequence[Task],
    release_curves: Mapping[str, ArrivalCurve],
    wcet: WcetModel,
    num_sockets: int,
) -> SupplyBoundFunction:
    """Build (or reuse) the SBF for a task set with per-task release
    curves."""
    curves = [release_curves[task.name] for task in tasks]
    return shared_sbf(curves, wcet, num_sockets)
